"""Arena scalability: per-step cost and determinism as N grows 1 → 1024.

Unlike the figure benchmarks (which reproduce the paper), this suite
times the multi-tenant arena (:mod:`repro.sim.arena`) — the quantity the
resumable-client refactor exists to bound:

* **per-step dispatch cost** — host nanoseconds per kernel step with
  the arena interleaving N clients, for N ∈ {1, 64, 1024} (smoke stops
  at 64).  The grant path is a binary heap plus O(1) park/wake, so the
  cost of a step must not grow with the number of tenants; the gate
  allows 3× headroom over N=1 before failing.
* **fixed-seed digests** — the sha256 obs-stream digest of every sized
  run (:func:`repro.obs.export.stream_digest`).  Simulated time has no
  host dependence, so the digest for a given (N, seed, mix, policy) is
  a machine-independent constant; ``--check`` fails if any digest
  drifts from the committed baseline — the determinism pin for "same
  seed ⇒ byte-identical obs stream".

Run standalone to (re)generate the tracked baseline::

    PYTHONPATH=src python benchmarks/bench_arena.py             # full
    PYTHONPATH=src python benchmarks/bench_arena.py --smoke     # quick
    PYTHONPATH=src python benchmarks/bench_arena.py --smoke \
        --check BENCH_arena.json      # CI regression gate

Results land in ``BENCH_arena.json`` at the repo root (override with
``--output``).  ``--check`` gates the per-step growth ratio absolutely
(machine-independent headroom, not a throughput ratchet) and the
digests exactly; only Ns present in both runs are compared, so a smoke
check against the committed full baseline still pins N=1 and N=64.

Under pytest this module contributes smoke tests asserting the same
two properties at N=64.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.experiments.arena import (
    ARENA_SEED,
    DEFAULT_MIX,
    _setup_machine,
    arena_config,
    build_specs,
)
from repro.obs.export import stream_digest
from repro.sim import Kernel
from repro.sim.arena import Arena, make_policy

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_arena.json"

FULL_NS = (1, 64, 1024)
SMOKE_NS = (1, 64)

#: Per-step cost at the largest N may be at most this multiple of the
#: per-step cost at N=1.  The interleaver's per-grant work is O(log N)
#: (one heap pop/push), so the measured ratio sits near 1; 3× is the
#: acceptance headroom before "scales to N tenants" is considered broken.
STEP_COST_CEILING = 3.0

#: Repetitions; best-of, as elsewhere in the bench suite.  The N=1 arena
#: retires only a few dozen steps, so single shots are all warm-up noise.
BEST_OF = 5


def _run_arena_timed(n: int, seed: int = ARENA_SEED) -> Tuple[float, int, str]:
    """One arena run; returns (run-phase seconds, steps, digest).

    Machine setup (file creation, cache flush) happens outside the timed
    region — the gate is about the interleaver's dispatch cost, not
    mkfs.
    """
    config = arena_config()
    specs = build_specs(n, seed, config, DEFAULT_MIX)
    kernel = Kernel(config, event_capacity=max(100_000, 512 * n))
    _setup_machine(kernel, specs)
    arena = Arena(kernel, policy=make_policy("round-robin"), seed=seed)
    for spec in specs:
        arena.add_client(
            spec.name,
            lambda client, _spec=spec: _spec.body(client, kernel, True),
            kind=spec.kind,
            weight=spec.weight,
            quantum=spec.quantum,
        )
    t0 = time.perf_counter()
    arena.run()
    elapsed = time.perf_counter() - t0
    digest = stream_digest(kernel.obs.dump_records())
    return elapsed, arena.total_steps, digest


def bench_arena_size(n: int) -> Dict:
    """Best-of-``BEST_OF`` per-step cost at one N, plus the digest."""
    best_ns_per_step = float("inf")
    steps = 0
    digest = ""
    digests = set()
    for _ in range(BEST_OF):
        elapsed, steps, digest = _run_arena_timed(n)
        digests.add(digest)
        if steps:
            best_ns_per_step = min(best_ns_per_step, elapsed * 1e9 / steps)
    return {
        "n": n,
        "steps": steps,
        "ns_per_step": round(best_ns_per_step, 1),
        "digest": digest,
        # Every repetition reruns the same seed; a run-to-run digest
        # split means nondeterminism and is gated even without --check.
        "deterministic": len(digests) == 1,
    }


def run_suite(smoke: bool = False) -> Dict:
    sizes = SMOKE_NS if smoke else FULL_NS
    by_n = {str(n): bench_arena_size(n) for n in sizes}
    smallest = by_n[str(sizes[0])]
    largest = by_n[str(sizes[-1])]
    ratio = largest["ns_per_step"] / max(smallest["ns_per_step"], 1e-9)
    return {
        "schema": 1,
        "smoke": smoke,
        "python": platform.python_version(),
        "seed": ARENA_SEED,
        "mix": DEFAULT_MIX,
        "results": {
            "by_n": by_n,
            "step_cost_ratio": {
                "n_small": sizes[0],
                "n_large": sizes[-1],
                "ratio": round(ratio, 3),
                "ceiling": STEP_COST_CEILING,
            },
        },
    }


def check_regression(current: Dict, baseline: Dict) -> List[str]:
    failures: List[str] = []
    ratio = current["results"]["step_cost_ratio"]
    if ratio["ratio"] > STEP_COST_CEILING:
        failures.append(
            f"per-step cost at N={ratio['n_large']} is {ratio['ratio']:.2f}x "
            f"N={ratio['n_small']} (ceiling {STEP_COST_CEILING}x)"
        )
    for entry in current["results"]["by_n"].values():
        if not entry["deterministic"]:
            failures.append(
                f"N={entry['n']}: digest varied across repetitions"
            )
    base_by_n = baseline.get("results", {}).get("by_n", {})
    if current.get("seed") == baseline.get("seed") and \
            current.get("mix") == baseline.get("mix"):
        for key, entry in current["results"]["by_n"].items():
            base = base_by_n.get(key)
            if base is None:
                continue
            if entry["digest"] != base["digest"]:
                failures.append(
                    f"N={entry['n']}: obs digest {entry['digest'][:16]}... "
                    f"!= baseline {base['digest'][:16]}... "
                    "(fixed-seed stream changed)"
                )
            if entry["steps"] != base["steps"]:
                failures.append(
                    f"N={entry['n']}: {entry['steps']} steps "
                    f"!= baseline {base['steps']} (schedule changed)"
                )
    return failures


def delta_table(current: Dict, baseline: Dict) -> str:
    rows = []
    base_by_n = baseline.get("results", {}).get("by_n", {})
    for key, entry in sorted(
        current["results"]["by_n"].items(), key=lambda kv: int(kv[0])
    ):
        base = base_by_n.get(key, {})
        rows.append(
            f"  N={entry['n']:>5}: {base.get('ns_per_step', '-'):>10} -> "
            f"{entry['ns_per_step']:>10} ns/step   "
            f"digest {'==' if entry['digest'] == base.get('digest') else '!='} baseline"
        )
    return "\n".join(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="stop the sweep at N=64")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"result file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="gate step-cost growth and fixed-seed digests against a baseline JSON",
    )
    args = parser.parse_args(argv)

    current = run_suite(smoke=args.smoke)
    for key, entry in current["results"]["by_n"].items():
        print(f"N={key}: {json.dumps(entry)}")
    print(f"step_cost_ratio: {json.dumps(current['results']['step_cost_ratio'])}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_regression(current, baseline)
        print("\nbaseline -> current:")
        print(delta_table(current, baseline))
        if args.output.resolve() != args.check.resolve():
            args.output.write_text(json.dumps(current, indent=2) + "\n")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest smoke tests: the acceptance targets
# ----------------------------------------------------------------------
def test_arena_step_cost_scales():
    small = bench_arena_size(1)
    large = bench_arena_size(64)
    assert small["deterministic"] and large["deterministic"]
    ratio = large["ns_per_step"] / max(small["ns_per_step"], 1e-9)
    assert ratio <= STEP_COST_CEILING, (
        f"per-step cost grew {ratio:.2f}x from N=1 to N=64 "
        f"(ceiling {STEP_COST_CEILING}x)"
    )


def test_arena_digest_matches_committed_baseline():
    if not DEFAULT_OUTPUT.exists():
        import pytest

        pytest.skip("no committed BENCH_arena.json")
    baseline = json.loads(DEFAULT_OUTPUT.read_text())
    entry = baseline["results"]["by_n"].get("64")
    if entry is None:
        import pytest

        pytest.skip("baseline has no N=64 entry")
    _elapsed, steps, digest = _run_arena_timed(64)
    assert digest == entry["digest"], "fixed-seed obs stream changed at N=64"
    assert steps == entry["steps"], "arena schedule changed at N=64"


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
