"""Extension (§4.2.5): FLDC's knowledge module swapped for LFS.

"Within LFS, the ICL could take advantage of the knowledge that writes
that occur near one another in time lead to proximity in space."  On the
log-structured substrate, write-time ordering matches layout where
i-number ordering fails.
"""

from repro.experiments.ablations import lfs_ordering_experiment


def test_extension_lfs_knowledge_swap(reproduce):
    result = reproduce(lfs_ordering_experiment)
    rand = result.row_where("ordering", "random")["read_s"]
    ino = result.row_where("ordering", "i-number (FFS knowledge)")["read_s"]
    mtime = result.row_where("ordering", "write-time (LFS knowledge)")["read_s"]
    # Write-time ordering wins by a large factor on LFS.
    assert mtime < 0.5 * rand
    assert mtime < 0.5 * ino
    # The FFS knowledge module is roughly as bad as random here.
    assert ino > 0.6 * rand
