"""Table 2: techniques used by FCCD, FLDC, and MAC."""

from repro.experiments.tables import table2_case_studies


def test_table2_case_studies(reproduce):
    result = reproduce(table2_case_studies)
    assert len(result.rows) == 7
    # All three case studies insert probes (unlike the prior systems).
    probes = result.row_where("technique", "Probes")
    assert all(probes[c] != "None" for c in ("FCCD", "FLDC", "MAC"))
    # FLDC is the one exercising the known-state control (refresh);
    # MAC moves each probed chunk to a known state.
    known = result.row_where("technique", "Known state")
    assert "refresh" in known["FLDC"].lower()
    assert known["MAC"] != "None"
