"""Ablation (§4.1.2): sort-by-probe-time vs a fixed hit/miss threshold."""

from repro.experiments.ablations import ablation_threshold_vs_sort


def test_ablation_threshold_vs_sort(reproduce):
    result = reproduce(ablation_threshold_vs_sort)
    sort_s = result.row_where("strategy", "sort (no threshold)")["scan_s"]
    good = result.row_where("strategy", "threshold, calibrated")["scan_s"]
    bad = result.row_where("strategy", "threshold, miscalibrated")["scan_s"]
    # Sorting needs no calibration and matches the well-calibrated
    # threshold; a threshold carried over from different hardware loses
    # a large part of the benefit.
    assert sort_s <= good * 1.1
    assert bad > 1.3 * sort_s
