"""Core simulator speed: batched vs sequential probe paths.

Unlike the figure benchmarks (which reproduce the paper), this suite
times the *simulator itself* — the quantity the batched-syscall fast
path and the scheduler single-runner slot exist to improve:

* **probe throughput** — raw ``pread``/``touch``/``stat`` probes per
  host second, sequential one-syscall-per-probe vs one vectored batch
  call (``pread_batch``/``touch_batch``/``stat_batch``);
* **kernel step rate** — scheduler dispatches per host second for a
  minimal syscall loop (the single-runner fast-slot path);
* **end-to-end Fig-2 scan** — one gray-box scan point wall-clock, with
  FCCD's ``batch_probes`` on vs off, asserting the *simulated* result
  is bit-identical either way.

Run standalone to (re)generate the tracked baseline::

    PYTHONPATH=src python benchmarks/bench_core_speed.py            # full
    PYTHONPATH=src python benchmarks/bench_core_speed.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_core_speed.py --smoke \
        --check BENCH_core.json       # CI regression gate

Results land in ``BENCH_core.json`` at the repo root (override with
``--output``).  ``--check`` compares the *speedup ratios* of the fresh
run against a baseline file — ratios, not absolute throughput, so the
gate is meaningful across machines — and exits non-zero when the
batched path's advantage has regressed by more than 20%.

``--profile`` runs one extra, *separate* pass with the
:mod:`repro.obs.profile` section profiler enabled and attaches the
hot-path breakdown (top host-time sections) to the artifact under
``"profile"``.  The gated measurements always come from the unprofiled
pass, so profiling overhead can never contaminate a gate.

Under pytest this module contributes one smoke test asserting the
headline target: ≥3× pread-probe throughput on the batched path.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from repro.icl.fccd import FCCD
from repro.sim import Kernel, MachineConfig, PLATFORMS
from repro.sim import syscalls as sc
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_core.json"

# Ratio gate for --check: fail when the fresh run's speedup drops below
# this fraction of the baseline's ("regresses >20%").
REGRESSION_FLOOR = 0.8

# Absolute gate for the per-platform kernel-step rate: the layered
# kernel must keep at least this fraction of the pre-refactor committed
# baseline's dispatch throughput on every personality.
STEP_RATE_FLOOR = 0.9

# Gated measurements.  Only the probe-throughput speedups whose ratio is
# stable across problem sizes are gated (CI runs --smoke against a
# full-run baseline).  stat joined the gate once the name-lookup cache
# landed: with walks memoized, both paths are dispatch-bound and the
# batched/sequential ratio is size-stable like the others.  The fig2
# scan (ratio grows with scan size) stays informational, except for
# fig2's simulated-time equality flag, which is always enforced.
GATED_KEYS = (
    "pread_probe_throughput",
    "touch_probe_throughput",
    "stat_probe_throughput",
)

# Absolute speedup floors, enforced on every --check regardless of the
# baseline's mode.  The 20%-ratchet against the recorded baseline is
# only meaningful between equally-sized runs — the smoke run retires
# far fewer probes, so its warm fraction (and with it the batched/
# sequential ratio) sits systematically below the full run's — so a
# cross-mode check gates on these floors instead.
SPEEDUP_FLOORS = {
    "pread_probe_throughput": 3.0,
    "touch_probe_throughput": 3.0,
    "stat_probe_throughput": 3.0,
    # fig2 is end-to-end FCCD, and the sequential side shares the
    # vectorized kernel paths — so its ratio compresses as the kernel
    # gets faster.  The absolute floor asserts the invariant that
    # matters: batching must never make the scan *slower*.
    "fig2_scan": 1.0,
}

# Ceiling on any single ``syscall.*`` section's share of profiled host
# time.  A section crossing it means one syscall path has re-grown into
# the dominant cost (the pre-vectorization profile had syscall.pread at
# 27% and nothing else close); the gate applies whenever a --profile
# pass is attached.
PROFILE_SHARE_CEILING = 0.35


def _config() -> MachineConfig:
    return MachineConfig(
        page_size=4 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


#: Repetitions for the throughput benches; best-of is reported.  Single
#: shots on a shared host swing ±30%, which no gate floor survives; the
#: fastest of three approximates the machine's uncontended rate.
BEST_OF = 3


def _timed(run: Callable[[], int], repeat: int = BEST_OF) -> Dict[str, float]:
    """Time ``run`` ``repeat`` times; returns the best (fastest) result.

    ``run`` must be re-runnable: every throughput loop here probes warm,
    steady-state kernel structures, so a second pass measures the same
    thing as the first (minus first-pass cold misses, which is the
    point — gates compare achievable rates, not scheduler luck).
    """
    best: Dict[str, float] = {"per_s": 0.0, "seconds": float("inf")}
    for _ in range(repeat):
        t0 = time.perf_counter()
        ops = run()
        elapsed = time.perf_counter() - t0
        if elapsed > 0 and ops / elapsed > best["per_s"]:
            best = {"per_s": ops / elapsed, "seconds": elapsed}
    return best


def _speedup_entry(sequential: Dict[str, float], batched: Dict[str, float]) -> Dict:
    return {
        "sequential_per_s": round(sequential["per_s"], 1),
        "batched_per_s": round(batched["per_s"], 1),
        "speedup": round(batched["per_s"] / max(sequential["per_s"], 1e-9), 2),
    }


# ----------------------------------------------------------------------
# Probe throughput: raw syscall loops
# ----------------------------------------------------------------------
def bench_pread_probes(n_probes: int, batch_size: int) -> Dict:
    """1-byte pread probes over a cached file, both paths.

    Setup (kernel construction, file creation) happens outside the
    timed region; only the probe loop is measured.
    """
    offsets = [(i * 4096) % (16 * MIB) for i in range(n_probes)]

    def setup() -> Kernel:
        kernel = Kernel(_config())
        kernel.run_process(make_file("/mnt0/probe.dat", 16 * MIB), "setup")
        return kernel

    def sequential(kernel: Kernel) -> int:
        def app():
            fd = (yield sc.open("/mnt0/probe.dat")).value
            for offset in offsets:
                yield sc.pread(fd, offset, 1)
            yield sc.close(fd)
        kernel.run_process(app(), "probe")
        return n_probes

    def batched(kernel: Kernel) -> int:
        def app():
            fd = (yield sc.open("/mnt0/probe.dat")).value
            for start in range(0, n_probes, batch_size):
                chunk = offsets[start : start + batch_size]
                yield sc.pread_batch(fd, [(o, 1) for o in chunk])
            yield sc.close(fd)
        kernel.run_process(app(), "probe")
        return n_probes

    seq_kernel, batch_kernel = setup(), setup()
    return _speedup_entry(
        _timed(lambda: sequential(seq_kernel)),
        _timed(lambda: batched(batch_kernel)),
    )


def bench_touch_probes(n_pages: int, rounds: int, batch_size: int) -> Dict:
    """Resident page-touch probes (MAC's verify-loop shape), both paths.

    The region must fit in memory — the point is re-touching *resident*
    pages, not swapping.  A warm-up pass faults every page in outside
    the timed region; the measurement is ``rounds`` re-touch sweeps.
    """
    assert n_pages * 4 * KIB < _config().available_bytes, "region must stay resident"

    def run(batch: bool) -> Dict[str, float]:
        # Regions are per-process, so the warm-up faulting every page
        # in lives inside the same process; host time is captured
        # around just the re-touch loops.
        kernel = Kernel(_config())

        def app():
            region = (yield sc.vm_alloc(n_pages * 4 * KIB, "bench")).value
            yield sc.touch_range(region, 0, n_pages)  # warm: all resident
            t0 = time.perf_counter()
            for _ in range(rounds):
                if batch:
                    for start in range(0, n_pages, batch_size):
                        count = min(batch_size, n_pages - start)
                        yield sc.touch_batch(region, start, count)
                else:
                    for index in range(n_pages):
                        yield sc.touch(region, index)
            elapsed = time.perf_counter() - t0
            yield sc.vm_free(region)
            return elapsed
        seconds = kernel.run_process(app(), "touch")
        return {"per_s": n_pages * rounds / seconds, "seconds": seconds}

    def best(batch: bool) -> Dict[str, float]:
        # This bench times inside the process (fresh kernel per run), so
        # best-of is taken over whole runs rather than through _timed.
        return max(
            (run(batch) for _ in range(BEST_OF)), key=lambda r: r["per_s"]
        )

    return _speedup_entry(best(batch=False), best(batch=True))


def bench_stat_probes(n_files: int, rounds: int, batch_size: int) -> Dict:
    """stat sweeps over a populated directory, both paths."""
    def setup() -> Kernel:
        kernel = Kernel(_config())

        def populate():
            yield sc.mkdir("/mnt0/sweep")
            for i in range(n_files):
                fd = (yield sc.create(f"/mnt0/sweep/f{i:04d}")).value
                yield sc.write(fd, 512)
                yield sc.close(fd)
        kernel.run_process(populate(), "setup")
        return kernel

    paths = [f"/mnt0/sweep/f{i:04d}" for i in range(n_files)]

    def sequential(kernel: Kernel) -> int:
        def app():
            for _ in range(rounds):
                for path in paths:
                    yield sc.stat(path)
        kernel.run_process(app(), "stat")
        return n_files * rounds

    def batched(kernel: Kernel) -> int:
        def app():
            for _ in range(rounds):
                for start in range(0, n_files, batch_size):
                    yield sc.stat_batch(paths[start : start + batch_size])
        kernel.run_process(app(), "stat")
        return n_files * rounds

    seq_kernel, batch_kernel = setup(), setup()
    return _speedup_entry(
        _timed(lambda: sequential(seq_kernel)),
        _timed(lambda: batched(batch_kernel)),
    )


# ----------------------------------------------------------------------
# Kernel step rate: minimal syscalls through the dispatch loop
# ----------------------------------------------------------------------
def bench_kernel_steps(n_steps: int) -> Dict:
    kernel = Kernel(_config())

    def app():
        for _ in range(n_steps):
            yield sc.gettime()

    def run() -> int:
        kernel.run_process(app(), "spin")
        return n_steps

    timing = _timed(run)
    stats = kernel.scheduler.stats
    return {
        "steps_per_s": round(timing["per_s"], 1),
        "fast_dispatch_fraction": round(
            stats.fast_dispatches / max(stats.dispatches, 1), 4
        ),
    }


def bench_kernel_steps_by_platform(n_steps: int) -> Dict:
    """Dispatch throughput of a mixed syscall loop, per personality.

    The loop blends cheap clock reads with cached single-page preads so
    the measurement covers the dispatch table *and* the per-platform
    cache-manager fast path, not just the scheduler slot.  The machine
    is sized so netbsd15's fixed 64 MB buffer cache fits.
    """
    config = MachineConfig(
        page_size=4 * KIB,
        memory_bytes=96 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )
    kernels: Dict[str, Kernel] = {}
    for name in sorted(PLATFORMS):
        kernel = Kernel(config, platform=PLATFORMS[name])
        kernel.run_process(make_file("/mnt0/step.dat", 4 * MIB, sync=False), "setup")
        kernels[name] = kernel

    def one_run(kernel: Kernel) -> Callable[[], int]:
        def run() -> int:
            def app():
                fd = (yield sc.open("/mnt0/step.dat")).value
                for i in range(n_steps // 2):
                    yield sc.gettime()
                    yield sc.pread(fd, (i * 4 * KIB) % (4 * MIB), 1)
                yield sc.close(fd)
            kernel.run_process(app(), "spin")
            return 2 * (n_steps // 2)
        return run

    # Repetitions are interleaved round-robin across platforms rather
    # than back-to-back: host-load bursts last seconds, so consecutive
    # reps of one platform would all land inside the same burst and its
    # best-of would still be slow.  Spreading each platform's reps
    # across the whole measurement window decorrelates them.
    best: Dict[str, float] = {name: 0.0 for name in kernels}
    for _ in range(BEST_OF):
        for name, kernel in kernels.items():
            timing = _timed(one_run(kernel), repeat=1)
            best[name] = max(best[name], timing["per_s"])
    return {name: {"steps_per_s": round(rate, 1)} for name, rate in best.items()}


# ----------------------------------------------------------------------
# End-to-end: one Fig-2 gray-scan point, batched vs sequential FCCD
# ----------------------------------------------------------------------
def bench_fig2_scan(size_mb: int, prediction_unit: int) -> Dict:
    import random

    from repro.apps.scan import gray_scan

    def one(batch: bool) -> Dict[str, float]:
        kernel = Kernel(_config())
        kernel.run_process(make_file("/mnt0/fig2.dat", size_mb * MIB), "setup")
        fccd = FCCD(
            rng=random.Random(7),
            access_unit_bytes=4 * MIB,
            prediction_unit_bytes=prediction_unit,
            batch_probes=batch,
        )
        reports: List = []

        def run() -> int:
            reports.append(kernel.run_process(gray_scan("/mnt0/fig2.dat", fccd), "scan"))
            return 1
        # One shot: a repeat would re-scan a warm cache, a different
        # workload with a different simulated time.
        timing = _timed(run, repeat=1)
        timing["simulated_ns"] = reports[0].elapsed_ns
        return timing

    sequential = one(False)
    batched = one(True)
    return {
        "sequential_s": round(sequential["seconds"], 4),
        "batched_s": round(batched["seconds"], 4),
        "speedup": round(
            sequential["seconds"] / max(batched["seconds"], 1e-9), 2
        ),
        # The whole point: batching must not move the simulated result.
        "simulated_ns_equal": sequential["simulated_ns"] == batched["simulated_ns"],
        "simulated_ns": batched["simulated_ns"],
    }


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
def run_suite(smoke: bool = False) -> Dict:
    if smoke:
        params = dict(
            pread=dict(n_probes=4_000, batch_size=256),
            touch=dict(n_pages=4_000, rounds=1, batch_size=256),
            stat=dict(n_files=200, rounds=4, batch_size=100),
            steps=dict(n_steps=20_000),
            platform_steps=dict(n_steps=20_000),
            fig2=dict(size_mb=16, prediction_unit=64 * KIB),
        )
    else:
        params = dict(
            pread=dict(n_probes=40_000, batch_size=256),
            touch=dict(n_pages=8_000, rounds=5, batch_size=256),
            stat=dict(n_files=500, rounds=16, batch_size=250),
            steps=dict(n_steps=200_000),
            platform_steps=dict(n_steps=100_000),
            fig2=dict(size_mb=48, prediction_unit=16 * KIB),
        )
    return {
        "schema": 1,
        "smoke": smoke,
        "python": platform.python_version(),
        "results": {
            "pread_probe_throughput": bench_pread_probes(**params["pread"]),
            "touch_probe_throughput": bench_touch_probes(**params["touch"]),
            "stat_probe_throughput": bench_stat_probes(**params["stat"]),
            "kernel_step_rate": bench_kernel_steps(**params["steps"]),
            "kernel_step_rate_by_platform": bench_kernel_steps_by_platform(
                **params["platform_steps"]
            ),
            "fig2_scan": bench_fig2_scan(**params["fig2"]),
        },
    }


def run_profile_pass(smoke: bool = False) -> Dict:
    """One profiled pass over the probe benches; returns the breakdown.

    Runs *after* (and independently of) the gated suite: the profiler is
    enabled only inside this function, so its per-hook cost is visible
    here and nowhere else.  Sections named ``syscall.*`` /
    ``sched.next_ready`` / ``proc.advance`` locate the dispatch loop's
    time; dotted batch subsections (``pread_batch.fallback`` …) nest
    inside their syscall section — see :mod:`repro.obs.profile`.
    """
    from repro.obs.profile import PROFILER

    if smoke:
        params = dict(
            pread=dict(n_probes=4_000, batch_size=256),
            touch=dict(n_pages=4_000, rounds=1, batch_size=256),
            stat=dict(n_files=200, rounds=4, batch_size=100),
            fig2=dict(size_mb=16, prediction_unit=64 * KIB),
        )
    else:
        params = dict(
            pread=dict(n_probes=40_000, batch_size=256),
            touch=dict(n_pages=8_000, rounds=5, batch_size=256),
            stat=dict(n_files=500, rounds=16, batch_size=250),
            fig2=dict(size_mb=48, prediction_unit=16 * KIB),
        )
    PROFILER.clear()
    PROFILER.enable()
    try:
        bench_pread_probes(**params["pread"])
        bench_touch_probes(**params["touch"])
        bench_stat_probes(**params["stat"])
        bench_fig2_scan(**params["fig2"])
    finally:
        PROFILER.disable()
    rows = PROFILER.rows()
    report = PROFILER.report(top=10)
    PROFILER.clear()
    return {"top_sections": rows[:10], "table": report}


def check_regression(current: Dict, baseline: Dict) -> List[str]:
    """Speedup-ratio gate; returns a list of failure messages."""
    failures = []
    same_mode = current.get("smoke") == baseline.get("smoke")
    # Absolute floors apply to every keyed speedup, gated or not (fig2
    # carries a floor without joining the ratio ratchet).
    for key, floor_abs in SPEEDUP_FLOORS.items():
        cur = current.get("results", {}).get(key)
        if cur and cur["speedup"] < floor_abs:
            failures.append(
                f"{key}: speedup {cur['speedup']:.2f}x fell below the "
                f"absolute floor {floor_abs:.2f}x"
            )
    for key in GATED_KEYS:
        cur = current.get("results", {}).get(key)
        if not cur or cur["speedup"] < SPEEDUP_FLOORS.get(key, 0.0):
            continue  # missing, or already failed the absolute floor
        base = baseline.get("results", {}).get(key)
        if not base or not same_mode:
            continue
        floor = base["speedup"] * REGRESSION_FLOOR
        if cur["speedup"] < floor:
            failures.append(
                f"{key}: speedup {cur['speedup']:.2f}x fell below "
                f"{floor:.2f}x (80% of baseline {base['speedup']:.2f}x)"
            )
    # Absolute step rates are only comparable between equally-sized runs:
    # the smoke loop retires far fewer syscalls, so its cold-miss fraction
    # (and thus steps/s) differs systematically from a full run.
    base_steps = baseline.get("results", {}).get("kernel_step_rate_by_platform") or {}
    cur_steps = current.get("results", {}).get("kernel_step_rate_by_platform") or {}
    if not same_mode:
        base_steps = {}
    for name, base in base_steps.items():
        cur = cur_steps.get(name)
        if not cur:
            failures.append(f"kernel_step_rate_by_platform: no fresh entry for {name}")
            continue
        floor = base["steps_per_s"] * STEP_RATE_FLOOR
        if cur["steps_per_s"] < floor:
            failures.append(
                f"kernel_step_rate_by_platform[{name}]: {cur['steps_per_s']:.0f} "
                f"steps/s fell below {floor:.0f} "
                f"(90% of baseline {base['steps_per_s']:.0f})"
            )
    fig2 = current.get("results", {}).get("fig2_scan", {})
    if fig2 and not fig2.get("simulated_ns_equal", True):
        failures.append("fig2_scan: batched simulated time diverged from sequential")
    return failures


def check_profile_shares(profile: Dict) -> List[str]:
    """No single ``syscall.*`` section may dominate the profiled pass."""
    failures = []
    for row in profile.get("top_sections", []):
        section = row.get("section", "")
        # Dotted subsections (``touch_batch.fault`` …) nest *inside*
        # their syscall's section time; gating them too would double
        # count.  Only top-level syscall sections are shares of the
        # dispatch loop.
        if section.startswith("syscall.") and row.get("share", 0.0) > PROFILE_SHARE_CEILING:
            failures.append(
                f"profile: {section} holds {row['share']:.1%} of profiled "
                f"host time (ceiling {PROFILE_SHARE_CEILING:.0%})"
            )
    return failures


def delta_table(current: Dict, baseline: Dict) -> str:
    """Per-metric old→new table for the --check report.

    Covers every scalar the gates look at: the four speedups, the
    solo-loop step rate, and the per-platform step rates.  Percentages
    are informational — cross-mode runs (smoke vs full baseline) still
    print, they just aren't comparable one-for-one.
    """
    rows: List[tuple] = []

    def pick(tree: Dict, key: str, field: str):
        entry = tree.get("results", {}).get(key)
        return entry.get(field) if isinstance(entry, dict) else None

    for key in (*GATED_KEYS, "fig2_scan"):
        rows.append((f"{key}.speedup", pick(baseline, key, "speedup"),
                     pick(current, key, "speedup"), "x"))
    rows.append(("kernel_step_rate.steps_per_s",
                 pick(baseline, "kernel_step_rate", "steps_per_s"),
                 pick(current, "kernel_step_rate", "steps_per_s"), "/s"))
    base_steps = baseline.get("results", {}).get("kernel_step_rate_by_platform") or {}
    cur_steps = current.get("results", {}).get("kernel_step_rate_by_platform") or {}
    for name in sorted(set(base_steps) | set(cur_steps)):
        rows.append((f"step_rate[{name}]",
                     (base_steps.get(name) or {}).get("steps_per_s"),
                     (cur_steps.get(name) or {}).get("steps_per_s"), "/s"))

    def fmt(value, unit: str) -> str:
        if value is None:
            return "-"
        return f"{value:,.2f}x" if unit == "x" else f"{value:,.0f}{unit}"

    lines = [
        f"{'metric':<34} {'baseline':>12} {'current':>12} {'change':>8}",
        f"{'-' * 34} {'-' * 12} {'-' * 12} {'-' * 8}",
    ]
    for label, old, new, unit in rows:
        if old and new:
            change = f"{(new / old - 1.0):+.1%}"
        else:
            change = "-"
        lines.append(
            f"{label:<34} {fmt(old, unit):>12} {fmt(new, unit):>12} {change:>8}"
        )
    return "\n".join(lines)


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small, fast sizes")
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"result file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="compare speedups against a baseline JSON; exit 1 on >20%% regression",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="add a separate profiled pass; hot-path table lands in the artifact",
    )
    args = parser.parse_args(argv)

    current = run_suite(smoke=args.smoke)
    for key, entry in current["results"].items():
        print(f"{key}: {json.dumps(entry)}")

    if args.profile:
        current["profile"] = run_profile_pass(smoke=args.smoke)
        print("\nhost-time hot paths (profiled pass, not gated):")
        print(current["profile"]["table"])

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_regression(current, baseline)
        if "profile" in current:
            failures.extend(check_profile_shares(current["profile"]))
        print("\nbaseline -> current deltas:")
        print(delta_table(current, baseline))
        # The gate run must not clobber the committed baseline.  Compare
        # resolved paths: the default output is absolute while --check is
        # usually given relative, and a naive != would treat them as
        # different files and silently overwrite the baseline.
        if args.output.resolve() != args.check.resolve():
            args.output.write_text(json.dumps(current, indent=2) + "\n")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest smoke test: the headline acceptance target
# ----------------------------------------------------------------------
def test_batched_probe_throughput_target():
    """Batched pread probes must run ≥3× faster than sequential."""
    entry = bench_pread_probes(n_probes=4_000, batch_size=256)
    assert entry["speedup"] >= 3.0, entry


def test_batched_stat_throughput_target():
    """Batched stat probes must run ≥3× faster than sequential.

    The full-size run records ≥4× in BENCH_core.json; the smoke-size
    floor is lower because the dispatch overhead being amortized is a
    smaller multiple of the warm-path cost at this scale.
    """
    entry = bench_stat_probes(n_files=200, rounds=4, batch_size=100)
    assert entry["speedup"] >= 3.0, entry


def test_fig2_scan_simulated_time_identical():
    """Batching is wall-clock only: the simulated scan time must not move."""
    entry = bench_fig2_scan(size_mb=16, prediction_unit=64 * KIB)
    assert entry["simulated_ns_equal"], entry


def test_no_syscall_section_dominates_committed_profile():
    """The committed baseline's profile must stay flat.

    After the vectorized paths landed, no single ``syscall.*`` section
    should hold more than :data:`PROFILE_SHARE_CEILING` of profiled host
    time — a section crossing it means one syscall path has re-grown
    into the dominant cost and the artifact needs regenerating (or the
    path needs fixing).
    """
    baseline = json.loads(DEFAULT_OUTPUT.read_text())
    profile = baseline.get("profile")
    assert profile, "BENCH_core.json lacks a profile pass; regenerate with --profile"
    assert check_profile_shares(profile) == []


if __name__ == "__main__":
    sys.exit(main())
