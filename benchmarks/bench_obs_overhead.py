"""Observability overhead: instrumented vs uninstrumented wall time.

The observability layer claims to be cheap enough to stay always-on.
This benchmark runs the same kernel workload with the default (enabled)
observability and with a disabled instance swapped in, takes the best
of several rounds each (min is the noise-robust statistic for a
deterministic workload), and asserts the instrumented run stays within
the 10% budget the layer was designed against.

The host-time profiler's hooks (:mod:`repro.obs.profile`) are compiled
into the same hot paths, so the 10% gate runs with the profiler's
sections *registered* (but the profiler off) — the configuration every
normal run ships with.  The cost of the disabled hook itself — one
attribute load plus one predictable branch — is measured separately by
:func:`test_profiler_disabled_hook_cost` and printed in nanoseconds per
hook; it is far below what the workload gate could resolve.
"""

import time

from repro.obs import Observability
from repro.obs.profile import PROFILER
from repro.sim import Kernel, MachineConfig

KIB = 1024
MIB = 1024 * 1024

ROUNDS = 7


def _workload_config():
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


def _run_workload(instrumented: bool) -> float:
    """One syscall-heavy run; returns host CPU seconds.

    The workload is pure CPU, so process time is the right clock: it
    excludes scheduler preemption and other-core interference that
    wall time picks up, which matters when asserting a tight ratio.
    """
    from repro.sim import syscalls as sc
    from repro.workloads.files import make_file

    config = _workload_config()
    obs = None if instrumented else Observability(enabled=False)
    kernel = Kernel(config, obs=obs)

    nbytes = config.available_bytes  # fills the cache, forces reclaim
    t0 = time.process_time()
    kernel.run_process(make_file("/mnt0/load.dat", nbytes, sync=False), "w")

    def reread():
        fd = (yield sc.open("/mnt0/load.dat")).value
        size = (yield sc.fstat(fd)).value.size
        for _pass in range(2):
            offset = 0
            while offset < size:
                got = (yield sc.pread(fd, offset, 64 * KIB)).value
                offset += got.nbytes
        yield sc.close(fd)

    kernel.run_process(reread(), "r")
    return time.process_time() - t0


#: Independent comparison attempts before the gate gives up.  The
#: workload is deterministic, so a *real* regression fails every
#: attempt; a host-noise phase (frequency drift, a co-tenant burst)
#: that lands on one variant's rounds only fails that attempt alone.
ATTEMPTS = 3


def test_obs_overhead_within_budget(benchmark):
    def compare():
        # Register the profiler's hot-path sections (one profiled pass)
        # and then disable it again: the gate below must price the
        # always-on configuration — attribution + metrics + events on,
        # profiler hooks present but off, registry non-empty.
        PROFILER.clear()
        PROFILER.enable()
        _run_workload(True)
        PROFILER.disable()
        assert PROFILER.rows(), "profiled warm-up registered no sections"
        # Warm up both variants once (imports, allocator, CPU state).
        # Each attempt interleaves its timed rounds so transient host
        # noise lands on both sides equally, and takes min (the
        # noise-robust statistic for one-sided interference).  An
        # attempt over budget is retried: the host's throughput floor
        # drifts on second timescales, and a fast phase covering only
        # one variant's rounds fakes a regression a fresh attempt
        # cannot reproduce.
        _run_workload(True)
        _run_workload(False)
        best = None
        for _ in range(ATTEMPTS):
            enabled_times, disabled_times = [], []
            for _ in range(ROUNDS):
                enabled_times.append(_run_workload(True))
                disabled_times.append(_run_workload(False))
            pair = min(enabled_times), min(disabled_times)
            if best is None or pair[0] / pair[1] < best[0] / best[1]:
                best = pair
            if best[0] / best[1] <= 1.10:
                break
        return best

    enabled, disabled = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    ratio = enabled / disabled
    print(f"\nenabled {enabled * 1e3:.1f}ms  disabled {disabled * 1e3:.1f}ms  "
          f"ratio {ratio:.3f}")
    assert ratio <= 1.10, (
        f"observability overhead {ratio - 1:+.1%} exceeds the 10% budget"
        f" on {ATTEMPTS} independent attempts"
    )


def test_profiler_disabled_hook_cost():
    """Price one disabled profiler hook; documentably negligible.

    The hook's disabled path is ``if PROFILER.enabled:`` — an attribute
    load and a branch.  This micro-measurement subtracts an identical
    bare loop from a hook loop and reports the difference per
    iteration.  The bound is deliberately loose (500 ns is ~100x the
    real cost): the assertion exists to catch a future hook accidentally
    doing work while disabled, not to benchmark the branch predictor.
    """
    assert not PROFILER.enabled
    n = 200_000
    iterations = range(n)

    def hook_loop() -> float:
        t0 = time.process_time()
        for _ in iterations:
            if PROFILER.enabled:
                time.perf_counter_ns()
        return time.process_time() - t0

    def bare_loop() -> float:
        t0 = time.process_time()
        for _ in iterations:
            pass
        return time.process_time() - t0

    hook_loop(), bare_loop()  # warm-up
    hooked = min(hook_loop() for _ in range(5))
    bare = min(bare_loop() for _ in range(5))
    per_hook_ns = max(hooked - bare, 0.0) / n * 1e9
    print(f"\ndisabled profiler hook: {per_hook_ns:.1f} ns "
          f"(hook loop {hooked * 1e3:.1f}ms, bare loop {bare * 1e3:.1f}ms)")
    assert per_hook_ns < 500, (
        f"disabled profiler hook costs {per_hook_ns:.0f} ns - it should be "
        f"an attribute load and a branch"
    )
