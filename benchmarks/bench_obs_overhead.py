"""Observability overhead: instrumented vs uninstrumented wall time.

The observability layer claims to be cheap enough to stay always-on.
This benchmark runs the same kernel workload with the default (enabled)
observability and with a disabled instance swapped in, takes the best
of several rounds each (min is the noise-robust statistic for a
deterministic workload), and asserts the instrumented run stays within
the 10% budget the layer was designed against.
"""

import time

from repro.obs import Observability
from repro.sim import Kernel, MachineConfig

KIB = 1024
MIB = 1024 * 1024

ROUNDS = 7


def _workload_config():
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


def _run_workload(instrumented: bool) -> float:
    """One syscall-heavy run; returns host CPU seconds.

    The workload is pure CPU, so process time is the right clock: it
    excludes scheduler preemption and other-core interference that
    wall time picks up, which matters when asserting a tight ratio.
    """
    from repro.sim import syscalls as sc
    from repro.workloads.files import make_file

    config = _workload_config()
    obs = None if instrumented else Observability(enabled=False)
    kernel = Kernel(config, obs=obs)

    nbytes = config.available_bytes  # fills the cache, forces reclaim
    t0 = time.process_time()
    kernel.run_process(make_file("/mnt0/load.dat", nbytes, sync=False), "w")

    def reread():
        fd = (yield sc.open("/mnt0/load.dat")).value
        size = (yield sc.fstat(fd)).value.size
        for _pass in range(2):
            offset = 0
            while offset < size:
                got = (yield sc.pread(fd, offset, 64 * KIB)).value
                offset += got.nbytes
        yield sc.close(fd)

    kernel.run_process(reread(), "r")
    return time.process_time() - t0


def test_obs_overhead_within_budget(benchmark):
    def compare():
        # Warm up both variants once (imports, allocator, CPU state),
        # then interleave the timed rounds so transient host noise --
        # e.g. a preceding benchmark's worker pool winding down --
        # lands on both sides equally instead of biasing whichever
        # variant happens to run first.
        _run_workload(True)
        _run_workload(False)
        enabled_times, disabled_times = [], []
        for _ in range(ROUNDS):
            enabled_times.append(_run_workload(True))
            disabled_times.append(_run_workload(False))
        return min(enabled_times), min(disabled_times)

    enabled, disabled = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    ratio = enabled / disabled
    print(f"\nenabled {enabled * 1e3:.1f}ms  disabled {disabled * 1e3:.1f}ms  "
          f"ratio {ratio:.3f}")
    assert ratio <= 1.10, (
        f"observability overhead {ratio - 1:+.1%} exceeds the 10% budget"
    )
