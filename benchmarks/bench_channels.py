"""Covert-channel capacity floors and determinism pins, per platform.

This suite gates the covert-channel harness
(:mod:`repro.experiments.channels`) on the three quantities the test
archetype promises:

* **quiet-channel fidelity** — at noise level 0 every (channel,
  platform) cell must decode below ``QUIET_BER_CEILING`` (1%); a quiet
  channel that cannot carry its payload means the timing signal itself
  regressed.
* **capacity floors** — bandwidth in bits per second of *simulated*
  time is a pure function of (seed, config), so the committed baseline
  stores each cell's measured bandwidth and a floor at
  ``FLOOR_FRACTION`` of it; ``--check`` fails if a cell drops below the
  baseline floor (a kernel change made the channel slower) and also if
  the noisy residency cell stops being at least as lossy as the quiet
  one (the injector ladder stopped biting).
* **fixed-seed digests** — the sha256 obs-stream digest of every cell,
  byte-compared against the baseline; same (seed, config) must give the
  identical attributed stream, decoded bitstring included.

Run standalone to (re)generate the tracked baseline::

    PYTHONPATH=src python benchmarks/bench_channels.py            # full
    PYTHONPATH=src python benchmarks/bench_channels.py --smoke    # quick
    PYTHONPATH=src python benchmarks/bench_channels.py --smoke \
        --check BENCH_channels.json    # CI regression gate

Results land in ``BENCH_channels.json`` at the repo root (override with
``--output``).  Smoke runs the linux22 column only, with identical cell
configs, so a smoke check against the committed full baseline still
pins that column exactly.  Under pytest this module contributes smoke
tests asserting the same properties on the linux22 residency cell.
"""

from __future__ import annotations

import argparse
import json
import platform as host_platform
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.channels import CHANNELS_SEED, run_channel

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_channels.json"

PLATFORM_NAMES = ("linux22", "netbsd15", "solaris7")
SMOKE_PLATFORMS = ("linux22",)

N_BITS = 48
NOISY_LEVEL = 0.8

#: Quiet cells must decode essentially perfectly.
QUIET_BER_CEILING = 0.01

#: A cell's committed capacity floor is this fraction of its measured
#: bandwidth — headroom for deliberate config evolution, not for drift
#: (the digest check catches any change at all; the floor states how
#: much slowdown a *intentional* change may cost before it needs a
#: baseline regeneration and a written justification).
FLOOR_FRACTION = 0.8

#: Each cell runs this many times; the digests must agree.
REPS = 2


def _cell_key(channel: str, platform: str, noise: float) -> str:
    return f"{channel}/{platform}/noise{noise:g}"


def bench_cell(channel: str, platform: str, noise: float) -> Dict:
    digests = set()
    report = None
    for _ in range(REPS):
        report = run_channel(
            channel,
            platform=platform,
            noise=noise,
            seed=CHANNELS_SEED,
            n_bits=N_BITS,
        )
        digests.add(report.digest)
    assert report is not None
    return {
        "channel": channel,
        "platform": platform,
        "noise": noise,
        "n_bits": report.n_bits,
        "cells": report.cells,
        "ber": round(report.ber, 6),
        "parity_errors": report.parity_errors,
        "bandwidth_bits_per_s": round(report.bandwidth_bits_per_s, 3),
        "floor_bits_per_s": round(
            FLOOR_FRACTION * report.bandwidth_bits_per_s, 3
        ),
        "frame_span_ns": report.frame_span_ns,
        "digest": report.digest,
        "deterministic": len(digests) == 1,
    }


def run_suite(smoke: bool = False) -> Dict:
    platforms = SMOKE_PLATFORMS if smoke else PLATFORM_NAMES
    cells: Dict[str, Dict] = {}
    for platform in platforms:
        for channel in ("residency", "writeback"):
            entry = bench_cell(channel, platform, 0.0)
            cells[_cell_key(channel, platform, 0.0)] = entry
        # The noise gate: the residency channel under the full ladder
        # must be at least as lossy as the quiet channel.
        cells[_cell_key("residency", platform, NOISY_LEVEL)] = bench_cell(
            "residency", platform, NOISY_LEVEL
        )
    return {
        "schema": 1,
        "smoke": smoke,
        "python": host_platform.python_version(),
        "seed": CHANNELS_SEED,
        "n_bits": N_BITS,
        "results": {"cells": cells},
    }


def check_regression(current: Dict, baseline: Dict) -> List[str]:
    failures: List[str] = []
    cells = current["results"]["cells"]
    for key, entry in cells.items():
        if not entry["deterministic"]:
            failures.append(f"{key}: digest varied across repetitions")
        if entry["noise"] == 0.0 and entry["ber"] > QUIET_BER_CEILING:
            failures.append(
                f"{key}: quiet BER {entry['ber']:.4f} exceeds "
                f"ceiling {QUIET_BER_CEILING}"
            )
    # Ladder sanity: noisy residency at least as lossy as quiet.
    for platform in PLATFORM_NAMES:
        quiet = cells.get(_cell_key("residency", platform, 0.0))
        noisy = cells.get(_cell_key("residency", platform, NOISY_LEVEL))
        if quiet and noisy and noisy["ber"] < quiet["ber"]:
            failures.append(
                f"residency/{platform}: noise {NOISY_LEVEL} BER "
                f"{noisy['ber']:.4f} below quiet BER {quiet['ber']:.4f} "
                "(injector ladder stopped degrading the channel)"
            )
    base_cells = baseline.get("results", {}).get("cells", {})
    if current.get("seed") == baseline.get("seed") and \
            current.get("n_bits") == baseline.get("n_bits"):
        for key, entry in cells.items():
            base = base_cells.get(key)
            if base is None:
                continue
            if entry["digest"] != base["digest"]:
                failures.append(
                    f"{key}: obs digest {entry['digest'][:16]}... "
                    f"!= baseline {base['digest'][:16]}... "
                    "(fixed-seed stream changed)"
                )
            floor = base.get("floor_bits_per_s", 0.0)
            if entry["bandwidth_bits_per_s"] < floor:
                failures.append(
                    f"{key}: bandwidth {entry['bandwidth_bits_per_s']:.1f} "
                    f"bits/s below committed floor {floor:.1f}"
                )
    return failures


def delta_table(current: Dict, baseline: Dict) -> str:
    rows = []
    base_cells = baseline.get("results", {}).get("cells", {})
    for key, entry in sorted(current["results"]["cells"].items()):
        base = base_cells.get(key, {})
        rows.append(
            f"  {key:>30}: "
            f"{base.get('bandwidth_bits_per_s', '-'):>9} -> "
            f"{entry['bandwidth_bits_per_s']:>9} bits/s  "
            f"BER {entry['ber']:.4f}  "
            f"digest {'==' if entry['digest'] == base.get('digest') else '!='}"
            " baseline"
        )
    return "\n".join(rows)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="linux22 column only"
    )
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"result file (default {DEFAULT_OUTPUT})",
    )
    parser.add_argument(
        "--check", type=Path, default=None, metavar="BASELINE",
        help="gate BER ceilings, capacity floors, and digests against a baseline",
    )
    args = parser.parse_args(argv)

    current = run_suite(smoke=args.smoke)
    for key, entry in sorted(current["results"]["cells"].items()):
        print(f"{key}: {json.dumps(entry)}")

    if args.check is not None:
        baseline = json.loads(args.check.read_text())
        failures = check_regression(current, baseline)
        print("\nbaseline -> current:")
        print(delta_table(current, baseline))
        if args.output.resolve() != args.check.resolve():
            args.output.write_text(json.dumps(current, indent=2) + "\n")
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed")
        return 0

    args.output.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


# ----------------------------------------------------------------------
# pytest smoke tests: the acceptance targets
# ----------------------------------------------------------------------
def test_quiet_residency_cell_is_clean_and_deterministic():
    entry = bench_cell("residency", "linux22", 0.0)
    assert entry["deterministic"]
    assert entry["ber"] <= QUIET_BER_CEILING
    assert entry["bandwidth_bits_per_s"] > 0


def test_channel_digests_match_committed_baseline():
    if not DEFAULT_OUTPUT.exists():
        import pytest

        pytest.skip("no committed BENCH_channels.json")
    baseline = json.loads(DEFAULT_OUTPUT.read_text())
    key = _cell_key("residency", "linux22", 0.0)
    base = baseline["results"]["cells"].get(key)
    if base is None:
        import pytest

        pytest.skip(f"baseline has no {key} cell")
    entry = bench_cell("residency", "linux22", 0.0)
    assert entry["digest"] == base["digest"], (
        "fixed-seed covert-channel obs stream changed"
    )
    assert entry["bandwidth_bits_per_s"] >= base["floor_bits_per_s"]


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
