"""Figure 5: small-file access order (random / by-directory / by-i-number)."""

from repro.experiments.figures import fig5_file_ordering


def test_fig5_file_ordering(reproduce):
    result = reproduce(fig5_file_ordering)

    def times(platform):
        return {
            r["order"]: r["time_s_mean"]
            for r in result.rows
            if r["platform"] == platform
        }

    for platform in ("linux22", "netbsd15"):
        t = times(platform)
        # Directory sort helps modestly (paper: 10-25%); i-number sort
        # wins by a large factor (paper: ~6x).
        assert 0.70 * t["random"] < t["directory"] < 0.95 * t["random"]
        assert t["random"] / t["inumber"] > 4

    solaris = times("solaris7")
    linux = times("linux22")
    # Solaris packs small files less tightly, so its i-number ordering
    # wins by a clearly smaller factor than Linux's (paper: >2x vs ~6x).
    solaris_factor = solaris["random"] / solaris["inumber"]
    linux_factor = linux["random"] / linux["inumber"]
    assert solaris_factor > 2
    assert solaris_factor < 0.7 * linux_factor
