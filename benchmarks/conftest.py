"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures by
running the corresponding driver in :mod:`repro.experiments` once
(``rounds=1`` — these are reproductions, not micro-timings), prints the
resulting rows, and asserts the paper's *shape* claims so a regression
in the simulator or the ICLs fails loudly.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def reproduce(benchmark):
    def _reproduce(fn, *args, **kwargs):
        result = run_once(benchmark, fn, *args, **kwargs)
        print()
        print(result.render())
        return result
    return _reproduce
