"""Benchmark-suite configuration.

Every benchmark regenerates one of the paper's tables or figures by
running the corresponding driver in :mod:`repro.experiments` once
(``rounds=1`` — these are reproductions, not micro-timings), prints the
resulting rows, and asserts the paper's *shape* claims so a regression
in the simulator or the ICLs fails loudly.

Run with::

    pytest benchmarks/ --benchmark-only

Drivers execute through the parallel trial runner
(:mod:`repro.experiments.runner`).  Options:

``--repro-jobs N``
    fan independent trials out over N worker processes (default 1;
    results are bit-identical regardless of N).
``--repro-cache-dir DIR``
    where completed trials are persisted (default ``.repro-cache/``, or
    ``$REPRO_CACHE_DIR``).  A repeated benchmark run re-simulates
    nothing — the trial telemetry printed after each table shows
    cached vs simulated counts.
``--repro-no-cache``
    always re-simulate.
"""

import pytest

from repro.experiments import runner


def pytest_addoption(parser):
    group = parser.getgroup("repro", "reproduction trial runner")
    group.addoption(
        "--repro-jobs",
        type=int,
        default=1,
        help="worker processes for independent simulation trials",
    )
    group.addoption(
        "--repro-cache-dir",
        default=None,
        help="trial result cache directory (default .repro-cache/)",
    )
    group.addoption(
        "--repro-no-cache",
        action="store_true",
        default=False,
        help="disable the trial result cache (always re-simulate)",
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run a figure driver exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def reproduce(benchmark, pytestconfig):
    jobs = pytestconfig.getoption("--repro-jobs")
    use_cache = not pytestconfig.getoption("--repro-no-cache")
    cache_dir = pytestconfig.getoption("--repro-cache-dir")

    def _reproduce(fn, *args, **kwargs):
        with runner.configuration(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir):
            runner.drain_stats()
            result = run_once(benchmark, fn, *args, **kwargs)
            stats = runner.drain_stats()
        print()
        print(result.render())
        for entry in stats:
            print(f"[runner] {entry.summary()}")
        return result

    return _reproduce
