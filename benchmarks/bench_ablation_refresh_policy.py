"""Ablation (§4.2.5): how often to refresh an aging directory."""

from repro.experiments.ablations import ablation_refresh_policy


def test_ablation_refresh_policy(reproduce):
    result = reproduce(ablation_refresh_policy)
    never = result.row_where("policy", "never")
    periodic = result.row_where("policy", "periodic")
    degradation = result.row_where("policy", "on-degradation")
    # Refreshing (either way) beats never refreshing by a wide margin,
    # even counting the refresh copies themselves.
    for policy in (periodic, degradation):
        total = policy["read_s_total"] + policy["refresh_s_total"]
        assert total < 0.85 * never["read_s_total"]
        assert policy["refreshes"] > 0
    # The refresh copies are cheap relative to what they save.
    assert periodic["refresh_s_total"] < 0.1 * never["read_s_total"]
