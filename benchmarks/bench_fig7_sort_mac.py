"""Figure 7: four competing fastsorts, static pass sizes vs gb-fastsort."""

from repro.experiments.figures import fig7_sort_mac


def test_fig7_sort_mac(reproduce):
    result = reproduce(fig7_sort_mac)
    static = [r for r in result.rows if r["variant"] == "static"]
    mac = result.row_where("variant", "gb-fastsort")
    best_static = min(static, key=lambda r: r["time_s"])
    worst_static = max(static, key=lambda r: r["time_s"])

    # The cliff: over-committed pass sizes blow up by a large factor and
    # page heavily; good static sizes do not page at all.
    assert worst_static["time_s"] > 3 * best_static["time_s"]
    assert worst_static["swapped_mb"] > 500
    assert best_static["swapped_mb"] < 50

    # gb-fastsort adapts: it never lands in the catastrophic region, its
    # mean pass size sits near the workable range, and its cost over the
    # best static choice is the probe/wait overhead the paper reports
    # (54% there; a modest constant factor here).
    assert mac["time_s"] < 2 * best_static["time_s"]
    assert mac["time_s"] < 0.5 * worst_static["time_s"]
    assert mac["overhead_s"] > 0
    assert mac["swapped_mb"] < 0.2 * worst_static["swapped_mb"]
