"""Figure 6: aging epochs degrade i-number ordering; refresh restores it."""

from repro.experiments.figures import fig6_aging_refresh


def test_fig6_aging_refresh(reproduce):
    result = reproduce(fig6_aging_refresh)
    fresh = result.rows[0]
    last_aged = [r for r in result.rows if not r["refreshed"]][-1]
    refreshed = [r for r in result.rows if r["refreshed"]][-1]

    # Fresh directory: i-number order is excellent, random is poor.
    assert fresh["random_s"] > 3 * fresh["inumber_s"]
    # Aging degrades the ordering substantially (paper: >3x over 30
    # epochs) while it stays at or better than random.
    assert last_aged["inumber_s"] > 2 * fresh["inumber_s"]
    assert last_aged["inumber_s"] <= last_aged["random_s"] * 1.05
    # The refresh restores fresh performance.
    assert refreshed["inumber_s"] < 1.25 * fresh["inumber_s"]
    # Degradation is roughly monotone in epochs.
    inumber_series = [r["inumber_s"] for r in result.rows if not r["refreshed"]]
    assert inumber_series[-1] > inumber_series[0]
