"""Ablation (§4.1.1): model/simulate-the-inputs vs probe-the-outputs.

The paper's two extremes for cache-content detection, head to head: a
full-knowledge input simulator (ModelFCCD) and the probe-based FCCD.
With exclusive use of the machine both are accurate; add one unobserved
process and the model silently diverges while probes stay honest.
"""

import random

from repro.experiments.figures import scaled_config
from repro.experiments.harness import FigureResult
from repro.icl.fccd import FCCD
from repro.icl.model_fccd import ModelFCCD
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024


def _jaccard(predicted, truth):
    union = predicted | truth
    if not union:
        return 1.0
    return len(predicted & truth) / len(union)


def model_vs_probe_experiment(seed: int = 113) -> FigureResult:
    config = scaled_config()
    result = FigureResult(
        figure_id="ablation-model-vs-probe",
        title="Cache-content detection accuracy (Jaccard vs ground truth)",
        columns=["phase", "model_accuracy", "probe_accuracy"],
        scale_note="80 MB client file; 95 MB unobserved interferer",
    )
    kernel = Kernel(config)
    page = config.page_size
    kernel.run_process(make_file("/mnt0/mine", 80 * MIB), "setup")
    kernel.run_process(make_file("/mnt0/theirs", 95 * MIB), "setup")
    kernel.oracle.flush_file_cache()
    model = ModelFCCD(config.available_bytes, page)

    def client():
        fd = (yield sc.open("/mnt0/mine")).value
        rng = random.Random(seed)
        for _ in range(40):
            # 1 MiB-aligned random reads: the client's access unit, which
            # the prober's prediction unit is sized to match (Figure 1).
            offset = rng.randrange(0, 79) * MIB
            yield from model.read(fd, "/mnt0/mine", offset, 1 * MIB)
        yield sc.close(fd)
    kernel.run_process(client(), "client")

    pages_per_window = MIB // page
    nwindows = 80

    def truth_windows() -> set:
        """Windows at least half cached — snapshotted *before* probing,
        because probing itself drags pages in (the Heisenberg effect)."""
        cached = kernel.oracle.cached_file_pages("/mnt0/mine")
        return {
            w
            for w in range(nwindows)
            if sum(
                1
                for p in range(w * pages_per_window, (w + 1) * pages_per_window)
                if p in cached
            )
            >= pages_per_window // 2
        }

    probe_pass = [0]

    def probe_accuracy() -> float:
        truth = truth_windows()
        # Fresh randomness per pass: re-probing with the same offsets
        # would hit this prober's own earlier probe pages — the stale-
        # probe trap of §4.1.2, here avoided the way the paper says to.
        probe_pass[0] += 1
        fccd = FCCD(rng=random.Random(seed + 1000 * probe_pass[0]),
                    access_unit_bytes=1 * MIB, prediction_unit_bytes=1 * MIB)

        def probe():
            plan = yield from fccd.plan_file("/mnt0/mine")
            return {
                s.offset // MIB
                for s in plan.segments
                if s.mean_probe_ns < 1_000_000
            }
        predicted = kernel.run_process(probe(), "probe")
        return _jaccard(predicted, truth)

    def model_accuracy() -> float:
        truth = truth_windows()
        pages = model.report("/mnt0/mine", 80 * MIB).predicted_cached_pages
        predicted = {
            w
            for w in range(nwindows)
            if sum(
                1
                for p in range(w * pages_per_window, (w + 1) * pages_per_window)
                if p in pages
            )
            >= pages_per_window // 2
        }
        return _jaccard(predicted, truth)

    result.add(
        phase="exclusive machine",
        model_accuracy=model_accuracy(),
        probe_accuracy=probe_accuracy(),
    )

    def stranger():
        fd = (yield sc.open("/mnt0/theirs")).value
        while not (yield sc.read(fd, MIB)).value.eof:
            pass
        yield sc.close(fd)
    kernel.run_process(stranger(), "stranger")

    result.add(
        phase="after unobserved process",
        model_accuracy=model_accuracy(),
        probe_accuracy=probe_accuracy(),
    )
    result.notes.append(
        "the input-simulation approach needs every process to obey the "
        "rules (§4.1.1); probes measure reality and keep working"
    )
    return result


def test_ablation_model_vs_probe(reproduce):
    result = reproduce(model_vs_probe_experiment)
    alone = result.row_where("phase", "exclusive machine")
    shared = result.row_where("phase", "after unobserved process")
    # Both approaches are accurate with exclusive use of the machine.
    assert alone["model_accuracy"] > 0.9
    assert alone["probe_accuracy"] > 0.9
    # Once an unobserved process evicts part of the client's data, the
    # model keeps claiming the evicted windows are cached while probes
    # track reality much more closely.
    assert shared["model_accuracy"] < 0.6
    assert shared["probe_accuracy"] > 1.3 * shared["model_accuracy"]
    assert shared["probe_accuracy"] > 0.6
