"""Table 1: techniques in prior gray-box systems, with live demos."""

from repro.experiments.tables import table1_prior_systems


def test_table1_prior_systems(reproduce):
    result = reproduce(table1_prior_systems)
    assert [r["technique"] for r in result.rows] == [
        "Knowledge",
        "Outputs",
        "Statistics",
        "Benchmarks",
        "Probes",
        "Known state",
        "Feedback",
    ]
    # The paper's table: none of the three prior systems insert probes.
    probes = result.row_where("technique", "Probes")
    assert all(probes[c] == "None" for c in ("TCP", "Implicit Coscheduling", "MS Manners"))
    # Live evidence attached for each system.
    assert len(result.notes) == 3
