"""§4.3.3 text claim: MAC reliably returns (830 - x) MB."""

from repro.experiments.figures import mac_available_memory


def test_mac_available_memory(reproduce):
    result = reproduce(mac_available_memory)
    for row in result.rows:
        expected = row["expected_mb"]
        granted = row["granted_mb"]
        # Tracks (available - x) from below with a small safety margin.
        assert granted <= expected
        assert granted >= 0.85 * expected
    # Strictly decreasing in competitor footprint.
    grants = [r["granted_mb"] for r in result.rows]
    assert grants == sorted(grants, reverse=True)
