"""Robustness sweep: hardened ICLs keep answering under injected noise.

Asserts the PR's acceptance claims: on a quiet machine everything is
perfect; at the documented noise budget the hardened configurations
stay at >= 0.9 answer accuracy while the unhardened baselines
demonstrably degrade; and the twin-kernel differential harness finds
the hardened answers identical with and without injection up to the
budget.
"""

from repro.experiments.robustness import (
    NOISE_BUDGET,
    differential_answers,
    robustness_noise_sweep,
)


def _cell(result, icl, level):
    for row in result.rows:
        if row["icl"] == icl and row["noise_level"] == level:
            return row
    raise AssertionError(f"missing row ({icl}, {level})")


def test_robustness_noise_sweep(reproduce):
    result = reproduce(robustness_noise_sweep)
    icls = ("fccd", "fldc", "mac")

    # Quiet machine: both variants answer perfectly.
    for icl in icls:
        row = _cell(result, icl, 0.0)
        assert row["hardened_acc"] == 1.0
        assert row["baseline_acc"] == 1.0

    # At (and below) the documented budget the hardened ICLs hold the
    # accuracy floor.
    for icl in icls:
        for level in (0.25, NOISE_BUDGET):
            assert _cell(result, icl, level)["hardened_acc"] >= 0.9

    # ... while the unhardened baselines demonstrably degrade: every
    # ICL loses answers at the budget, and the aggregate collapses.
    budget_rows = [_cell(result, icl, NOISE_BUDGET) for icl in icls]
    for row in budget_rows:
        assert row["baseline_acc"] <= row["hardened_acc"] - 0.25
    aggregate = sum(r["baseline_acc"] for r in budget_rows) / len(budget_rows)
    assert aggregate < 0.6

    # Beyond the budget the hardened layers still hold most of their
    # accuracy (graceful degradation, not a cliff).
    for icl in icls:
        assert _cell(result, icl, 1.0)["hardened_acc"] >= 0.75


def test_differential_twin_kernels(benchmark):
    verdict = benchmark.pedantic(differential_answers, rounds=1, iterations=1)
    # Same seeds, one quiet kernel, one injected at the noise budget:
    # the hardened answers (cache partition, layout order, admission
    # decisions) must be identical.
    assert verdict == {"fccd": True, "fldc": True, "mac": True}
