"""Ablation (§4.1.2): random vs fixed probe placement under stale probes."""

from repro.experiments.ablations import ablation_probe_placement


def test_ablation_probe_placement(reproduce):
    result = reproduce(ablation_probe_placement)
    fixed = result.row_where("placement", "fixed")
    rand = result.row_where("placement", "random")
    # The file is essentially cold for both (only probe pages resident)...
    assert fixed["truly_cached_fraction"] < 0.15
    assert rand["truly_cached_fraction"] < 0.15
    # ...yet fixed placement believes everything is cached, while random
    # placement mispredicts nothing.
    assert fixed["predicted_cached"] == fixed["segments"]
    assert rand["predicted_cached"] == 0
