"""Figure 3: grep and fastsort in unmodified / gb- / gbp- flavours."""

from repro.experiments.figures import fig3_applications


def test_fig3_applications(reproduce):
    result = reproduce(fig3_applications)
    by = {(r["app"], r["variant"]): r["normalized"] for r in result.rows}
    # grep: the gray-box version is a large win (paper: ~3x; the shape
    # claim is a substantial constant factor), and gbp recovers most of it.
    assert by[("grep", "gb-grep")] < 0.65
    assert by[("grep", "gbp-grep")] < 0.70
    # fastsort: smaller but still substantial win; the pipe-fed variant
    # pays the extra in-kernel copy, so it sits at or above gb-fastsort.
    assert by[("fastsort", "gb-fastsort")] < 0.75
    assert by[("fastsort", "gbp-fastsort")] < 0.85
    assert by[("fastsort", "gbp-fastsort")] >= by[("fastsort", "gb-fastsort")] - 0.02
