"""Figure 1: probe correlation vs prediction-unit size."""

from repro.experiments.figures import fig1_probe_correlation


FILE_MB = 224  # driver default; bounds which prediction units have
               # enough sample units for a meaningful correlation


def test_fig1_probe_correlation(reproduce):
    result = reproduce(fig1_probe_correlation, trials=3)
    for au in (2, 16, 64):
        rows = [r for r in result.rows if r["access_unit_mb"] == au]
        at_or_below = [r["corr_mean"] for r in rows if r["prediction_unit_mb"] <= au]
        # Paper: correlation is high while the prediction unit is at most
        # the access unit...
        assert min(at_or_below) > 0.5
        # ...and falls off noticeably beyond it.  Only prediction units
        # with >= 14 sample units are statistically meaningful; the
        # paper's huge error bars at the right edge show the same issue.
        beyond = [
            r["corr_mean"]
            for r in rows
            if 2 * au < r["prediction_unit_mb"] <= FILE_MB // 14
        ]
        if beyond:
            assert min(beyond) < min(at_or_below)
