"""Ablation (§4.3.2): MAC's increment schedule vs fixed and aggressive."""

from repro.experiments.ablations import ablation_mac_increment


def test_ablation_mac_increment(reproduce):
    result = reproduce(ablation_mac_increment)
    paper = result.row_where("policy", "paper")
    fixed = result.row_where("policy", "fixed")
    aggressive = result.row_where("policy", "aggressive")
    # Every policy discovers roughly the same available memory.
    grants = [r["granted_mb"] for r in result.rows]
    assert max(grants) - min(grants) < 0.25 * max(grants)
    # The fixed increment pays for it with far more probe work (the
    # O(n^2) re-verification runs over many more iterations).
    assert fixed["probe_touches"] > 3 * paper["probe_touches"]
    # The paper's schedule is no more disruptive than the aggressive one.
    assert paper["swapped_mb"] <= aggressive["swapped_mb"] * 1.2
