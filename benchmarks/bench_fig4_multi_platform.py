"""Figure 4: scans and searches across the three OS personalities."""

from repro.experiments.figures import fig4_multi_platform


def test_fig4_multi_platform(reproduce):
    result = reproduce(fig4_multi_platform)

    def row(platform, benchmark):
        return next(
            r
            for r in result.rows
            if r["platform"] == platform and r["benchmark"] == benchmark
        )

    # Linux: repeated scans of a >cache file gain nothing without the ICL
    # (LRU worst case) and a lot with it.
    linux = row("linux22", "scan")
    assert linux["warm"] > 0.9
    assert linux["gray"] < 0.75 * linux["warm"]

    # NetBSD: the best-case file fits its fixed 64 MB buffer cache, so a
    # warm scan is fast with or without gray-box help.
    netbsd = row("netbsd15", "scan")
    assert netbsd["warm"] < 0.2
    assert abs(netbsd["gray"] - netbsd["warm"]) < 0.1

    # Solaris: the page-holding cache makes even unmodified warm scans
    # fast — the surprising behaviour §4.1.3 reports.
    solaris = row("solaris7", "scan")
    assert solaris["warm"] < 0.7
    assert abs(solaris["gray"] - solaris["warm"]) < 0.15

    # Search: "even with non-LRU replacement policies, there can be a
    # benefit" — the gray search wins big on every platform.
    for platform in ("linux22", "netbsd15", "solaris7"):
        search = row(platform, "search")
        assert search["warm"] > 0.9
        assert search["gray"] < 0.1
