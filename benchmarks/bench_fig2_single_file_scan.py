"""Figure 2: single-file scan, linear vs gray-box vs analytic models."""

from repro.experiments.figures import fig2_single_file_scan


def test_fig2_single_file_scan(reproduce):
    result = reproduce(fig2_single_file_scan)
    cache_mb = 112
    for row in result.rows:
        if row["size_mb"] < cache_mb:
            # Below the cache size both scans run at memory speed.
            assert row["linear_s"] < 0.5
            assert abs(row["linear_s"] - row["gray_s"]) < 0.1
        else:
            # Past it, the linear scan degrades to the worst-case model...
            assert row["linear_s"] > 0.8 * row["model_worst_s"]
            # ...while the gray-box scan stays well below it, tracking
            # the ideal model within a modest margin (widest right at the
            # cache-size boundary, as in the paper's figure).
            assert row["gray_s"] < 0.65 * row["linear_s"]
            assert row["gray_s"] < row["model_ideal_s"] + 0.45 * row["model_worst_s"]
