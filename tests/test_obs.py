"""The observability layer: metrics, events/spans, exporters, and the
kernel/ICL integration the layer exists for (joining inference-phase
spans against kernel activity on one simulated timeline)."""

import pytest

from repro.experiments.observe import observe_config, observe_figure
from repro.experiments.runner import TrialSpec, configuration, drain_stats, run_trials
from repro.obs import DISABLED, Observability, capture_metrics, merge_samples
from repro.obs.events import EventStream
from repro.obs.export import (
    read_jsonl,
    run_stats_records,
    summarize_events,
    summarize_metrics,
    validate_jsonl,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry, SnapshotStats
from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.toolbox.timers import Stopwatch
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024


def sequential_read(path, chunk=64 * KIB):
    fd = (yield sc.open(path)).value
    size = (yield sc.fstat(fd)).value.size
    offset = 0
    while offset < size:
        got = (yield sc.pread(fd, offset, min(chunk, size - offset))).value
        offset += got.nbytes
    yield sc.close(fd)


# ======================================================================
# Histograms
# ======================================================================
class TestHistogram:
    def test_bucketing_inclusive_upper_edges(self):
        h = Histogram("h", bounds=(10, 100, 1000))
        for value in (5, 10, 11, 100, 999, 1000, 1001):
            h.observe(value)
        # <=10 | <=100 | <=1000 | overflow
        assert h.bucket_counts == [2, 2, 2, 1]
        assert h.count == 7
        assert h.sum == 5 + 10 + 11 + 100 + 999 + 1000 + 1001
        assert h.min == 5 and h.max == 1001

    def test_overflow_bucket_catches_everything(self):
        h = Histogram("h", bounds=(1,))
        h.observe(10**18)
        assert h.bucket_counts == [0, 1]

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1, 1, 2))
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2, 1))

    def test_quantiles_approximate_from_buckets(self):
        h = Histogram("h", bounds=(10, 100, 1000))
        for _ in range(90):
            h.observe(7)
        for _ in range(10):
            h.observe(500)
        assert h.quantile(0.5) == 10.0  # covering bucket's upper bound
        assert h.quantile(0.95) == 1000.0
        assert h.mean == pytest.approx((90 * 7 + 10 * 500) / 100)

    def test_default_bounds_span_cache_hit_to_seconds(self):
        h = Histogram("h")
        assert h.bounds[0] <= 1_000  # sub-microsecond hits distinguishable
        assert h.bounds[-1] >= 10**9  # seconds-long stalls not all overflow


# ======================================================================
# Registry and merging
# ======================================================================
class TestRegistryAndMerge:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_merge_counters_add_gauges_last_wins(self):
        a = [{"type": "metric", "kind": "counter", "name": "c", "value": 2},
             {"type": "metric", "kind": "gauge", "name": "g", "value": 5}]
        b = [{"type": "metric", "kind": "counter", "name": "c", "value": 3},
             {"type": "metric", "kind": "gauge", "name": "g", "value": 7}]
        merged = {(s["kind"], s["name"]): s for s in merge_samples(a, b)}
        assert merged[("counter", "c")]["value"] == 5
        assert merged[("gauge", "g")]["value"] == 7

    def test_merge_histograms_bucketwise(self):
        h1, h2 = Histogram("h", bounds=(10, 100)), Histogram("h", bounds=(10, 100))
        h1.observe(5)
        h2.observe(50)
        h2.observe(5000)
        (merged,) = merge_samples([h1.sample()], [h2.sample()])
        assert merged["count"] == 3
        assert merged["bucket_counts"] == [1, 1, 1]
        assert merged["min"] == 5 and merged["max"] == 5000

    def test_merge_histograms_bounds_mismatch_degrades(self):
        h1, h2 = Histogram("h", bounds=(10,)), Histogram("h", bounds=(99,))
        h1.observe(1)
        h2.observe(2)
        (merged,) = merge_samples([h1.sample()], [h2.sample()])
        assert merged["bounds"] is None and merged["bucket_counts"] is None
        assert merged["count"] == 2 and merged["sum"] == 3

    def test_register_stats_exports_fields_as_counters(self):
        import dataclasses

        @dataclasses.dataclass
        class S(SnapshotStats):
            foo: int = 0

        reg = MetricsRegistry()
        s = S()
        reg.register_stats("x", s)
        s.foo = 9
        assert {"type": "metric", "kind": "counter", "name": "x.foo",
                "value": 9} in reg.collect()

    def test_snapshot_stats_delta(self):
        import dataclasses

        @dataclasses.dataclass
        class S(SnapshotStats):
            a: int = 0
            b: int = 0

        s = S(a=3, b=5)
        before = s.snapshot()
        s.a += 4
        assert s.delta(before).as_dict() == {"a": 4, "b": 0}


# ======================================================================
# Spans and events
# ======================================================================
class FakeClock:
    def __init__(self):
        self.now = 0


class TestSpans:
    def test_nesting_assigns_parent(self):
        stream = EventStream(lambda: 0)
        with stream.span("outer") as outer:
            with stream.span("inner"):
                pass
        records = {r["name"]: r for r in stream.spans()}
        assert records["inner"]["parent_id"] == outer.span_id
        assert records["outer"]["parent_id"] is None

    def test_span_times_come_from_the_stream_clock(self):
        clock = FakeClock()
        stream = EventStream(lambda: clock.now)
        span = stream.span("s").start()
        clock.now = 500
        assert span.end() == 500
        (record,) = stream.spans()
        assert record["start_ns"] == 0 and record["end_ns"] == 500

    def test_end_before_start_matches_stopwatch_misuse(self):
        # The span API mirrors Stopwatch: stopping before starting is a
        # RuntimeError in both, so misuse reads identically across the
        # timing layers.  (Stopwatch.stop is a generator; the check
        # fires on first advance.)
        with pytest.raises(RuntimeError):
            next(Stopwatch().stop())
        stream = EventStream(lambda: 0)
        with pytest.raises(RuntimeError):
            stream.span("s").end()

    def test_double_start_and_double_end_raise(self):
        stream = EventStream(lambda: 0)
        span = stream.span("s").start()
        with pytest.raises(RuntimeError):
            span.start()
        span.end()
        with pytest.raises(RuntimeError):
            span.end()

    def test_unclosed_span_detected(self):
        stream = EventStream(lambda: 0)
        stream.span("left-open").start()
        assert [s.name for s in stream.unclosed()] == ["left-open"]
        with pytest.raises(RuntimeError, match="left-open"):
            stream.check_closed()

    def test_out_of_order_close_is_allowed(self):
        # Interleaved simulated processes can close spans out of LIFO
        # order; both must still record.
        stream = EventStream(lambda: 0)
        a = stream.span("a").start()
        b = stream.span("b").start()
        a.end()
        b.end()
        assert sorted(r["name"] for r in stream.spans()) == ["a", "b"]
        stream.check_closed()

    def test_exception_inside_span_records_error_attr(self):
        stream = EventStream(lambda: 0)
        with pytest.raises(ValueError):
            with stream.span("risky"):
                raise ValueError("boom")
        (record,) = stream.spans()
        assert record["attrs"]["error"] == "ValueError"

    def test_disabled_observability_returns_noop_span(self):
        span = DISABLED.span("anything", a=1)
        with span:
            span.attrs["later"] = 2  # must not raise
        DISABLED.count("nope")
        DISABLED.event("nope")
        assert DISABLED.collect() == []
        # The shared instance must stay empty: nothing may register on it.
        assert DISABLED.metrics.collect() == []
        assert len(DISABLED.events) == 0


# ======================================================================
# Exporters
# ======================================================================
class TestExport:
    def test_jsonl_round_trip(self, tmp_path):
        obs = Observability(FakeClock())
        obs.count("c", 3)
        obs.observe("h", 42)
        obs.event("e", detail="x")
        with obs.span("s", tag=(1, 2)):  # tuple attr must not break JSON
            pass
        path = tmp_path / "dump.jsonl"
        count = write_jsonl(path, obs.dump_records())
        assert validate_jsonl(path) == count
        records = read_jsonl(path)
        by_type = {}
        for r in records:
            by_type.setdefault(r["type"], []).append(r)
        assert {r["name"]: r["value"] for r in by_type["metric"]
                if r["kind"] == "counter"}["c"] == 3
        assert by_type["event"][0]["attrs"] == {"detail": "x"}
        assert by_type["span"][0]["attrs"] == {"tag": [1, 2]}

    def test_unclosed_spans_exported_flagged(self, tmp_path):
        obs = Observability(FakeClock())
        obs.span("open").start()
        records = list(obs.dump_records())
        (span,) = [r for r in records if r["type"] == "span"]
        assert span["unclosed"] is True and span["end_ns"] is None

    def test_validate_rejects_bad_lines(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "metric"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            validate_jsonl(bad)
        no_type = tmp_path / "untyped.jsonl"
        no_type.write_text('{"name": "x"}\n')
        with pytest.raises(ValueError, match="'type' field"):
            validate_jsonl(no_type)

    def test_summaries_render_every_kind(self):
        obs = Observability(FakeClock())
        obs.count("requests", 2)
        obs.observe("latency", 1_500)
        obs.event("tick")
        with obs.span("phase"):
            pass
        metrics_text = summarize_metrics(obs.collect())
        assert "requests" in metrics_text and "latency" in metrics_text
        assert "1.5us" in metrics_text
        events_text = summarize_events(obs.events)
        assert "tick" in events_text and "phase" in events_text


# ======================================================================
# Kernel integration
# ======================================================================
def small_config():
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=48 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


class TestKernelIntegration:
    def test_cache_hit_miss_metrics_match_oracle_workload(self):
        # Oracle workload: write a small file (cache misses on insert),
        # then read it twice from cache (pure hits).  The policy-level
        # stats the registry exports must match those counts exactly.
        config = small_config()
        kernel = Kernel(config)
        nbytes = 8 * config.page_size
        kernel.run_process(make_file("/mnt0/f.dat", nbytes, sync=False), "w")
        stats = kernel.oracle.cache_stats()
        before = stats.snapshot()
        for i in range(2):
            kernel.run_process(sequential_read("/mnt0/f.dat"), f"r{i}")
        delta = stats.delta(before)
        assert delta.misses == 0
        # 8 data pages per pass; metadata touches may add more hits.
        assert delta.hits >= 16

        names = {s["name"]: s["value"]
                 for s in kernel.obs.collect() if s["kind"] == "counter"}
        assert names["cache.file.hits"] == stats.hits
        assert names["cache.file.misses"] == stats.misses
        assert names["cache.file.evictions"] == stats.evictions

    def test_syscall_metrics_count_every_call(self):
        kernel = Kernel(small_config())
        kernel.run_process(make_file("/mnt0/g.dat", 64 * KIB), "w")
        samples = {s["name"]: s for s in kernel.obs.collect()}
        assert samples["kernel.syscall.create.calls"]["value"] == 1
        lat = samples["kernel.syscall.write.latency_ns"]
        assert lat["kind"] == "histogram"
        assert lat["count"] == samples["kernel.syscall.write.calls"]["value"] > 0

    def test_probe_span_joins_reclaim_events(self, tmp_path):
        # The acceptance criterion: in an `observe scan` dump, at least
        # one fccd.probe_batch span must contain a kernel.reclaim event
        # within its simulated-time window.
        out = tmp_path / "observe-scan.jsonl"
        report = observe_figure("scan", out_path=str(out))
        spans = report.spans("fccd.probe_batch")
        assert spans, "scan scenario recorded no probe spans"
        joined = [s for s in spans if report.events_within(s, "kernel.reclaim")]
        assert joined, "no reclaim events landed inside any probe span"
        # And the same join must survive the JSONL round trip.
        records = read_jsonl(out)
        disk_spans = [r for r in records
                      if r["type"] == "span" and r["name"] == "fccd.probe_batch"]
        reclaims = [r for r in records
                    if r["type"] == "event" and r["name"] == "kernel.reclaim"]
        assert any(
            s["start_ns"] <= e["t_ns"] <= s["end_ns"]
            for s in disk_spans for e in reclaims
        )
        assert validate_jsonl(out) == len(records)

    def test_observe_scenarios_all_produce_icl_spans(self):
        for scenario, span_name in (
            ("fldc", "fldc.refresh"),
            ("mac", "mac.gb_alloc"),
        ):
            report = observe_figure(scenario)
            assert report.spans(span_name), scenario

    def test_fldc_probe_span_names_distinguish_batch_from_sweep(self):
        """The vectored probe records ``fldc.stat_batch``; the
        sequential fallback records ``fldc.stat_sweep`` — distinct
        names, so exported JSONL can tell the two probe shapes apart."""
        from repro.icl.fldc import FLDC

        paths = [f"/mnt0/d/f{i}" for i in range(6)]
        for batch, expected, absent in (
            (True, "fldc.stat_batch", "fldc.stat_sweep"),
            (False, "fldc.stat_sweep", "fldc.stat_batch"),
        ):
            kernel = Kernel(MachineConfig())

            def populate():
                yield sc.mkdir("/mnt0/d")
                for path in paths:
                    fd = (yield sc.create(path)).value
                    yield sc.close(fd)
            kernel.run_process(populate(), "setup")
            fldc = FLDC(obs=kernel.obs, batch_probes=batch)

            def app():
                return (yield from fldc.layout_order(paths))
            kernel.run_process(app(), "fldc")
            names = {r["name"] for r in kernel.obs.events.spans()}
            assert expected in names, (batch, names)
            assert absent not in names, (batch, names)


# ======================================================================
# Runner capture
# ======================================================================
def _metric_trial(seed, *, config, nbytes):
    kernel = Kernel(config)
    kernel.run_process(make_file("/mnt0/t.dat", nbytes, sync=False), "w")
    kernel.run_process(sequential_read("/mnt0/t.dat"), "r")
    return {"ok": True}


class TestRunnerCapture:
    def test_capture_metrics_attaches_enabled_instances_only(self):
        with capture_metrics() as capture:
            obs = Observability(FakeClock())
            obs.count("seen")
            Observability(enabled=False)  # must not attach
        names = [s["name"] for s in capture.samples()]
        assert "seen" in names

    def test_trial_metrics_flow_into_run_stats(self):
        specs = [
            TrialSpec("obs-test", i, _metric_trial,
                      params={"config": small_config(), "nbytes": 4 * 64 * KIB})
            for i in range(2)
        ]
        drain_stats()
        with configuration(jobs=1, use_cache=False):
            values = run_trials(specs)
        assert all(v == {"ok": True} for v in values)
        (stats,) = drain_stats()
        names = {s["name"]: s["value"] for s in stats.metric_samples
                 if s["kind"] == "counter"}
        # Counters merge across the two trials: 4 pages written each.
        assert names["cache.file.misses"] >= 8
        assert names["kernel.syscall.create.calls"] == 2

    def test_run_stats_records_jsonl(self, tmp_path):
        specs = [TrialSpec("obs-jsonl", 0, _metric_trial,
                           params={"config": small_config(),
                                   "nbytes": 2 * 64 * KIB})]
        drain_stats()
        with configuration(jobs=1, use_cache=False):
            run_trials(specs)
        stats = drain_stats()
        path = tmp_path / "metrics.jsonl"
        count = write_jsonl(path, run_stats_records(stats))
        assert validate_jsonl(path) == count
        records = read_jsonl(path)
        assert records[0]["type"] == "run_stats"
        assert records[0]["experiment"] == "obs-jsonl"
        assert any(r["type"] == "metric" and r["experiment"] == "obs-jsonl"
                   for r in records[1:])

    def test_cached_trials_still_contribute_metrics(self, tmp_path):
        spec = TrialSpec("obs-cache", 0, _metric_trial,
                         params={"config": small_config(),
                                 "nbytes": 2 * 64 * KIB})
        drain_stats()
        with configuration(jobs=1, use_cache=True, cache_dir=tmp_path):
            run_trials([spec])
            (fresh,) = drain_stats()
            run_trials([spec])
            (cached,) = drain_stats()
        assert cached.cached == 1
        fresh_names = {s["name"] for s in fresh.metric_samples}
        cached_names = {s["name"] for s in cached.metric_samples}
        assert "cache.file.misses" in fresh_names
        assert fresh_names == cached_names
