"""Processes, scheduling, pipes, and cross-process interference."""

import pytest

from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import BadFileDescriptor, InvalidArgument
from tests.conftest import MIB, small_config


def run(kernel, gen):
    return kernel.run_process(gen, "test")


class TestLifecycle:
    def test_run_process_returns_generator_result(self, kernel):
        def app():
            yield sc.sleep(10)
            return "done"
        assert run(kernel, app()) == "done"

    def test_spawn_and_waitpid(self, kernel):
        def child():
            yield sc.sleep(5_000)
            return 42

        def parent():
            pid = (yield sc.spawn(child(), "child")).value
            result = (yield sc.waitpid(pid)).value
            return result
        assert run(kernel, parent()) == 42

    def test_waitpid_on_finished_child(self, kernel):
        def child():
            yield sc.sleep(1)
            return "early"

        def parent():
            pid = (yield sc.spawn(child(), "child")).value
            yield sc.sleep(10_000_000)  # child certainly done
            return (yield sc.waitpid(pid)).value
        assert run(kernel, parent()) == "early"

    def test_waitpid_unknown_pid_rejected(self, kernel):
        def app():
            try:
                yield sc.waitpid(12345)
            except InvalidArgument:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_getpid_distinct_per_process(self, kernel):
        pids = []

        def app():
            pids.append((yield sc.getpid()).value)
        kernel.spawn(app(), "a")
        kernel.spawn(app(), "b")
        kernel.run()
        assert len(set(pids)) == 2

    def test_fds_closed_on_exit(self, kernel):
        def leaky():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 10)
            # exit without closing
        run(kernel, leaky())

        def unlinker():
            yield sc.unlink("/mnt0/f")
            return "ok"
        assert run(kernel, unlinker()) == "ok"

    def test_non_syscall_yield_rejected(self, kernel):
        def bad():
            yield "not a syscall"
        with pytest.raises(TypeError):
            run(kernel, bad())

    def test_max_steps_guard(self, kernel):
        def spinner():
            while True:
                yield sc.sleep(1)
        kernel.spawn(spinner(), "spin")
        with pytest.raises(RuntimeError):
            kernel.run(max_steps=100)


class TestScheduling:
    def test_sleepers_complete_in_deadline_order(self, kernel):
        order = []

        def sleeper(tag, ns):
            yield sc.sleep(ns)
            order.append(tag)
        kernel.spawn(sleeper("late", 3_000_000), "late")
        kernel.spawn(sleeper("early", 1_000_000), "early")
        kernel.spawn(sleeper("mid", 2_000_000), "mid")
        kernel.run()
        assert order == ["early", "mid", "late"]

    def test_compute_contends_for_cpus(self):
        kernel = Kernel(small_config(cpus=1))

        def worker():
            yield sc.compute(10_000_000)
        kernel.spawn(worker(), "a")
        kernel.spawn(worker(), "b")
        kernel.run()
        serial = kernel.clock.now

        kernel2 = Kernel(small_config(cpus=2))
        kernel2.spawn(worker(), "a")
        kernel2.spawn(worker(), "b")
        kernel2.run()
        parallel = kernel2.clock.now
        assert serial >= 2 * 10_000_000
        assert parallel < serial

    def test_disk_requests_queue_across_processes(self, kernel):
        def setup():
            for i in range(2):
                fd = (yield sc.create(f"/mnt0/f{i}")).value
                yield sc.write(fd, 2 * MIB)
                yield sc.fsync(fd)
                yield sc.close(fd)
        run(kernel, setup())
        kernel.oracle.flush_file_cache()
        elapsed = []

        def reader(i):
            fd = (yield sc.open(f"/mnt0/f{i}")).value
            result = yield sc.pread(fd, 0, 2 * MIB)
            elapsed.append(result.elapsed_ns)
            yield sc.close(fd)
        kernel.spawn(reader(0), "r0")
        kernel.spawn(reader(1), "r1")
        kernel.run()
        # One of the two waited behind the other at the shared disk.
        assert max(elapsed) > 1.5 * min(elapsed)

    def test_clock_monotonic_across_many_processes(self, kernel):
        stamps = []

        def app():
            for _ in range(10):
                stamps.append((yield sc.gettime()).value)
                yield sc.sleep(1000)
        for i in range(4):
            kernel.spawn(app(), f"p{i}")
        kernel.run()
        assert stamps == sorted(stamps)


class TestPipes:
    def test_pipe_transfers_lengths(self, kernel):
        def app():
            r, w = (yield sc.pipe()).value
            yield sc.write(w, 1000)
            result = (yield sc.read(r, 2000)).value
            return result.nbytes
        assert run(kernel, app()) == 1000

    def test_read_after_writer_close_returns_eof(self, kernel):
        def app():
            r, w = (yield sc.pipe()).value
            yield sc.write(w, 10)
            yield sc.close(w)
            first = (yield sc.read(r, 100)).value
            second = (yield sc.read(r, 100)).value
            return first.nbytes, second.eof
        nbytes, eof = run(kernel, app())
        assert (nbytes, eof) == (10, True)

    def test_write_to_closed_reader_raises_epipe(self, kernel):
        def app():
            r, w = (yield sc.pipe()).value
            yield sc.close(r)
            try:
                yield sc.write(w, 10)
            except BadFileDescriptor:
                return "epipe"
        assert run(kernel, app()) == "epipe"

    def test_producer_consumer_pipeline(self, kernel):
        total = 5 * MIB

        def producer(w_fd):
            remaining = total
            while remaining:
                written = (yield sc.write(w_fd, min(remaining, 256 * 1024))).value
                remaining -= written
            yield sc.close(w_fd)
            return "produced"

        def consumer(r_fd):
            got = 0
            while True:
                result = (yield sc.read(r_fd, 512 * 1024)).value
                if result.eof:
                    break
                got += result.nbytes
            yield sc.close(r_fd)
            return got

        pipe = kernel.make_pipe()
        kernel.spawn_with_pipe_ends(lambda w: producer(w), [(pipe, "pipe_w")], "prod")
        cons = kernel.spawn_with_pipe_ends(lambda r: consumer(r), [(pipe, "pipe_r")], "cons")
        kernel.run()
        assert cons.result == total

    def test_pipe_blocking_respects_capacity(self, kernel):
        """A writer stalls once the pipe fills until the reader drains."""
        from repro.sim.proc.process import PipeBuffer

        def producer(w_fd):
            sent = 0
            # Try to push 4x the pipe capacity before any read happens.
            target = PipeBuffer.CAPACITY * 4
            while sent < target:
                sent += (yield sc.write(w_fd, target - sent)).value
            yield sc.close(w_fd)
            return sent

        def consumer(r_fd):
            yield sc.sleep(50_000_000)  # let the writer hit the wall
            got = 0
            while True:
                result = (yield sc.read(r_fd, PipeBuffer.CAPACITY)).value
                if result.eof:
                    break
                got += result.nbytes
            yield sc.close(r_fd)
            return got

        pipe = kernel.make_pipe()
        prod = kernel.spawn_with_pipe_ends(lambda w: producer(w), [(pipe, "pipe_w")], "p")
        cons = kernel.spawn_with_pipe_ends(lambda r: consumer(r), [(pipe, "pipe_r")], "c")
        kernel.run()
        assert prod.result == cons.result == PipeBuffer.CAPACITY * 4

    def test_deadlock_is_detected(self, kernel):
        def reader_only(r_fd):
            yield sc.read(r_fd, 100)  # no writer will ever come

        pipe = kernel.make_pipe()
        kernel.share_pipe_end  # silence lint; real use below
        proc = kernel.spawn_with_pipe_ends(
            lambda r: reader_only(r), [(pipe, "pipe_r")], "stuck"
        )
        pipe.writers = 1  # pretend a writer exists but never writes
        with pytest.raises(RuntimeError, match="deadlock"):
            kernel.run()
