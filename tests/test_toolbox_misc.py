"""Outlier rejection, parameter repository, timers, microbenchmarks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Kernel, syscalls as sc
from repro.toolbox.microbench import run_all
from repro.toolbox.outliers import mad_clip, sigma_clip, split_by_threshold
from repro.toolbox.repository import ParameterRepository
from repro.toolbox.timers import Stopwatch, now, time_call
from tests.conftest import MIB, small_config

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestOutliers:
    def test_sigma_clip_removes_extreme_point(self):
        values = [10.0] * 20 + [10_000.0]
        assert 10_000.0 not in sigma_clip(values)

    def test_sigma_clip_keeps_clean_data(self):
        values = [9.0, 10.0, 11.0, 10.0]
        assert sigma_clip(values) == values

    def test_sigma_clip_small_samples_untouched(self):
        assert sigma_clip([1.0, 100.0]) == [1.0, 100.0]

    def test_mad_clip_robust_to_many_outliers(self):
        values = [9.0, 10.0, 11.0] * 4 + [10_000.0, 20_000.0, 30_000.0]
        cleaned = mad_clip(values)
        assert cleaned == [9.0, 10.0, 11.0] * 4

    def test_mad_clip_zero_mad_keeps_everything(self):
        values = [5.0] * 10 + [9.0]
        assert mad_clip(values) == values

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            sigma_clip([1.0, 2.0, 3.0], nsigma=0)
        with pytest.raises(ValueError):
            mad_clip([1.0, 2.0, 3.0], nmads=-1)

    def test_split_by_threshold(self):
        low, high = split_by_threshold([1.0, 5.0, 2.0, 9.0], threshold=3.0)
        assert low == [0, 2]
        assert high == [1, 3]

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(floats, min_size=3, max_size=50))
    def test_clips_never_grow_the_sample(self, values):
        assert len(sigma_clip(values)) <= len(values)
        assert len(mad_clip(values)) <= len(values)
        assert set(mad_clip(values)) <= set(values)


class TestRepository:
    def test_set_get(self):
        repo = ParameterRepository("linux22")
        repo.set("disk.random_access_ns", 8e6, units="ns")
        assert repo.get("disk.random_access_ns") == 8e6

    def test_missing_key_raises_with_hint(self):
        repo = ParameterRepository()
        with pytest.raises(KeyError, match="microbenchmark"):
            repo.get("mem.copy_bandwidth")

    def test_default_used_when_absent(self):
        repo = ParameterRepository()
        assert repo.get("x", default=5.0) == 5.0

    def test_falsy_defaults_are_honoured(self):
        repo = ParameterRepository()
        assert repo.get("x", default=0.0) == 0.0
        assert repo.get("x", default=None) is None

    def test_explicit_none_default_beats_keyerror(self):
        # Only the *absence* of a default raises; an explicit None is a
        # legitimate "not measured" answer.
        repo = ParameterRepository()
        assert repo.get("mem.copy_bandwidth", None) is None
        with pytest.raises(KeyError):
            repo.get("mem.copy_bandwidth")

    def test_default_ignored_when_key_present(self):
        repo = ParameterRepository()
        repo.set("k", 3.0)
        assert repo.get("k", default=99.0) == 3.0

    def test_ensure_measures_once(self):
        repo = ParameterRepository()
        calls = []
        def measure():
            calls.append(1)
            return 42.0
        assert repo.ensure("a.b", measure) == 42.0
        assert repo.ensure("a.b", measure) == 42.0
        assert len(calls) == 1

    def test_round_trip_through_file(self, tmp_path):
        repo = ParameterRepository("netbsd15")
        repo.set("k1", 1.5, units="ns", source="test", measured_at_ns=9)
        repo.set("k2", 2.5)
        path = tmp_path / "params.json"
        repo.save(path)
        loaded = ParameterRepository.load(path)
        assert loaded.platform == "netbsd15"
        assert loaded.get("k1") == 1.5
        assert loaded.entry("k1").units == "ns"
        assert loaded.entry("k1").measured_at_ns == 9
        assert len(loaded) == 2

    def test_items_sorted(self):
        repo = ParameterRepository()
        repo.set("z", 1)
        repo.set("a", 2)
        assert [k for k, _ in repo.items()] == ["a", "z"]


class TestTimers:
    def test_now_returns_sim_time(self, kernel):
        def app():
            t0 = yield from now()
            yield sc.sleep(5_000)
            t1 = yield from now()
            return t1 - t0
        delta = kernel.run_process(app(), "t")
        assert delta >= 5_000

    def test_time_call_returns_value_and_elapsed(self, kernel):
        def app():
            value, elapsed = yield from time_call(sc.sleep(7_000))
            return value, elapsed
        value, elapsed = kernel.run_process(app(), "t")
        assert value is None
        assert elapsed == 7_000

    def test_stopwatch_laps(self, kernel):
        def app():
            watch = Stopwatch()
            yield from watch.start()
            yield sc.sleep(1_000)
            yield from watch.stop()
            yield from watch.start()
            yield sc.sleep(2_000)
            yield from watch.stop()
            return watch.laps, watch.total_ns
        laps, total = kernel.run_process(app(), "t")
        assert len(laps) == 2
        assert laps[0] >= 1_000 and laps[1] >= 2_000
        assert total == sum(laps)

    def test_stopwatch_stop_without_start(self, kernel):
        def app():
            watch = Stopwatch()
            try:
                yield from watch.stop()
            except RuntimeError:
                return "caught"
        assert kernel.run_process(app(), "t") == "caught"


class TestMicrobench:
    def test_run_all_produces_ordered_parameters(self):
        kernel = Kernel(small_config())
        repo = run_all(kernel, file_bytes=8 * MIB, unit_candidates=(MIB, 2 * MIB))
        # Memory is much faster than disk, per byte and per access.
        assert repo.get("mem.copy_bandwidth") > 3 * repo.get(
            "disk.sequential_bandwidth"
        )
        assert repo.get("disk.random_access_ns") > 100 * repo.get("mem.page_zero_ns")
        assert repo.get("mem.page_zero_ns") > repo.get("mem.touch_resident_ns")
        assert repo.get("fccd.access_unit_bytes") in (MIB, 2 * MIB)
        assert repo.platform == "linux22"

    def test_results_match_machine_constants(self):
        kernel = Kernel(small_config())
        repo = run_all(kernel, file_bytes=8 * MIB, unit_candidates=(MIB,))
        assert repo.get("mem.touch_resident_ns") == kernel.config.mem_touch_ns
        assert repo.get("mem.page_zero_ns") >= kernel.config.page_zero_ns
