"""Harness utilities plus tiny-scale smoke runs of every figure driver."""

import pytest

from repro.experiments.figures import (
    MIB,
    fig1_probe_correlation,
    fig2_single_file_scan,
    fig3_applications,
    fig4_multi_platform,
    fig5_file_ordering,
    fig6_aging_refresh,
    fig7_sort_mac,
    mac_available_memory,
    scaled_config,
)
from repro.experiments.harness import FigureResult, format_table, mean_std
from repro.experiments.tables import table1_prior_systems, table2_case_studies


class TestHarness:
    def test_mean_std(self):
        mean, std = mean_std([2.0, 4.0, 6.0])
        assert mean == 4.0
        assert std == pytest.approx(2.0)

    def test_mean_std_single_value(self):
        assert mean_std([7.0]) == (7.0, 0.0)

    def test_mean_std_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_format_table_aligns_columns(self):
        out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_figure_result_row_api(self):
        result = FigureResult("figX", "title", columns=["a", "b"])
        result.add(a=1, b=2)
        assert result.column("a") == [1]
        assert result.row_where("a", 1)["b"] == 2
        with pytest.raises(KeyError):
            result.add(a=1, c=3)
        with pytest.raises(KeyError):
            result.row_where("a", 99)

    def test_render_mentions_title_and_notes(self):
        result = FigureResult("figX", "My Title", columns=["a"], scale_note="tiny")
        result.add(a=1)
        result.notes.append("shape holds")
        text = result.render()
        assert "My Title" in text and "tiny" in text and "shape holds" in text


TINY = scaled_config(memory_mb=64, reserved_mb=8)


class TestFigureSmoke:
    """Each driver runs at miniature scale and keeps its headline shape."""

    def test_fig1_correlation_high_when_prediction_under_access(self):
        result = fig1_probe_correlation(
            trials=1,
            file_mb=96,
            access_units_mb=(16,),
            prediction_units_mb=(2, 32),
            config=TINY,
        )
        small = result.row_where("prediction_unit_mb", 2)["corr_mean"]
        large = result.row_where("prediction_unit_mb", 32)["corr_mean"]
        assert small > 0.8
        assert small > large

    def test_fig2_linear_degrades_gray_does_not(self):
        result = fig2_single_file_scan(sizes_mb=(32, 96), warm_runs=1, config=TINY)
        small = result.row_where("size_mb", 32)
        big = result.row_where("size_mb", 96)
        assert small["linear_s"] == pytest.approx(small["gray_s"], rel=0.2)
        assert big["linear_s"] > 1.5 * big["gray_s"]
        assert big["linear_s"] == pytest.approx(big["model_worst_s"], rel=0.25)

    def test_fig3_gray_variants_beat_unmodified(self):
        result = fig3_applications(
            grep_files=8, grep_file_mb=8, sort_input_mb=68, sort_pass_mb=16,
            warm_runs=1, config=TINY,
        )
        for app in ("grep", "fastsort"):
            rows = [r for r in result.rows if r["app"] == app]
            by = {r["variant"]: r["normalized"] for r in rows}
            unmod = [v for k, v in by.items() if k == "unmodified"][0]
            others = [v for k, v in by.items() if k != "unmodified"]
            assert unmod == 1.0
            assert all(v < 0.95 for v in others)

    def test_fig4_platform_signatures(self):
        # Memory must exceed NetBSD's fixed 64 MB buffer cache.
        result = fig4_multi_platform(
            scan_mb={"linux22": 112, "netbsd15": 56, "solaris7": 112},
            search_files=8,
            search_file_mb=4,
            warm_runs=1,
            config=scaled_config(memory_mb=96, reserved_mb=16),
        )
        linux_scan = result.row_where("platform", "linux22")
        assert linux_scan["warm"] > 0.9      # no benefit without gray-box
        assert linux_scan["gray"] < 0.8
        netbsd = [r for r in result.rows
                  if r["platform"] == "netbsd15" and r["benchmark"] == "scan"][0]
        assert netbsd["warm"] < 0.2          # fits the fixed cache
        solaris = [r for r in result.rows
                   if r["platform"] == "solaris7" and r["benchmark"] == "scan"][0]
        assert solaris["warm"] < 0.8         # fast even unmodified
        for row in result.rows:
            if row["benchmark"] == "search":
                assert row["gray"] < 0.2

    def test_fig5_inumber_wins_by_a_factor(self):
        result = fig5_file_ordering(files=60, directories=2, trials=1)
        for platform in ("linux22", "netbsd15", "solaris7"):
            rows = {r["order"]: r["time_s_mean"] for r in result.rows
                    if r["platform"] == platform}
            assert rows["inumber"] < rows["directory"] <= rows["random"] * 1.05
            assert rows["random"] / rows["inumber"] > 2

    def test_fig6_aging_degrades_and_refresh_restores(self):
        result = fig6_aging_refresh(files=40, epochs=12, refresh_at=12,
                                    measure_every=4)
        fresh = result.rows[0]["inumber_s"]
        aged = result.rows[-2]["inumber_s"]
        restored = result.rows[-1]
        assert restored["refreshed"]
        assert aged > 1.4 * fresh
        assert restored["inumber_s"] < 1.25 * fresh

    def test_fig7_static_cliff_and_mac_adaptation(self):
        result = fig7_sort_mac(
            nprocs=2,
            input_mb=60,
            static_pass_mb=(15, 50),
            min_pass_mb=10,
            memory_mb=96,
            reserved_mb=16,
            trials=1,
        )
        good = result.row_where("pass_mb", 15)
        bad = result.row_where("pass_mb", 50)
        mac = result.row_where("variant", "gb-fastsort")
        assert bad["time_s"] > 1.5 * good["time_s"]
        assert bad["swapped_mb"] > 10 * max(good["swapped_mb"], 0.1)
        assert mac["time_s"] < bad["time_s"]
        assert mac["overhead_s"] > 0

    def test_mac_available_memory_tracks_competitor(self):
        result = mac_available_memory(
            competitor_mb=(0, 32),
            memory_mb=96,
            reserved_mb=16,
        )
        idle = result.row_where("competitor_mb", 0)
        loaded = result.row_where("competitor_mb", 32)
        assert idle["granted_mb"] >= 0.85 * idle["expected_mb"]
        assert loaded["granted_mb"] <= idle["granted_mb"] - 24


class TestTables:
    def test_table1_has_three_systems_and_seven_rows(self):
        result = table1_prior_systems(run_demos=False)
        assert len(result.rows) == 7
        assert set(result.columns) == {
            "technique", "TCP", "Implicit Coscheduling", "MS Manners"
        }

    def test_table1_demos_attach_evidence(self):
        result = table1_prior_systems(run_demos=True)
        assert any("wireless" in note for note in result.notes)
        assert any("coscheduling" in note for note in result.notes)
        assert any("Manners" in note for note in result.notes)

    def test_table2_matches_case_studies(self):
        result = table2_case_studies()
        assert set(result.columns) == {"technique", "FCCD", "FLDC", "MAC"}
        probes_row = result.row_where("technique", "Probes")
        assert "Random byte" in probes_row["FCCD"]
        assert "stat()" in probes_row["FLDC"]
        knowledge = result.row_where("technique", "Knowledge")
        assert "LRU" in knowledge["FCCD"]
