"""SwapSpace slot accounting and AddressSpace region management."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache.base import AnonKey
from repro.sim.errors import InvalidArgument, OutOfMemory
from repro.sim.vm.address_space import AddressSpace
from repro.sim.vm.swap import SwapSpace


class TestSwapSpace:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SwapSpace(0)

    def test_slots_assigned_lowest_first(self):
        swap = SwapSpace(100)
        slots = [swap.swap_out(AnonKey(1, i)) for i in range(5)]
        assert slots == [0, 1, 2, 3, 4]

    def test_swap_out_is_idempotent(self):
        swap = SwapSpace(10)
        key = AnonKey(1, 0)
        assert swap.swap_out(key) == swap.swap_out(key)
        assert swap.used_slots == 1

    def test_swap_in_releases_and_reuses_slot(self):
        swap = SwapSpace(10)
        key = AnonKey(1, 0)
        slot = swap.swap_out(key)
        assert swap.swap_in(key) == slot
        assert swap.slot_of(key) is None
        assert swap.swap_out(AnonKey(2, 0)) == slot  # lowest free reused

    def test_swap_in_unknown_key_raises(self):
        swap = SwapSpace(10)
        with pytest.raises(KeyError):
            swap.swap_in(AnonKey(9, 9))

    def test_exhaustion_raises_oom(self):
        swap = SwapSpace(2)
        swap.swap_out(AnonKey(1, 0))
        swap.swap_out(AnonKey(1, 1))
        with pytest.raises(OutOfMemory):
            swap.swap_out(AnonKey(1, 2))

    def test_discard_process_frees_only_that_pid(self):
        swap = SwapSpace(10)
        swap.swap_out(AnonKey(1, 0))
        swap.swap_out(AnonKey(2, 0))
        assert swap.discard_process(1) == 1
        assert swap.slot_of(AnonKey(2, 0)) is not None
        assert swap.used_slots == 1

    def test_free_slots_accounting(self):
        swap = SwapSpace(10)
        assert swap.free_slots == 10
        swap.swap_out(AnonKey(1, 0))
        assert swap.free_slots == 9
        swap.swap_in(AnonKey(1, 0))
        assert swap.free_slots == 10

    @settings(max_examples=50, deadline=None)
    @given(ops=st.lists(st.integers(min_value=0, max_value=19), max_size=60))
    def test_slots_never_alias(self, ops):
        """No two swapped-out pages ever share a slot."""
        swap = SwapSpace(200)
        swapped = {}
        for i, page in enumerate(ops):
            key = AnonKey(1, page)
            if key in swapped:
                swap.swap_in(key)
                del swapped[key]
            else:
                swapped[key] = swap.swap_out(key)
            assert len(set(swapped.values())) == len(swapped)


class TestAddressSpace:
    def test_regions_do_not_overlap(self):
        space = AddressSpace(pid=1)
        a = space.allocate(10)
        b = space.allocate(5)
        pages_a = set(a.page_numbers())
        pages_b = set(b.page_numbers())
        assert not pages_a & pages_b

    def test_allocate_rejects_zero_pages(self):
        with pytest.raises(InvalidArgument):
            AddressSpace(1).allocate(0)

    def test_region_lookup(self):
        space = AddressSpace(1)
        region = space.allocate(4, label="heap")
        assert space.region(region.region_id) is region
        assert region.label == "heap"

    def test_unknown_region_raises(self):
        with pytest.raises(InvalidArgument):
            AddressSpace(1).region(99)

    def test_free_removes_region_and_touched_pages(self):
        space = AddressSpace(1)
        region = space.allocate(4)
        space.touched.add(region.base_page + 1)
        space.free(region.region_id)
        assert region.base_page + 1 not in space.touched
        with pytest.raises(InvalidArgument):
            space.region(region.region_id)

    def test_double_free_raises(self):
        space = AddressSpace(1)
        region = space.allocate(2)
        space.free(region.region_id)
        with pytest.raises(InvalidArgument):
            space.free(region.region_id)

    def test_allocated_pages_totals_live_regions(self):
        space = AddressSpace(1)
        space.allocate(3)
        keep = space.allocate(7)
        doomed = space.allocate(2)
        space.free(doomed.region_id)
        assert space.allocated_pages == 10
        assert keep.contains(keep.base_page + 6)
        assert not keep.contains(keep.base_page + 7)
