"""Multi-tenant arena: policies, the shell, determinism, attribution.

Four layers of coverage:

* **policy/shell units** — heap keys, weighted shares, quantum parking,
  STEP consumption, exception delivery through the shell, and the
  arena's guard rails (duplicate names, reuse, deadlock detection);
* **determinism** — same seed ⇒ byte-identical obs digest across runs
  *and* across ``add_client`` orderings, for every policy;
* **N=1 equivalence** — an arena of one produces results bit-identical
  to driving the same body with ``Kernel.run_process`` (fccd, fldc,
  mac), the refactor's no-regression pin;
* **partition properties** — at N=64 the per-pid ledger sums to the
  aggregate syscall counters, ``split_by_pid`` is a true partition, and
  the interference matrix's cell sum equals the stream's reclaim count
  (Hypothesis fuzzes the seed).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.arena import (
    ARENA_SEED,
    arena_config,
    assign_kinds,
    jain_index,
    parse_mix,
    run_arena,
    run_single_client,
)
from repro.obs.export import stream_digest
from repro.obs.views import interference_matrix, render_matrix, split_by_pid
from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.sim.arena import (
    STEP,
    Arena,
    RoundRobinPolicy,
    SeededRandomPolicy,
    WeightedPolicy,
    client_rng,
    make_policy,
)
from repro.sim.errors import SimOSError
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024


def small_config(memory_mb: int = 8) -> MachineConfig:
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=memory_mb * MIB,
        kernel_reserved_bytes=4 * MIB,
        data_disks=1,
    )


def drain(arena, max_turns=10_000):
    return arena.run(max_turns=max_turns)


# ======================================================================
# Policies
# ======================================================================
def test_round_robin_strict_rotation():
    policy = RoundRobinPolicy()
    policy.bind(["a", "b", "c"], [1.0] * 3, seed=0)
    # Every index's turn-t key sorts before any index's turn-t+1 key.
    assert policy.key(2, 0) < policy.key(0, 1)
    assert policy.key(0, 0) < policy.key(1, 0) < policy.key(2, 0)


def test_weighted_policy_share():
    policy = WeightedPolicy()
    policy.bind(["heavy", "light"], [3.0, 1.0], seed=0)
    # Simulate the heap: count grants in virtual-time order.
    events = sorted(
        [(policy.key(0, t), "heavy") for t in range(30)]
        + [(policy.key(1, t), "light") for t in range(30)]
    )
    first_40 = [name for _k, name in events[:40]]
    assert first_40.count("heavy") == 30  # 3:1 share → heavy exhausts first
    assert first_40.count("light") == 10


def test_weighted_policy_rejects_bad_weight():
    policy = WeightedPolicy()
    with pytest.raises(ValueError):
        policy.bind(["a"], [0.0], seed=0)


def test_seeded_random_policy_is_name_keyed():
    a = SeededRandomPolicy()
    a.bind(["x", "y", "z"], [1.0] * 3, seed=7)
    b = SeededRandomPolicy()
    b.bind(["x", "y", "z"], [1.0] * 3, seed=7)
    assert [a.key(i, t) for i in range(3) for t in range(4)] == [
        b.key(i, t) for i in range(3) for t in range(4)
    ]
    c = SeededRandomPolicy()
    c.bind(["x", "y", "z"], [1.0] * 3, seed=8)
    assert [a.key(i, 0) for i in range(3)] != [c.key(i, 0) for i in range(3)]


def test_make_policy_unknown_name():
    with pytest.raises(ValueError, match="unknown interleave policy"):
        make_policy("lottery")


def test_client_rng_pure_function_of_seed_and_name():
    assert client_rng(5, "a").random() == client_rng(5, "a").random()
    assert client_rng(5, "a").random() != client_rng(5, "b").random()
    assert client_rng(5, "a").random() != client_rng(6, "a").random()


# ======================================================================
# Shell mechanics
# ======================================================================
def _counting_body(path, n_reads, unit):
    def body(_client):
        fd = (yield sc.open(path)).value
        for _ in range(n_reads):
            yield sc.pread(fd, 0, unit)
        yield sc.close(fd)
        return n_reads
    return body


@pytest.fixture
def kernel_with_file():
    kernel = Kernel(small_config())
    kernel.run_process(make_file("/mnt0/a.dat", 256 * KIB, sync=False), "setup")
    return kernel


def test_quantum_parks_markerless_body(kernel_with_file):
    kernel = kernel_with_file
    arena = Arena(kernel, seed=1)
    arena.add_client("c", _counting_body("/mnt0/a.dat", 10, KIB), quantum=3)
    (client,) = drain(arena)
    assert client.result == 10
    # 12 syscalls total (open + 10 preads + close) → parks at 3, 6, 9, 12.
    assert client.parks == 4
    assert client.turns == client.parks + 1  # opening park + one per quantum


def test_step_markers_park_the_body(kernel_with_file):
    kernel = kernel_with_file

    def body(_client):
        fd = (yield sc.open("/mnt0/a.dat")).value
        for _ in range(3):
            yield sc.pread(fd, 0, KIB)
            yield STEP
        yield sc.close(fd)
        return "ok"

    arena = Arena(kernel, seed=1)
    arena.add_client("c", body)
    (client,) = drain(arena)
    assert client.result == "ok"
    assert client.parks == 3


def test_step_outside_arena_is_rejected_by_kernel(kernel_with_file):
    def body():
        yield STEP

    with pytest.raises(TypeError):
        kernel_with_file.run_process(body(), "naked-step")


def test_shell_rejects_non_syscall_yield(kernel_with_file):
    def bad(_client):
        yield 42

    arena = Arena(kernel_with_file, seed=1)
    arena.add_client("bad", bad)
    with pytest.raises(TypeError, match="must yield Syscall objects or STEP"):
        drain(arena)


def test_kernel_errors_are_rethrown_into_the_body(kernel_with_file):
    def body(_client):
        try:
            yield sc.open("/mnt0/does-not-exist")
        except SimOSError as exc:
            return f"caught:{exc.errno_name}"
        return "no error"

    arena = Arena(kernel_with_file, seed=1)
    arena.add_client("c", body, quantum=1)
    (client,) = drain(arena)
    assert client.result == "caught:ENOENT"


def test_two_clients_interleave_round_robin(kernel_with_file):
    kernel = kernel_with_file
    order = []

    def body(name):
        def gen(_client):
            fd = (yield sc.open("/mnt0/a.dat")).value
            for i in range(3):
                order.append((name, i))
                yield sc.pread(fd, 0, KIB)
                yield STEP
            yield sc.close(fd)
        return gen

    arena = Arena(kernel, policy=RoundRobinPolicy(), seed=1)
    arena.add_client("b", body("b"))
    arena.add_client("a", body("a"))
    drain(arena)
    # Strict alternation in sorted-name order, not add order.
    assert order == [
        ("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2), ("b", 2)
    ]


def test_arena_guard_rails(kernel_with_file):
    arena = Arena(kernel_with_file, seed=1)
    arena.add_client("c", _counting_body("/mnt0/a.dat", 1, KIB), quantum=5)
    with pytest.raises(ValueError, match="duplicate client name"):
        arena.add_client("c", _counting_body("/mnt0/a.dat", 1, KIB))
    with pytest.raises(ValueError, match="weight must be positive"):
        arena.add_client("w", _counting_body("/mnt0/a.dat", 1, KIB), weight=0)
    with pytest.raises(ValueError, match="quantum must be"):
        arena.add_client("q", _counting_body("/mnt0/a.dat", 1, KIB), quantum=0)
    drain(arena)
    with pytest.raises(RuntimeError, match="already ran"):
        drain(arena)
    with pytest.raises(RuntimeError, match="already ran"):
        arena.add_client("late", _counting_body("/mnt0/a.dat", 1, KIB))


def test_one_arena_per_kernel(kernel_with_file):
    Arena(kernel_with_file, seed=1)
    with pytest.raises(ValueError, match="already registered"):
        Arena(kernel_with_file, seed=2)


def test_arena_detects_kernel_deadlock():
    kernel = Kernel(small_config())

    def reader(_client):
        read_fd, _write_fd = (yield sc.pipe()).value
        yield sc.read(read_fd, 1)  # nobody ever writes

    arena = Arena(kernel, seed=1)
    arena.add_client("stuck", reader, quantum=100)
    with pytest.raises(RuntimeError, match="deadlock"):
        drain(arena)


def test_max_turns_guard(kernel_with_file):
    def forever(_client):
        while True:
            yield sc.gettime()
            yield STEP

    arena = Arena(kernel_with_file, seed=1)
    arena.add_client("spin", forever)
    with pytest.raises(RuntimeError, match="max_turns"):
        arena.run(max_turns=50)


def test_pids_and_rngs_follow_sorted_names(kernel_with_file):
    kernel = kernel_with_file
    arena = Arena(kernel, seed=9)
    arena.add_client("zeta", _counting_body("/mnt0/a.dat", 1, KIB), quantum=5)
    arena.add_client("alpha", _counting_body("/mnt0/a.dat", 1, KIB), quantum=5)
    clients = drain(arena)
    assert [c.name for c in clients] == ["alpha", "zeta"]
    assert clients[0].pid < clients[1].pid
    expected = client_rng(9, "alpha")
    # The client's rng was consumed identically (not at all) — compare
    # the next draw to a fresh stream for the same (seed, name).
    assert arena.client("alpha").rng.random() == expected.random()


# ======================================================================
# Determinism
# ======================================================================
def _digest_of_run(policy_name, add_order):
    kernel = Kernel(small_config())
    kernel.run_process(make_file("/mnt0/a.dat", 512 * KIB, sync=False), "setup")
    arena = Arena(kernel, policy=make_policy(policy_name), seed=0xDEC0)

    def noisy_body(_client):
        fd = (yield sc.open("/mnt0/a.dat")).value
        for _ in range(4):
            yield sc.pread(fd, 0, KIB)
            yield STEP
        yield sc.close(fd)

    for name in add_order:
        arena.add_client(name, noisy_body)
    drain(arena)
    return stream_digest(kernel.obs.dump_records())


@pytest.mark.parametrize("policy_name", ["round-robin", "weighted", "random"])
def test_digest_independent_of_run_and_add_order(policy_name):
    names = ["c3", "c1", "c4", "c0", "c2"]
    first = _digest_of_run(policy_name, names)
    again = _digest_of_run(policy_name, names)
    reordered = _digest_of_run(policy_name, list(reversed(names)))
    assert first == again
    assert first == reordered


def test_experiment_digest_reproducible_across_runs():
    a = run_arena(8, config=arena_config())
    b = run_arena(8, config=arena_config())
    assert a.digest == b.digest
    assert a.total_steps == b.total_steps
    assert [r["name"] for r in a.rows] == [r["name"] for r in b.rows]


def test_different_seeds_change_the_schedule():
    a = run_arena(8, policy="random", seed=1)
    b = run_arena(8, policy="random", seed=2)
    assert a.digest != b.digest


# ======================================================================
# N=1 equivalence: the refactor's no-regression pin
# ======================================================================
@pytest.mark.parametrize("kind", ["fccd", "fldc", "mac"])
def test_single_client_bit_identity(kind):
    solo = run_single_client(kind, seed=ARENA_SEED)
    arena = run_arena(1, mix=kind, seed=ARENA_SEED)
    assert arena.rows[0]["result"] == solo
    assert arena.rows[0]["accuracy"] == solo["accuracy"]


# ======================================================================
# Partition properties at N=64
# ======================================================================
@pytest.fixture(scope="module")
def arena64():
    report = run_arena(64)
    return report


def test_n64_ledger_sums_to_aggregate_counters(arena64):
    by_name = {}
    totals = {}
    for record in arena64.records:
        if record.get("type") == "pid_stats":
            for name, count in record["syscalls"].items():
                by_name[name] = by_name.get(name, 0) + count
        elif record.get("type") == "metric" and record.get("kind") == "counter":
            metric = record.get("name", "")
            if metric.startswith("kernel.syscall.") and metric.endswith(".calls"):
                totals[metric[len("kernel.syscall."):-len(".calls")]] = record["value"]
    assert by_name and totals
    assert by_name == totals


def test_n64_split_by_pid_is_a_partition(arena64):
    event_like = [
        r for r in arena64.records if r.get("type") in ("event", "span")
    ]
    buckets = split_by_pid(event_like)
    assert sum(len(b) for b in buckets.values()) == len(event_like)
    client_pids = {row["pid"] for row in arena64.rows}
    assert client_pids <= set(buckets), "every client contributed records"


def test_n64_matrix_cells_sum_to_reclaim_count(arena64):
    events = [r for r in arena64.records if r.get("type") == "event"]
    matrix = interference_matrix(events)
    reclaims = sum(
        1 for r in events if r.get("name") == "kernel.reclaim"
    )
    assert reclaims > 0, "N=64 on the arena machine must thrash"
    assert sum(sum(row.values()) for row in matrix.values()) == reclaims


def test_n64_report_attributes_every_client(arena64):
    assert len(arena64.rows) == 64
    assert all(row["syscalls"] > 0 for row in arena64.rows)
    assert all(row["turns"] > 0 for row in arena64.rows)
    assert 0 < arena64.fairness_turns <= 1.0
    assert set(arena64.kind_accuracy) == {"fccd", "fldc", "mac"}


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_partition_invariants_fuzzed(seed):
    """At N=64 on a thrashing machine, attribution stays a partition.

    Synthetic cheap clients (create + re-read a private file) keep each
    example fast while the 64 working sets still exceed memory.
    """
    kernel = Kernel(small_config(memory_mb=6), event_capacity=200_000)

    def body(name):
        path = f"/mnt0/{name}.dat"

        def gen(_client):
            yield from make_file(path, 2 * 64 * KIB, sync=False)
            fd = (yield sc.open(path)).value
            yield sc.pread(fd, 0, KIB)
            yield sc.close(fd)
        return gen

    arena = Arena(kernel, policy=make_policy("random"), seed=seed)
    for i in range(64):
        arena.add_client(f"t{i:02d}", body(f"t{i:02d}"), quantum=2)
    clients = drain(arena)
    records = list(kernel.obs.dump_records())

    ledger = {}
    totals = {}
    for record in records:
        if record.get("type") == "pid_stats":
            for name, count in record["syscalls"].items():
                ledger[name] = ledger.get(name, 0) + count
        elif record.get("type") == "metric" and record.get("kind") == "counter":
            metric = record.get("name", "")
            if metric.startswith("kernel.syscall.") and metric.endswith(".calls"):
                totals[metric[len("kernel.syscall."):-len(".calls")]] = record["value"]
    assert ledger == totals

    event_like = [r for r in records if r.get("type") in ("event", "span")]
    buckets = split_by_pid(event_like)
    assert sum(len(b) for b in buckets.values()) == len(event_like)

    events = [r for r in event_like if r["type"] == "event"]
    matrix = interference_matrix(events)
    reclaims = sum(1 for r in events if r.get("name") == "kernel.reclaim")
    assert sum(sum(row.values()) for row in matrix.values()) == reclaims
    assert all(c.done for c in clients)


# ======================================================================
# Experiment-layer helpers
# ======================================================================
def test_parse_mix_and_assignment():
    assert parse_mix("fccd=2,scan") == [("fccd", 2), ("scan", 1)]
    assert assign_kinds(5, [("fccd", 2), ("scan", 1)]) == [
        "fccd", "fccd", "scan", "fccd", "fccd"
    ]
    with pytest.raises(ValueError, match="unknown client kind"):
        parse_mix("fccd,warp")
    with pytest.raises(ValueError, match="empty client mix"):
        parse_mix(" , ")


def test_jain_index_bounds():
    assert jain_index([5, 5, 5]) == pytest.approx(1.0)
    assert jain_index([1, 0, 0, 0]) == pytest.approx(0.25)
    assert jain_index([]) == 1.0


def test_render_matrix_truncates_large_matrices():
    rng = random.Random(3)
    matrix = {
        i: {j: rng.randrange(1, 9) for j in rng.sample(range(1, 40), 6)}
        for i in range(1, 40)
    }
    text = render_matrix(matrix, top=8)
    lines = text.splitlines()
    assert "elided" in lines[-1]
    # Header + rule + 8 rows + note.
    assert len(lines) == 11
    full = render_matrix(matrix, top=None)
    assert "elided" not in full
    small = {1: {2: 3}}
    assert "elided" not in render_matrix(small, top=8)


# ======================================================================
# Scheduler support: batch growth and reap
# ======================================================================
def test_scheduler_reap_frees_finished_slots():
    kernel = Kernel(small_config())

    def tiny():
        yield sc.gettime()

    proc = kernel.spawn(tiny(), "t")
    kernel.run()
    scheduler = kernel.scheduler
    assert proc.pid in scheduler.finished
    assert scheduler.reap(proc.pid) is True
    assert proc.pid not in scheduler.finished
    assert scheduler.reap(proc.pid) is False


def test_arena_reaps_finished_clients(kernel_with_file):
    arena = Arena(kernel_with_file, seed=1)
    for i in range(8):
        arena.add_client(
            f"c{i}", _counting_body("/mnt0/a.dat", 2, KIB), quantum=2
        )
    clients = drain(arena)
    finished = kernel_with_file.scheduler.finished
    assert all(c.pid not in finished for c in clients)
    assert all(c.syscalls > 0 for c in clients)  # stats survived the reap
