"""Two-means clustering: exactness and degenerate handling."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.toolbox.cluster import two_means

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


def brute_force_ss(values):
    """Minimum within-SS over every threshold split of the sorted values."""
    ordered = sorted(values)
    best = float("inf")
    for cut in range(1, len(ordered)):
        low, high = ordered[:cut], ordered[cut:]
        ss = 0.0
        for group in (low, high):
            mean = sum(group) / len(group)
            ss += sum((v - mean) ** 2 for v in group)
        best = min(best, ss)
    return best


class TestTwoMeans:
    def test_obvious_bimodal_split(self):
        values = [1.0, 1.1, 0.9, 100.0, 101.0, 99.0]
        split = two_means(values)
        assert sorted(split.low_group) == [0, 1, 2]
        assert sorted(split.high_group) == [3, 4, 5]
        assert split.low_center == pytest.approx(1.0)
        assert split.high_center == pytest.approx(100.0)
        assert 1.1 < split.threshold < 99.0

    def test_probe_time_scales(self):
        """The actual FCCD use: microseconds vs milliseconds."""
        cached = [4000, 4100, 3900]      # ~4 us
        on_disk = [8_000_000, 9_000_000]  # ~8-9 ms
        split = two_means(cached + on_disk)
        assert sorted(split.low_group) == [0, 1, 2]
        assert split.high_center / split.low_center > 1000

    def test_single_value(self):
        split = two_means([7.0])
        assert split.low_group == (0,)
        assert split.high_group == ()

    def test_all_equal_means_one_group(self):
        split = two_means([3.0] * 5)
        assert len(split.low_group) == 5
        assert split.high_group == ()
        assert split.separation == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            two_means([])

    def test_groups_partition_indices(self):
        values = [5.0, 1.0, 9.0, 2.0]
        split = two_means(values)
        assert sorted(split.low_group + split.high_group) == [0, 1, 2, 3]

    def test_low_group_really_lower(self):
        values = [10.0, 2.0, 8.0, 1.0, 9.0]
        split = two_means(values)
        low_max = max(values[i] for i in split.low_group)
        high_min = min(values[i] for i in split.high_group)
        assert low_max <= split.threshold <= high_min

    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(floats, min_size=2, max_size=24))
    def test_matches_brute_force_optimum(self, values):
        split = two_means(values)
        if len(set(values)) == 1:
            assert split.high_group == ()
            return
        assert split.within_ss == pytest.approx(
            brute_force_ss(values), abs=1e-3, rel=1e-6
        )

    @settings(max_examples=50, deadline=None)
    @given(values=st.lists(floats, min_size=2, max_size=30))
    def test_centers_are_group_means(self, values):
        split = two_means(values)
        low = [values[i] for i in split.low_group]
        assert split.low_center == pytest.approx(sum(low) / len(low), rel=1e-9, abs=1e-9)
        if split.high_group:
            high = [values[i] for i in split.high_group]
            assert split.high_center == pytest.approx(
                sum(high) / len(high), rel=1e-9, abs=1e-9
            )
