"""Parallel trial runner: determinism, caching, telemetry."""

from __future__ import annotations

import json

import pytest

from repro.experiments import runner
from repro.experiments.figures import fig1_probe_correlation
from repro.experiments.runner import (
    TrialSpec,
    cache_key,
    clear_cache,
    configuration,
    configured,
    derive_seed,
    drain_stats,
    run_trials,
)
from tests.conftest import small_config


# Module-level so specs are picklable by worker processes.
def sum_trial(seed, *, a, b):
    return {"sum": a + b, "seed": seed}


def echo_trial(seed, *, payload):
    return payload


def seed_stream_trial(seed, *, draws):
    import random

    rng = random.Random(seed)
    return [rng.randrange(1_000_000) for _ in range(draws)]


def specs_for(n, experiment_id="unit", seed=None):
    return [
        TrialSpec(
            experiment_id=experiment_id,
            trial_index=i,
            fn=sum_trial,
            params={"a": i, "b": 10},
            seed=seed,
        )
        for i in range(n)
    ]


class TestSeeding:
    def test_derive_seed_is_deterministic(self):
        assert derive_seed("fig1", 3) == derive_seed("fig1", 3)

    def test_derive_seed_varies_by_index_and_experiment(self):
        seeds = {derive_seed("fig1", i) for i in range(50)}
        assert len(seeds) == 50
        assert derive_seed("fig1", 0) != derive_seed("fig2", 0)

    def test_derive_seed_varies_by_base_seed(self):
        assert derive_seed("fig1", 0, base_seed=1) != derive_seed("fig1", 0)

    def test_derive_seed_fits_in_63_bits(self):
        for i in range(20):
            assert 0 <= derive_seed("x", i) < 2**63

    def test_spec_resolves_explicit_seed(self):
        spec = TrialSpec("e", 0, sum_trial, {}, seed=7)
        assert spec.resolved_seed() == 7

    def test_spec_derives_seed_when_none(self):
        spec = TrialSpec("e", 4, sum_trial, {})
        assert spec.resolved_seed() == derive_seed("e", 4)


class TestRunTrials:
    def test_values_in_spec_order(self):
        values = run_trials(specs_for(5))
        assert [v["sum"] for v in values] == [10, 11, 12, 13, 14]

    def test_empty_specs(self):
        assert run_trials([]) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            run_trials(specs_for(1), jobs=0)

    def test_parallel_matches_sequential(self):
        sequential = run_trials(specs_for(8), jobs=1)
        parallel = run_trials(specs_for(8), jobs=4)
        assert parallel == sequential

    def test_results_are_json_normalised(self):
        spec = TrialSpec(
            "unit", 0, echo_trial, {"payload": {"t": (1, 2), "k": {3: "x"}}}
        )
        (value,) = run_trials([spec])
        # Identical shape whether the value came from a worker, inline
        # execution, or the cache: tuples -> lists, int keys -> str.
        assert value == {"t": [1, 2], "k": {"3": "x"}}

    def test_telemetry_accumulates(self):
        drain_stats()
        run_trials(specs_for(3))
        (stats,) = drain_stats()
        assert stats.trials == 3
        assert stats.simulated == 3
        assert stats.cached == 0
        assert len(stats.trial_s) == 3
        assert "unit" in stats.summary()
        assert drain_stats() == []

    def test_progress_callback_sees_every_trial(self):
        seen = []
        with configuration(progress=seen.append):
            run_trials(specs_for(4))
        assert [o.trial_index for o in seen] == [0, 1, 2, 3]
        assert all(not o.cached for o in seen)


class TestCache:
    def test_hit_on_second_run(self, tmp_path):
        drain_stats()
        first = run_trials(specs_for(3), use_cache=True, cache_dir=tmp_path)
        second = run_trials(specs_for(3), use_cache=True, cache_dir=tmp_path)
        assert first == second
        cold, warm = drain_stats()
        assert (cold.cached, cold.simulated) == (0, 3)
        assert (warm.cached, warm.simulated) == (3, 0)

    def test_param_change_invalidates(self, tmp_path):
        base = TrialSpec("unit", 0, sum_trial, {"a": 1, "b": 2})
        changed = TrialSpec("unit", 0, sum_trial, {"a": 1, "b": 3})
        drain_stats()
        run_trials([base], use_cache=True, cache_dir=tmp_path)
        run_trials([changed], use_cache=True, cache_dir=tmp_path)
        _, stats = drain_stats()
        assert stats.simulated == 1  # different params -> miss

    def test_seed_change_invalidates(self, tmp_path):
        drain_stats()
        run_trials(specs_for(1, seed=1), use_cache=True, cache_dir=tmp_path)
        run_trials(specs_for(1, seed=2), use_cache=True, cache_dir=tmp_path)
        _, stats = drain_stats()
        assert stats.simulated == 1

    def test_machine_config_participates_in_key(self):
        small = TrialSpec("u", 0, echo_trial, {"payload": small_config()})
        bigger = TrialSpec(
            "u", 0, echo_trial, {"payload": small_config(data_disks=2)}
        )
        assert cache_key(small) != cache_key(bigger)
        assert cache_key(small) == cache_key(
            TrialSpec("u", 0, echo_trial, {"payload": small_config()})
        )

    def test_corrupt_cache_entry_is_resimulated(self, tmp_path):
        spec = specs_for(1)[0]
        run_trials([spec], use_cache=True, cache_dir=tmp_path)
        (entry,) = tmp_path.glob("*.json")
        entry.write_text("{ not json")
        drain_stats()
        (value,) = run_trials([spec], use_cache=True, cache_dir=tmp_path)
        assert value == {"sum": 10, "seed": spec.resolved_seed()}
        (stats,) = drain_stats()
        assert stats.simulated == 1

    def test_stale_key_is_rejected(self, tmp_path):
        spec = specs_for(1)[0]
        run_trials([spec], use_cache=True, cache_dir=tmp_path)
        (entry,) = tmp_path.glob("*.json")
        blob = json.loads(entry.read_text())
        blob["key"] = "0" * 64  # wrong key: e.g. a truncated-hash collision
        entry.write_text(json.dumps(blob))
        drain_stats()
        run_trials([spec], use_cache=True, cache_dir=tmp_path)
        (stats,) = drain_stats()
        assert stats.simulated == 1

    def test_clear_cache(self, tmp_path):
        run_trials(specs_for(4), use_cache=True, cache_dir=tmp_path)
        assert clear_cache(tmp_path) == 4
        assert clear_cache(tmp_path) == 0

    def test_cache_off_by_default(self, tmp_path):
        with configuration(cache_dir=tmp_path):
            run_trials(specs_for(2))
        assert list(tmp_path.glob("*.json")) == []


class TestConfiguration:
    def test_context_restores_everything(self, tmp_path):
        before = configured()
        saved = (before.jobs, before.use_cache, before.cache_dir)
        with configuration(jobs=7, use_cache=True, cache_dir=tmp_path):
            active = configured()
            assert (active.jobs, active.use_cache) == (7, True)
            assert active.cache_dir == tmp_path
        after = configured()
        assert (after.jobs, after.use_cache, after.cache_dir) == saved

    def test_configure_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            runner.configure(jobs=0)

    def test_none_overrides_are_ignored(self):
        with configuration(jobs=3):
            with configuration(jobs=None, use_cache=None, cache_dir=None):
                assert configured().jobs == 3


class TestDriverParity:
    """The acceptance property: a real figure driver produces
    bit-identical rows under ``jobs=1`` and ``jobs=4``."""

    def test_fig1_rows_identical_across_job_counts(self):
        kwargs = dict(
            config=small_config(),
            file_mb=4,
            access_units_mb=(1, 2),
            prediction_units_mb=(1, 2),
            trials=2,
            seed=1234,
        )
        with configuration(jobs=1):
            sequential = fig1_probe_correlation(**kwargs)
        with configuration(jobs=4):
            parallel = fig1_probe_correlation(**kwargs)
        assert parallel.rows == sequential.rows

    def test_fig1_cached_rerun_matches_fresh(self, tmp_path):
        kwargs = dict(
            config=small_config(),
            file_mb=4,
            access_units_mb=(1,),
            prediction_units_mb=(1,),
            trials=2,
            seed=99,
        )
        with configuration(use_cache=True, cache_dir=tmp_path):
            drain_stats()
            fresh = fig1_probe_correlation(**kwargs)
            cached = fig1_probe_correlation(**kwargs)
            cold, warm = drain_stats()
        assert cached.rows == fresh.rows
        assert warm.simulated == 0
        assert warm.cached == cold.trials
