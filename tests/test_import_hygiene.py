"""Keep ``src/repro/sim`` clean of unused/duplicate imports.

CI runs the real ``ruff check`` + ``mypy`` (lint job); this test runs the
offline subset in ``tools/lint_imports.py`` so the same class of violation
fails fast in environments without the linters installed.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_imports import check_file  # noqa: E402


def test_sim_package_import_hygiene():
    findings = []
    for path in sorted((REPO_ROOT / "src" / "repro" / "sim").rglob("*.py")):
        findings.extend(check_file(path))
    assert not findings, "\n".join(findings)
