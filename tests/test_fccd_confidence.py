"""Repeated probing for confidence under timing noise (§4.1.2)."""

import random

import pytest

from repro.icl.fccd import FCCD
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


def make_layer(seed):
    return FCCD(
        rng=random.Random(seed),
        access_unit_bytes=2 * MIB,
        prediction_unit_bytes=512 * KIB,
    )


class TestRepeatedProbing:
    def test_rounds_must_be_positive(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 4 * MIB), "setup")
        layer = make_layer(1)

        def app():
            fd = (yield sc.open("/mnt0/f")).value
            try:
                yield from layer.probe_fd_repeated(fd, 4 * MIB, rounds=0)
            except ValueError:
                return "caught"
            finally:
                yield sc.close(fd)
        assert kernel.run_process(app(), "app") == "caught"

    def test_merged_segments_cover_file_and_count_probes(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 6 * MIB), "setup")
        layer = make_layer(2)

        def app():
            return (yield from layer.plan_file("/mnt0/f", rounds=3))
        plan = kernel.run_process(app(), "app")
        assert sum(s.length for s in plan.segments) == 6 * MIB
        # 3 rounds x 4 windows per 2 MiB segment.
        assert all(s.probes == 12 for s in plan.segments)

    def test_single_round_plan_unchanged(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 4 * MIB), "setup")
        layer = make_layer(3)

        def app():
            return (yield from layer.plan_file("/mnt0/f", rounds=1))
        plan = kernel.run_process(app(), "app")
        assert all(s.probes == 4 for s in plan.segments)

    def test_median_rejects_a_lucky_cold_hit(self, kernel):
        """A cold unit with exactly one cached page can fool one probe
        round; the median over three rounds almost never is."""
        kernel.run_process(make_file("/mnt0/f", 2 * MIB), "setup")
        kernel.oracle.flush_file_cache()

        # Pull in exactly one page of the otherwise-cold file.
        def leak():
            fd = (yield sc.open("/mnt0/f")).value
            yield sc.pread(fd, 256 * KIB, 1)
            yield sc.close(fd)
        kernel.run_process(leak(), "leak")

        fooled_once = 0
        fooled_median = 0
        trials = 30
        for trial in range(trials):
            layer = make_layer(100 + trial)

            def single():
                return (yield from layer.plan_file("/mnt0/f", rounds=1))
            def tripled():
                return (yield from layer.plan_file("/mnt0/f", rounds=3))
            one = kernel.run_process(single(), "one")
            three = kernel.run_process(tripled(), "three")
            if min(s.probe_ns for s in one.segments) < 1_000_000:
                fooled_once += 1
            if min(s.probe_ns for s in three.segments) < 1_000_000:
                fooled_median += 1
        # Single probes get fooled sometimes; the median rarely.
        assert fooled_median <= fooled_once
        assert fooled_median <= trials // 10

    def test_repeated_probing_consistent_on_warm_file(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 4 * MIB), "setup")
        layer = make_layer(5)

        def app():
            return (yield from layer.plan_file("/mnt0/f", rounds=5))
        plan = kernel.run_process(app(), "app")
        assert all(s.probe_ns < 100_000 for s in plan.segments)
