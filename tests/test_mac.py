"""MAC: admission control and available-memory inference."""

import pytest

from repro.icl.mac import MAC, GbAllocation
from repro.sim import Kernel, syscalls as sc
from repro.toolbox.repository import ParameterRepository
from tests.conftest import KIB, MIB, small_config


def make_mac(kernel, **overrides):
    params = dict(
        page_size=kernel.config.page_size,
        initial_increment_bytes=1 * MIB,
        max_increment_bytes=4 * MIB,
    )
    params.update(overrides)
    return MAC(**params)


class TestValidation:
    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            MAC(page_size=0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            MAC(slow_count=5, slow_window_touches=2)

    def test_rejects_min_above_max(self, kernel):
        mac = make_mac(kernel)

        def app():
            yield from mac.gb_alloc(10 * MIB, 5 * MIB)
        with pytest.raises(ValueError):
            kernel.run_process(app(), "mac")

    def test_rejects_unaligned_minimum(self, kernel):
        mac = make_mac(kernel)

        def app():
            yield from mac.gb_alloc(MIB + 1, 2 * MIB, multiple_bytes=MIB)
        with pytest.raises(ValueError):
            kernel.run_process(app(), "mac")


class TestThreshold:
    def test_repository_values_preferred(self, kernel):
        repo = ParameterRepository()
        repo.set("mem.page_zero_ns", 4_000)
        repo.set("disk.random_access_ns", 9_000_000)
        mac = MAC(repository=repo, page_size=kernel.config.page_size)

        def app():
            return (yield from mac.slow_threshold_ns())
        threshold = kernel.run_process(app(), "mac")
        assert threshold == int((4_000 * 9_000_000) ** 0.5)

    def test_self_calibration_between_memory_and_disk(self, kernel):
        mac = make_mac(kernel)

        def app():
            return (yield from mac.slow_threshold_ns())
        threshold = kernel.run_process(app(), "mac")
        assert kernel.config.page_zero_ns < threshold < 5_000_000

    def test_threshold_cached_after_first_call(self, kernel):
        mac = make_mac(kernel)

        def app():
            first = yield from mac.slow_threshold_ns()
            second = yield from mac.slow_threshold_ns()
            return first, second
        first, second = kernel.run_process(app(), "mac")
        assert first == second


class TestGbAlloc:
    def test_grant_on_idle_machine_is_most_of_memory(self, kernel):
        mac = make_mac(kernel)
        available = kernel.config.available_bytes

        def app():
            allocation = yield from mac.gb_alloc(MIB, available, MIB)
            granted = allocation.granted_bytes
            yield from mac.gb_free(allocation)
            return granted
        granted = kernel.run_process(app(), "mac")
        assert granted >= 0.85 * available
        assert granted <= available

    def test_grant_is_multiple_of_requested_unit(self, kernel):
        mac = make_mac(kernel)

        def app():
            allocation = yield from mac.gb_alloc(700, 5 * MIB, multiple_bytes=700)
            granted = allocation.granted_bytes
            yield from mac.gb_free(allocation)
            return granted
        granted = kernel.run_process(app(), "mac")
        assert granted % 700 == 0

    def test_grant_never_exceeds_maximum(self, kernel):
        mac = make_mac(kernel)

        def app():
            allocation = yield from mac.gb_alloc(MIB, 3 * MIB, MIB)
            granted = allocation.granted_bytes
            yield from mac.gb_free(allocation)
            return granted
        assert kernel.run_process(app(), "mac") == 3 * MIB

    def test_granted_pages_are_resident(self, kernel):
        mac = make_mac(kernel)
        results = {}

        def app():
            allocation = yield from mac.gb_alloc(MIB, 4 * MIB, MIB)
            results["pid"] = (yield sc.getpid()).value
            results["pages"] = allocation.total_pages
            # Hold the allocation while the host checks residency.
            yield sc.sleep(1)
            resident = kernel.oracle.resident_anon_pages(results["pid"])
            yield from mac.gb_free(allocation)
            return resident
        resident = kernel.run_process(app(), "mac")
        assert resident >= results["pages"]

    def test_denied_when_minimum_unavailable(self, kernel):
        available = kernel.config.available_bytes
        mac = make_mac(kernel)
        hog_pages = int(available * 0.8) // kernel.config.page_size

        def hog():
            region = (yield sc.vm_alloc(hog_pages * kernel.config.page_size)).value
            yield sc.touch_range(region, 0, hog_pages)
            while True:
                yield sc.touch_range(region, 0, hog_pages)
                yield sc.sleep(20_000_000)
                if (yield sc.gettime()).value > 20_000_000_000:
                    return None

        def mac_app():
            yield sc.sleep(300_000_000)
            allocation = yield from mac.gb_alloc(
                int(available * 0.5), available, MIB
            )
            return allocation
        kernel.spawn(hog(), "hog")
        proc = kernel.spawn(mac_app(), "mac")
        kernel.run()
        assert proc.result is None
        assert mac.stats.denials == 1

    def test_grant_tracks_available_minus_competitor(self):
        kernel = Kernel(small_config(memory_bytes=72 * MIB, kernel_reserved_bytes=8 * MIB))
        available = kernel.config.available_bytes
        x = 24 * MIB
        mac = make_mac(kernel, max_increment_bytes=8 * MIB)
        pages = x // kernel.config.page_size

        def competitor():
            region = (yield sc.vm_alloc(x)).value
            yield sc.touch_range(region, 0, pages)
            t0 = (yield sc.gettime()).value
            while (yield sc.gettime()).value - t0 < 60_000_000_000:
                yield sc.touch_range(region, 0, pages)
                yield sc.sleep(30_000_000)

        def mac_app():
            yield sc.sleep(500_000_000)
            allocation = yield from mac.gb_alloc(MIB, available, MIB)
            granted = allocation.granted_bytes
            yield from mac.gb_free(allocation)
            return granted

        kernel.spawn(competitor(), "competitor")
        proc = kernel.spawn(mac_app(), "mac")
        kernel.run()
        expected = available - x
        assert 0.7 * expected <= proc.result <= expected

    def test_gb_free_releases_memory(self, kernel):
        mac = make_mac(kernel)

        def app():
            pid = (yield sc.getpid()).value
            allocation = yield from mac.gb_alloc(MIB, 4 * MIB, MIB)
            yield from mac.gb_free(allocation)
            yield sc.sleep(1)
            return kernel.oracle.resident_anon_pages(pid)
        assert kernel.run_process(app(), "mac") == 0

    def test_two_processes_split_memory_without_deadlock(self, kernel):
        """Paired gb_alloc/gb_free cannot deadlock (§4.3.2)."""
        available = kernel.config.available_bytes
        grants = []

        def worker(tag):
            mac = make_mac(kernel)
            allocation = yield from mac.gb_alloc_wait(
                2 * MIB, available, MIB, retry_ns=50_000_000
            )
            grants.append((tag, allocation.granted_bytes))
            yield sc.sleep(100_000_000)  # hold it briefly
            yield from mac.gb_free(allocation)
            return tag
        kernel.spawn(worker("a"), "a")
        kernel.spawn(worker("b"), "b")
        kernel.run()
        assert {tag for tag, _g in grants} == {"a", "b"}
        assert all(g >= 2 * MIB for _t, g in grants)

    def test_wait_times_out_loudly(self, kernel):
        available = kernel.config.available_bytes

        def hog():
            pages = int(available * 0.9) // kernel.config.page_size
            region = (yield sc.vm_alloc(pages * kernel.config.page_size)).value
            yield sc.touch_range(region, 0, pages)
            t0 = (yield sc.gettime()).value
            while (yield sc.gettime()).value - t0 < 30_000_000_000:
                yield sc.touch_range(region, 0, pages)
                yield sc.sleep(10_000_000)

        def mac_app():
            yield sc.sleep(200_000_000)
            mac = make_mac(kernel)
            try:
                yield from mac.gb_alloc_wait(
                    (int(available * 0.8) // MIB) * MIB,
                    available,
                    MIB,
                    retry_ns=100_000_000,
                    max_wait_ns=2_000_000_000,
                )
            except TimeoutError:
                return "timed-out"
        kernel.spawn(hog(), "hog")
        proc = kernel.spawn(mac_app(), "mac")
        kernel.run()
        assert proc.result == "timed-out"

    def test_stats_track_activity(self, kernel):
        mac = make_mac(kernel)

        def app():
            allocation = yield from mac.gb_alloc(MIB, 4 * MIB, MIB)
            yield from mac.gb_free(allocation)
        kernel.run_process(app(), "mac")
        assert mac.stats.grants == 1
        assert mac.stats.probe_touches > 0


class TestGbAllocation:
    def test_pages_iterates_all_granted_pages(self):
        allocation = GbAllocation(
            regions=[(1, 3), (2, 2)], granted_bytes=5 * 4096, page_size=4096
        )
        pages = list(allocation.pages())
        assert pages == [(1, 0), (1, 1), (1, 2), (2, 0), (2, 1)]
        assert allocation.total_pages == 5
