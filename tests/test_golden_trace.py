"""Golden-trace regression: the refactor must not move simulated time.

One small, fully deterministic FCCD-scan scenario runs per platform
personality; everything the observability layer records — per-syscall
counters and latency histograms, reclaim events, ICL probe spans, and
the final simulated clock — is serialized to JSONL and diffed against a
committed snapshot in ``tests/golden/``.

Any change to simulated timing, cache behaviour, eviction order, or
event emission shows up as a diff here, which is exactly the safety net
the kernel-decomposition refactor runs under: bit-identical simulated
time on all three platforms, proven line-by-line.

Regenerate snapshots (only when a behaviour change is *intended*)::

    PYTHONPATH=src python tests/test_golden_trace.py --regen
"""

from __future__ import annotations

import json
import random
import sys
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro.icl.fccd import FCCD
from repro.obs.export import event_records
from repro.sim import Kernel, MachineConfig, PLATFORMS
from repro.sim import syscalls as sc
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_SEED = 0x60


PLATFORM_NAMES = tuple(sorted(PLATFORMS))


def golden_config() -> MachineConfig:
    """Large pages + a file bigger than every platform's file pool.

    64 KiB pages keep the page count (and host runtime) small; 88 MiB
    of available memory leaves room for netbsd15's fixed 64 MiB buffer
    cache while the 120 MiB scan target overflows the file pool on all
    three personalities, so reclaim fires everywhere.
    """
    return MachineConfig(
        page_size=64 * KIB,
        memory_bytes=96 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )


def run_scenario(platform_name: str) -> Kernel:
    """The FCCD scan scenario: every kernel layer gets exercised.

    Path resolution and metadata I/O (create/stat/readdir/rename/
    unlink/utimes), data reads and writes through the page cache
    (make_file, probe preads, sequential reads), reclaim (the scan
    target overflows the file pool), anonymous memory and swap pressure
    (touch sweeps), and pipes/process syscalls (a producer/consumer
    pair) — all with deterministic seeds and sizes.
    """
    config = golden_config()
    kernel = Kernel(config, platform=PLATFORMS[platform_name])
    big = "/mnt0/big.dat"

    kernel.run_process(make_file(big, 120 * MIB, sync=False), "setup")

    def tree():
        yield sc.mkdir("/mnt0/d")
        for i in range(8):
            fd = (yield sc.create(f"/mnt0/d/f{i}")).value
            yield sc.write(fd, 96 * KIB)
            yield sc.close(fd)

    kernel.run_process(tree(), "tree")

    fccd = FCCD(
        rng=random.Random(GOLDEN_SEED),
        access_unit_bytes=8 * MIB,
        prediction_unit_bytes=512 * KIB,
        obs=kernel.obs,
    )
    plan = kernel.run_process(fccd.plan_file(big), "probe")
    assert plan.total_probes > 0

    def reader():
        fd = (yield sc.open(big)).value
        for _ in range(16):
            yield sc.read(fd, 1 * MIB)
        yield sc.seek(fd, 0)
        yield sc.pread(fd, 512 * KIB, 64 * KIB)
        yield sc.close(fd)

    kernel.run_process(reader(), "reader")

    def sweep():
        stats = (yield sc.stat_batch([f"/mnt0/d/f{i}" for i in range(8)])).value
        names = (yield sc.readdir("/mnt0/d")).value
        yield sc.rename("/mnt0/d/f0", "/mnt0/d/g0")
        yield sc.unlink("/mnt0/d/f1")
        yield sc.utimes("/mnt0/d/f2", 5, 7)
        yield sc.fsync((yield sc.open("/mnt0/d/f2")).value)
        return len(stats) + len(names)

    kernel.run_process(sweep(), "sweep")

    def vm():
        region = (yield sc.vm_alloc(24 * MIB, "golden")).value
        npages = 24 * MIB // (64 * KIB)
        yield sc.touch_range(region, 0, npages)
        yield sc.touch_batch(region, 0, npages, 2)
        yield sc.touch_batch(region, 0, npages, 1, 10 * MIB, 1, 1)
        yield sc.vm_free(region)

    kernel.run_process(vm(), "vm")

    pipe = kernel.make_pipe()

    def producer(w):
        for _ in range(4):
            yield sc.write(w, 16 * KIB)
            yield sc.compute(50_000)
        yield sc.close(w)

    def consumer(r):
        total = 0
        while True:
            result = (yield sc.read(r, 16 * KIB)).value
            if result.eof:
                break
            total += result.nbytes
            yield sc.sleep(10_000)
        yield sc.close(r)
        return total

    prod = kernel.spawn_with_pipe_ends(producer, [(pipe, "pipe_w")], "producer")

    def parent(r):
        yield sc.getpid()
        total = yield from consumer(r)
        done = (yield sc.waitpid(prod.pid)).value  # noqa: F841
        return total

    kernel.spawn_with_pipe_ends(parent, [(pipe, "pipe_r")], "parent")
    kernel.run()
    return kernel


def trace_records(kernel: Kernel, platform_name: str) -> List[Dict[str, Any]]:
    """Metric samples (name-sorted), the event stream, and a meta record.

    Metrics are sorted by name so the snapshot is insensitive to benign
    instrument-registration-order changes; events keep stream order —
    their ordering *is* simulated behaviour.
    """
    metrics = sorted(kernel.obs.collect(), key=lambda r: r.get("name", ""))
    events = list(event_records(kernel.obs.events))
    meta = {
        "type": "meta",
        "platform": platform_name,
        "clock_ns": kernel.clock.now,
        "file_pool_pages": kernel.oracle.file_pool_used_pages(),
        "swap_slots": kernel.oracle.swap_used_slots(),
    }
    return metrics + events + [meta]


def render_lines(records: List[Dict[str, Any]]) -> List[str]:
    return [json.dumps(r, sort_keys=True, default=str) for r in records]


def snapshot_path(platform_name: str) -> Path:
    return GOLDEN_DIR / f"trace_{platform_name}.jsonl"


@pytest.mark.parametrize("platform_name", PLATFORM_NAMES)
def test_golden_trace_matches_snapshot(platform_name):
    path = snapshot_path(platform_name)
    assert path.exists(), (
        f"missing golden snapshot {path}; generate it with "
        f"`PYTHONPATH=src python tests/test_golden_trace.py --regen`"
    )
    kernel = run_scenario(platform_name)
    fresh = render_lines(trace_records(kernel, platform_name))
    committed = path.read_text().splitlines()
    assert len(fresh) == len(committed), (
        f"{platform_name}: trace length changed "
        f"({len(committed)} committed vs {len(fresh)} fresh)"
    )
    for lineno, (want, got) in enumerate(zip(committed, fresh), start=1):
        assert want == got, (
            f"{platform_name}: golden trace diverged at line {lineno}\n"
            f"  committed: {want}\n"
            f"  fresh:     {got}"
        )


def test_platforms_actually_diverge():
    """Sanity: the three personalities must not share one trace."""
    clocks = set()
    for name in PLATFORM_NAMES:
        clocks.add(json.loads(snapshot_path(name).read_text().splitlines()[-1])["clock_ns"])
    assert len(clocks) == len(PLATFORM_NAMES)


def main(argv: List[str]) -> int:
    if "--regen" not in argv:
        print(__doc__)
        return 2
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in PLATFORM_NAMES:
        kernel = run_scenario(name)
        lines = render_lines(trace_records(kernel, name))
        path = snapshot_path(name)
        path.write_text("\n".join(lines) + "\n")
        print(f"wrote {path} ({len(lines)} records, clock={kernel.clock.now} ns)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
