"""Kernel memory syscalls: faults, timing, pressure, swap."""

import pytest

from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import InvalidArgument
from tests.conftest import KIB, MIB, small_config


def run(kernel, gen):
    return kernel.run_process(gen, "test")


class TestTouchTiming:
    def test_first_touch_zero_fills_then_resident(self, kernel):
        def app():
            region = (yield sc.vm_alloc(16 * KIB)).value
            first = (yield sc.touch(region, 0)).elapsed_ns
            second = (yield sc.touch(region, 0)).elapsed_ns
            return first, second
        first, second = run(kernel, app())
        assert first >= kernel.config.page_zero_ns
        assert second == kernel.config.mem_touch_ns
        assert first > 5 * second

    def test_touch_range_returns_per_page_times(self, kernel):
        def app():
            region = (yield sc.vm_alloc(8 * 4 * KIB)).value
            result = yield sc.touch_range(region, 0, 8)
            return result.value, result.elapsed_ns
        times, total = run(kernel, app())
        assert len(times) == 8
        assert sum(times) == total

    def test_touch_outside_region_rejected(self, kernel):
        def app():
            region = (yield sc.vm_alloc(4 * KIB)).value
            try:
                yield sc.touch(region, 5)
            except InvalidArgument:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_touch_unknown_region_rejected(self, kernel):
        def app():
            try:
                yield sc.touch(42, 0)
            except InvalidArgument:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_vm_alloc_rejects_nonpositive(self, kernel):
        def app():
            try:
                yield sc.vm_alloc(0)
            except InvalidArgument:
                return "caught"
        assert run(kernel, app()) == "caught"


class TestPressure:
    def test_overcommit_swaps_and_swapin_is_slow(self):
        kernel = Kernel(small_config())
        available = kernel.config.available_pages

        def app():
            region = (yield sc.vm_alloc((available + 200) * 4 * KIB)).value
            yield sc.touch_range(region, 0, available + 200)
            # Page 0 was evicted long ago; touching it swaps in.
            result = yield sc.touch(region, 0)
            return result.elapsed_ns
        swapin_ns = run(kernel, app())
        # A disk access (>=100us), not a memory touch (~150ns/3us).
        assert swapin_ns > 100_000
        assert kernel.oracle.daemon_stats().anon_pages_swapped > 0

    def test_memory_pressure_produces_slow_points_in_succession(self):
        """The MAC signal: past the pool, slow touches recur regularly."""
        kernel = Kernel(small_config())
        available = kernel.config.available_pages

        def app():
            region = (yield sc.vm_alloc((available + 300) * 4 * KIB)).value
            times = (yield sc.touch_range(region, 0, available + 300)).value
            return times
        times = run(kernel, app())
        tail = times[-256:]
        slow = [t for t in tail if t > 100_000]
        assert len(slow) >= 2

    def test_vm_free_returns_memory(self, kernel):
        def app():
            pid = (yield sc.getpid()).value
            region = (yield sc.vm_alloc(64 * 4 * KIB)).value
            yield sc.touch_range(region, 0, 64)
            yield sc.vm_free(region)
            return pid
        pid = run(kernel, app())
        assert kernel.oracle.resident_anon_pages(pid) == 0

    def test_exit_releases_process_memory(self, kernel):
        def app():
            region = (yield sc.vm_alloc(64 * 4 * KIB)).value
            yield sc.touch_range(region, 0, 64)
            return (yield sc.getpid()).value
        pid = run(kernel, app())
        assert kernel.oracle.resident_anon_pages(pid) == 0

    def test_file_cache_yields_to_anon_allocation(self):
        """Unified pool: a growing heap steals from the file cache."""
        kernel = Kernel(small_config())

        def setup():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 16 * MIB)
            yield sc.fsync(fd)
            yield sc.close(fd)
        run(kernel, setup())
        cached_before = kernel.oracle.cached_fraction("/mnt0/f")

        def hog():
            pages = 24 * MIB // (4 * KIB)
            region = (yield sc.vm_alloc(pages * 4 * KIB)).value
            yield sc.touch_range(region, 0, pages)
        run(kernel, hog())
        assert kernel.oracle.cached_fraction("/mnt0/f") < cached_before

    def test_anon_pages_resist_file_streaming(self):
        """File-first reclaim: streaming reads never swap idle heaps."""
        kernel = Kernel(small_config())

        def holder():
            pages = 8 * MIB // (4 * KIB)
            region = (yield sc.vm_alloc(pages * 4 * KIB)).value
            yield sc.touch_range(region, 0, pages)
            # Stay alive (idle) while the streamer runs.
            yield sc.sleep(60_000_000_000)
            return (yield sc.getpid()).value

        def streamer():
            fd = (yield sc.create("/mnt0/big")).value
            yield sc.write(fd, 48 * MIB)
            yield sc.close(fd)
            fd = (yield sc.open("/mnt0/big")).value
            while not (yield sc.read(fd, MIB)).value.eof:
                pass
            yield sc.close(fd)

        holder_proc = kernel.spawn(holder(), "holder")
        kernel.spawn(streamer(), "streamer")
        kernel.run()
        assert kernel.oracle.daemon_stats().anon_pages_swapped == 0
        assert holder_proc.result is not None
