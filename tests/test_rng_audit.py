"""Static RNG-seeding audit.

Byte-identical replay (golden traces, the trial cache, the differential
fuzzer) requires that every random draw in the tree flows from an
explicit seed.  This audit walks the source and fails on the two ways
nondeterminism usually sneaks in:

* calls on the module-global RNG (``random.randrange(...)`` and
  friends), which seed from the OS at import time;
* ``random.Random()`` constructed with no arguments, which does the
  same thing one object deeper.

The runtime companion is the autouse ``_global_rng_guard`` fixture in
``conftest.py``, which catches global-RNG use the grep cannot see
(e.g. through a helper imported from a third-party module).
"""

import random
import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCANNED_DIRS = ("src", "tests", "benchmarks")

#: Module-level functions of the global RNG; calling any of these draws
#: from interpreter-global, OS-seeded state.
GLOBAL_RNG_CALL = re.compile(
    r"\brandom\.(random|randint|randrange|randbytes|choice|choices|"
    r"shuffle|sample|uniform|triangular|gauss|normalvariate|expovariate|"
    r"betavariate|gammavariate|lognormvariate|vonmisesvariate|"
    r"paretovariate|weibullvariate|getrandbits|seed|setstate)\s*\("
)

#: ``random.Random()`` with nothing between the parentheses.
UNSEEDED_RANDOM = re.compile(r"\brandom\.Random\(\s*\)")


def _python_sources():
    for directory in SCANNED_DIRS:
        yield from sorted((REPO_ROOT / directory).rglob("*.py"))


def _violations(pattern):
    found = []
    for path in _python_sources():
        if path == Path(__file__).resolve():
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if "rng-audit: allow" in line:
                continue
            stripped = line.split("#", 1)[0]
            if pattern.search(stripped):
                found.append(f"{path.relative_to(REPO_ROOT)}:{lineno}: {line.strip()}")
    return found


def test_no_global_rng_calls():
    violations = _violations(GLOBAL_RNG_CALL)
    assert not violations, (
        "module-global random calls found (seed a random.Random(seed) "
        "instance instead):\n" + "\n".join(violations)
    )


def test_no_unseeded_random_instances():
    violations = _violations(UNSEEDED_RANDOM)
    assert not violations, (
        "unseeded random.Random() found (pass an explicit seed):\n"
        + "\n".join(violations)
    )


def test_guard_detects_global_rng_use():
    """The tripwire mechanism in ``_global_rng_guard`` works: drawing
    from the global RNG is visible as a state change (which the autouse
    fixture turns into a failure).  State is restored afterwards so
    this test itself passes the guard."""
    before = random.getstate()
    random.randrange(10)
    tripped = random.getstate() != before
    random.setstate(before)
    assert tripped
