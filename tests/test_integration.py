"""End-to-end integration: all three ICLs cooperating on one machine."""

import random

import pytest

from repro.icl.compose import compose_order
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.icl.mac import MAC
from repro.sim import Kernel, MachineConfig, syscalls as sc
from repro.workloads.files import create_files, make_file
from tests.conftest import KIB, MIB, small_config


class TestFullStack:
    def test_probe_order_process_pipeline(self):
        """A realistic client: discover files, compose an order, process
        them, while a MAC-governed worker holds memory — everything on
        one kernel, no oracle involvement in the decisions."""
        kernel = Kernel(small_config(memory_bytes=48 * MIB, kernel_reserved_bytes=8 * MIB))

        def setup():
            yield sc.mkdir("/mnt0/data")
            yield from create_files("/mnt0/data", 12, 512 * KIB)
        kernel.run_process(setup(), "setup")
        kernel.oracle.flush_file_cache()

        # Warm a subset, as a previous consumer would have.
        def warm():
            for i in (1, 4, 7):
                fd = (yield sc.open(f"/mnt0/data/f{i:04d}")).value
                yield sc.pread(fd, 0, 512 * KIB)
                yield sc.close(fd)
        kernel.run_process(warm(), "warm")

        outcome = {}

        def memory_worker():
            mac = MAC(page_size=kernel.config.page_size,
                      initial_increment_bytes=MIB, max_increment_bytes=4 * MIB)
            allocation = yield from mac.gb_alloc_wait(2 * MIB, 16 * MIB, MIB)
            outcome["granted"] = allocation.granted_bytes
            yield sc.sleep(200_000_000)
            yield from mac.gb_free(allocation)
            return "worker-done"

        def reader():
            names = (yield sc.readdir("/mnt0/data")).value
            paths = [f"/mnt0/data/{n}" for n in names]
            fccd = FCCD(rng=random.Random(2), access_unit_bytes=2 * MIB,
                        prediction_unit_bytes=512 * KIB)
            plan = yield from compose_order(fccd, FLDC(), paths)
            outcome["predicted_cached"] = plan.predicted_cached
            total = 0
            for path in plan.order:
                fd = (yield sc.open(path)).value
                while True:
                    result = (yield sc.read(fd, 256 * KIB)).value
                    if result.eof:
                        break
                    total += result.nbytes
                yield sc.close(fd)
            return total

        worker = kernel.spawn(memory_worker(), "worker")
        reading = kernel.spawn(reader(), "reader")
        kernel.run()
        assert worker.result == "worker-done"
        assert reading.result == 12 * 512 * KIB
        assert outcome["granted"] >= 2 * MIB
        expected = {f"/mnt0/data/f{i:04d}" for i in (1, 4, 7)}
        assert set(outcome["predicted_cached"]) == expected

    def test_icl_decisions_never_touch_the_oracle(self):
        """Import hygiene: gray-box packages must not import the oracle."""
        import repro.icl.fccd
        import repro.icl.fldc
        import repro.icl.mac
        import repro.icl.compose
        import repro.icl.gbp
        import repro.apps.grep
        import repro.apps.fastsort
        import repro.toolbox.microbench
        import inspect

        for module in (
            repro.icl.fccd,
            repro.icl.fldc,
            repro.icl.mac,
            repro.icl.compose,
            repro.icl.gbp,
            repro.apps.grep,
            repro.apps.fastsort,
        ):
            source = inspect.getsource(module)
            assert "oracle" not in source.lower(), module.__name__

    def test_deterministic_replay(self):
        """Two identical kernels produce bit-identical timelines."""
        def run_once():
            kernel = Kernel(small_config())

            def app():
                fd = (yield sc.create("/mnt0/f")).value
                yield sc.write(fd, 3 * MIB)
                yield sc.close(fd)
                fccd = FCCD(rng=random.Random(11), access_unit_bytes=MIB,
                            prediction_unit_bytes=256 * KIB)
                plan = yield from fccd.plan_file("/mnt0/f")
                return [s.probe_ns for s in plan.segments]
            probes = kernel.run_process(app(), "app")
            return probes, kernel.clock.now
        first = run_once()
        second = run_once()
        assert first == second

    def test_mixed_platforms_share_icl_code(self):
        """The same FCCD bytes run unchanged on all three personalities."""
        from repro.sim import linux22, netbsd15, solaris7

        results = {}
        for platform in (linux22, netbsd15, solaris7):
            kernel = Kernel(small_config(memory_bytes=96 * MIB,
                                         kernel_reserved_bytes=8 * MIB),
                            platform=platform)
            kernel.run_process(make_file("/mnt0/f", 8 * MIB), "setup")
            kernel.oracle.flush_file_cache()

            def warm():
                fd = (yield sc.open("/mnt0/f")).value
                yield sc.pread(fd, 0, 4 * MIB)
                yield sc.close(fd)
            kernel.run_process(warm(), "warm")
            fccd = FCCD(rng=random.Random(5), access_unit_bytes=2 * MIB,
                        prediction_unit_bytes=512 * KIB)

            def probe():
                plan = yield from fccd.plan_file("/mnt0/f")
                return [s for s in plan.ordered_segments()]
            segments = kernel.run_process(probe(), "probe")
            fast = [s.offset for s in segments if s.mean_probe_ns < 1_000_000]
            results[platform.name] = sorted(fast)
        # The warmed prefix is correctly detected on every platform.
        for name, fast in results.items():
            assert fast == [0, 2 * MIB], name


class TestCrossIclInteraction:
    def test_fccd_probing_does_not_disturb_mac(self, kernel):
        """Probing files (tiny reads) must not meaningfully change what
        MAC sees as available memory."""
        kernel.run_process(make_file("/mnt0/f", 4 * MIB), "setup")

        def mac_view():
            mac = MAC(page_size=kernel.config.page_size,
                      initial_increment_bytes=MIB, max_increment_bytes=4 * MIB)
            allocation = yield from mac.gb_alloc(MIB, kernel.config.available_bytes, MIB)
            granted = allocation.granted_bytes
            yield from mac.gb_free(allocation)
            return granted
        before = kernel.run_process(mac_view(), "mac1")

        def probe():
            fccd = FCCD(rng=random.Random(1), access_unit_bytes=MIB,
                        prediction_unit_bytes=256 * KIB)
            yield from fccd.plan_file("/mnt0/f")
        kernel.run_process(probe(), "probe")
        after = kernel.run_process(mac_view(), "mac2")
        assert abs(before - after) <= 4 * MIB

    def test_refresh_then_probe_sees_cold_files(self, kernel):
        """FLDC's refresh rewrites files; FCCD still reasons correctly
        about the rewritten (cached-from-copy) state."""
        def setup():
            yield sc.mkdir("/mnt0/d")
            yield from create_files("/mnt0/d", 4, 256 * KIB)
        kernel.run_process(setup(), "setup")

        def refresh():
            yield from FLDC().refresh_directory("/mnt0/d")
        kernel.run_process(refresh(), "refresh")
        # The copy just wrote every file: they are all cached.
        fccd = FCCD(rng=random.Random(1), access_unit_bytes=MIB,
                    prediction_unit_bytes=256 * KIB)

        def order():
            names = (yield sc.readdir("/mnt0/d")).value
            paths = [f"/mnt0/d/{n}" for n in names]
            _ordered, plans = yield from fccd.order_files(paths)
            return [plans[p].mean_probe_ns for p in paths]
        probe_times = kernel.run_process(order(), "order")
        assert all(t < 100_000 for t in probe_times)
