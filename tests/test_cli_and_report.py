"""The `python -m repro` CLI and the EXPERIMENTS.md report summaries."""

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.experiments.harness import FigureResult
from repro.experiments import report


class TestCli:
    def test_list_prints_catalogue(self, capsys):
        assert main(["repro", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig7", "table2", "ablation-threshold"):
            assert name in out

    def test_no_args_is_usage_error(self, capsys):
        assert main(["repro"]) == 2

    def test_unknown_name_is_error(self, capsys):
        assert main(["repro", "fig99"]) == 2
        assert "fig99" in capsys.readouterr().err

    def test_catalogue_covers_all_figures_tables_ablations(self):
        expected = {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "mac-available", "table1", "table2",
            "ablation-probe-placement", "ablation-threshold",
            "ablation-mac-increment", "ablation-refresh-policy",
            "extension-lfs", "robustness",
            "robustness-latency", "robustness-faults",
            "robustness-sched", "robustness-background",
        }
        assert set(EXPERIMENTS) == expected

    def test_running_a_cheap_experiment_prints_its_table(self, capsys):
        assert main(["repro", "table2"]) == 0
        out = capsys.readouterr().out
        assert "FCCD" in out and "Knowledge" in out


class TestReportSummaries:
    """Each summary function reads the columns its driver produces."""

    def test_fig2_summary_formats_ratios(self):
        result = FigureResult("fig2", "t", columns=[
            "size_mb", "linear_s", "gray_s", "model_worst_s", "model_ideal_s"
        ])
        result.add(size_mb=128, linear_s=7.5, gray_s=1.7,
                   model_worst_s=7.5, model_ideal_s=1.2)
        lines = report.fig2_summary(result)
        assert any("worst-case" in line for line in lines)
        assert any("4.4x" in line for line in lines)

    def test_fig3_summary_reads_normalized_times(self):
        result = FigureResult("fig3", "t", columns=["app", "variant", "time_s", "normalized"])
        for app, variant, norm in (
            ("grep", "unmodified", 1.0), ("grep", "gb-grep", 0.5),
            ("grep", "gbp-grep", 0.51), ("fastsort", "unmodified", 1.0),
            ("fastsort", "gb-fastsort", 0.6), ("fastsort", "gbp-fastsort", 0.62),
        ):
            result.add(app=app, variant=variant, time_s=norm, normalized=norm)
        lines = report.fig3_summary(result)
        assert any("0.50" in line for line in lines)

    def test_fig7_summary_identifies_cliff_and_mac(self):
        result = FigureResult("fig7", "t", columns=[
            "variant", "pass_mb", "time_s", "time_s_std",
            "mean_pass_mb", "overhead_s", "swapped_mb",
        ])
        result.add(variant="static", pass_mb=60, time_s=50.0, time_s_std=0,
                   mean_pass_mb=60, overhead_s=0, swapped_mb=0)
        result.add(variant="static", pass_mb=110, time_s=300.0, time_s_std=0,
                   mean_pass_mb=80, overhead_s=0, swapped_mb=1500)
        result.add(variant="gb-fastsort", pass_mb=0, time_s=75.0, time_s_std=0,
                   mean_pass_mb=85, overhead_s=2.0, swapped_mb=60)
        lines = report.fig7_summary(result)
        assert any("cliff" in line for line in lines)
        assert any("+50%" in line for line in lines)

    def test_mac_summary_one_line_per_row(self):
        result = FigureResult("mac", "t", columns=[
            "competitor_mb", "expected_mb", "granted_mb"
        ])
        result.add(competitor_mb=0, expected_mb=830, granted_mb=830.0)
        result.add(competitor_mb=300, expected_mb=530, granted_mb=504.0)
        assert len(report.mac_summary(result)) == 2

    def test_sections_cover_every_experiment(self):
        titles = [title for title, _d, _s in report.SECTIONS]
        assert len(titles) == 16
        assert any("Robustness" in t for t in titles)
        assert any("Figure 7" in t for t in titles)
        assert any("Table 1" in t for t in titles)
