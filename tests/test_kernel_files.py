"""Kernel file syscalls: semantics and timing behaviour."""

import pytest

from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from tests.conftest import MIB, small_config


def run(kernel, gen):
    return kernel.run_process(gen, "test")


class TestCreateReadWrite:
    def test_round_trip_real_content(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, b"hello world")
            yield sc.close(fd)
            fd = (yield sc.open("/mnt0/f")).value
            data = (yield sc.pread(fd, 0, 11)).value.data
            yield sc.close(fd)
            return data
        assert run(kernel, app()) == b"hello world"

    def test_synthetic_content_reports_lengths_only(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 5000)
            yield sc.close(fd)
            fd = (yield sc.open("/mnt0/f")).value
            result = (yield sc.pread(fd, 0, 10_000)).value
            yield sc.close(fd)
            return result
        result = run(kernel, app())
        assert result.nbytes == 5000
        assert result.data is None

    def test_sequential_read_moves_position(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, b"abcdef")
            yield sc.seek(fd, 0)
            first = (yield sc.read(fd, 3)).value.data
            second = (yield sc.read(fd, 3)).value.data
            eof = (yield sc.read(fd, 3)).value
            yield sc.close(fd)
            return first, second, eof.eof
        first, second, at_eof = run(kernel, app())
        assert (first, second, at_eof) == (b"abc", b"def", True)

    def test_pread_does_not_move_position(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, b"abcdef")
            yield sc.seek(fd, 0)
            yield sc.pread(fd, 3, 3)
            data = (yield sc.read(fd, 3)).value.data
            yield sc.close(fd)
            return data
        assert run(kernel, app()) == b"abc"

    def test_read_past_eof_truncates(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 100)
            result = (yield sc.pread(fd, 90, 50)).value
            yield sc.close(fd)
            return result.nbytes
        assert run(kernel, app()) == 10

    def test_overwrite_middle_of_file(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, b"aaaaaaaa")
            yield sc.pwrite(fd, 2, b"XY")
            data = (yield sc.pread(fd, 0, 8)).value.data
            yield sc.close(fd)
            return data
        assert run(kernel, app()) == b"aaXYaaaa"

    def test_write_extends_size(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.pwrite(fd, 10_000, 100)
            st = (yield sc.fstat(fd)).value
            yield sc.close(fd)
            return st.size
        assert run(kernel, app()) == 10_100

    def test_negative_offset_rejected(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 10)
            try:
                yield sc.pread(fd, -1, 5)
            except InvalidArgument:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_open_missing_file_raises_into_process(self, kernel):
        def app():
            try:
                yield sc.open("/mnt0/ghost")
            except FileNotFound:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_open_directory_rejected(self, kernel):
        def app():
            yield sc.mkdir("/mnt0/d")
            try:
                yield sc.open("/mnt0/d")
            except IsADirectory:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_create_duplicate_rejected(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.close(fd)
            try:
                yield sc.create("/mnt0/f")
            except FileExists:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_bad_fd_rejected(self, kernel):
        def app():
            try:
                yield sc.read(99, 10)
            except BadFileDescriptor:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_file_through_non_directory_component(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.close(fd)
            try:
                yield sc.open("/mnt0/f/inner")
            except NotADirectory:
                return "caught"
        assert run(kernel, app()) == "caught"


class TestTiming:
    def test_warm_read_is_orders_of_magnitude_faster_than_cold(self, kernel):
        def setup():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 4 * MIB)
            yield sc.fsync(fd)
            yield sc.close(fd)
        run(kernel, setup())
        kernel.oracle.flush_file_cache()

        def probe():
            fd = (yield sc.open("/mnt0/f")).value
            cold = (yield sc.pread(fd, 2 * MIB, 1)).elapsed_ns
            warm = (yield sc.pread(fd, 2 * MIB, 1)).elapsed_ns
            yield sc.close(fd)
            return cold, warm
        cold, warm = run(kernel, probe())
        assert cold > 100 * warm

    def test_elapsed_time_matches_clock_progress(self, kernel):
        def app():
            before = (yield sc.gettime()).value
            result = yield sc.sleep(1_000_000)
            after = (yield sc.gettime()).value
            return before, result.elapsed_ns, after
        before, elapsed, after = run(kernel, app())
        assert elapsed == 1_000_000
        assert after >= before + 1_000_000

    def test_larger_reads_cost_more_copy_time(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 2 * MIB)
            small = (yield sc.pread(fd, 0, 4096)).elapsed_ns
            large = (yield sc.pread(fd, 0, MIB)).elapsed_ns
            yield sc.close(fd)
            return small, large
        small, large = run(kernel, app())
        assert large > 10 * small


class TestMetadata:
    def test_stat_reports_identity_and_size(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 12345)
            yield sc.close(fd)
            return (yield sc.stat("/mnt0/f")).value
        st = run(kernel, app())
        assert st.size == 12345
        assert st.ino > 1
        assert st.kind.name == "FILE"

    def test_stat_inumbers_follow_creation_order(self, kernel):
        def app():
            inos = []
            for i in range(5):
                fd = (yield sc.create(f"/mnt0/f{i}")).value
                yield sc.close(fd)
            for i in range(5):
                inos.append((yield sc.stat(f"/mnt0/f{i}")).value.ino)
            return inos
        inos = run(kernel, app())
        assert inos == sorted(inos)

    def test_inode_times_have_second_resolution(self, kernel):
        """The paper's point: ctime cannot order rapid creations (§4.2.1)."""
        def app():
            ctimes = []
            for i in range(3):
                fd = (yield sc.create(f"/mnt0/f{i}")).value
                yield sc.close(fd)
                ctimes.append((yield sc.stat(f"/mnt0/f{i}")).value.ctime)
            return ctimes
        ctimes = run(kernel, app())
        assert len(set(ctimes)) == 1  # all within the same second

    def test_utimes_sets_times(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.close(fd)
            yield sc.utimes("/mnt0/f", 111, 222)
            return (yield sc.stat("/mnt0/f")).value
        st = run(kernel, app())
        assert (st.atime, st.mtime) == (111, 222)

    def test_readdir_returns_creation_order(self, kernel):
        def app():
            yield sc.mkdir("/mnt0/d")
            for name in ("z", "m", "a"):
                fd = (yield sc.create(f"/mnt0/d/{name}")).value
                yield sc.close(fd)
            return (yield sc.readdir("/mnt0/d")).value
        assert run(kernel, app()) == ["z", "m", "a"]

    def test_readdir_of_file_rejected(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.close(fd)
            try:
                yield sc.readdir("/mnt0/f")
            except NotADirectory:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_unlink_open_file_rejected(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            try:
                yield sc.unlink("/mnt0/f")
            except InvalidArgument:
                yield sc.close(fd)
                yield sc.unlink("/mnt0/f")
                return "unlinked-after-close"
        assert run(kernel, app()) == "unlinked-after-close"

    def test_unlink_drops_cached_pages(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, MIB)
            yield sc.close(fd)
        run(kernel, app())
        assert kernel.oracle.cached_fraction("/mnt0/f") > 0
        def unlink():
            yield sc.unlink("/mnt0/f")
        run(kernel, unlink())
        with pytest.raises(FileNotFound):
            kernel.oracle.inode_of("/mnt0/f")

    def test_rename_preserves_content(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/old")).value
            yield sc.write(fd, b"payload")
            yield sc.close(fd)
            yield sc.rename("/mnt0/old", "/mnt0/new")
            fd = (yield sc.open("/mnt0/new")).value
            data = (yield sc.pread(fd, 0, 7)).value.data
            yield sc.close(fd)
            return data
        assert run(kernel, app()) == b"payload"

    def test_rename_into_own_subtree_rejected(self, kernel):
        """mv /mnt0/a /mnt0/a/b/c at the syscall layer: InvalidArgument,
        and the tree is untouched afterwards."""
        def app():
            yield sc.mkdir("/mnt0/a")
            yield sc.mkdir("/mnt0/a/b")
            try:
                yield sc.rename("/mnt0/a", "/mnt0/a/b/c")
            except InvalidArgument:
                pass
            else:
                raise AssertionError("cycle-creating rename was accepted")
            # Both directories still resolve through their old paths.
            a = (yield sc.stat("/mnt0/a")).value
            b = (yield sc.stat("/mnt0/a/b")).value
            return a.kind.name, b.kind.name
        assert run(kernel, app()) == ("DIRECTORY", "DIRECTORY")

    def test_utimes_updates_ctime(self, kernel):
        """utimes sets atime/mtime from its arguments but must stamp
        ctime from *now* — the inode change itself is a change."""
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.close(fd)
            yield sc.sleep(3 * 10**9)  # move the clock past second 0
            yield sc.utimes("/mnt0/f", 111, 222)
            now_s = (yield sc.gettime()).value // 10**9
            st = (yield sc.stat("/mnt0/f")).value
            return st, now_s
        st, now_s = run(kernel, app())
        assert (st.atime, st.mtime) == (111, 222)
        assert st.ctime == now_s  # not 0 (creation), not 111/222 (args)

    def test_rename_across_mounts_rejected(self):
        kernel = Kernel(small_config(data_disks=2))
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.close(fd)
            try:
                yield sc.rename("/mnt0/f", "/mnt1/f")
            except InvalidArgument:
                return "caught"
        assert run(kernel, app()) == "caught"

    def test_fsync_writes_back_dirty_pages(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, MIB)
            flushed_once = (yield sc.fsync(fd)).value
            flushed_again = (yield sc.fsync(fd)).value
            yield sc.close(fd)
            return flushed_once, flushed_again
        first, second = run(kernel, app())
        assert first == MIB // kernel.config.page_size
        assert second == 0


class TestDirtyThrottle:
    def test_streaming_writer_recycles_its_own_pages(self):
        """A big streaming write must not purge another file's cache."""
        kernel = Kernel(small_config())
        def setup():
            fd = (yield sc.create("/mnt0/hot")).value
            yield sc.write(fd, 4 * MIB)
            yield sc.fsync(fd)
            yield sc.close(fd)
            fd = (yield sc.open("/mnt0/hot")).value  # re-read: hot & clean
            while not (yield sc.read(fd, MIB)).value.eof:
                pass
            yield sc.close(fd)
        kernel.run_process(setup(), "setup")
        assert kernel.oracle.cached_fraction("/mnt0/hot") == 1.0

        def stream():
            fd = (yield sc.create("/mnt0/stream")).value
            for _ in range(20):
                yield sc.write(fd, MIB)
            yield sc.close(fd)
        kernel.run_process(stream(), "stream")
        assert kernel.oracle.cached_fraction("/mnt0/hot") > 0.5
