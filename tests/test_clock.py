"""Clock invariants."""

import pytest

from repro.sim.clock import (
    MICROS,
    MILLIS,
    SECONDS,
    Clock,
    ns_to_seconds,
    seconds_to_ns,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_starts_at_given_time(self):
        assert Clock(start=42).now == 42

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(start=-1)

    def test_advance_moves_forward(self):
        clock = Clock()
        assert clock.advance(10) == 10
        assert clock.now == 10

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(3)
        clock.advance(4)
        assert clock.now == 7

    def test_advance_rejects_negative(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_zero_is_allowed(self):
        clock = Clock(start=5)
        assert clock.advance(0) == 5

    def test_advance_to_future(self):
        clock = Clock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_past_is_noop(self):
        clock = Clock(start=50)
        clock.advance_to(20)
        assert clock.now == 50

    def test_repr_mentions_time(self):
        assert "7" in repr(Clock(start=7))


class TestUnits:
    def test_unit_ratios(self):
        assert MICROS == 1_000
        assert MILLIS == 1_000 * MICROS
        assert SECONDS == 1_000 * MILLIS

    def test_ns_to_seconds(self):
        assert ns_to_seconds(SECONDS) == 1.0
        assert ns_to_seconds(500 * MILLIS) == 0.5

    def test_seconds_to_ns_round_trips(self):
        assert seconds_to_ns(1.5) == 1_500_000_000
        assert seconds_to_ns(ns_to_seconds(123456789)) == 123456789
