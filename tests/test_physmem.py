"""MemoryManager: pools, faults, reclaim, swap accounting."""

import pytest

from repro.sim.cache.base import AnonKey, FileKey, MetaKey
from repro.sim.config import MachineConfig, linux22, netbsd15
from repro.sim.errors import OutOfMemory
from repro.sim.vm.physmem import FaultKind, MemoryManager

KIB = 1024
MIB = 1024 * 1024


def make_mm(platform=linux22, available_mb: int = 1, page=4 * KIB) -> MemoryManager:
    config = MachineConfig(
        page_size=page,
        memory_bytes=(available_mb + 1) * MIB,
        kernel_reserved_bytes=1 * MIB,
        reclaim_batch_pages=4,
    )
    return MemoryManager(config, platform, swap_capacity_pages=10_000)


def fkey(i: int) -> FileKey:
    return FileKey(0, 1, i)


class TestUnifiedPools:
    def test_unified_flag(self):
        assert make_mm(linux22).unified
        assert not make_mm(netbsd15, available_mb=96).unified

    def test_file_and_anon_share_capacity_when_unified(self):
        mm = make_mm(linux22)
        assert mm.file_capacity_pages == mm.config.available_pages

    def test_netbsd_file_pool_is_fixed_64mb(self):
        mm = make_mm(netbsd15, available_mb=96)
        assert mm.file_capacity_pages == 64 * MIB // mm.config.page_size

    def test_netbsd_fixed_cache_must_fit(self):
        with pytest.raises(ValueError):
            make_mm(netbsd15, available_mb=32)  # 64 MB cache > 32 MB available


class TestFilePages:
    def test_insert_and_lookup(self):
        mm = make_mm()
        assert not mm.file_cached(fkey(0))
        mm.touch_file(fkey(0))
        assert mm.file_cached(fkey(0))

    def test_eviction_when_pool_full(self):
        mm = make_mm()
        cap = mm.file_capacity_pages
        victims = []
        for i in range(cap + 1):
            victims.extend(mm.touch_file(fkey(i)))
        assert victims  # something was reclaimed
        assert mm.file_pool_used() <= cap

    def test_reclaim_batches_at_least_configured_size(self):
        mm = make_mm()
        cap = mm.file_capacity_pages
        for i in range(cap):
            mm.touch_file(fkey(i))
        victims = mm.touch_file(fkey(cap))
        assert len(victims) >= mm.config.reclaim_batch_pages

    def test_dirty_counter_tracks_transitions(self):
        mm = make_mm()
        assert mm.dirty_file_pages == 0
        mm.touch_file(fkey(0), dirty=True)
        mm.touch_file(fkey(0), dirty=True)  # no double count
        assert mm.dirty_file_pages == 1
        mm.mark_file_clean(fkey(0))
        assert mm.dirty_file_pages == 0

    def test_drop_dirty_page_decrements_counter(self):
        mm = make_mm()
        mm.touch_file(fkey(0), dirty=True)
        mm.drop_file_page(fkey(0))
        assert mm.dirty_file_pages == 0

    def test_oldest_dirty_keys_in_order(self):
        mm = make_mm()
        mm.touch_file(fkey(0), dirty=True)
        mm.touch_file(fkey(1))
        mm.touch_file(fkey(2), dirty=True)
        assert mm.oldest_dirty_file_keys(5) == [fkey(0), fkey(2)]

    def test_writeback_complete_cleans_and_demotes(self):
        mm = make_mm()
        mm.touch_file(fkey(0), dirty=True)
        mm.writeback_complete(fkey(0))
        assert mm.dirty_file_pages == 0
        assert not mm.file_page_dirty(fkey(0))

    def test_meta_keys_live_in_file_pool(self):
        mm = make_mm()
        mm.touch_file(MetaKey(0, 3), dirty=True)
        assert mm.file_cached(MetaKey(0, 3))
        assert mm.dirty_file_pages == 1


class TestAnonFaults:
    def test_first_touch_zero_fills(self):
        mm = make_mm()
        fault = mm.anon_fault(AnonKey(1, 0), touched_before=False)
        assert fault.kind is FaultKind.ZERO_FILL

    def test_second_touch_is_resident(self):
        mm = make_mm()
        mm.anon_fault(AnonKey(1, 0), touched_before=False)
        fault = mm.anon_fault(AnonKey(1, 0), touched_before=True)
        assert fault.kind is FaultKind.RESIDENT

    def test_resident_counter(self):
        mm = make_mm()
        for i in range(5):
            mm.anon_fault(AnonKey(1, i), touched_before=False)
        assert mm.resident_anon_pages(1) == 5
        assert mm.resident_anon_pages(2) == 0

    def test_evicted_anon_page_swaps_in_on_return(self):
        mm = make_mm()
        cap = mm.file_capacity_pages
        first = AnonKey(1, 0)
        mm.anon_fault(first, touched_before=False)
        # Fill the rest of memory with anon pages to force the first out.
        for i in range(1, cap + mm.config.reclaim_batch_pages + 1):
            mm.anon_fault(AnonKey(1, i), touched_before=False)
        assert not mm.anon_resident(first)
        assert mm.swap.slot_of(first) is not None
        fault = mm.anon_fault(first, touched_before=True)
        assert fault.kind is FaultKind.SWAP_IN
        assert fault.swapin_slot is not None
        assert mm.swap.slot_of(first) is None  # slot released on swap-in

    def test_file_pages_evicted_before_anon_in_unified_pool(self):
        mm = make_mm()
        cap = mm.file_capacity_pages
        for i in range(cap // 2):
            mm.anon_fault(AnonKey(1, i), touched_before=False)
        victims = []
        for i in range(cap):
            victims.extend(mm.touch_file(fkey(i)))
        assert victims
        assert all(not isinstance(v.key, AnonKey) for v in victims)

    def test_free_anon_pages_releases_residency_and_swap(self):
        mm = make_mm()
        keys = [AnonKey(1, i) for i in range(4)]
        for key in keys:
            mm.anon_fault(key, touched_before=False)
        freed = mm.free_anon_pages(1, keys)
        assert freed == 4
        assert mm.resident_anon_pages(1) == 0

    def test_release_process_clears_everything(self):
        mm = make_mm()
        keys = [AnonKey(7, i) for i in range(3)]
        for key in keys:
            mm.anon_fault(key, touched_before=False)
        mm.release_process(7, keys)
        assert mm.resident_anon_pages(7) == 0
        assert all(not mm.anon_resident(k) for k in keys)


class TestDaemonStats:
    def test_activation_and_counter_accounting(self):
        mm = make_mm()
        cap = mm.file_capacity_pages
        for i in range(cap + 1):
            mm.touch_file(fkey(i), dirty=(i % 2 == 0))
        stats = mm.daemon_stats
        assert stats.activations >= 1
        assert stats.pages_reclaimed >= mm.config.reclaim_batch_pages
        assert stats.file_pages_written + stats.file_pages_dropped == stats.pages_reclaimed

    def test_snapshot_delta(self):
        mm = make_mm()
        cap = mm.file_capacity_pages
        for i in range(cap + 1):
            mm.touch_file(fkey(i))
        before = mm.daemon_stats.snapshot()
        for i in range(cap + 1, cap + 200):
            mm.touch_file(fkey(i))
        delta = mm.daemon_stats.delta(before)
        assert delta.pages_reclaimed > 0
        assert delta.pages_reclaimed <= mm.daemon_stats.pages_reclaimed


class TestOutOfMemory:
    def test_oom_when_nothing_reclaimable(self):
        config = MachineConfig(
            page_size=4 * KIB,
            memory_bytes=2 * MIB,
            kernel_reserved_bytes=1 * MIB,
        )
        mm = MemoryManager(config, linux22, swap_capacity_pages=4)
        cap = config.available_pages
        with pytest.raises(OutOfMemory):
            # Swap has only 4 slots; filling memory with anon twice over
            # must eventually exhaust it.
            for i in range(3 * cap):
                mm.anon_fault(AnonKey(1, i), touched_before=False)
