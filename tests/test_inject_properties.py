"""Property tests for the injection layer's determinism contract.

The claim under test: a :class:`FaultInjector` is a pure function of
``(seed, config)``.  For *any* configuration Hypothesis can build —
arbitrary jitter, spikes, fault rates, scheduler jitter, interference
mixes — two runs of the same seeded workload produce a byte-identical
fault schedule, an identical machine state, and an identical
observability record stream.  A companion test pushes the same claim
through the parallel trial runner: ``--jobs N`` must not change a bit.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.experiments import runner
from repro.experiments.robustness import (
    _fldc_robustness_trial,
    small_trial_config,
)
from repro.experiments.runner import TrialSpec, run_trials
from repro.sim import (
    FaultInjector,
    InjectionConfig,
    InterferenceSpec,
    Kernel,
    LatencyNoise,
    MILLIS,
    TransientFaults,
)
from repro.sim.inject import horizon_after
from tests.conftest import small_config
from tests.test_kernel_fuzz import chaos_process, probe_process, state_digest

latency_specs = st.builds(
    LatencyNoise,
    jitter_ns=st.integers(min_value=0, max_value=60_000),
    spike_prob=st.floats(min_value=0.0, max_value=0.25, allow_nan=False),
    spike_ns=st.integers(min_value=0, max_value=8 * MILLIS),
    granularity_ns=st.integers(min_value=0, max_value=25_000),
)

fault_specs = st.builds(
    TransientFaults,
    fail_prob=st.floats(min_value=0.0, max_value=0.2, allow_nan=False),
    errno=st.sampled_from(["EAGAIN", "EINTR"]),
    max_consecutive=st.integers(min_value=1, max_value=3),
)

interference_specs = st.lists(
    st.builds(
        InterferenceSpec,
        kind=st.sampled_from(
            ["cache_dirtier", "cpu_hog", "memory_hog", "dir_ager"]
        ),
        intensity=st.floats(min_value=0.1, max_value=1.0, allow_nan=False),
    ),
    max_size=2,
).map(tuple)

injection_configs = st.builds(
    InjectionConfig,
    seed=st.integers(min_value=0, max_value=2 ** 48),
    latency=st.none() | latency_specs,
    touch_latency=st.none() | latency_specs,
    faults=st.none() | fault_specs,
    sched_jitter_ns=st.integers(min_value=0, max_value=80_000),
    interference=interference_specs,
)


def _run_instrumented(config: InjectionConfig, seed: int):
    """One noisy machine run; returns every observable byte of it."""
    kernel = Kernel(small_config())
    injector = FaultInjector(config)
    injector.install(kernel)
    injector.spawn_interference(kernel, horizon_after(kernel, 30 * MILLIS))
    kernel.spawn(chaos_process(seed, 15), "chaos")
    kernel.spawn(probe_process(seed, 6, batch=bool(seed % 2)), "probe")
    kernel.run()
    records = json.dumps(list(kernel.obs.dump_records()), sort_keys=True)
    return (
        kernel.clock.now,
        state_digest(kernel),
        list(injector.schedule),
        injector.schedule_digest(),
        records,
    )


@settings(max_examples=15, deadline=None)
@given(config=injection_configs, seed=st.integers(min_value=0, max_value=10 ** 6))
def test_same_seed_and_config_replays_byte_identically(config, seed):
    first = _run_instrumented(config, seed)
    second = _run_instrumented(config, seed)
    assert first[2] == second[2], f"fault schedules diverged (seed={seed})"
    assert first == second, f"replay diverged (seed={seed}, config={config})"


@settings(max_examples=8, deadline=None)
@given(
    config=injection_configs.filter(
        lambda c: c.faults is not None and c.faults.fail_prob > 0.01
    ),
    seed=st.integers(min_value=0, max_value=10 ** 6),
)
def test_different_injection_seeds_draw_different_streams(config, seed):
    """Distinct seeds must not share a fault/jitter stream (the whole
    point of seeding); identical streams would silently correlate
    every trial of a sweep."""
    import dataclasses

    twin = dataclasses.replace(config, seed=config.seed + 1)
    ours = FaultInjector(config)
    theirs = FaultInjector(twin)
    ours_draws = [ours._stream("fault", "stat").next_float() for _ in range(64)]
    theirs_draws = [
        theirs._stream("fault", "stat").next_float() for _ in range(64)
    ]
    assert ours_draws != theirs_draws, f"seed={config.seed}"


def _fldc_specs():
    config = small_trial_config()
    return [
        TrialSpec(
            experiment_id="inject-prop-jobs",
            trial_index=trial,
            fn=_fldc_robustness_trial,
            params=dict(config=config, level=0.5, hardened=True),
            seed=1000 + trial,
        )
        for trial in range(4)
    ]


def test_trials_identical_across_parallel_runners(tmp_path):
    """jobs=1 and jobs=2 produce bit-identical trial values: the fault
    schedule is derived from the spec seed, never from worker state."""
    with runner.configuration(jobs=1, use_cache=False):
        serial = run_trials(_fldc_specs())
    with runner.configuration(jobs=2, use_cache=False):
        parallel = run_trials(_fldc_specs())
    assert json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )
