"""Syscall tracing facility."""

import random

import pytest

from repro.icl.fccd import FCCD
from repro.sim import Kernel, syscalls as sc
from repro.sim.trace import SyscallTrace
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


class TestTraceBasics:
    def test_records_syscalls_in_order(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 100)
            yield sc.close(fd)
        kernel.run_process(app(), "writer")
        names = [r.syscall for r in trace]
        assert names == ["create", "write", "close"]
        trace.remove()

    def test_records_carry_process_identity_and_timing(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            yield sc.sleep(5_000)
        kernel.run_process(app(), "sleeper")
        record = trace.by_syscall("sleep")[0]
        assert record.process_name == "sleeper"
        assert record.elapsed_ns == 5_000
        assert "sleep" in str(record)

    def test_counts_and_totals(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            for _ in range(3):
                yield sc.sleep(1_000)
            yield sc.gettime()
        kernel.run_process(app(), "app")
        assert trace.counts() == {"sleep": 3, "gettime": 1}
        assert trace.total_elapsed_ns("sleep") == 3_000
        assert len(trace) == 4

    def test_by_process_filters(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            yield sc.sleep(10)
        kernel.spawn(app(), "a")
        kernel.spawn(app(), "b")
        kernel.run()
        assert len(trace.by_process("a")) == 1
        assert len(trace.by_process("b")) == 1

    def test_capacity_bounds_memory(self, kernel):
        trace = SyscallTrace(capacity=5).install(kernel)

        def app():
            for _ in range(20):
                yield sc.gettime()
        kernel.run_process(app(), "app")
        assert len(trace) == 5
        assert len(trace.tail(3)) == 3

    def test_remove_stops_recording(self, kernel):
        trace = SyscallTrace().install(kernel)
        trace.remove()

        def app():
            yield sc.sleep(1)
        kernel.run_process(app(), "app")
        assert len(trace) == 0

    def test_double_install_rejected(self, kernel):
        trace = SyscallTrace().install(kernel)
        with pytest.raises(RuntimeError):
            SyscallTrace().install(kernel)
        with pytest.raises(RuntimeError):
            trace.install(kernel)
        trace.remove()

    def test_context_manager_detaches(self, kernel):
        with SyscallTrace().install(kernel) as trace:
            def app():
                yield sc.sleep(1)
            kernel.run_process(app(), "app")
            assert len(trace) == 1
        def app2():
            yield sc.sleep(1)
        kernel.run_process(app2(), "app2")
        assert len(trace) == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SyscallTrace(capacity=0)


class TestBlockingSyscallsRecordedOnce:
    """A syscall that blocks is re-executed by the kernel on every
    wakeup; the trace must record it once, not once per attempt."""

    def test_blocking_pipe_read_appears_exactly_once(self, kernel):
        def writer(w_fd):
            yield sc.sleep(2_000_000)  # let the reader block first
            yield sc.write(w_fd, 100)
            yield sc.close(w_fd)

        def reader(r_fd):
            result = (yield sc.read(r_fd, 100)).value
            yield sc.close(r_fd)
            return result.nbytes

        pipe = kernel.make_pipe()
        trace = SyscallTrace().install(kernel)
        kernel.spawn_with_pipe_ends(lambda w: writer(w), [(pipe, "pipe_w")], "w")
        cons = kernel.spawn_with_pipe_ends(lambda r: reader(r), [(pipe, "pipe_r")], "r")
        kernel.run()
        assert cons.result == 100
        reads = [r for r in trace.by_process("r") if r.syscall == "read"]
        assert len(reads) == 1
        trace.remove()

    def test_blocked_read_start_ns_is_first_attempt(self, kernel):
        def writer(w_fd):
            yield sc.sleep(5_000_000)
            yield sc.write(w_fd, 10)
            yield sc.close(w_fd)

        def reader(r_fd):
            yield sc.read(r_fd, 10)
            yield sc.close(r_fd)

        pipe = kernel.make_pipe()
        trace = SyscallTrace().install(kernel)
        kernel.spawn_with_pipe_ends(lambda w: writer(w), [(pipe, "pipe_w")], "w")
        kernel.spawn_with_pipe_ends(lambda r: reader(r), [(pipe, "pipe_r")], "r")
        kernel.run()
        record = [r for r in trace.by_process("r") if r.syscall == "read"][0]
        # The read was attempted immediately but could only complete
        # after the writer's 5ms sleep; start_ns must reflect the first
        # attempt, keeping the blocked interval visible.
        assert record.start_ns < 5_000_000
        trace.remove()

    def test_blocking_waitpid_appears_exactly_once(self, kernel):
        def child():
            yield sc.sleep(3_000_000)
            return "done"

        def parent():
            pid = (yield sc.spawn(child(), "child")).value
            return (yield sc.waitpid(pid)).value

        trace = SyscallTrace().install(kernel)
        assert kernel.run_process(parent(), "parent") == "done"
        assert trace.counts()["waitpid"] == 1
        trace.remove()

    def test_contended_pipe_traffic_counts_completed_calls(self, kernel):
        """Producer/consumer with capacity stalls on both sides: the
        trace holds exactly one record per *completed* call, no matter
        how often either side blocked and retried."""
        from repro.sim.proc.process import PipeBuffer

        total = PipeBuffer.CAPACITY * 3
        calls = {"write": 0, "read": 0}

        def producer(w_fd):
            sent = 0
            while sent < total:
                calls["write"] += 1
                sent += (yield sc.write(w_fd, total - sent)).value
            yield sc.close(w_fd)
            return sent

        def consumer(r_fd):
            yield sc.sleep(10_000_000)
            while True:
                calls["read"] += 1
                result = (yield sc.read(r_fd, PipeBuffer.CAPACITY)).value
                if result.eof:
                    break
            yield sc.close(r_fd)
            return "drained"

        pipe = kernel.make_pipe()
        trace = SyscallTrace().install(kernel)
        prod = kernel.spawn_with_pipe_ends(lambda w: producer(w), [(pipe, "pipe_w")], "p")
        kernel.spawn_with_pipe_ends(lambda r: consumer(r), [(pipe, "pipe_r")], "c")
        kernel.run()
        assert prod.result == total
        writes = [r for r in trace.by_process("p") if r.syscall == "write"]
        reads = [r for r in trace.by_process("c") if r.syscall == "read"]
        assert len(writes) == calls["write"]
        assert len(reads) == calls["read"]
        trace.remove()


class TestRemoveSafety:
    def test_remove_detects_rewrapped_execute(self, kernel):
        trace = SyscallTrace().install(kernel)
        inner = kernel._execute

        def outer(process, syscall):
            return inner(process, syscall)

        kernel._execute = outer
        with pytest.raises(RuntimeError, match="re-wrapped"):
            trace.remove()
        # Unwind the outer wrapper and removal succeeds.
        kernel._execute = inner
        trace.remove()
        assert kernel._trace is None

    def test_context_manager_does_not_mask_body_exception(self, kernel):
        with pytest.raises(ValueError, match="body failure"):
            with SyscallTrace().install(kernel):
                inner = kernel._execute
                kernel._execute = lambda p, s: inner(p, s)
                raise ValueError("body failure")
        # The trace is still attached (detach failed); restore by hand.
        kernel._execute = inner
        kernel._trace.remove()

    def test_context_manager_raises_on_clean_exit_if_rewrapped(self, kernel):
        with pytest.raises(RuntimeError, match="re-wrapped"):
            with SyscallTrace().install(kernel):
                inner = kernel._execute
                kernel._execute = lambda p, s: inner(p, s)
        kernel._execute = inner
        kernel._trace.remove()


class TestTraceAsDebuggingTool:
    def test_fccd_probe_pattern_is_visible(self, kernel):
        """The trace shows FCCD issuing exactly one pread per window."""
        kernel.run_process(make_file("/mnt0/f", 8 * MIB), "setup")
        trace = SyscallTrace().install(kernel)
        fccd = FCCD(
            rng=random.Random(1),
            access_unit_bytes=4 * MIB,
            prediction_unit_bytes=1 * MIB,
            batch_probes=False,  # per-probe records are the point here
        )

        def app():
            return (yield from fccd.plan_file("/mnt0/f"))
        kernel.run_process(app(), "prober")
        probes = [r for r in trace.by_syscall("pread") if r.args[2] == 1]
        assert len(probes) == 8  # 8 MiB / 1 MiB prediction units
        offsets = [r.args[1] for r in probes]
        assert offsets == sorted(offsets)
        trace.remove()

    def test_exceptions_do_not_break_tracing(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            try:
                yield sc.open("/mnt0/ghost")
            except Exception:
                pass
            yield sc.sleep(1)
        kernel.run_process(app(), "app")
        assert trace.counts()["open"] == 1
        assert trace.counts()["sleep"] == 1
        trace.remove()
