"""Syscall tracing facility."""

import random

import pytest

from repro.icl.fccd import FCCD
from repro.sim import Kernel, syscalls as sc
from repro.sim.trace import SyscallTrace
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


class TestTraceBasics:
    def test_records_syscalls_in_order(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 100)
            yield sc.close(fd)
        kernel.run_process(app(), "writer")
        names = [r.syscall for r in trace]
        assert names == ["create", "write", "close"]
        trace.remove()

    def test_records_carry_process_identity_and_timing(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            yield sc.sleep(5_000)
        kernel.run_process(app(), "sleeper")
        record = trace.by_syscall("sleep")[0]
        assert record.process_name == "sleeper"
        assert record.elapsed_ns == 5_000
        assert "sleep" in str(record)

    def test_counts_and_totals(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            for _ in range(3):
                yield sc.sleep(1_000)
            yield sc.gettime()
        kernel.run_process(app(), "app")
        assert trace.counts() == {"sleep": 3, "gettime": 1}
        assert trace.total_elapsed_ns("sleep") == 3_000
        assert len(trace) == 4

    def test_by_process_filters(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            yield sc.sleep(10)
        kernel.spawn(app(), "a")
        kernel.spawn(app(), "b")
        kernel.run()
        assert len(trace.by_process("a")) == 1
        assert len(trace.by_process("b")) == 1

    def test_capacity_bounds_memory(self, kernel):
        trace = SyscallTrace(capacity=5).install(kernel)

        def app():
            for _ in range(20):
                yield sc.gettime()
        kernel.run_process(app(), "app")
        assert len(trace) == 5
        assert len(trace.tail(3)) == 3

    def test_remove_stops_recording(self, kernel):
        trace = SyscallTrace().install(kernel)
        trace.remove()

        def app():
            yield sc.sleep(1)
        kernel.run_process(app(), "app")
        assert len(trace) == 0

    def test_double_install_rejected(self, kernel):
        trace = SyscallTrace().install(kernel)
        with pytest.raises(RuntimeError):
            SyscallTrace().install(kernel)
        with pytest.raises(RuntimeError):
            trace.install(kernel)
        trace.remove()

    def test_context_manager_detaches(self, kernel):
        with SyscallTrace().install(kernel) as trace:
            def app():
                yield sc.sleep(1)
            kernel.run_process(app(), "app")
            assert len(trace) == 1
        def app2():
            yield sc.sleep(1)
        kernel.run_process(app2(), "app2")
        assert len(trace) == 1

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SyscallTrace(capacity=0)


class TestTraceAsDebuggingTool:
    def test_fccd_probe_pattern_is_visible(self, kernel):
        """The trace shows FCCD issuing exactly one pread per window."""
        kernel.run_process(make_file("/mnt0/f", 8 * MIB), "setup")
        trace = SyscallTrace().install(kernel)
        fccd = FCCD(
            rng=random.Random(1),
            access_unit_bytes=4 * MIB,
            prediction_unit_bytes=1 * MIB,
        )

        def app():
            return (yield from fccd.plan_file("/mnt0/f"))
        kernel.run_process(app(), "prober")
        probes = [r for r in trace.by_syscall("pread") if r.args[2] == 1]
        assert len(probes) == 8  # 8 MiB / 1 MiB prediction units
        offsets = [r.args[1] for r in probes]
        assert offsets == sorted(offsets)
        trace.remove()

    def test_exceptions_do_not_break_tracing(self, kernel):
        trace = SyscallTrace().install(kernel)

        def app():
            try:
                yield sc.open("/mnt0/ghost")
            except Exception:
                pass
            yield sc.sleep(1)
        kernel.run_process(app(), "app")
        assert trace.counts()["open"] == 1
        assert trace.counts()["sleep"] == 1
        trace.remove()
