"""Platform-personality behaviours the paper observed, at unit scale."""

import pytest

from repro.sim import Kernel, MachineConfig, linux22, netbsd15, solaris7
from repro.sim import syscalls as sc
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


def scan(kernel, path, unit=1 * MIB):
    def app():
        t0 = (yield sc.gettime()).value
        fd = (yield sc.open(path)).value
        while not (yield sc.read(fd, unit)).value.eof:
            pass
        yield sc.close(fd)
        return (yield sc.gettime()).value - t0
    return kernel.run_process(app(), "scan")


class TestLinux22:
    def test_repeated_overcache_scan_is_lru_worst_case(self):
        kernel = Kernel(small_config(memory_bytes=24 * MIB, kernel_reserved_bytes=8 * MIB))
        kernel.run_process(make_file("/mnt0/f", 24 * MIB), "setup")
        kernel.oracle.flush_file_cache()
        first = scan(kernel, "/mnt0/f")
        second = scan(kernel, "/mnt0/f")
        # Warm run is no faster: every page was evicted before reuse.
        assert second > 0.9 * first

    def test_file_fitting_cache_stays_hot(self):
        kernel = Kernel(small_config())
        kernel.run_process(make_file("/mnt0/f", 4 * MIB), "setup")
        kernel.oracle.flush_file_cache()
        first = scan(kernel, "/mnt0/f")
        second = scan(kernel, "/mnt0/f")
        assert second < first / 10


class TestNetbsd15:
    def _kernel(self):
        return Kernel(
            small_config(memory_bytes=96 * MIB, kernel_reserved_bytes=8 * MIB),
            platform=netbsd15,
        )

    def test_file_cache_capped_at_64mb(self):
        kernel = self._kernel()
        kernel.run_process(make_file("/mnt0/f", 80 * MIB), "setup")
        used = kernel.oracle.file_pool_used_pages() * kernel.config.page_size
        assert used <= 64 * MIB

    def test_file_within_fixed_cache_is_hot(self):
        kernel = self._kernel()
        kernel.run_process(make_file("/mnt0/f", 32 * MIB), "setup")
        kernel.oracle.flush_file_cache()
        first = scan(kernel, "/mnt0/f")
        second = scan(kernel, "/mnt0/f")
        assert second < first / 10

    def test_anon_memory_does_not_shrink_file_cache(self):
        kernel = self._kernel()
        kernel.run_process(make_file("/mnt0/f", 32 * MIB), "setup")
        cached_before = kernel.oracle.cached_fraction("/mnt0/f")

        def hog():
            pages = 20 * MIB // kernel.config.page_size
            region = (yield sc.vm_alloc(20 * MIB)).value
            yield sc.touch_range(region, 0, pages)
        kernel.run_process(hog(), "hog")
        # Split pools: the heap cannot evict file pages.
        assert kernel.oracle.cached_fraction("/mnt0/f") == cached_before


class TestSolaris7:
    def _kernel(self, memory_mb=40):
        return Kernel(
            small_config(memory_bytes=memory_mb * MIB, kernel_reserved_bytes=8 * MIB),
            platform=solaris7,
        )

    def test_first_file_portion_is_hard_to_dislodge(self):
        """§4.1.3: 'once a file is placed in the Solaris file cache, it
        is quite difficult to dislodge, even under repeated scans of
        different files.'"""
        kernel = self._kernel()
        kernel.run_process(make_file("/mnt0/first", 16 * MIB), "setup")
        kernel.oracle.flush_file_cache()
        scan(kernel, "/mnt0/first")
        held_before = kernel.oracle.cached_fraction("/mnt0/first")
        for i in range(3):
            kernel.run_process(make_file(f"/mnt0/later{i}", 24 * MIB), "setup")
            scan(kernel, f"/mnt0/later{i}")
        assert kernel.oracle.cached_fraction("/mnt0/first") >= 0.9 * held_before

    def test_oversized_scan_keeps_a_prefix_resident(self):
        """The cache keeps 'a single portion of the file' so repeated
        scans hit — unlike the LRU worst case."""
        kernel = self._kernel()
        kernel.run_process(make_file("/mnt0/big", 48 * MIB), "setup")
        kernel.oracle.flush_file_cache()
        first = scan(kernel, "/mnt0/big")
        cached = kernel.oracle.cached_file_pages("/mnt0/big")
        assert cached  # a contiguous prefix survived
        assert 0 in cached
        second = scan(kernel, "/mnt0/big")
        assert second < 0.8 * first

    def test_small_files_packed_loosely(self):
        kernel = self._kernel()
        tight = Kernel(small_config(), platform=linux22)
        for k in (kernel, tight):
            def setup():
                yield sc.mkdir("/mnt0/d")
                for i in range(10):
                    yield from make_file(f"/mnt0/d/f{i}", 8 * KIB, sync=False)
            k.run_process(setup(), "setup")
        span = lambda k: (
            max(b for i in range(10) for b in k.oracle.file_blocks(f"/mnt0/d/f{i}"))
            - min(b for i in range(10) for b in k.oracle.file_blocks(f"/mnt0/d/f{i}"))
        )
        assert span(kernel) > span(tight)
