"""The LFS extension: log layout and the FLDC knowledge-module swap."""

import random

import pytest

from repro.icl.fldc import FLDC
from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import NoSpace
from repro.sim.fs.ffs import ROOT_INO, FFS
from repro.sim.fs.inode import FileKind
from repro.sim.fs.lfs import LogStructuredFS
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config

SECOND = 1_000_000_000


def lfs_kernel():
    return Kernel(small_config(), fs_class=LogStructuredFS)


class TestLogAllocator:
    def _fs(self, total=4096):
        return LogStructuredFS(
            fs_id=0, total_blocks=total, block_bytes=4096,
            blocks_per_cg=1024, inodes_per_cg=64,
        )

    def test_blocks_appended_in_write_order(self):
        fs = self._fs()
        first = fs.alloc_blocks(5, preferred_cg=3, hint=None)
        second = fs.alloc_blocks(5, preferred_cg=0, hint=2000)
        combined = first + second
        assert combined == sorted(combined)
        assert second[0] > first[-1]  # hints and groups are ignored

    def test_log_skips_inode_tables(self):
        fs = self._fs()
        many = fs.alloc_blocks(1500, preferred_cg=0)
        for block in many:
            cg = fs.cg_of_block(block)
            assert block >= cg.data_first

    def test_freed_blocks_are_not_reused(self):
        fs = self._fs()
        first = fs.alloc_blocks(4, preferred_cg=0)
        fs.free_block_list(first)
        again = fs.alloc_blocks(4, preferred_cg=0)
        assert not set(first) & set(again)

    def test_log_exhaustion_raises(self):
        fs = self._fs(total=1024)
        with pytest.raises(NoSpace):
            fs.alloc_blocks(10_000, preferred_cg=0)

    def test_namespace_still_works(self):
        fs = self._fs()
        inode = fs.create(ROOT_INO, "f", FileKind.FILE, now_ns=0)
        fs.grow_to_size(inode, 3 * 4096)
        assert len(inode.blocks) == 3
        fs.unlink(ROOT_INO, "f", now_ns=0)


class TestKnowledgeModuleSwap:
    def _setup_rewritten_files(self, kernel):
        """Create files in one order, then rewrite them in another order
        seconds apart — on LFS the *rewrite* order is the layout order."""
        paths = [f"/mnt0/f{i}" for i in range(12)]

        def create_all():
            for path in paths:
                yield from make_file(path, 16 * KIB, sync=False)
        kernel.run_process(create_all(), "create")

        rewrite_order = list(paths)
        random.Random(4).shuffle(rewrite_order)
        for path in rewrite_order:
            kernel.oracle.advance_time(2 * SECOND)

            def rewrite(path=path):
                fd = (yield sc.open(path)).value
                yield sc.pwrite(fd, 0, 16 * KIB)
                yield sc.close(fd)
            kernel.run_process(rewrite(), "rewrite")
        return paths, rewrite_order

    def test_write_time_order_matches_lfs_layout(self):
        kernel = lfs_kernel()
        paths, rewrite_order = self._setup_rewritten_files(kernel)
        fldc = FLDC()

        def order():
            return (yield from fldc.write_time_order(paths))
        ordered, _stats = kernel.run_process(order(), "order")
        assert ordered == rewrite_order
        # And it genuinely matches on-disk order.
        true_order = sorted(paths, key=lambda p: kernel.oracle.file_blocks(p)[0])
        assert ordered == true_order

    def test_inumber_order_fails_on_lfs(self):
        """The FFS knowledge module applied to LFS orders wrongly."""
        kernel = lfs_kernel()
        paths, rewrite_order = self._setup_rewritten_files(kernel)
        fldc = FLDC()

        def order():
            return (yield from fldc.layout_order(paths))
        ordered, _stats = kernel.run_process(order(), "order")
        true_order = sorted(paths, key=lambda p: kernel.oracle.file_blocks(p)[0])
        assert ordered != true_order

    def test_write_time_order_reads_faster_than_inumber_on_lfs(self):
        kernel = lfs_kernel()
        paths, _rewrite = self._setup_rewritten_files(kernel)
        fldc = FLDC()

        def read_in(order_fn):
            def app():
                order, _stats = yield from order_fn(paths)
                t0 = (yield sc.gettime()).value
                for path in order:
                    fd = (yield sc.open(path)).value
                    while not (yield sc.read(fd, 64 * KIB)).value.eof:
                        pass
                    yield sc.close(fd)
                return (yield sc.gettime()).value - t0
            kernel.oracle.flush_file_cache()
            return kernel.run_process(app(), "read")

        inumber_ns = read_in(fldc.layout_order)
        write_time_ns = read_in(fldc.write_time_order)
        assert write_time_ns < inumber_ns

    def test_write_time_order_matches_inumber_on_fresh_ffs(self):
        """On FFS the two knowledge modules agree for fresh directories."""
        kernel = Kernel(small_config(), fs_class=FFS)
        paths = [f"/mnt0/f{i}" for i in range(6)]

        def create_all():
            for path in paths:
                yield from make_file(path, 16 * KIB, sync=False)
        kernel.run_process(create_all(), "create")
        fldc = FLDC()

        def orders():
            a, _ = yield from fldc.layout_order(paths)
            b, _ = yield from fldc.write_time_order(paths)
            return a, b
        by_ino, by_time = kernel.run_process(orders(), "order")
        assert by_ino == by_time == paths
