"""Applications: scan, grep, search, fastsort — correctness and behaviour."""

import random

import pytest

from repro.apps.fastsort import (
    RECORD_BYTES,
    fastsort_read_phase,
    fccd_fastsort_read_phase,
    gb_fastsort_read_phase,
    merge_runs,
    set_static_buffer_page,
)
from repro.apps.grep import gb_grep, gbp_grep, grep
from repro.apps.scan import gray_scan, linear_scan, multi_file_scan
from repro.apps.search import gb_search, search
from repro.icl.fccd import FCCD
from repro.icl.mac import MAC
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import make_file
from repro.workloads.records import is_sorted_records, make_record_blob
from repro.workloads.text import make_text_with_matches
from tests.conftest import KIB, MIB, small_config


@pytest.fixture(autouse=True)
def _page(kernel):
    set_static_buffer_page(kernel.config.page_size)


def fccd_small():
    return FCCD(
        rng=random.Random(3), access_unit_bytes=2 * MIB, prediction_unit_bytes=512 * KIB
    )


class TestScan:
    def test_linear_scan_reads_everything(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 5 * MIB), "setup")

        def app():
            return (yield from linear_scan("/mnt0/f"))
        report = kernel.run_process(app(), "scan")
        assert report.bytes_read == 5 * MIB
        assert report.bandwidth_bytes_per_s > 0

    def test_gray_scan_reads_everything_too(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 5 * MIB), "setup")

        def app():
            return (yield from gray_scan("/mnt0/f", fccd_small()))
        report = kernel.run_process(app(), "scan")
        assert report.bytes_read == 5 * MIB
        assert report.probe_ns > 0

    def test_gray_scan_beats_linear_on_repeated_runs(self):
        """The Figure 2 comparison at test scale: steady-state warm runs."""
        kernel = Kernel(small_config(memory_bytes=20 * MIB, kernel_reserved_bytes=8 * MIB))
        kernel.run_process(make_file("/mnt0/f", 20 * MIB), "setup")

        def measure(factory):
            return kernel.run_process(factory(), "scan").elapsed_ns
        measure(lambda: linear_scan("/mnt0/f"))  # settle
        linear_ns = measure(lambda: linear_scan("/mnt0/f"))
        measure(lambda: gray_scan("/mnt0/f", fccd_small()))  # settle
        gray_ns = measure(lambda: gray_scan("/mnt0/f", fccd_small()))
        assert gray_ns < 0.8 * linear_ns

    def test_multi_file_scan(self, kernel):
        paths = []
        for i in range(3):
            kernel.run_process(make_file(f"/mnt0/f{i}", MIB), "setup")
            paths.append(f"/mnt0/f{i}")

        def app():
            return (yield from multi_file_scan(paths))
        report = kernel.run_process(app(), "scan")
        assert report.bytes_read == 3 * MIB


class TestGrep:
    def test_counts_real_matches(self, kernel):
        text = make_text_with_matches(256 * KIB, b"NEEDLE", [100, 5000, 200_000])
        kernel.run_process(make_file("/mnt0/f", text), "setup")

        def app():
            return (yield from grep(["/mnt0/f"], pattern=b"NEEDLE"))
        report = kernel.run_process(app(), "grep")
        assert report.matches == 3
        assert report.bytes_scanned == 256 * KIB

    def test_finds_match_straddling_read_boundary(self, kernel):
        unit = 64 * KIB
        text = make_text_with_matches(2 * unit, b"XSPANX", [unit - 3])
        kernel.run_process(make_file("/mnt0/f", text), "setup")

        def app():
            return (yield from grep(["/mnt0/f"], pattern=b"XSPANX", unit=unit))
        report = kernel.run_process(app(), "grep")
        assert report.matches == 1

    def test_gb_grep_same_matches_different_order(self, kernel):
        paths = []
        for i in range(4):
            text = make_text_with_matches(128 * KIB, b"PAT", [10 + i])
            kernel.run_process(make_file(f"/mnt0/f{i}", text), "setup")
            paths.append(f"/mnt0/f{i}")
        kernel.oracle.flush_file_cache()

        def warm():
            fd = (yield sc.open(paths[2])).value
            yield sc.pread(fd, 0, 128 * KIB)
            yield sc.close(fd)
        kernel.run_process(warm(), "warm")

        def app():
            return (yield from gb_grep(paths, pattern=b"PAT", fccd=fccd_small()))
        report = kernel.run_process(app(), "grep")
        assert report.matches == 4
        assert report.paths[0] == paths[2]  # cached file visited first

    def test_gbp_grep_matches_gb_grep_results(self, kernel):
        paths = []
        for i in range(3):
            text = make_text_with_matches(128 * KIB, b"PAT", [50])
            kernel.run_process(make_file(f"/mnt0/f{i}", text), "setup")
            paths.append(f"/mnt0/f{i}")

        def app():
            return (yield from gbp_grep(paths, pattern=b"PAT", fccd=fccd_small()))
        report = kernel.run_process(app(), "grep")
        assert report.matches == 3


class TestSearch:
    def test_stops_at_first_match(self, kernel):
        paths = []
        for i in range(5):
            content = (
                make_text_with_matches(64 * KIB, b"HIT", [1000])
                if i == 2
                else 64 * KIB
            )
            kernel.run_process(make_file(f"/mnt0/f{i}", content), "setup")
            paths.append(f"/mnt0/f{i}")

        def app():
            return (yield from search(paths, pattern=b"HIT"))
        report = kernel.run_process(app(), "search")
        assert report.found_in == paths[2]
        assert report.visited == paths[:3]

    def test_synthetic_match_path(self, kernel):
        paths = []
        for i in range(4):
            kernel.run_process(make_file(f"/mnt0/f{i}", 64 * KIB), "setup")
            paths.append(f"/mnt0/f{i}")

        def app():
            return (yield from search(paths, match_path=paths[1]))
        report = kernel.run_process(app(), "search")
        assert report.found_in == paths[1]
        assert report.visited == paths[:2]

    def test_gb_search_visits_cached_match_early(self, kernel):
        paths = []
        for i in range(6):
            kernel.run_process(make_file(f"/mnt0/f{i}", 256 * KIB), "setup")
            paths.append(f"/mnt0/f{i}")
        kernel.oracle.flush_file_cache()
        match = paths[-1]

        def warm():
            fd = (yield sc.open(match)).value
            yield sc.pread(fd, 0, 256 * KIB)
            yield sc.close(fd)
        kernel.run_process(warm(), "warm")

        def unmodified():
            return (yield from search(paths, match_path=match))
        def gray():
            return (yield from gb_search(paths, match_path=match, fccd=fccd_small()))
        slow = kernel.run_process(unmodified(), "search")
        # Reset to the same initial state: only the match file cached.
        kernel.oracle.flush_file_cache()
        kernel.run_process(warm(), "rewarm")
        fast = kernel.run_process(gray(), "gb-search")
        assert fast.found_in == match
        assert len(fast.visited) == 1
        assert fast.elapsed_ns < slow.elapsed_ns / 2


class TestFastsort:
    def _write_records(self, kernel, path, nrecords):
        blob = make_record_blob(nrecords, rng=random.Random(1))
        kernel.run_process(make_file(path, blob), "setup")
        return blob

    def test_sorts_real_records(self, kernel):
        self._write_records(kernel, "/mnt0/in", 3000)

        def setup():
            yield sc.mkdir("/mnt0/runs")
        kernel.run_process(setup(), "mkdir")

        def app():
            return (
                yield from fastsort_read_phase(
                    "/mnt0/in", "/mnt0/runs", pass_bytes=1000 * RECORD_BYTES
                )
            )
        report = kernel.run_process(app(), "sort")
        assert report.records == 3000
        assert len(report.run_paths) == 3
        assert report.pass_bytes == [1000 * RECORD_BYTES] * 3

        def check_runs():
            sorted_flags = []
            for path in report.run_paths:
                fd = (yield sc.open(path)).value
                data = (yield sc.pread(fd, 0, 1000 * RECORD_BYTES)).value.data
                yield sc.close(fd)
                sorted_flags.append(is_sorted_records(data))
            return sorted_flags
        assert all(kernel.run_process(check_runs(), "check"))

    def test_merge_produces_single_sorted_output(self, kernel):
        self._write_records(kernel, "/mnt0/in", 1200)

        def setup():
            yield sc.mkdir("/mnt0/runs")
        kernel.run_process(setup(), "mkdir")

        def phase1():
            return (
                yield from fastsort_read_phase(
                    "/mnt0/in", "/mnt0/runs", pass_bytes=400 * RECORD_BYTES
                )
            )
        report = kernel.run_process(phase1(), "sort")

        def phase2():
            return (yield from merge_runs(report.run_paths, "/mnt0/out"))
        total = kernel.run_process(phase2(), "merge")
        assert total == 1200 * RECORD_BYTES

        def check():
            fd = (yield sc.open("/mnt0/out")).value
            data = (yield sc.pread(fd, 0, 1200 * RECORD_BYTES)).value.data
            yield sc.close(fd)
            return data
        data = kernel.run_process(check(), "check")
        assert len(data) == 1200 * RECORD_BYTES
        assert is_sorted_records(data)

    def test_fccd_variant_preserves_record_count(self, kernel):
        self._write_records(kernel, "/mnt0/in", 2000)

        def setup():
            yield sc.mkdir("/mnt0/runs")
        kernel.run_process(setup(), "mkdir")

        def app():
            return (
                yield from fccd_fastsort_read_phase(
                    "/mnt0/in", "/mnt0/runs", 800 * RECORD_BYTES, fccd_small()
                )
            )
        report = kernel.run_process(app(), "sort")
        assert report.records == 2000

    def test_gb_fastsort_adapts_and_completes(self, kernel):
        def setup():
            yield sc.mkdir("/mnt0/runs")
            yield from make_file("/mnt0/in", 8 * MIB - (8 * MIB) % RECORD_BYTES)
        kernel.run_process(setup(), "setup")
        mac = MAC(
            page_size=kernel.config.page_size,
            initial_increment_bytes=512 * KIB,
            max_increment_bytes=2 * MIB,
        )

        def app():
            return (
                yield from gb_fastsort_read_phase(
                    "/mnt0/in", "/mnt0/runs", mac, min_pass_bytes=512 * KIB
                )
            )
        report = kernel.run_process(app(), "sort")
        assert sum(report.pass_bytes) == 8 * MIB - (8 * MIB) % RECORD_BYTES
        assert report.mac_probe_ns > 0
        assert mac.stats.grants == len(report.pass_bytes)

    def test_rejects_tiny_pass(self, kernel):
        def app():
            yield from fastsort_read_phase("/mnt0/in", "/mnt0/runs", pass_bytes=50)
        with pytest.raises(ValueError):
            kernel.run_process(app(), "sort")
