"""FLDC: layout detection via i-numbers and the directory refresh."""

import random

import pytest

from repro.icl.fldc import FLDC
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import age_directory, create_files, make_file
from tests.conftest import KIB, MIB, small_config


@pytest.fixture
def fldc():
    return FLDC()


def populate(kernel, directory, count, size, names=None):
    def setup():
        yield sc.mkdir(directory)
        return (yield from create_files(directory, count, size, names=names))
    return kernel.run_process(setup(), "setup")


def read_all(kernel, order):
    def run():
        t0 = (yield sc.gettime()).value
        for path in order:
            fd = (yield sc.open(path)).value
            while not (yield sc.read(fd, 64 * KIB)).value.eof:
                pass
            yield sc.close(fd)
        return (yield sc.gettime()).value - t0
    return kernel.run_process(run(), "read")


class TestDetection:
    def test_layout_order_matches_true_block_order(self, kernel, fldc):
        paths = populate(kernel, "/mnt0/d", 20, 8 * KIB)
        shuffled = list(paths)
        random.Random(3).shuffle(shuffled)

        def order():
            return (yield from fldc.layout_order(shuffled))
        ordered, stats = kernel.run_process(order(), "order")
        true_order = sorted(paths, key=lambda p: kernel.oracle.file_blocks(p)[0])
        assert ordered == true_order

    def test_stat_results_expose_inumbers_only(self, kernel, fldc):
        paths = populate(kernel, "/mnt0/d", 3, 8 * KIB)

        def order():
            return (yield from fldc.stat_files(paths))
        stats = kernel.run_process(order(), "order")
        for path in paths:
            assert stats[path].ino > 0
            assert not hasattr(stats[path], "blocks")  # no layout leak

    def test_directory_order_groups_by_directory(self, fldc):
        paths = [
            "/mnt0/b/x", "/mnt0/a/z", "/mnt0/b/a", "/mnt0/a/q",
        ]
        ordered = FLDC.directory_order(paths)
        assert ordered == ["/mnt0/a/q", "/mnt0/a/z", "/mnt0/b/a", "/mnt0/b/x"]

    def test_inumber_order_beats_random_on_fresh_directory(self, kernel, fldc):
        names = [f"n{i * 37 % 50:02d}" for i in range(50)]
        paths = populate(kernel, "/mnt0/d", 50, 8 * KIB, names=names)
        rng = random.Random(5)
        shuffled = list(paths)
        rng.shuffle(shuffled)
        kernel.oracle.flush_file_cache()
        random_ns = read_all(kernel, shuffled)
        kernel.oracle.flush_file_cache()

        def ordered_run():
            order, _stats = yield from fldc.layout_order(shuffled)
            return order
        order = kernel.run_process(ordered_run(), "o")
        kernel.oracle.flush_file_cache()
        inumber_ns = read_all(kernel, order)
        assert random_ns > 2.5 * inumber_ns


class TestRefresh:
    def test_refresh_preserves_names_content_and_times(self, kernel, fldc):
        def setup():
            yield sc.mkdir("/mnt0/d")
            yield from make_file("/mnt0/d/a", b"alpha-content")
            yield from make_file("/mnt0/d/b", b"beta")
            yield sc.utimes("/mnt0/d/a", 100, 200)
        kernel.run_process(setup(), "setup")

        def refresh():
            return (yield from fldc.refresh_directory("/mnt0/d"))
        report = kernel.run_process(refresh(), "refresh")
        assert report.files_moved == 2
        assert report.bytes_copied == len(b"alpha-content") + len(b"beta")

        def verify():
            names = (yield sc.readdir("/mnt0/d")).value
            # stat before reading: a read would update atime, as on UNIX.
            st = (yield sc.stat("/mnt0/d/a")).value
            fd = (yield sc.open("/mnt0/d/a")).value
            data = (yield sc.pread(fd, 0, 100)).value.data
            yield sc.close(fd)
            return names, data, st
        names, data, st = kernel.run_process(verify(), "verify")
        assert sorted(names) == ["a", "b"]
        assert data == b"alpha-content"
        assert (st.atime, st.mtime) == (100, 200)  # make(1) still works

    def test_refresh_orders_small_files_first(self, kernel, fldc):
        def setup():
            yield sc.mkdir("/mnt0/d")
            yield from make_file("/mnt0/d/big", 64 * KIB)
            yield from make_file("/mnt0/d/small", 4 * KIB)
            yield from make_file("/mnt0/d/mid", 16 * KIB)
        kernel.run_process(setup(), "setup")

        def refresh():
            return (yield from fldc.refresh_directory("/mnt0/d"))
        report = kernel.run_process(refresh(), "refresh")
        assert report.order == ["small", "mid", "big"]

        def stat_all():
            stats = {}
            for name in ("small", "mid", "big"):
                stats[name] = (yield sc.stat(f"/mnt0/d/{name}")).value.ino
            return stats
        inos = kernel.run_process(stat_all(), "stat")
        assert inos["small"] < inos["mid"] < inos["big"]

    def test_refresh_with_explicit_order(self, kernel, fldc):
        populate(kernel, "/mnt0/d", 3, 8 * KIB)

        def refresh():
            return (
                yield from fldc.refresh_directory(
                    "/mnt0/d", order=["f0002", "f0000", "f0001"]
                )
            )
        report = kernel.run_process(refresh(), "refresh")
        assert report.order == ["f0002", "f0000", "f0001"]

    def test_explicit_order_must_cover_directory(self, kernel, fldc):
        populate(kernel, "/mnt0/d", 3, 8 * KIB)

        def refresh():
            try:
                yield from fldc.refresh_directory("/mnt0/d", order=["f0000"])
            except ValueError:
                return "caught"
        assert kernel.run_process(refresh(), "refresh") == "caught"

    def test_refresh_rejects_subdirectories(self, kernel, fldc):
        def setup():
            yield sc.mkdir("/mnt0/d")
            yield sc.mkdir("/mnt0/d/sub")
        kernel.run_process(setup(), "setup")

        def refresh():
            try:
                yield from fldc.refresh_directory("/mnt0/d")
            except ValueError:
                return "caught"
        assert kernel.run_process(refresh(), "refresh") == "caught"

    def test_refresh_restores_aged_performance(self, kernel, fldc):
        """The Figure 6 story, end to end, asserted on simulated time."""
        paths = populate(kernel, "/mnt0/d", 40, 8 * KIB)
        rng = random.Random(11)

        def ordered_time():
            kernel_names = None

            def run():
                names = (yield sc.readdir("/mnt0/d")).value
                order, _stats = yield from fldc.layout_order(
                    [f"/mnt0/d/{n}" for n in names]
                )
                t0 = (yield sc.gettime()).value
                for path in order:
                    fd = (yield sc.open(path)).value
                    while not (yield sc.read(fd, 64 * KIB)).value.eof:
                        pass
                    yield sc.close(fd)
                return (yield sc.gettime()).value - t0
            kernel.oracle.flush_file_cache()
            return kernel.run_process(run(), "run")

        fresh_ns = ordered_time()
        kernel.run_process(
            age_directory("/mnt0/d", 20, rng, create_size=8 * KIB), "age"
        )
        aged_ns = ordered_time()
        assert aged_ns > 1.5 * fresh_ns

        def refresh():
            yield from fldc.refresh_directory("/mnt0/d")
        kernel.run_process(refresh(), "refresh")
        restored_ns = ordered_time()
        assert restored_ns < 1.3 * fresh_ns
