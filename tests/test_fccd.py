"""FCCD: probe-based cache-content detection validated against the oracle."""

import random

import pytest

from repro.icl.fccd import (
    DEFAULT_ACCESS_UNIT,
    FAKE_HIGH_PROBE_NS,
    FCCD,
    SAFE_PROBE_MIN_BYTES,
)
from repro.sim import Kernel, syscalls as sc
from repro.toolbox.repository import ParameterRepository
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


@pytest.fixture
def fccd():
    return FCCD(
        rng=random.Random(7), access_unit_bytes=2 * MIB, prediction_unit_bytes=512 * KIB
    )


def build_file(kernel, path, nbytes):
    kernel.run_process(make_file(path, nbytes), "setup")


def warm_range(kernel, path, offset, nbytes):
    def warm():
        fd = (yield sc.open(path)).value
        yield sc.pread(fd, offset, nbytes)
        yield sc.close(fd)
    kernel.run_process(warm(), "warm")


class TestConfiguration:
    def test_defaults_from_paper(self):
        layer = FCCD()
        assert layer.access_unit_bytes == DEFAULT_ACCESS_UNIT  # 20 MB
        assert layer.prediction_unit_bytes == 5 * MIB

    def test_access_unit_from_repository(self):
        repo = ParameterRepository()
        repo.set("fccd.access_unit_bytes", 8 * MIB)
        assert FCCD(repository=repo).access_unit_bytes == 8 * MIB

    def test_prediction_unit_cannot_exceed_access_unit(self):
        with pytest.raises(ValueError):
            FCCD(access_unit_bytes=MIB, prediction_unit_bytes=2 * MIB)

    def test_nonpositive_units_rejected(self):
        with pytest.raises(ValueError):
            FCCD(access_unit_bytes=0)


class TestSegmentGeometry:
    def test_segments_cover_file_exactly(self, fccd):
        size = 7 * MIB + 123
        segments = fccd.segments_of(size)
        assert segments[0][0] == 0
        assert sum(length for _o, length in segments) == size
        for (o1, l1), (o2, _l2) in zip(segments, segments[1:]):
            assert o1 + l1 == o2

    def test_alignment_respected(self, fccd):
        segments = fccd.segments_of(5 * MIB, align=100)
        for offset, length in segments[:-1]:
            assert offset % 100 == 0
            assert length % 100 == 0

    def test_small_file_single_segment(self, fccd):
        assert fccd.segments_of(100) == [(0, 100)]

    def test_bad_alignment_rejected(self, fccd):
        with pytest.raises(ValueError):
            fccd.segments_of(MIB, align=0)


class TestProbing:
    def test_detects_cached_prefix(self, config, fccd):
        kernel = Kernel(config)
        build_file(kernel, "/mnt0/f", 16 * MIB)
        kernel.oracle.flush_file_cache()
        warm_range(kernel, "/mnt0/f", 0, 6 * MIB)

        def probe():
            return (yield from fccd.plan_file("/mnt0/f"))
        plan = kernel.run_process(probe(), "probe")
        ordered = plan.ordered_segments()
        fast = [s.offset for s in ordered[:3]]
        assert set(fast) == {0, 2 * MIB, 4 * MIB}
        assert ordered[-1].probe_ns > 100 * ordered[0].probe_ns

    def test_ordered_ranges_cover_whole_file(self, config, fccd):
        kernel = Kernel(config)
        build_file(kernel, "/mnt0/f", 9 * MIB)

        def probe():
            return (yield from fccd.best_ranges("/mnt0/f"))
        ranges = kernel.run_process(probe(), "probe")
        assert sum(length for _o, length in ranges) == 9 * MIB
        assert sorted(o for o, _l in ranges) == [
            i * 2 * MIB for i in range(len(ranges))
        ]

    def test_sub_page_file_not_probed(self, config, fccd):
        """The Heisenberg guard: tiny files report a fake high time."""
        kernel = Kernel(config)
        build_file(kernel, "/mnt0/tiny", SAFE_PROBE_MIN_BYTES - 1)
        kernel.oracle.flush_file_cache()

        def probe():
            return (yield from fccd.plan_file("/mnt0/tiny"))
        plan = kernel.run_process(probe(), "probe")
        assert plan.segments[0].probe_ns == FAKE_HIGH_PROBE_NS
        assert plan.segments[0].probes == 0
        # Probing must not have pulled the file into the cache.
        assert kernel.oracle.cached_fraction("/mnt0/tiny") == 0.0

    def test_probe_is_cheap_relative_to_reading(self, config, fccd):
        kernel = Kernel(config)
        build_file(kernel, "/mnt0/f", 16 * MIB)

        def probe():
            t0 = (yield sc.gettime()).value
            yield from fccd.plan_file("/mnt0/f")
            return (yield sc.gettime()).value - t0
        probe_ns = kernel.run_process(probe(), "probe")
        # Warm probes of a 16 MB file: a handful of microsecond reads.
        assert probe_ns < 1_000_000

    def test_random_probe_placement_varies(self, config):
        layer_a = FCCD(rng=random.Random(1), access_unit_bytes=2 * MIB)
        layer_b = FCCD(rng=random.Random(2), access_unit_bytes=2 * MIB)
        points_a = layer_a._probe_points(0, 2 * MIB, 2 * MIB)
        points_b = layer_b._probe_points(0, 2 * MIB, 2 * MIB)
        assert points_a != points_b


class TestFileOrdering:
    def test_cached_files_ordered_first(self, config, fccd):
        kernel = Kernel(config)
        paths = [f"/mnt0/f{i}" for i in range(6)]
        for path in paths:
            build_file(kernel, path, 2 * MIB)
        kernel.oracle.flush_file_cache()
        for path in (paths[4], paths[1]):
            warm_range(kernel, path, 0, 2 * MIB)

        def order():
            return (yield from fccd.order_files(paths))
        ordered, plans = kernel.run_process(order(), "order")
        assert set(ordered[:2]) == {paths[1], paths[4]}
        assert set(ordered) == set(paths)

    def test_ties_preserve_command_line_order(self, config, fccd):
        kernel = Kernel(config)
        paths = [f"/mnt0/f{i}" for i in range(4)]
        for path in paths:
            build_file(kernel, path, 2 * MIB)
        # Everything cached: every probe is a memory hit, i.e. a tie.
        for path in paths:
            warm_range(kernel, path, 0, 2 * MIB)

        def order():
            return (yield from fccd.order_files(paths))
        ordered, _plans = kernel.run_process(order(), "order")
        assert ordered == paths  # ties keep the command-line order

    def test_positive_feedback_stabilizes_ordering(self, config, fccd):
        """Repeated gray-box access keeps the same files cached (§2.2)."""
        kernel = Kernel(config.scaled(memory_bytes=12 * MIB, kernel_reserved_bytes=4 * MIB))
        paths = [f"/mnt0/f{i}" for i in range(8)]
        for path in paths:
            build_file(kernel, path, 2 * MIB)
        kernel.oracle.flush_file_cache()

        def gray_pass():
            t0 = (yield sc.gettime()).value
            ordered, _ = yield from fccd.order_files(paths)
            for path in ordered:
                fd = (yield sc.open(path)).value
                while not (yield sc.read(fd, MIB)).value.eof:
                    pass
                yield sc.close(fd)
            return (yield sc.gettime()).value - t0
        first = kernel.run_process(gray_pass(), "p1")
        later = [kernel.run_process(gray_pass(), f"p{i}") for i in range(2, 6)]
        # Warm gray-box passes are faster than the cold one, and their
        # times settle (feedback keeps the cache contents predictable).
        assert max(later) < first
        assert max(later) < 1.5 * min(later)
