"""The model-based strawman: right with full visibility, wrong without."""

import random

import pytest

from repro.icl.fccd import FCCD
from repro.icl.model_fccd import ModelFCCD
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


def build(kernel, path, nbytes):
    kernel.run_process(make_file(path, nbytes), "setup")


class TestMirror:
    def test_validation(self):
        with pytest.raises(ValueError):
            ModelFCCD(capacity_bytes=0, page_size=4096)

    def test_tracks_observed_reads_exactly(self, kernel):
        build(kernel, "/mnt0/f", 8 * 4 * KIB)
        kernel.oracle.flush_file_cache()
        model = ModelFCCD(kernel.config.available_bytes, kernel.config.page_size)

        def client():
            fd = (yield sc.open("/mnt0/f")).value
            yield from model.read(fd, "/mnt0/f", 0, 3 * 4 * KIB)
            yield sc.close(fd)
        kernel.run_process(client(), "client")
        report = model.report("/mnt0/f", 8 * 4 * KIB)
        assert report.predicted_cached_pages == {0, 1, 2}
        # And it matches ground truth while every input is observed.
        assert report.predicted_cached_pages == kernel.oracle.cached_file_pages(
            "/mnt0/f"
        )

    def test_mirror_evicts_lru_within_capacity(self):
        model = ModelFCCD(capacity_bytes=4 * 4096, page_size=4096)
        model._touch_pages("a", 0, 4 * 4096)
        model._touch_pages("b", 0, 2 * 4096)
        report_a = model.report("a", 4 * 4096)
        assert report_a.predicted_cached_pages == {2, 3}
        assert model.mirrored_pages == 4

    def test_forget_file(self):
        model = ModelFCCD(capacity_bytes=16 * 4096, page_size=4096)
        model._touch_pages("a", 0, 4 * 4096)
        model.forget_file("a")
        assert model.mirrored_pages == 0

    def test_order_files_most_cached_first(self):
        model = ModelFCCD(capacity_bytes=64 * 4096, page_size=4096)
        model._touch_pages("cold", 0, 0)
        model._touch_pages("half", 0, 2 * 4096)
        model._touch_pages("hot", 0, 4 * 4096)
        ordered = model.order_files(
            [("cold", 4 * 4096), ("half", 4 * 4096), ("hot", 4 * 4096)]
        )
        assert ordered == ["hot", "half", "cold"]


class TestVisibilityArgument:
    """§4.1.1's claim, measured: the simulation is only as good as its
    view of the inputs."""

    def _predicted_vs_truth(self, kernel, model, path, size):
        report = model.report(path, size)
        truth = kernel.oracle.cached_file_pages(path)
        predicted = report.predicted_cached_pages
        union = predicted | truth
        if not union:
            return 1.0
        return len(predicted & truth) / len(union)

    def test_accurate_while_all_inputs_observed(self, kernel):
        build(kernel, "/mnt0/f", 2 * MIB)
        kernel.oracle.flush_file_cache()
        model = ModelFCCD(kernel.config.available_bytes, kernel.config.page_size)

        def client():
            fd = (yield sc.open("/mnt0/f")).value
            rng = random.Random(3)
            for _ in range(30):
                offset = rng.randrange(0, 2 * MIB - 64 * KIB)
                yield from model.read(fd, "/mnt0/f", offset, 64 * KIB)
            yield sc.close(fd)
        kernel.run_process(client(), "client")
        assert self._predicted_vs_truth(kernel, model, "/mnt0/f", 2 * MIB) > 0.95

    def test_rots_when_an_unobserved_process_interferes(self):
        kernel = Kernel(small_config(memory_bytes=24 * MIB, kernel_reserved_bytes=8 * MIB))
        build(kernel, "/mnt0/mine", 8 * MIB)
        build(kernel, "/mnt0/theirs", 14 * MIB)
        kernel.oracle.flush_file_cache()
        model = ModelFCCD(kernel.config.available_bytes, kernel.config.page_size)

        def client():
            fd = (yield sc.open("/mnt0/mine")).value
            yield from model.read(fd, "/mnt0/mine", 0, 8 * MIB)
            yield sc.close(fd)
        kernel.run_process(client(), "client")
        assert self._predicted_vs_truth(kernel, model, "/mnt0/mine", 8 * MIB) > 0.9

        # A process the model cannot see floods the cache.
        def stranger():
            fd = (yield sc.open("/mnt0/theirs")).value
            while not (yield sc.read(fd, MIB)).value.eof:
                pass
            yield sc.close(fd)
        kernel.run_process(stranger(), "stranger")

        accuracy = self._predicted_vs_truth(kernel, model, "/mnt0/mine", 8 * MIB)
        assert accuracy < 0.5  # the mirror still says "all cached"; it is not

        # Probe-based FCCD, asked the same question, stays correct.
        fccd = FCCD(rng=random.Random(1), access_unit_bytes=2 * MIB,
                    prediction_unit_bytes=512 * KIB)

        def probe():
            plan = yield from fccd.plan_file("/mnt0/mine")
            return [s for s in plan.segments if s.mean_probe_ns < 1_000_000]
        fast_segments = kernel.run_process(probe(), "probe")
        truth_fraction = kernel.oracle.cached_fraction("/mnt0/mine")
        probed_fraction = sum(s.length for s in fast_segments) / (8 * MIB)
        assert abs(probed_fraction - truth_fraction) < 0.3
