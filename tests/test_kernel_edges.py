"""Kernel corner cases not covered elsewhere."""

import pytest

from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import InvalidArgument
from tests.conftest import KIB, MIB, small_config


def run(kernel, gen):
    return kernel.run_process(gen, "test")


class TestReadModifyWrite:
    def test_partial_overwrite_of_cold_page_reads_it_first(self, kernel):
        def setup():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 8 * KIB)
            yield sc.fsync(fd)
            yield sc.close(fd)
        run(kernel, setup())
        kernel.oracle.flush_file_cache()
        stats = kernel.oracle.disk_stats(0)
        before = stats.sectors_read

        def partial_write():
            fd = (yield sc.open("/mnt0/f")).value
            yield sc.pwrite(fd, 100, 50)  # middle of page 0
            yield sc.close(fd)
        run(kernel, partial_write())
        assert stats.sectors_read > before  # RMW read happened

    def test_full_page_overwrite_skips_the_read(self, kernel):
        page = kernel.config.page_size

        def setup():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.write(fd, 4 * page)
            yield sc.fsync(fd)
            yield sc.close(fd)
        run(kernel, setup())
        kernel.oracle.flush_file_cache()
        stats = kernel.oracle.disk_stats(0)
        marks = {}

        def full_write():
            fd = (yield sc.open("/mnt0/f")).value  # resolve reads metadata
            marks["before"] = stats.sectors_read
            yield sc.pwrite(fd, 0, page)  # exactly page 0
            marks["after"] = stats.sectors_read
            yield sc.close(fd)
        run(kernel, full_write())
        assert marks["after"] == marks["before"]  # no RMW read needed


class TestSparseAndZero:
    def test_write_far_past_eof_creates_hole_pages(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            yield sc.pwrite(fd, 64 * KIB, 10)
            st = (yield sc.fstat(fd)).value
            data = (yield sc.pread(fd, 0, 10)).value
            yield sc.close(fd)
            return st.size, data.nbytes
        size, readable = run(kernel, app())
        assert size == 64 * KIB + 10
        assert readable == 10  # hole region reads as data (zeroes)

    def test_zero_length_write_is_noop(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            wrote = (yield sc.write(fd, 0)).value
            st = (yield sc.fstat(fd)).value
            yield sc.close(fd)
            return wrote, st.size
        assert run(kernel, app()) == (0, 0)

    def test_read_of_empty_file_is_eof(self, kernel):
        def app():
            fd = (yield sc.create("/mnt0/f")).value
            result = (yield sc.read(fd, 100)).value
            yield sc.close(fd)
            return result.eof
        assert run(kernel, app()) is True


class TestMetadataCaching:
    def test_repeated_stats_hit_the_inode_cache(self, kernel):
        def setup():
            yield sc.mkdir("/mnt0/d")
            for i in range(8):
                fd = (yield sc.create(f"/mnt0/d/f{i}")).value
                yield sc.close(fd)
        run(kernel, setup())
        kernel.oracle.flush_file_cache()

        def stat_twice():
            first = (yield sc.stat("/mnt0/d/f3")).elapsed_ns
            second = (yield sc.stat("/mnt0/d/f3")).elapsed_ns
            return first, second
        first, second = run(kernel, stat_twice())
        assert first > 20 * second  # cold resolve vs cached metadata

    def test_stats_of_neighbouring_files_share_inode_blocks(self, kernel):
        """The §4.2.2 observation: stat of one file makes its neighbours'
        stats cheap because 32 inodes share a table block."""
        def setup():
            yield sc.mkdir("/mnt0/d")
            for i in range(8):
                fd = (yield sc.create(f"/mnt0/d/f{i}")).value
                yield sc.close(fd)
        run(kernel, setup())
        kernel.oracle.flush_file_cache()

        def stat_all():
            times = []
            for i in range(8):
                times.append((yield sc.stat(f"/mnt0/d/f{i}")).elapsed_ns)
            return times
        times = run(kernel, stat_all())
        assert min(times[1:]) < times[0] / 10


class TestComputeAndSleep:
    def test_negative_arguments_rejected(self, kernel):
        for syscall in (sc.compute(-1), sc.sleep(-1)):
            def app(syscall=syscall):
                try:
                    yield syscall
                except InvalidArgument:
                    return "caught"
            assert run(kernel, app()) == "caught"

    def test_compute_zero_is_fine(self, kernel):
        def app():
            result = yield sc.compute(0)
            return result.elapsed_ns
        assert run(kernel, app()) >= 0


class TestMultiDisk:
    def test_mounts_map_to_distinct_disks(self):
        kernel = Kernel(small_config(data_disks=3))

        def app():
            for i in range(3):
                fd = (yield sc.create(f"/mnt{i}/f")).value
                yield sc.write(fd, MIB)
                yield sc.fsync(fd)
                yield sc.close(fd)
        kernel.run_process(app(), "app")
        for i in range(3):
            assert kernel.oracle.disk_stats(i).sectors_written > 0

    def test_parallel_io_on_distinct_disks_overlaps(self):
        kernel = Kernel(small_config(data_disks=2))

        def setup(i):
            fd = (yield sc.create(f"/mnt{i}/f")).value
            yield sc.write(fd, 8 * MIB)
            yield sc.fsync(fd)
            yield sc.close(fd)
        for i in range(2):
            kernel.run_process(setup(i), f"s{i}")
        kernel.oracle.flush_file_cache()

        def reader(i):
            fd = (yield sc.open(f"/mnt{i}/f")).value
            while not (yield sc.read(fd, MIB)).value.eof:
                pass
            yield sc.close(fd)
        start = kernel.clock.now
        kernel.spawn(reader(0), "r0")
        kernel.spawn(reader(1), "r1")
        kernel.run()
        both = kernel.clock.now - start

        kernel2 = Kernel(small_config(data_disks=2))
        for i in range(2):
            kernel2.run_process(setup(i), f"s{i}")
        kernel2.oracle.flush_file_cache()
        start = kernel2.clock.now
        kernel2.run_process(reader(0), "r0")
        kernel2.run_process(reader(1), "r1")
        serial = kernel2.clock.now - start
        assert both < 0.75 * serial  # true overlap across spindles
