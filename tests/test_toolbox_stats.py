"""Statistics routines, with hypothesis checks against the stdlib."""

import math
import statistics

import pytest
from hypothesis import given, settings, strategies as st

from repro.toolbox.stats import (
    OnlineStats,
    SampleStats,
    exponential_average,
    linear_regression,
    pearson_correlation,
    sign_test,
)

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.variance == 0.0

    def test_single_value(self):
        stats = OnlineStats()
        stats.add(5.0)
        assert stats.mean == 5.0
        assert stats.stdev == 0.0
        assert stats.minimum == stats.maximum == 5.0

    def test_known_values(self):
        stats = OnlineStats().extend([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(statistics.variance(
            [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]))

    @settings(max_examples=60, deadline=None)
    @given(values=st.lists(floats, min_size=2, max_size=50))
    def test_matches_statistics_module(self, values):
        stats = OnlineStats().extend(values)
        assert stats.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-9)
        assert stats.variance == pytest.approx(
            statistics.variance(values), abs=1e-5, rel=1e-6
        )
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @settings(max_examples=60, deadline=None)
    @given(
        left=st.lists(floats, min_size=1, max_size=30),
        right=st.lists(floats, min_size=1, max_size=30),
    )
    def test_merge_equals_single_accumulator(self, left, right):
        merged = OnlineStats().extend(left).merge(OnlineStats().extend(right))
        whole = OnlineStats().extend(left + right)
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean, abs=1e-6, rel=1e-9)
        assert merged.variance == pytest.approx(whole.variance, abs=1e-4, rel=1e-6)

    def test_merge_with_empty(self):
        stats = OnlineStats().extend([1.0, 2.0])
        merged = stats.merge(OnlineStats())
        assert merged.mean == pytest.approx(1.5)


class TestSampleStats:
    def test_median_odd_and_even(self):
        assert SampleStats([3, 1, 2]).median == 2
        assert SampleStats([4, 1, 2, 3]).median == 2.5

    def test_percentiles(self):
        stats = SampleStats(list(range(101)))
        assert stats.percentile(0) == 0
        assert stats.percentile(50) == 50
        assert stats.percentile(100) == 100

    def test_percentile_bounds_checked(self):
        with pytest.raises(ValueError):
            SampleStats([1]).percentile(101)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SampleStats().mean

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(floats, min_size=1, max_size=50))
    def test_median_matches_statistics(self, values):
        assert SampleStats(values).median == pytest.approx(
            statistics.median(values), abs=1e-9
        )

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(floats, min_size=1, max_size=50), pct=st.floats(0, 100))
    def test_percentile_within_range(self, values, pct):
        result = SampleStats(values).percentile(pct)
        assert min(values) <= result <= max(values)


class TestCorrelation:
    def test_perfect_positive(self):
        xs = [1, 2, 3, 4]
        assert pearson_correlation(xs, [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        xs = [1, 2, 3, 4]
        assert pearson_correlation(xs, [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_yields_zero(self):
        assert pearson_correlation([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_correlation([1, 2], [1])

    @settings(max_examples=40, deadline=None)
    @given(pairs=st.lists(st.tuples(floats, floats), min_size=2, max_size=40))
    def test_result_bounded(self, pairs):
        xs = [p[0] for p in pairs]
        ys = [p[1] for p in pairs]
        assert -1.0 - 1e-9 <= pearson_correlation(xs, ys) <= 1.0 + 1e-9


class TestRegression:
    def test_recovers_exact_line(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [5.0, 7.0, 9.0, 11.0]
        slope, intercept = linear_regression(xs, ys)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(5.0)

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            linear_regression([1, 1], [2, 3])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            linear_regression([1], [2])

    @settings(max_examples=40, deadline=None)
    @given(
        slope=st.floats(-100, 100),
        intercept=st.floats(-100, 100),
        xs=st.lists(
            st.floats(min_value=-1000, max_value=1000, allow_nan=False),
            min_size=2,
            max_size=30,
            unique=True,
        ),
    )
    def test_recovers_arbitrary_noiseless_line(self, slope, intercept, xs):
        from hypothesis import assume

        assume(max(xs) - min(xs) > 1e-3)  # avoid numerically degenerate spreads
        ys = [slope * x + intercept for x in xs]
        got_slope, got_intercept = linear_regression(xs, ys)
        assert got_slope == pytest.approx(slope, abs=1e-6, rel=1e-6)
        assert got_intercept == pytest.approx(intercept, abs=1e-4, rel=1e-4)


class TestExponentialAverage:
    def test_alpha_one_tracks_last_value(self):
        assert exponential_average([1.0, 5.0, 3.0], alpha=1.0) == 3.0

    def test_smoothing(self):
        result = exponential_average([0.0, 10.0], alpha=0.5)
        assert result == 5.0

    def test_initial_value_used(self):
        assert exponential_average([10.0], alpha=0.5, initial=0.0) == 5.0

    def test_bad_alpha_rejected(self):
        with pytest.raises(ValueError):
            exponential_average([1.0], alpha=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exponential_average([], alpha=0.5)


class TestSignTest:
    def test_strongly_one_sided_is_significant(self):
        pairs = [(10.0, 1.0)] * 10
        pos, neg, p = sign_test(pairs)
        assert (pos, neg) == (10, 0)
        assert p < 0.01

    def test_balanced_is_not_significant(self):
        pairs = [(1.0, 2.0), (2.0, 1.0)] * 5
        _pos, _neg, p = sign_test(pairs)
        assert p > 0.5

    def test_ties_discarded(self):
        pos, neg, p = sign_test([(1.0, 1.0)] * 5)
        assert (pos, neg, p) == (0, 0, 1.0)

    def test_p_value_matches_binomial(self):
        # 9 positives of 10: two-sided p = 2 * (C(10,0)+C(10,1)) / 2^10.
        pairs = [(2.0, 1.0)] * 9 + [(1.0, 2.0)]
        _pos, _neg, p = sign_test(pairs)
        expected = 2 * (1 + 10) / 2**10
        assert p == pytest.approx(expected)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(floats, floats), max_size=40))
    def test_p_value_in_unit_interval(self, pairs):
        _pos, _neg, p = sign_test(pairs)
        assert 0.0 <= p <= 1.0
