"""Workload generators: files, text, records."""

import random

import pytest

from repro.apps.fastsort import RECORD_BYTES
from repro.sim import syscalls as sc
from repro.workloads.files import age_directory, create_files, make_file, populate_directory
from repro.workloads.records import is_sorted_records, make_record_blob, record_count
from repro.workloads.text import count_matches, make_text, make_text_with_matches
from tests.conftest import KIB


class TestFiles:
    def test_make_file_synthetic(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 10_000), "t")
        assert kernel.oracle.inode_of("/mnt0/f").size == 10_000

    def test_make_file_real_bytes(self, kernel):
        kernel.run_process(make_file("/mnt0/f", b"abc" * 100), "t")

        def read():
            fd = (yield sc.open("/mnt0/f")).value
            data = (yield sc.pread(fd, 0, 300)).value.data
            yield sc.close(fd)
            return data
        assert kernel.run_process(read(), "t") == b"abc" * 100

    def test_create_files_with_per_file_sizes(self, kernel):
        def app():
            yield sc.mkdir("/mnt0/d")
            return (yield from create_files("/mnt0/d", 3, [100, 200, 300]))
        paths = kernel.run_process(app(), "t")
        sizes = [kernel.oracle.inode_of(p).size for p in paths]
        assert sizes == [100, 200, 300]

    def test_create_files_size_count_mismatch(self, kernel):
        def app():
            yield sc.mkdir("/mnt0/d")
            yield from create_files("/mnt0/d", 3, [100])
        with pytest.raises(ValueError):
            kernel.run_process(app(), "t")

    def test_custom_names(self, kernel):
        def app():
            return (
                yield from populate_directory("/mnt0/d", 2, 100)
            )
        kernel.run_process(app(), "t")

        def named():
            yield sc.mkdir("/mnt0/e")
            return (
                yield from create_files("/mnt0/e", 2, 100, names=["zz", "aa"])
            )
        paths = kernel.run_process(named(), "t")
        assert paths == ["/mnt0/e/zz", "/mnt0/e/aa"]

    def test_age_directory_keeps_population_constant(self, kernel):
        def setup():
            return (yield from populate_directory("/mnt0/d", 20, 8 * KIB))
        kernel.run_process(setup(), "t")

        def age():
            return (
                yield from age_directory("/mnt0/d", 5, random.Random(1))
            )
        assert kernel.run_process(age(), "t") == 5

        def count():
            return len((yield sc.readdir("/mnt0/d")).value)
        assert kernel.run_process(count(), "t") == 20


class TestText:
    def test_exact_length(self):
        assert len(make_text(12345)) == 12345

    def test_deterministic(self):
        assert make_text(1000) == make_text(1000)

    def test_matches_planted_at_offsets(self):
        blob = make_text_with_matches(10_000, b"NEEDLE", [0, 500, 9_000])
        assert blob[0:6] == b"NEEDLE"
        assert blob[500:506] == b"NEEDLE"
        assert count_matches(blob, b"NEEDLE") == 3

    def test_filler_does_not_contain_pattern(self):
        blob = make_text_with_matches(50_000, b"ZQX", [100])
        assert count_matches(blob, b"ZQX") == 1

    def test_overlapping_matches_rejected(self):
        with pytest.raises(ValueError):
            make_text_with_matches(1000, b"ABCDEF", [10, 12])

    def test_match_must_fit(self):
        with pytest.raises(ValueError):
            make_text_with_matches(10, b"TOOLONG", [8])

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_text_with_matches(100, b"", [0])


class TestRecords:
    def test_blob_has_exact_record_size(self):
        blob = make_record_blob(50)
        assert len(blob) == 50 * RECORD_BYTES

    def test_record_count(self):
        assert record_count(1050) == 10

    def test_blob_is_unsorted_then_sortable(self):
        blob = make_record_blob(200, rng=random.Random(3))
        assert not is_sorted_records(blob)
        records = sorted(
            blob[i : i + RECORD_BYTES] for i in range(0, len(blob), RECORD_BYTES)
        )
        assert is_sorted_records(b"".join(records))

    def test_payload_encodes_original_position(self):
        blob = make_record_blob(5, key_bytes=10)
        record_3 = blob[3 * RECORD_BYTES : 4 * RECORD_BYTES]
        assert b"%09d" % 3 in record_3
