"""Path parsing and the mount table."""

import pytest

from repro.sim.errors import FileNotFound, InvalidArgument
from repro.sim.fs.ffs import FFS
from repro.sim.fs.vfs import MountTable, PathName, join


class TestPathName:
    def test_parse_mount_and_components(self):
        parsed = PathName.parse("/mnt0/dir/file.txt")
        assert parsed.mount == "mnt0"
        assert parsed.components == ("dir", "file.txt")

    def test_parse_mount_point_alone(self):
        parsed = PathName.parse("/mnt3")
        assert parsed.mount == "mnt3"
        assert parsed.components == ()

    def test_parse_collapses_duplicate_slashes(self):
        parsed = PathName.parse("/mnt0//a///b")
        assert parsed.components == ("a", "b")

    def test_relative_path_rejected(self):
        with pytest.raises(InvalidArgument):
            PathName.parse("mnt0/a")

    def test_bare_root_rejected(self):
        with pytest.raises(InvalidArgument):
            PathName.parse("/")

    def test_dot_components_rejected(self):
        with pytest.raises(InvalidArgument):
            PathName.parse("/mnt0/../secret")

    def test_dirname_and_basename(self):
        parsed = PathName.parse("/mnt0/a/b")
        assert str(parsed.dirname) == "/mnt0/a"
        assert parsed.basename == "b"

    def test_dirname_of_mount_point_rejected(self):
        with pytest.raises(InvalidArgument):
            PathName.parse("/mnt0").dirname

    def test_str_round_trips(self):
        for path in ("/mnt0/a/b", "/mnt1/x"):
            assert str(PathName.parse(path)) == path

    def test_join(self):
        assert join("mnt0", "a/", "/b") == "/mnt0/a/b"


class TestMountTable:
    def _fs(self, fs_id=0):
        return FFS(fs_id=fs_id, total_blocks=1024, block_bytes=4096,
                   blocks_per_cg=512, inodes_per_cg=64)

    def test_mount_and_lookup(self):
        table = MountTable()
        fs = self._fs()
        table.mount("mnt0", fs, disk_id=0)
        got, disk_id = table.filesystem("mnt0")
        assert got is fs and disk_id == 0

    def test_duplicate_mount_rejected(self):
        table = MountTable()
        table.mount("mnt0", self._fs(), 0)
        with pytest.raises(InvalidArgument):
            table.mount("mnt0", self._fs(1), 1)

    def test_missing_mount_raises(self):
        with pytest.raises(FileNotFound):
            MountTable().filesystem("nowhere")

    def test_names_and_contains(self):
        table = MountTable()
        table.mount("a", self._fs(0), 0)
        table.mount("b", self._fs(1), 1)
        assert table.names() == ["a", "b"]
        assert "a" in table and "c" not in table
        assert len(table) == 2
