"""The Oracle: ground truth for tests, and only for tests."""

import pytest

from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import FileNotFound
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


class TestFilesystemTruth:
    def test_inode_of_resolves_paths(self, kernel):
        def setup():
            yield sc.mkdir("/mnt0/d")
            yield from make_file("/mnt0/d/f", 10 * KIB)
        kernel.run_process(setup(), "setup")
        inode = kernel.oracle.inode_of("/mnt0/d/f")
        assert inode.size == 10 * KIB
        with pytest.raises(FileNotFound):
            kernel.oracle.inode_of("/mnt0/d/ghost")

    def test_file_blocks_match_block_map(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 5 * 4 * KIB), "setup")
        blocks = kernel.oracle.file_blocks("/mnt0/f")
        assert len(blocks) == 5
        assert len(set(blocks)) == 5

    def test_cached_pages_track_reads(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 8 * 4 * KIB), "setup")
        kernel.oracle.flush_file_cache()
        assert kernel.oracle.cached_file_pages("/mnt0/f") == set()

        def read_some():
            fd = (yield sc.open("/mnt0/f")).value
            yield sc.pread(fd, 0, 3 * 4 * KIB)
            yield sc.close(fd)
        kernel.run_process(read_some(), "read")
        assert kernel.oracle.cached_file_pages("/mnt0/f") == {0, 1, 2}
        assert kernel.oracle.cached_fraction("/mnt0/f") == pytest.approx(3 / 8)

    def test_cached_fraction_of_empty_file(self, kernel):
        def setup():
            fd = (yield sc.create("/mnt0/empty")).value
            yield sc.close(fd)
        kernel.run_process(setup(), "setup")
        assert kernel.oracle.cached_fraction("/mnt0/empty") == 0.0

    def test_flush_reports_dropped_count(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 4 * 4 * KIB), "setup")
        dropped = kernel.oracle.flush_file_cache()
        assert dropped >= 4
        assert kernel.oracle.file_pool_used_pages() == 0


class TestMemoryTruth:
    def test_resident_bytes(self, kernel):
        def app():
            pid = (yield sc.getpid()).value
            region = (yield sc.vm_alloc(8 * 4 * KIB)).value
            yield sc.touch_range(region, 0, 8)
            yield sc.sleep(1)
            return pid, kernel.oracle.resident_anon_bytes(pid)
        _pid, resident = kernel.run_process(app(), "app")
        assert resident == 8 * 4 * KIB

    def test_swap_usage_visible(self):
        kernel = Kernel(small_config())
        pages = kernel.config.available_pages + 100

        def app():
            region = (yield sc.vm_alloc(pages * 4 * KIB)).value
            yield sc.touch_range(region, 0, pages)
            return kernel.oracle.swap_used_slots()
        used = kernel.run_process(app(), "app")
        assert used > 0

    def test_disk_stats_accessible(self, kernel):
        kernel.run_process(make_file("/mnt0/f", MIB), "setup")
        stats = kernel.oracle.disk_stats(0)
        assert stats.writes > 0  # fsync wrote the data
        assert kernel.oracle.swap_disk_stats().reads == 0

    def test_advance_time_idles_forward(self, kernel):
        before = kernel.clock.now
        kernel.oracle.advance_time(5_000_000)
        assert kernel.clock.now == before + 5_000_000
