"""Terminal charts."""

import pytest

from repro.experiments.harness import FigureResult
from repro.experiments.viz import bar_chart, line_chart, plot_figure


class TestLineChart:
    def test_plots_each_series_marker(self):
        chart = line_chart(
            {"linear": [(0, 0), (10, 10)], "gray": [(0, 0), (10, 5)]},
            title="scan",
        )
        assert "scan" in chart
        assert "o linear" in chart
        assert "x gray" in chart
        assert "o" in chart.splitlines()[1]

    def test_axis_annotations_show_extremes(self):
        chart = line_chart({"s": [(1, 2), (9, 20)]})
        assert "20" in chart
        assert "9" in chart

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"s": [(0, 1)]}, width=2)

    def test_constant_series_renders(self):
        chart = line_chart({"flat": [(0, 5), (1, 5), (2, 5)]})
        assert chart.count("o") >= 3

    def test_monotone_series_descends_on_canvas(self):
        chart = line_chart({"up": [(0, 0), (5, 5), (10, 10)]}, height=11, width=21)
        rows = [i for i, line in enumerate(chart.splitlines()) if "o" in line]
        assert rows == sorted(rows)  # increasing y appears on higher rows


class TestBarChart:
    def test_longest_bar_is_peak(self):
        chart = bar_chart([("a", 1.0), ("b", 4.0)], width=20, unit="s")
        lines = chart.splitlines()
        assert lines[1].count("█") > lines[0].count("█")
        assert "4s" in lines[1]

    def test_labels_aligned(self):
        chart = bar_chart([("short", 1.0), ("a-long-label", 2.0)])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])


class TestPlotFigure:
    def test_numeric_x_becomes_line_chart(self):
        result = FigureResult("figX", "demo", columns=["size_mb", "linear_s", "gray_s"])
        result.add(size_mb=32, linear_s=1.0, gray_s=1.0)
        result.add(size_mb=128, linear_s=7.0, gray_s=2.0)
        chart = plot_figure(result)
        assert chart is not None
        assert "linear_s" in chart and "gray_s" in chart

    def test_categorical_rows_become_bars(self):
        result = FigureResult("figY", "demo", columns=["variant", "time_s"])
        result.add(variant="unmodified", time_s=8.0)
        result.add(variant="gb", time_s=4.0)
        chart = plot_figure(result)
        assert chart is not None
        assert "unmodified" in chart and "█" in chart

    def test_std_columns_excluded_from_lines(self):
        result = FigureResult(
            "figZ", "demo", columns=["epoch", "time_s", "time_s_std"]
        )
        result.add(epoch=0, time_s=1.0, time_s_std=0.1)
        result.add(epoch=1, time_s=2.0, time_s_std=0.1)
        chart = plot_figure(result)
        assert "time_s_std" not in chart

    def test_empty_result_gives_none(self):
        assert plot_figure(FigureResult("f", "t", columns=["a"])) is None

    def test_real_driver_output_plots(self, capsys):
        from repro.__main__ import main

        assert main(["repro", "table2", "--plot"]) == 0
