"""Configuration options added for the ablation studies."""

import random

import pytest

from repro.icl.fccd import FCCD
from repro.icl.mac import MAC
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import make_file
from tests.conftest import KIB, MIB, small_config


class TestProbePlacement:
    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            FCCD(probe_placement="chaotic")

    def test_fixed_placement_is_deterministic(self):
        a = FCCD(rng=random.Random(1), probe_placement="fixed",
                 access_unit_bytes=4 * MIB, prediction_unit_bytes=MIB)
        b = FCCD(rng=random.Random(2), probe_placement="fixed",
                 access_unit_bytes=4 * MIB, prediction_unit_bytes=MIB)
        assert a._probe_points(0, 4 * MIB, 4 * MIB) == b._probe_points(
            0, 4 * MIB, 4 * MIB
        )

    def test_fixed_points_sit_mid_window(self):
        layer = FCCD(probe_placement="fixed", access_unit_bytes=4 * MIB,
                     prediction_unit_bytes=MIB)
        points = layer._probe_points(0, 4 * MIB, 4 * MIB)
        assert points == [i * MIB + MIB // 2 for i in range(4)]

    def test_both_placements_detect_cached_prefix(self, kernel):
        kernel.run_process(make_file("/mnt0/f", 8 * MIB), "setup")
        kernel.oracle.flush_file_cache()

        def warm():
            fd = (yield sc.open("/mnt0/f")).value
            yield sc.pread(fd, 0, 4 * MIB)
            yield sc.close(fd)
        kernel.run_process(warm(), "warm")
        for placement in ("random", "fixed"):
            layer = FCCD(rng=random.Random(3), probe_placement=placement,
                         access_unit_bytes=2 * MIB, prediction_unit_bytes=512 * KIB)

            def probe():
                return (yield from layer.plan_file("/mnt0/f"))
            plan = kernel.run_process(probe(), "probe")
            fast = {s.offset for s in plan.segments if s.mean_probe_ns < 1_000_000}
            assert fast == {0, 2 * MIB}, placement


class TestIncrementPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            MAC(increment_policy="warp")

    @pytest.mark.parametrize("policy", ["paper", "fixed", "aggressive"])
    def test_all_policies_grant_on_idle_machine(self, kernel, policy):
        mac = MAC(page_size=kernel.config.page_size,
                  initial_increment_bytes=MIB, max_increment_bytes=4 * MIB,
                  increment_policy=policy)

        def app():
            allocation = yield from mac.gb_alloc(2 * MIB, 10 * MIB, MIB)
            granted = allocation.granted_bytes
            yield from mac.gb_free(allocation)
            return granted
        assert kernel.run_process(app(), "mac") == 10 * MIB

    def test_fixed_policy_uses_many_small_chunks(self, kernel):
        def grants_with(policy):
            mac = MAC(page_size=kernel.config.page_size,
                      initial_increment_bytes=MIB, max_increment_bytes=8 * MIB,
                      increment_policy=policy)

            def app():
                allocation = yield from mac.gb_alloc(2 * MIB, 16 * MIB, MIB)
                chunks = len(allocation.regions)
                yield from mac.gb_free(allocation)
                return chunks
            return kernel.run_process(app(), "mac")
        assert grants_with("fixed") > grants_with("paper")

    def test_settle_can_be_disabled(self, kernel):
        mac = MAC(page_size=kernel.config.page_size,
                  initial_increment_bytes=MIB, max_increment_bytes=4 * MIB,
                  settle_ns=0)

        def app():
            t0 = (yield sc.gettime()).value
            allocation = yield from mac.gb_alloc(MIB, 4 * MIB, MIB)
            elapsed = (yield sc.gettime()).value - t0
            yield from mac.gb_free(allocation)
            return elapsed
        fast_elapsed = kernel.run_process(app(), "mac")
        assert fast_elapsed < 20_000_000  # no settle sleeps at all
