"""Covert-channel suite: codec properties, channel physics, CLI.

Three layers of claims:

* **codec** (pure functions, Hypothesis): encode→decode is the identity
  over a noiseless channel for arbitrary payloads and frame specs, and
  bit-error rate is monotone in noise under a coupled-noise
  construction (the same latency draws, spikes added at increasing
  probability thresholds).
* **channel physics** (whole-kernel integration): at noise 0 the
  residency channel decodes below 1% BER on every platform personality,
  BER degrades monotonically (within tolerance) as the injector ladder
  rises, and background tenants cost bandwidth.
* **harness**: tagged step boundaries land in ``ArenaClient.step_log``
  without touching the obs stream, the robustness domain filter builds
  exactly the requested noise families, ``channel_summary`` attributes
  per-cell spans, and the CLI writes artifacts that pass the JSONL
  validator.
"""

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.channels import (
    CHANNELS_SEED,
    channel_sweep,
    channels_config,
    render_channel_sweep,
    run_channel,
    cli_main,
)
from repro.experiments.robustness import robustness_noise_sweep
from repro.icl.channels import (
    FrameSpec,
    ber,
    decode_frame,
    encode_frame,
    frame_cells,
    payload_bits,
)
from repro.obs.export import validate_jsonl
from repro.obs.views import channel_summary
from repro.sim import Kernel, MachineConfig, PLATFORMS
from repro.sim import syscalls as sc
from repro.sim.arena import Arena, StepBoundary
from repro.sim.inject import NOISE_DOMAINS, noise_profile

KIB = 1024
MIB = 1024 * 1024

FAST_NS = 2_000
SLOW_NS = 9_000_000

frame_specs = st.builds(
    FrameSpec,
    preamble_cells=st.sampled_from([2, 4, 8, 12]),
    parity=st.sampled_from(["none", "even"]),
    parity_block=st.integers(min_value=1, max_value=9),
)

payloads = st.lists(st.integers(min_value=0, max_value=1), max_size=64)


def _latencies(cells, one_is_slow=False, jitter=None):
    """Synthesize a noiseless latency trace for a cell-symbol sequence."""
    out = []
    for symbol in cells:
        slow = symbol if one_is_slow else not symbol
        base = SLOW_NS if slow else FAST_NS
        out.append(base + (jitter() if jitter else 0))
    return out


# ======================================================================
# Codec properties
# ======================================================================
@given(bits=payloads, spec=frame_specs, one_is_slow=st.booleans())
@settings(max_examples=120, deadline=None)
def test_codec_noiseless_roundtrip(bits, spec, one_is_slow):
    cells = encode_frame(bits, spec)
    assert len(cells) == frame_cells(len(bits), spec)
    result = decode_frame(_latencies(cells, one_is_slow), spec, one_is_slow)
    assert result.bits == list(bits)
    assert result.parity_errors == 0
    assert result.cells == len(cells)


@given(bits=payloads, spec=frame_specs, seed=st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_codec_roundtrip_survives_small_jitter(bits, spec, seed):
    """Jitter far below the fast/slow separation never flips a bit."""
    rng = random.Random(seed)
    cells = encode_frame(bits, spec)
    latencies = _latencies(cells, jitter=lambda: rng.randrange(0, FAST_NS))
    assert decode_frame(latencies, spec).bits == list(bits)


@given(seed=st.integers(0, 2**32 - 1), nbits=st.integers(1, 48))
@settings(max_examples=40, deadline=None)
def test_codec_ber_monotone_under_coupled_noise(seed, nbits):
    """Same draws, rising corruption probability ⇒ non-decreasing BER.

    Noise is coupled across levels at the Manchester-pair granularity:
    one uniform draw per payload pair, and the pair's two halves swap
    (the worst-case channel error — a clean inversion) iff its draw
    falls below the level's probability.  Any pair corrupted at a low
    level is corrupted at every higher level, so the error set is
    nested and BER can only grow.  (Per-*cell* noise is deliberately
    not monotone: spiking both halves of a pair restores the
    comparison — differential decoding self-heals, which is the point
    of Manchester framing; the channel-level ladder test covers that
    statistical regime.)
    """
    spec = FrameSpec(preamble_cells=4, parity="none")
    bits = payload_bits(seed, nbits)
    cells = encode_frame(bits, spec)
    clean = _latencies(cells)
    npairs = (len(cells) - spec.preamble_cells) // 2
    draws = [random.Random(seed ^ i).random() for i in range(npairs)]
    rates = []
    for prob in (0.0, 0.1, 0.3, 0.6, 1.0):
        latencies = list(clean)
        for pair, draw in enumerate(draws):
            if draw < prob:
                i = spec.preamble_cells + 2 * pair
                latencies[i], latencies[i + 1] = latencies[i + 1], latencies[i]
        rates.append(ber(bits, decode_frame(latencies, spec).bits))
    assert rates[0] == 0.0
    assert rates[-1] == 1.0
    assert all(a <= b for a, b in zip(rates, rates[1:]))


def test_frame_spec_validation():
    with pytest.raises(ValueError):
        FrameSpec(preamble_cells=3)
    with pytest.raises(ValueError):
        FrameSpec(preamble_cells=0)
    with pytest.raises(ValueError):
        FrameSpec(parity="odd")
    with pytest.raises(ValueError):
        FrameSpec(parity_block=0)
    with pytest.raises(ValueError):
        encode_frame([0, 2])
    with pytest.raises(ValueError):
        decode_frame([1.0] * 9, FrameSpec(preamble_cells=8))


def test_parity_flags_corrupted_block():
    spec = FrameSpec(preamble_cells=4, parity="even", parity_block=4)
    bits = [1, 0, 1, 1, 0, 0, 1, 0]
    latencies = _latencies(encode_frame(bits, spec))
    clean = decode_frame(latencies, spec)
    assert clean.bits == bits and clean.parity_errors == 0
    # Flip one payload cell pair (first pair after the preamble).
    corrupted = list(latencies)
    corrupted[4], corrupted[5] = corrupted[5], corrupted[4]
    dirty = decode_frame(corrupted, spec)
    assert dirty.bits != bits
    assert dirty.parity_errors >= 1


def test_ber_counts_length_mismatch():
    assert ber([], []) == 0.0
    assert ber([1, 0], [1, 0]) == 0.0
    assert ber([1, 0], [1, 1]) == 0.5
    assert ber([1, 0, 1], [1]) == pytest.approx(2 / 3)


def test_payload_bits_deterministic_and_balanced():
    a = payload_bits(7, 256)
    assert a == payload_bits(7, 256)
    assert a != payload_bits(8, 256)
    assert set(a) == {0, 1}
    # splitmix64 output is unbiased enough that 256 draws are never
    # degenerate (this is a smoke bound, not a statistics claim).
    assert 64 < sum(a) < 192


# ======================================================================
# Channel physics
# ======================================================================
@pytest.mark.parametrize("platform", sorted(PLATFORMS))
def test_residency_quiet_ber_below_one_percent(platform):
    report = run_channel("residency", platform=platform, n_bits=48)
    assert report.ber < 0.01
    assert report.parity_errors == 0
    assert report.confidence > 0.9
    assert report.bandwidth_bits_per_s > 0


def test_writeback_quiet_ber_below_one_percent():
    report = run_channel("writeback", n_bits=32)
    assert report.ber < 0.01
    assert report.parity_errors == 0
    assert report.confidence > 0.9


def test_residency_ber_degrades_monotonically_with_noise():
    rates = [
        run_channel("residency", noise=level, n_bits=48).ber
        for level in (0.0, 0.6, 1.0)
    ]
    assert rates[0] < 0.01
    # Injected noise is not coupled across levels (each level draws its
    # own schedule), so monotonicity holds within a tolerance.
    tolerance = 0.05
    assert rates[1] <= rates[2] + tolerance
    assert rates[0] <= rates[1] + tolerance
    # And the ladder's top is genuinely noisy for this channel.
    assert rates[2] > rates[0]


def test_background_tenants_cost_bandwidth():
    quiet = run_channel("residency", n_bits=32)
    busy = run_channel("residency", n_bits=32, n_background=3)
    assert busy.bandwidth_bits_per_s < quiet.bandwidth_bits_per_s
    assert busy.frame_span_ns > quiet.frame_span_ns


def test_channel_sweep_renders_every_cell():
    reports = channel_sweep(
        channels=("residency",),
        platforms=("linux22", "solaris7"),
        noise_levels=(0.0,),
        n_bits=8,
    )
    assert len(reports) == 2
    assert all(r.ber < 0.01 for r in reports)
    table = render_channel_sweep(reports)
    assert "linux22" in table and "solaris7" in table
    assert "bits/s" in table


def test_run_channel_validates_arguments():
    with pytest.raises(ValueError):
        run_channel("carrier-pigeon")
    with pytest.raises(ValueError):
        run_channel("residency", platform="plan9")
    with pytest.raises(ValueError):
        run_channel("residency", n_background=-1)


def test_channels_config_fits_every_platform():
    """netbsd15's fixed 64 MiB file pool must fit the channel machine."""
    config = channels_config()
    for name in sorted(PLATFORMS):
        kernel = Kernel(config, platform=PLATFORMS[name])
        limit = int(kernel.mm.file_capacity_pages * config.dirty_limit_frac)
        assert limit > 16 + 32  # margin + probe pages


# ======================================================================
# Harness pieces
# ======================================================================
def test_step_log_records_tagged_boundaries():
    kernel = Kernel(MachineConfig(
        page_size=16 * KIB, memory_bytes=32 * MIB,
        kernel_reserved_bytes=8 * MIB, data_disks=1,
    ))

    def factory(client):
        def body():
            yield sc.mkdir("/mnt0/d0")
            yield StepBoundary(("a", 0))
            yield sc.mkdir("/mnt0/d1")
            yield StepBoundary()  # untagged: parks but does not log
            yield sc.mkdir("/mnt0/d2")
            yield StepBoundary(("a", 1))
            return "done"

        return body()

    arena = Arena(kernel)
    arena.add_client("c", factory)
    (client,) = arena.run()
    assert client.result == "done"
    tags = [tag for tag, _now in client.step_log]
    assert tags == [("a", 0), ("a", 1)]
    times = [now for _tag, now in client.step_log]
    assert times == sorted(times)


def test_channel_summary_attributes_cell_spans():
    report = run_channel("residency", n_bits=16)
    summary = channel_summary(report.records)
    roles = {entry["role"] for entry in summary.values()}
    assert roles == {"tx", "rx"}
    by_role = {entry["role"]: entry for entry in summary.values()}
    # The receiver probes every cell; the sender only touches 1-cells.
    ones = sum(encode_frame(report.sent_bits,
                            FrameSpec(preamble_cells=8, parity="even",
                                      parity_block=8)))
    assert by_role["rx"]["cells"] == report.cells
    assert by_role["tx"]["cells"] == ones
    assert by_role["rx"]["mean_cell_ns"] > 0


def test_noise_profile_domain_filter():
    full = noise_profile(0.5, seed=3)
    assert full.latency is not None and full.faults is not None
    assert full.sched_jitter_ns > 0 and full.interference

    latency_only = noise_profile(0.5, seed=3, domains=("latency",))
    assert latency_only.latency == full.latency
    assert latency_only.touch_latency == full.touch_latency
    assert latency_only.faults is None
    assert latency_only.sched_jitter_ns == 0
    assert latency_only.interference == ()

    faults_only = noise_profile(0.5, seed=3, domains=("faults",))
    assert faults_only.latency is None
    assert faults_only.touch_latency is None
    assert faults_only.faults == full.faults
    assert faults_only.interference == ()

    background_only = noise_profile(0.5, seed=3, domains=("background",))
    assert background_only.latency is None
    assert background_only.faults is None
    assert background_only.interference == full.interference

    assert noise_profile(0.0, seed=3, domains=("latency",)).latency is None

    with pytest.raises(ValueError):
        noise_profile(0.5, domains=("cosmic-rays",))
    assert set(NOISE_DOMAINS) == {"latency", "faults", "sched", "background"}


def test_robustness_sweep_domain_filter():
    result = robustness_noise_sweep(
        levels=(0.0, 0.5), trials=1, icls=("mac",), domain="latency"
    )
    assert result.figure_id == "robustness-latency"
    assert "latency" in result.title
    assert len(result.rows) == 2
    with pytest.raises(ValueError):
        robustness_noise_sweep(
            levels=(0.0,), trials=1, icls=("mac",), domain="gamma-rays"
        )


def test_cli_writes_validating_artifacts(tmp_path, capsys):
    out = tmp_path / "chan.jsonl"
    report = tmp_path / "chan.json"
    code = cli_main([
        "--channel", "residency", "--bits", "16", "--noise", "0.4",
        "--n-background", "1",
        "--out", str(out), "--report", str(report),
    ])
    assert code == 0
    text = capsys.readouterr().out
    assert "channel: residency" in text
    assert validate_jsonl(out) > 0
    payload = json.loads(report.read_text())
    assert payload["type"] == "channel_report"
    assert payload["channel"] == "residency"
    assert 0.0 <= payload["ber"] <= 1.0
    assert payload["digest"]
    assert payload["n_background"] == 1


def test_cli_both_channels_suffixes_artifacts(tmp_path):
    report = tmp_path / "chan.json"
    code = cli_main([
        "--channel", "both", "--bits", "8", "--report", str(report),
    ])
    assert code == 0
    assert not report.exists()
    for channel in ("residency", "writeback"):
        payload = json.loads((tmp_path / f"chan-{channel}.json").read_text())
        assert payload["channel"] == channel
        assert payload["ber"] < 0.01
