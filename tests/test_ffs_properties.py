"""Property-based FFS invariants under random namespace churn."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.errors import NoSpace, SimOSError
from repro.sim.fs.ffs import FFS, ROOT_INO
from repro.sim.fs.inode import FileKind
from repro.sim.fs.lfs import LogStructuredFS

BLOCK = 4096

operations = st.lists(
    st.tuples(
        st.sampled_from(["create", "unlink", "grow", "rename"]),
        st.integers(min_value=0, max_value=11),   # name index
        st.integers(min_value=1, max_value=40),   # size in blocks
    ),
    max_size=80,
)


def apply_ops(fs: FFS, ops):
    """Drive the allocator with a random op sequence; returns live names."""
    live = {}
    for op, name_index, nblocks in ops:
        name = f"n{name_index}"
        try:
            if op == "create":
                if name in live:
                    continue
                inode = fs.create(ROOT_INO, name, FileKind.FILE, now_ns=0)
                fs.grow_to_size(inode, nblocks * BLOCK)
                live[name] = inode
            elif op == "unlink":
                if name not in live:
                    continue
                fs.unlink(ROOT_INO, name, now_ns=0)
                del live[name]
            elif op == "grow":
                if name not in live:
                    continue
                inode = live[name]
                fs.grow_to_size(inode, len(inode.blocks) * BLOCK + nblocks * BLOCK)
            elif op == "rename":
                if name not in live:
                    continue
                new_name = f"r{name_index}"
                if new_name in live or fs.root.contains(new_name):
                    continue
                fs.rename(ROOT_INO, name, ROOT_INO, new_name, now_ns=0)
                live[new_name] = live.pop(name)
        except NoSpace:
            return live
    return live


def fresh_fs(cls=FFS) -> FFS:
    return cls(
        fs_id=0, total_blocks=4096, block_bytes=BLOCK,
        blocks_per_cg=1024, inodes_per_cg=64,
    )


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_no_two_files_share_a_block(ops):
    fs = fresh_fs()
    apply_ops(fs, ops)
    seen = {}
    for inode in fs.inodes.values():
        for block in inode.blocks:
            assert block not in seen, (
                f"block {block} in both #{seen[block]} and #{inode.ino}"
            )
            seen[block] = inode.ino


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_free_counts_match_bitmaps(ops):
    fs = fresh_fs()
    apply_ops(fs, ops)
    for cg in fs.groups:
        assert cg.free_block_count == cg._bitmap.count(0)


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_used_blocks_equal_inode_maps(ops):
    fs = fresh_fs()
    apply_ops(fs, ops)
    mapped = sum(len(inode.blocks) for inode in fs.inodes.values())
    used = sum(cg.data_blocks - cg.free_block_count for cg in fs.groups)
    assert used == mapped


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_directory_entries_resolve_to_live_inodes(ops):
    fs = fresh_fs()
    live = apply_ops(fs, ops)
    assert set(fs.root.names()) == set(live)
    for name in fs.root.names():
        ino = fs.root.lookup(name)
        assert ino in fs.inodes


@settings(max_examples=60, deadline=None)
@given(ops=operations)
def test_inumbers_unique_across_live_files(ops):
    fs = fresh_fs()
    apply_ops(fs, ops)
    inos = [inode.ino for inode in fs.inodes.values()]
    assert len(inos) == len(set(inos))


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_lfs_satisfies_the_same_invariants(ops):
    fs = fresh_fs(LogStructuredFS)
    live = apply_ops(fs, ops)
    seen = set()
    for inode in fs.inodes.values():
        for block in inode.blocks:
            assert block not in seen
            seen.add(block)
    assert set(fs.root.names()) == set(live)


@settings(max_examples=40, deadline=None)
@given(ops=operations)
def test_file_sizes_covered_by_block_maps(ops):
    fs = fresh_fs()
    apply_ops(fs, ops)
    for inode in fs.inodes.values():
        need = -(-inode.size // BLOCK)
        assert len(inode.blocks) >= need
