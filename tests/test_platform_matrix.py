"""Tier-1 smoke slice parametrized across every platform personality.

Most of the suite runs on ``linux22`` (the default spec).  This module
takes a representative slice — syscall surface, twin-kernel batched
equivalence, pool arrangement, construction hooks — and runs it on all
three :class:`~repro.sim.config.PlatformSpec`\\ s, so a platform-specific
regression (a hook that only ``netbsd15`` exercises, say) cannot hide
behind the default.

The config gives the machine 96 MiB so ``netbsd15``'s fixed 64 MiB
buffer cache fits, and every test sizes its working set relative to
that.
"""

from __future__ import annotations

import pytest

from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.sim.config import PLATFORMS, PoolPlan, PlatformSpec
from repro.sim.dispatch import SyscallTable
from repro.sim.pagecache import PageCacheManager
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024

pytestmark = pytest.mark.parametrize(
    "platform", list(PLATFORMS.values()), ids=sorted(PLATFORMS)
)


def matrix_config() -> MachineConfig:
    return MachineConfig(
        page_size=16 * KIB,
        memory_bytes=96 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=1,
    )


def make_kernel(platform: PlatformSpec) -> Kernel:
    return Kernel(matrix_config(), platform)


# ======================================================================
# Syscall surface and dispatch
# ======================================================================
EXPECTED_SYSCALLS = {
    # name layer
    "stat", "stat_batch", "mkdir", "rmdir", "unlink", "rename", "readdir",
    "utimes",
    # file I/O
    "open", "create", "close", "read", "pread", "pread_batch", "write",
    "pwrite", "seek", "fsync", "fstat",
    # VM
    "vm_alloc", "vm_free", "touch", "touch_range", "touch_batch",
    # processes and pipes
    "getpid", "spawn", "waitpid", "pipe",
    # kernel core
    "gettime", "compute", "sleep",
}


def test_syscall_table_complete(platform):
    kernel = make_kernel(platform)
    assert set(kernel.syscalls.mapping()) == EXPECTED_SYSCALLS
    # The dispatch loop's dict is the table's live mapping, not a copy.
    assert kernel._handlers is kernel.syscalls.mapping()


def test_pool_plan_matches_personality(platform):
    cfg = matrix_config()
    plan = platform.make_pools(cfg)
    assert isinstance(plan, PoolPlan)
    if platform.fixed_file_cache_bytes is not None:
        assert not plan.unified
        assert plan.file_pool is not plan.anon_pool
        assert plan.file_capacity_pages == (
            platform.fixed_file_cache_bytes // cfg.page_size
        )
        assert (
            plan.file_capacity_pages + plan.anon_capacity_pages
            == cfg.available_pages
        )
    else:
        assert plan.unified
        assert plan.file_pool is plan.anon_pool
        assert plan.file_capacity_pages == cfg.available_pages
    kernel = make_kernel(platform)
    assert kernel.mm.unified is plan.unified


# ======================================================================
# End-to-end smoke: every layer under each personality
# ======================================================================
def test_file_lifecycle_smoke(platform):
    kernel = make_kernel(platform)

    def body():
        fd = (yield sc.create("/mnt0/hello")).value
        wrote = (yield sc.pwrite(fd, 0, b"platform smoke")).value
        assert wrote == 14
        yield sc.fsync(fd)
        got = (yield sc.pread(fd, 0, 14)).value
        yield sc.close(fd)
        st_ = (yield sc.stat("/mnt0/hello")).value
        yield sc.rename("/mnt0/hello", "/mnt0/bye")
        yield sc.unlink("/mnt0/bye")
        return got.data, st_.size

    data, size = kernel.run_process(body(), "smoke")
    assert data == b"platform smoke"
    assert size == 14
    assert kernel.clock.now > 0


def test_vm_touch_smoke(platform):
    kernel = make_kernel(platform)

    def body():
        region = (yield sc.vm_alloc(32 * matrix_config().page_size)).value
        cold = (yield sc.touch_range(region, 0, 32)).value
        warm = (yield sc.touch_range(region, 0, 32)).value
        yield sc.vm_free(region)
        return cold, warm

    cold, warm = kernel.run_process(body(), "toucher")
    # First touches zero-fill (fault overhead), re-touches are resident.
    assert sum(warm) < sum(cold)
    assert all(t == kernel.config.mem_touch_ns for t in warm)


def test_pread_batch_twin_equivalence(platform):
    """The PR-3 guarantee must hold on every personality, not just linux."""
    path = "/mnt0/data"
    nbytes = 2 * MIB
    page = matrix_config().page_size
    probes = [(i * page, 64) for i in range(nbytes // page)] * 2

    def build() -> Kernel:
        kernel = make_kernel(platform)
        kernel.run_process(make_file(path, nbytes), "setup")
        kernel.oracle.flush_file_cache()
        return kernel

    def sequential(kernel):
        def body():
            fd = (yield sc.open(path)).value
            times = []
            for offset, count in probes:
                res = yield sc.pread(fd, offset, count)
                times.append(res.elapsed_ns)
            yield sc.close(fd)
            return times
        return kernel.run_process(body(), "seq")

    def batched(kernel):
        def body():
            fd = (yield sc.open(path)).value
            res = (yield sc.pread_batch(fd, probes)).value
            yield sc.close(fd)
            return [probe.elapsed_ns for probe in res]
        return kernel.run_process(body(), "batch")

    seq_kernel, batch_kernel = build(), build()
    seq_times = sequential(seq_kernel)
    batch_times = batched(batch_kernel)
    assert seq_times == batch_times
    assert seq_kernel.clock.now == batch_kernel.clock.now
    stats_a, stats_b = (
        k.oracle.cache_stats() for k in (seq_kernel, batch_kernel)
    )
    assert (stats_a.hits, stats_a.misses, stats_a.evictions) == (
        stats_b.hits, stats_b.misses, stats_b.evictions
    )


# ======================================================================
# Platform construction hooks
# ======================================================================
def test_syscall_override_hook(platform):
    """A personality can replace a stock handler via the dispatch table."""

    def gettime_factory(kernel):
        def slow_gettime(process):
            value, duration = kernel._sys_gettime(process)
            return value, duration + 1000
        return slow_gettime

    import dataclasses

    custom = dataclasses.replace(
        platform,
        name=platform.name + "-slowclock",
        syscall_overrides=(("gettime", gettime_factory),),
    )
    stock = make_kernel(platform)
    hooked = make_kernel(custom)

    def body():
        res = yield sc.gettime()
        return res.elapsed_ns

    assert (
        hooked.run_process(body(), "t") - stock.run_process(body(), "t") == 1000
    )


def test_page_cache_factory_hook(platform):
    """A personality can substitute its own page-cache manager."""
    seen = {}

    class RecordingPageCache(PageCacheManager):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            seen["instance"] = self

    import dataclasses

    custom = dataclasses.replace(
        platform,
        name=platform.name + "-recording",
        page_cache_factory=RecordingPageCache,
    )
    kernel = make_kernel(custom)
    assert kernel.page_cache is seen["instance"]
    # All layers share the substituted manager.
    assert kernel.vfs.page_cache is kernel.page_cache
    assert kernel.fileio.page_cache is kernel.page_cache
    assert kernel.vm.page_cache is kernel.page_cache


def test_duplicate_registration_rejected(platform):
    kernel = make_kernel(platform)
    table: SyscallTable = kernel.syscalls
    with pytest.raises(ValueError, match="already registered"):
        table.register("open", lambda process: (None, 0))
    with pytest.raises(ValueError, match="unregistered"):
        table.override("no_such_call", lambda process: (None, 0))
