"""Batched vs sequential syscall equivalence.

The batched probe syscalls (``pread_batch``/``touch_batch``/
``stat_batch``) are a *host* wall-clock optimization: the covert timing
channel — per-probe simulated ``elapsed_ns`` — and every piece of
kernel state a probe perturbs (cache contents, replacement-policy
recency, inode stamps, the clock) must be bit-for-bit identical to the
equivalent sequence of single calls.  These tests run the same workload
through both paths on twin kernels and compare everything observable.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.icl.fccd import FCCD
from repro.icl.mac import MAC
from repro.icl.fldc import FLDC
from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.sim.errors import BadFileDescriptor, FileNotFound, InvalidArgument
from repro.sim.inject import FaultInjector, InjectionConfig, LatencyNoise
from repro.toolbox.repository import ParameterRepository
from repro.workloads.files import make_file

KIB = 1024
MIB = 1024 * 1024
PAGE = 4 * KIB


def small_config() -> MachineConfig:
    return MachineConfig(
        page_size=PAGE,
        memory_bytes=40 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )


def _twin_kernels(setup=None):
    """Two identically-prepared kernels (sequential twin, batched twin)."""
    kernels = (Kernel(small_config()), Kernel(small_config()))
    if setup is not None:
        for kernel in kernels:
            setup(kernel)
    return kernels


def _cache_fingerprint(kernel: Kernel, path: str):
    stats = kernel.oracle.cache_stats()
    return (
        kernel.oracle.cached_file_pages(path),
        kernel.oracle.file_pool_used_pages(),
        stats.hits,
        stats.misses,
        stats.evictions,
        kernel.clock.now,
    )


# ======================================================================
# pread_batch
# ======================================================================
class TestPreadBatchEquivalence:
    PATH = "/mnt0/data"

    def _setup(self, nbytes):
        def build(kernel):
            kernel.run_process(make_file(self.PATH, nbytes), "setup")
            kernel.oracle.flush_file_cache()
        return build

    def _run_both(self, probes, nbytes=2 * MIB):
        seq_kernel, batch_kernel = _twin_kernels(self._setup(nbytes))

        def sequential():
            fd = (yield sc.open(self.PATH)).value
            out = []
            for offset, count in probes:
                result = yield sc.pread(fd, offset, count)
                out.append((result.value.nbytes, result.value.data, result.elapsed_ns))
            yield sc.close(fd)
            return out

        def batched():
            fd = (yield sc.open(self.PATH)).value
            result = yield sc.pread_batch(fd, probes)
            out = [(p.nbytes, p.data, p.elapsed_ns) for p in result.value]
            total = result.elapsed_ns
            yield sc.close(fd)
            return out, total

        seq = seq_kernel.run_process(sequential(), "seq")
        batch, total = batch_kernel.run_process(batched(), "batch")
        return seq, batch, total, seq_kernel, batch_kernel

    def test_cold_then_warm_probes_identical(self):
        # Revisits: the first pass misses, the second hits.
        probes = [(i * PAGE, 1) for i in range(64)] * 2
        seq, batch, total, k_seq, k_batch = self._run_both(probes)
        assert seq == batch
        assert total == sum(e for _n, _d, e in batch)
        assert _cache_fingerprint(k_seq, self.PATH) == _cache_fingerprint(
            k_batch, self.PATH
        )

    def test_multi_page_eof_and_empty_probes(self):
        probes = [
            (0, 3 * PAGE),          # page-spanning
            (2 * MIB - 100, 500),   # short read at EOF
            (2 * MIB, 10),          # entirely past EOF -> 0 bytes
            (5, 0),                 # zero-length
            (PAGE - 1, 2),          # straddles a page boundary
        ]
        seq, batch, _total, k_seq, k_batch = self._run_both(probes)
        assert seq == batch
        assert _cache_fingerprint(k_seq, self.PATH) == _cache_fingerprint(
            k_batch, self.PATH
        )

    def test_real_content_round_trips(self):
        payload = bytes(range(256)) * 64
        seq_kernel, batch_kernel = _twin_kernels(
            lambda k: k.run_process(make_file(self.PATH, payload), "setup")
        )
        probes = [(17, 5), (1000, 64), (len(payload) - 3, 100)]

        def batched():
            fd = (yield sc.open(self.PATH)).value
            result = (yield sc.pread_batch(fd, probes)).value
            yield sc.close(fd)
            return [(p.nbytes, p.data) for p in result]

        def sequential():
            fd = (yield sc.open(self.PATH)).value
            out = []
            for offset, count in probes:
                r = (yield sc.pread(fd, offset, count)).value
                out.append((r.nbytes, r.data))
            yield sc.close(fd)
            return out

        assert batch_kernel.run_process(batched(), "b") == seq_kernel.run_process(
            sequential(), "s"
        )

    def test_atime_matches_sequential(self):
        probes = [(0, 1), (PAGE, 1), (2 * PAGE, 1)]
        _seq, _batch, _t, k_seq, k_batch = self._run_both(probes)
        assert (
            k_seq.oracle.inode_of(self.PATH).atime
            == k_batch.oracle.inode_of(self.PATH).atime
        )

    def test_bad_fd_raises(self, kernel):
        def app():
            yield sc.pread_batch(99, [(0, 1)])
        with pytest.raises(BadFileDescriptor):
            kernel.run_process(app(), "bad")

    def test_negative_probe_raises_like_pread(self):
        seq, batch, _t, _k1, _k2 = self._run_both([(0, 1)])  # sanity
        for bad in [(-1, 1), (0, -1)]:
            for name, call in [
                ("seq", lambda fd, b=bad: sc.pread(fd, *b)),
                ("batch", lambda fd, b=bad: sc.pread_batch(fd, [b])),
            ]:
                kernel = Kernel(small_config())
                kernel.run_process(make_file(self.PATH, PAGE), "setup")

                def app(call=call):
                    fd = (yield sc.open(self.PATH)).value
                    yield call(fd)
                with pytest.raises(InvalidArgument):
                    kernel.run_process(app(), name)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_property_random_probe_lists(self, data):
        """Any probe list: per-probe results and cache state identical."""
        size = data.draw(st.integers(min_value=1, max_value=64)) * PAGE
        n = data.draw(st.integers(min_value=1, max_value=40))
        probes = [
            (
                data.draw(st.integers(min_value=0, max_value=size + PAGE)),
                data.draw(st.integers(min_value=0, max_value=3 * PAGE)),
            )
            for _ in range(n)
        ]
        seq, batch, total, k_seq, k_batch = self._run_both(probes, nbytes=size)
        assert seq == batch
        assert total == sum(e for _n, _d, e in batch)
        assert _cache_fingerprint(k_seq, self.PATH) == _cache_fingerprint(
            k_batch, self.PATH
        )


# ======================================================================
# touch_batch
# ======================================================================
class TestTouchBatchEquivalence:
    def _run_both(self, npages, script):
        """``script(batch)`` is a generator factory run on twin kernels."""
        seq_kernel, batch_kernel = _twin_kernels()
        seq = seq_kernel.run_process(script(False), "seq")
        batch = batch_kernel.run_process(script(True), "batch")
        assert seq_kernel.clock.now == batch_kernel.clock.now
        return seq, batch, seq_kernel, batch_kernel

    def test_touch_range_equivalence(self):
        npages = 200

        def script(batch):
            region = (yield sc.vm_alloc(npages * PAGE, "t")).value
            if batch:
                first = (yield sc.touch_batch(region, 0, npages)).value.elapsed_ns
                second = (yield sc.touch_batch(region, 0, npages)).value.elapsed_ns
            else:
                first = tuple((yield sc.touch_range(region, 0, npages)).value)
                second = tuple((yield sc.touch_range(region, 0, npages)).value)
            return first, second

        seq, batch, _k1, _k2 = self._run_both(npages, script)
        assert seq == batch  # cold (zero-fill) then warm (resident) times

    def test_stride_equivalence(self):
        npages = 120

        def script(batch):
            region = (yield sc.vm_alloc(npages * PAGE, "t")).value
            yield sc.touch_range(region, 0, npages)
            if batch:
                result = (yield sc.touch_batch(region, 0, npages, 7)).value
                return result.elapsed_ns
            times = []
            for index in range(0, npages, 7):
                times.append((yield sc.touch(region, index)).elapsed_ns)
            return tuple(times)

        seq, batch, _k1, _k2 = self._run_both(npages, script)
        assert seq == batch

    def test_early_stop_leaves_identical_state(self):
        """The kernel-side slow detector aborts at the same page the
        user-space windowed loop would, leaving the same pool state."""
        npages = 50
        threshold = 0  # every touch is "slow": trip on the second page

        def script(batch):
            region = (yield sc.vm_alloc(npages * PAGE, "t")).value
            if batch:
                result = (
                    yield sc.touch_batch(
                        region, 0, npages,
                        threshold_ns=threshold, slow_count=2, slow_window=8,
                    )
                ).value
                return result.elapsed_ns, result.stopped
            times = []
            marks = []
            stopped = False
            for index in range(npages):
                elapsed = (yield sc.touch(region, index)).elapsed_ns
                times.append(elapsed)
                if elapsed > threshold:
                    marks.append(index)
                    if sum(1 for m in marks if index - m < 8) >= 2:
                        stopped = True
                        break
            return tuple(times), stopped

        seq, batch, k_seq, k_batch = self._run_both(npages, script)
        assert seq == batch
        assert batch[1] is True
        assert len(batch[0]) == 2
        assert (
            k_seq.oracle.resident_anon_pages(1) == k_batch.oracle.resident_anon_pages(1)
        )

    def test_validation_errors(self, kernel):
        def bad(call):
            def app():
                region = (yield sc.vm_alloc(4 * PAGE, "t")).value
                yield call(region)
            return app

        for call in [
            lambda r: sc.touch_batch(r, 0, 0),
            lambda r: sc.touch_batch(r, 0, 4, 0),
            lambda r: sc.touch_batch(r, 0, 4, 1, None, 0, 1),
            lambda r: sc.touch_batch(r, 0, 400),  # beyond the region
        ]:
            with pytest.raises(InvalidArgument):
                kernel.run_process(bad(call)(), "bad")

    def test_out_of_bounds_raises_at_same_point(self):
        """A batch straddling the region end touches the in-bounds
        prefix before raising, exactly like ``touch_range`` (the
        pre-existing vectored call, whose error semantics — memory
        state mutated, no time charged — batch calls share)."""
        range_kernel, batch_kernel = _twin_kernels()

        def script(batch):
            region = (yield sc.vm_alloc(8 * PAGE, "t")).value
            try:
                if batch:
                    yield sc.touch_batch(region, 4, 8)
                else:
                    yield sc.touch_range(region, 4, 8)
            except InvalidArgument:
                pass
            return None

        range_kernel.run_process(script(False), "seq")
        batch_kernel.run_process(script(True), "batch")
        assert (
            range_kernel.oracle.resident_anon_pages(1)
            == batch_kernel.oracle.resident_anon_pages(1)
        )
        assert range_kernel.clock.now == batch_kernel.clock.now


# ======================================================================
# stat_batch
# ======================================================================
class TestStatBatchEquivalence:
    PATHS = [f"/mnt0/dir/f{i}" for i in range(12)]

    def _setup(self, kernel):
        def populate():
            yield sc.mkdir("/mnt0/dir")
            for path in self.PATHS:
                fd = (yield sc.create(path)).value
                yield sc.write(fd, 700)
                yield sc.close(fd)
        kernel.run_process(populate(), "setup")
        kernel.oracle.flush_file_cache()

    def test_cold_then_warm_sweep_identical(self):
        seq_kernel, batch_kernel = _twin_kernels(self._setup)

        def sequential():
            out = []
            for _ in range(2):  # cold sweep, then warm sweep
                for path in self.PATHS:
                    result = yield sc.stat(path)
                    out.append((result.value, result.elapsed_ns))
            return out

        def batched():
            out = []
            for _ in range(2):
                result = yield sc.stat_batch(self.PATHS)
                assert result.elapsed_ns == sum(p.elapsed_ns for p in result.value)
                out.extend((p.stat, p.elapsed_ns) for p in result.value)
            return out

        seq = seq_kernel.run_process(sequential(), "seq")
        batch = batch_kernel.run_process(batched(), "batch")
        assert seq == batch
        assert seq_kernel.clock.now == batch_kernel.clock.now

    def test_missing_path_fails_whole_batch(self):
        kernel = Kernel(small_config())
        self._setup(kernel)

        def app():
            yield sc.stat_batch([self.PATHS[0], "/mnt0/dir/ghost"])
        with pytest.raises(FileNotFound):
            kernel.run_process(app(), "bad")


# ======================================================================
# dcache invalidation adversary
# ======================================================================
class TestDcacheInvalidationAdversary:
    """Namespace churn racing the name-lookup cache.

    The dcache memoizes whole path walks, so the dangerous interleavings
    are mutations *between* probes of the same path: a stale entry that
    survives a rename/unlink/create serves the old namespace.  These
    twins run an adversarial schedule — stat and stat_batch interleaved
    with every generation-bumping mutation — on ``name_cache=True`` vs
    ``name_cache=False`` kernels and require byte-identical probe
    results, per-probe elapsed times, page-cache fingerprints, and
    clocks.
    """

    DIR = "/mnt0/adv"

    def _populate(self, kernel: Kernel, n: int = 10):
        def build():
            yield sc.mkdir(self.DIR)
            for i in range(n):
                fd = (yield sc.create(f"{self.DIR}/f{i}")).value
                yield sc.write(fd, 700 + 97 * i)
                yield sc.close(fd)
        kernel.run_process(build(), "setup")
        kernel.oracle.flush_file_cache()

    def _adversary(self, seed: int, rounds: int = 40):
        """A generator factory: the same seeded schedule each call."""
        def script():
            rng = random.Random(seed)
            live = [f"{self.DIR}/f{i}" for i in range(10)]
            fresh = 0
            out = []
            for _ in range(rounds):
                op = rng.randrange(6)
                if op == 0:  # single probe
                    result = yield sc.stat(rng.choice(live))
                    out.append((result.value, result.elapsed_ns))
                elif op == 1:  # batched sweep, duplicates included
                    paths = [rng.choice(live) for _ in range(6)]
                    result = yield sc.stat_batch(paths)
                    out.extend((p.stat, p.elapsed_ns) for p in result.value)
                elif op == 2:  # rename a probed path out from under us
                    victim = rng.randrange(len(live))
                    fresh += 1
                    target = f"{self.DIR}/mv{fresh}"
                    yield sc.rename(live[victim], target)
                    live[victim] = target
                elif op == 3:  # unlink + recreate: same name, new inode
                    victim = rng.choice(live)
                    yield sc.unlink(victim)
                    fd = (yield sc.create(victim)).value
                    yield sc.write(fd, 300)
                    yield sc.close(fd)
                elif op == 4:  # grow the directory itself
                    fresh += 1
                    fd = (yield sc.create(f"{self.DIR}/new{fresh}")).value
                    yield sc.close(fd)
                    live.append(f"{self.DIR}/new{fresh}")
                else:  # metadata mutation without a namespace change
                    yield sc.utimes(rng.choice(live), 50, 60)
            # One full sweep at the end: every surviving name resolves.
            result = yield sc.stat_batch(sorted(live))
            out.extend((p.stat, p.elapsed_ns) for p in result.value)
            return out
        return script

    def _run(self, seed: int, name_cache: bool, noisy: bool):
        kernel = Kernel(small_config(), name_cache=name_cache)
        if noisy:
            FaultInjector(
                InjectionConfig(
                    seed=seed,
                    latency=LatencyNoise(
                        jitter_ns=15_000, spike_prob=0.05,
                        spike_ns=4_000_000, granularity_ns=5_000,
                    ),
                )
            ).install(kernel)
        self._populate(kernel)
        out = kernel.run_process(self._adversary(seed)(), "adv")
        # Fingerprint the directory: the adversary renames files, but
        # the directory itself never moves.
        return out, _cache_fingerprint(kernel, self.DIR)

    @pytest.mark.parametrize("noisy", [False, True])
    def test_differential_churn(self, noisy):
        for case in range(8):
            seed = 0xDCA + 613 * case
            on = self._run(seed, name_cache=True, noisy=noisy)
            off = self._run(seed, name_cache=False, noisy=noisy)
            assert on == off, (
                f"dcache divergence (noisy={noisy}): reproduce with "
                f"seed={seed}"
            )

    def test_stale_entry_never_resolves_old_namespace(self):
        """Point check: after mv f0 -> g, stat(f0) fails and stat(g)
        returns f0's inode, with the walk memoized in between."""
        kernel = Kernel(small_config())
        self._populate(kernel)

        def script():
            before = (yield sc.stat(f"{self.DIR}/f0")).value
            yield sc.stat(f"{self.DIR}/f0")  # memoized, replayed
            yield sc.rename(f"{self.DIR}/f0", f"{self.DIR}/g")
            after = (yield sc.stat(f"{self.DIR}/g")).value
            try:
                yield sc.stat(f"{self.DIR}/f0")
            except FileNotFound:
                return before, after, True
            return before, after, False
        before, after, missed = kernel.run_process(script(), "adv")
        assert missed
        assert after.ino == before.ino
        assert after.ctime >= before.ctime  # rename stamps ctime

    def test_recreated_name_resolves_new_inode(self):
        kernel = Kernel(small_config())
        self._populate(kernel)

        def script():
            old = (yield sc.stat(f"{self.DIR}/f3")).value
            yield sc.unlink(f"{self.DIR}/f3")
            fd = (yield sc.create(f"{self.DIR}/f3")).value
            yield sc.write(fd, 42)
            yield sc.close(fd)
            new = (yield sc.stat(f"{self.DIR}/f3")).value
            return old, new
        old, new = kernel.run_process(script(), "adv")
        assert new.size == 42
        assert new.size != old.size


# ======================================================================
# ICLs: batch_probes=True vs False
# ======================================================================
class TestIclBatchEquivalence:
    def test_fccd_plans_identical(self):
        path = "/mnt0/scan.dat"

        def setup(kernel):
            kernel.run_process(make_file(path, 1 * MIB), "setup")
            kernel.oracle.flush_file_cache()
            # Warm an arbitrary stretch so probes see mixed hit/miss.
            def warm():
                fd = (yield sc.open(path)).value
                yield sc.pread(fd, 300 * KIB, 200 * KIB)
                yield sc.close(fd)
            kernel.run_process(warm(), "warm")

        plans = {}
        for batch in (False, True):
            kernel = Kernel(small_config())
            setup(kernel)
            fccd = FCCD(
                rng=random.Random(11),
                access_unit_bytes=256 * KIB,
                prediction_unit_bytes=64 * KIB,
                batch_probes=batch,
            )

            def app():
                return (yield from fccd.plan_file(path))
            plans[batch] = kernel.run_process(app(), "fccd")

        assert plans[False].segments == plans[True].segments
        assert plans[False].ordered_ranges() == plans[True].ordered_ranges()

    def test_fldc_order_identical(self):
        paths = [f"/mnt0/d/f{i}" for i in range(10)]

        def setup(kernel):
            def populate():
                yield sc.mkdir("/mnt0/d")
                for i, path in enumerate(paths):
                    fd = (yield sc.create(path)).value
                    yield sc.write(fd, (i + 1) * KIB)
                    yield sc.close(fd)
            kernel.run_process(populate(), "setup")

        orders = {}
        for batch in (False, True):
            kernel = Kernel(small_config())
            setup(kernel)
            fldc = FLDC(batch_probes=batch)

            def app():
                return (yield from fldc.layout_order(list(reversed(paths))))
            orders[batch] = kernel.run_process(app(), "fldc")

        assert orders[False][0] == orders[True][0]
        assert orders[False][1] == orders[True][1]

    def _run_mac(self, batch, repository):
        kernel = Kernel(small_config())
        mac = MAC(
            repository=repository,
            page_size=PAGE,
            initial_increment_bytes=1 * MIB,
            max_increment_bytes=8 * MIB,
            batch_probes=batch,
        )

        def app():
            allocation = yield from mac.gb_alloc(2 * MIB, 16 * MIB)
            granted = None if allocation is None else allocation.granted_bytes
            if allocation is not None:
                yield from mac.gb_free(allocation)
            return granted

        granted = kernel.run_process(app(), "mac")
        return granted, mac.stats, kernel.clock.now

    @staticmethod
    def _repo(zero_ns, disk_ns):
        repo = ParameterRepository()
        repo.set("mem.page_zero_ns", zero_ns, units="ns")
        repo.set("disk.random_access_ns", disk_ns, units="ns")
        return repo

    def test_mac_grant_identical(self):
        # Generous threshold: everything fits, a normal grant.
        repo = lambda: self._repo(3_000, 10_000_000)
        seq = self._run_mac(False, repo())
        batch = self._run_mac(True, repo())
        assert seq == batch
        assert seq[0] == 16 * MIB

    def test_mac_denial_identical(self):
        # Threshold below the zero-fill cost: every cold touch is slow,
        # so loop 1 aborts immediately and the allocation is denied —
        # the early-stop path on both sides.
        repo = lambda: self._repo(10, 40)
        g_seq, s_seq, t_seq = self._run_mac(False, repo())
        g_batch, s_batch, t_batch = self._run_mac(True, repo())
        assert g_seq is None and g_batch is None
        assert (
            s_seq.probe_touches,
            s_seq.loop1_aborts,
            s_seq.backoffs,
            s_seq.denials,
        ) == (
            s_batch.probe_touches,
            s_batch.loop1_aborts,
            s_batch.backoffs,
            s_batch.denials,
        )
        assert s_batch.loop1_aborts >= 1
        assert t_seq == t_batch
