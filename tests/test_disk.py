"""Disk service-model invariants: seeks, rotation, readahead, queueing."""

import pytest

from repro.sim.config import DiskSpec
from repro.sim.disk import Disk
from repro.sim.errors import InvalidArgument

BLOCK = 4096


@pytest.fixture
def disk() -> Disk:
    return Disk(DiskSpec(), disk_id=0)


class TestGeometry:
    def test_locate_first_sector(self, disk):
        assert disk.locate(0) == (0, 0, 0)

    def test_locate_advances_through_track_head_cylinder(self, disk):
        spt = disk.spec.sectors_per_track
        assert disk.locate(spt) == (0, 1, 0)
        assert disk.locate(spt * disk.spec.heads) == (1, 0, 0)
        assert disk.locate(spt + 3) == (0, 1, 3)

    def test_capacity_blocks(self, disk):
        expected = disk.capacity_sectors * disk.spec.sector_bytes // BLOCK
        assert disk.capacity_blocks(BLOCK) == expected

    def test_sectors_per_block_requires_multiple(self, disk):
        with pytest.raises(InvalidArgument):
            disk.sectors_per_block(1000)

    def test_cylinder_of_block_monotonic(self, disk):
        cylinders = [disk.cylinder_of_block(b, BLOCK) for b in range(0, 10_000, 500)]
        assert cylinders == sorted(cylinders)


class TestSeekCurve:
    def test_zero_distance_is_free(self, disk):
        assert disk.seek_ns(0) == 0

    def test_single_track_matches_spec(self, disk):
        assert disk.seek_ns(1) == pytest.approx(disk.spec.single_track_seek_ns, rel=0.01)

    def test_full_stroke_matches_spec(self, disk):
        full = disk.seek_ns(disk.spec.cylinders - 1)
        assert full == pytest.approx(disk.spec.full_stroke_seek_ns, rel=0.01)

    def test_seek_is_monotonic_in_distance(self, disk):
        seeks = [disk.seek_ns(d) for d in (1, 10, 100, 1000, 5000)]
        assert seeks == sorted(seeks)

    def test_seek_is_concave_sqrt_like(self, disk):
        # Doubling the distance should less than double the seek time.
        assert disk.seek_ns(2000) < 2 * disk.seek_ns(1000)


class TestAccessTiming:
    def test_single_block_costs_at_most_overhead_seek_rotation_transfer(self, disk):
        start, end = disk.access(1000, 1, now=0, block_bytes=BLOCK)
        assert start == 0
        upper = (
            disk.spec.command_overhead_ns
            + disk.spec.full_stroke_seek_ns
            + disk.spec.rotation_ns
            + disk.spec.rotation_ns  # transfer < one revolution
        )
        assert 0 < end <= upper

    def test_request_queues_behind_busy_disk(self, disk):
        _s1, end1 = disk.access(0, 1, now=0, block_bytes=BLOCK)
        start2, _end2 = disk.access(500_000, 1, now=0, block_bytes=BLOCK)
        assert start2 == end1

    def test_idle_disk_starts_immediately(self, disk):
        disk.access(0, 1, now=0, block_bytes=BLOCK)
        later = disk.busy_until + 50_000_000
        start, _end = disk.access(9_000, 1, now=later, block_bytes=BLOCK)
        assert start == later

    def test_sequential_followup_has_no_seek_or_rotation(self, disk):
        _s, end1 = disk.access(1000, 16, now=0, block_bytes=BLOCK)
        start2, end2 = disk.access(1016, 16, now=end1, block_bytes=BLOCK)
        service = end2 - start2
        pure_transfer = 16 * disk.sectors_per_block(BLOCK) * (
            disk.spec.rotation_ns / disk.spec.sectors_per_track
        )
        assert service <= disk.spec.command_overhead_ns + pure_transfer * 1.2

    def test_stale_sequential_state_pays_rotation_again(self, disk):
        _s, end1 = disk.access(1000, 16, now=0, block_bytes=BLOCK)
        much_later = end1 + 10 * disk.spec.rotation_ns
        start2, end2 = disk.access(1016, 16, now=much_later, block_bytes=BLOCK)
        service = end2 - start2
        pure_transfer = 16 * disk.sectors_per_block(BLOCK) * (
            disk.spec.rotation_ns / disk.spec.sectors_per_track
        )
        assert service > pure_transfer  # some rotational wait came back

    def test_sequential_bandwidth_beats_random(self, disk):
        t = 0
        for i in range(64):
            _s, t = disk.access(i * 8, 8, now=t, block_bytes=BLOCK)
        sequential = t
        disk2 = Disk(DiskSpec())
        t = 0
        for i in range(64):
            _s, t = disk2.access((i * 7919) % 100_000, 8, now=t, block_bytes=BLOCK)
        random_time = t
        assert random_time > 3 * sequential

    def test_near_seeks_beat_far_seeks(self, disk):
        t = 0
        for i in range(32):
            _s, t = disk.access(10_000 + i * 64, 2, now=t, block_bytes=BLOCK)
        near = t
        disk2 = Disk(DiskSpec())
        t = 0
        for i in range(32):
            _s, t = disk2.access((i % 2) * 1_500_000 + i * 64, 2, now=t, block_bytes=BLOCK)
        far = t
        assert far > near

    def test_write_does_not_arm_readahead(self, disk):
        _s, end1 = disk.access(1000, 16, now=0, block_bytes=BLOCK, write=True)
        start2, end2 = disk.access(1016, 1, now=end1, block_bytes=BLOCK)
        service = end2 - start2
        one_sector_transfer = disk.sectors_per_block(BLOCK) * (
            disk.spec.rotation_ns / disk.spec.sectors_per_track
        )
        # Without readahead, there is at least command overhead plus some
        # positioning beyond the raw transfer most of the time.
        assert service >= disk.spec.command_overhead_ns + one_sector_transfer

    def test_rejects_empty_request(self, disk):
        with pytest.raises(InvalidArgument):
            disk.access(0, 0, now=0, block_bytes=BLOCK)

    def test_rejects_access_beyond_capacity(self, disk):
        with pytest.raises(InvalidArgument):
            disk.access(disk.capacity_blocks(BLOCK), 1, now=0, block_bytes=BLOCK)


class TestStats:
    def test_read_and_write_counters(self, disk):
        disk.access(0, 4, now=0, block_bytes=BLOCK)
        disk.access(100, 2, now=0, block_bytes=BLOCK, write=True)
        spb = disk.sectors_per_block(BLOCK)
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1
        assert disk.stats.sectors_read == 4 * spb
        assert disk.stats.sectors_written == 2 * spb

    def test_busy_time_accumulates(self, disk):
        disk.access(0, 4, now=0, block_bytes=BLOCK)
        before = disk.stats.busy_ns
        disk.access(90_000, 4, now=disk.busy_until, block_bytes=BLOCK)
        assert disk.stats.busy_ns > before
