"""Name-lookup cache (dcache): unit behaviour and twin equivalence.

The dcache is a host-side memoization of fully resolved path walks; it
must never change anything simulated.  The unit tests pin the cache's
own contract (generation invalidation, lazy expiry, FIFO bound,
accounting); the integration tests run the same probe sequences on twin
kernels built with ``name_cache=True`` and ``name_cache=False`` and
require byte-identical results, elapsed times, cache fingerprints, and
clocks — through residency loss, namespace churn, and metadata
mutation.
"""

from __future__ import annotations

import pytest

from repro.sim import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.sim.errors import FileNotFound
from repro.sim.fs.dcache import NameCache, NameCacheStats, WalkEntry

KIB = 1024
MIB = 1024 * 1024
PAGE = 4 * KIB


def small_config() -> MachineConfig:
    return MachineConfig(
        page_size=PAGE,
        memory_bytes=40 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )


# ======================================================================
# Unit: the cache structure itself
# ======================================================================
class _FakeFS:
    def __init__(self, fs_id: int) -> None:
        self.fs_id = fs_id


class _FakeInode:
    def __init__(self, ino: int) -> None:
        self.ino = ino


def _store(cache: NameCache, path: str, fs_id: int = 0, ino: int = 7) -> WalkEntry:
    return cache.store(
        path, _FakeFS(fs_id), object(), _FakeInode(ino), (), 100, 3100
    )


class TestNameCacheUnit:
    def test_lookup_miss_counts(self):
        cache = NameCache()
        assert cache.lookup("/mnt0/ghost") is None
        assert (cache.hits, cache.misses) == (0, 1)

    def test_store_then_lookup_hit(self):
        cache = NameCache()
        entry = _store(cache, "/mnt0/f")
        assert cache.lookup("/mnt0/f") is entry
        assert entry.ino == 7
        assert entry.fs_id == 0
        assert (cache.hits, cache.misses, cache.stale) == (1, 0, 0)

    def test_invalidate_expires_lazily(self):
        cache = NameCache()
        _store(cache, "/mnt0/f")
        cache.invalidate(0)
        assert cache.invalidations == 1
        assert len(cache) == 1  # expiry is lazy...
        assert cache.lookup("/mnt0/f") is None
        assert len(cache) == 0  # ...the stale lookup deletes it
        assert (cache.hits, cache.misses, cache.stale) == (0, 1, 1)

    def test_invalidate_other_fs_keeps_entry(self):
        cache = NameCache()
        _store(cache, "/mnt0/f", fs_id=0)
        cache.invalidate(1)
        assert cache.lookup("/mnt0/f") is not None

    def test_generation_stamped_at_store_time(self):
        cache = NameCache()
        cache.invalidate(0)
        cache.invalidate(0)
        entry = _store(cache, "/mnt0/f")
        assert entry.generation == cache.generation_of(0) == 2
        assert cache.lookup("/mnt0/f") is entry

    def test_fifo_capacity_evicts_oldest(self):
        cache = NameCache(capacity=3)
        for i in range(4):
            _store(cache, f"/mnt0/f{i}")
        assert len(cache) == 3
        assert cache.lookup("/mnt0/f0") is None  # oldest out
        assert cache.lookup("/mnt0/f3") is not None

    def test_restore_of_present_path_does_not_evict(self):
        cache = NameCache(capacity=2)
        _store(cache, "/mnt0/a")
        _store(cache, "/mnt0/b")
        _store(cache, "/mnt0/a", ino=9)  # overwrite, not insert
        assert len(cache) == 2
        assert cache.lookup("/mnt0/b") is not None
        assert cache.lookup("/mnt0/a").ino == 9

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            NameCache(capacity=0)

    def test_clear(self):
        cache = NameCache()
        _store(cache, "/mnt0/f")
        cache.clear()
        assert len(cache) == 0

    def test_stats_snapshot_mirrors_live_counters(self):
        cache = NameCache()
        _store(cache, "/mnt0/f")
        cache.lookup("/mnt0/f")
        cache.lookup("/mnt0/ghost")
        cache.invalidate(0)
        cache.lookup("/mnt0/f")
        assert cache.stats == NameCacheStats(
            hits=1, misses=2, stale=1, invalidations=1
        )

    def test_hot_view_matches_lookup_semantics(self):
        """The fused-loop contract: same currency test as ``lookup``."""
        cache = NameCache()
        entry = _store(cache, "/mnt0/f")
        entries, entries_get, gen_get = cache.hot_view()
        got = entries_get("/mnt0/f")
        assert got is entry
        assert got.generation == gen_get(got.fs_id, 0)
        cache.invalidate(0)
        assert got.generation != gen_get(got.fs_id, 0)
        del entries["/mnt0/f"]  # the caller's stale-delete duty
        assert len(cache) == 0


# ======================================================================
# Integration: twin kernels, dcache on vs off
# ======================================================================
PATHS = [f"/mnt0/dir/f{i}" for i in range(8)]


def _populate(kernel: Kernel) -> None:
    def build():
        yield sc.mkdir("/mnt0/dir")
        for path in PATHS:
            fd = (yield sc.create(path)).value
            yield sc.write(fd, 700)
            yield sc.close(fd)
    kernel.run_process(build(), "setup")
    kernel.oracle.flush_file_cache()


def _twin(script_factory):
    """Run the same script on dcache-on and dcache-off kernels and
    demand identical return values, pool fingerprints, and clocks."""
    results = {}
    for on in (True, False):
        kernel = Kernel(small_config(), name_cache=on)
        _populate(kernel)
        value = kernel.run_process(script_factory(), f"dc{on}")
        stats = kernel.oracle.cache_stats()
        results[on] = (
            value,
            kernel.clock.now,
            kernel.oracle.file_pool_used_pages(),
            stats.hits,
            stats.misses,
            stats.evictions,
        )
    assert results[True] == results[False]
    return results[True][0]


class TestDcacheTwinEquivalence:
    def test_cold_then_warm_sweeps(self):
        def script():
            out = []
            for _ in range(3):
                for path in PATHS:
                    result = yield sc.stat(path)
                    out.append((result.value, result.elapsed_ns))
            return out
        out = _twin(script)
        cold, warm = out[: len(PATHS)], out[len(PATHS):]
        # Later cold probes share warmed directory/inode-table pages, so
        # only the first probe and the sweep total are strictly ordered.
        assert cold[0][1] > warm[0][1]
        assert sum(e for _s, e in cold) > sum(e for _s, e in warm)

    def test_batched_sweeps(self):
        def script():
            out = []
            for _ in range(3):
                result = yield sc.stat_batch(PATHS)
                out.extend((p.stat, p.elapsed_ns) for p in result.value)
            return out
        _twin(script)

    def test_namespace_churn_between_sweeps(self):
        """rename/unlink/create between sweeps: the dcache must expire,
        not serve the old namespace."""
        def script():
            out = []
            out.append((yield sc.stat_batch(PATHS)).value)
            yield sc.rename(PATHS[0], "/mnt0/dir/moved")
            yield sc.unlink(PATHS[1])
            fd = (yield sc.create(PATHS[1])).value  # fresh inode, old name
            yield sc.close(fd)
            survivors = ["/mnt0/dir/moved"] + PATHS[1:]
            for _ in range(2):
                out.append((yield sc.stat_batch(survivors)).value)
            return out
        _twin(script)

    def test_metadata_mutation_between_stats(self):
        """write/utimes between stats: memoized StatResults must not
        outlive the mutation (the stat-epoch tier)."""
        def script():
            path = PATHS[0]
            first = (yield sc.stat(path)).value
            fd = (yield sc.open(path)).value
            yield sc.write(fd, 3 * PAGE)
            yield sc.close(fd)
            second = (yield sc.stat(path)).value
            yield sc.utimes(path, 111, 222)
            third = (yield sc.stat(path)).value
            return first, second, third
        first, second, third = _twin(script)
        assert second.size == 3 * PAGE
        assert second.size != first.size
        assert (third.atime, third.mtime) == (111, 222)
        assert third.ctime >= second.ctime

    def test_residency_loss_mid_sequence(self):
        """flush_file_cache between sweeps: the replay token is dead,
        the fallback walk must recharge full miss costs."""
        results = {}
        for on in (True, False):
            kernel = Kernel(small_config(), name_cache=on)
            _populate(kernel)

            def sweep():
                result = yield sc.stat_batch(PATHS)
                return [(p.stat, p.elapsed_ns) for p in result.value]
            warm1 = kernel.run_process(sweep(), "w1")
            warm2 = kernel.run_process(sweep(), "w2")
            kernel.oracle.flush_file_cache()
            cold = kernel.run_process(sweep(), "cold")
            warm3 = kernel.run_process(sweep(), "w3")
            results[on] = (warm1, warm2, cold, warm3, kernel.clock.now)
        assert results[True] == results[False]
        _w1, warm2, cold, _w3, _now = results[True]
        assert cold[0][1] > warm2[0][1]
        assert sum(e for _s, e in cold) > sum(e for _s, e in warm2)


class TestDcacheKernelAccounting:
    """White-box: the cache's own counters (host-side, not simulated)."""

    def _kernel(self):
        kernel = Kernel(small_config())
        _populate(kernel)
        return kernel, kernel.vfs.dcache

    def test_warm_sweeps_hit(self):
        kernel, dcache = self._kernel()

        def sweep():
            yield sc.stat_batch(PATHS)
        kernel.run_process(sweep(), "s1")
        assert dcache.stats.hits == 0
        assert dcache.stats.misses == len(PATHS)
        kernel.run_process(sweep(), "s2")
        assert dcache.stats.hits == len(PATHS)

    def test_rename_expires_exactly_the_mutated_fs(self):
        kernel, dcache = self._kernel()

        def probe():
            yield sc.stat(PATHS[0])
        kernel.run_process(probe(), "p1")
        kernel.run_process(probe(), "p2")
        assert dcache.stats.hits == 1
        before = dcache.stats.invalidations

        def mutate():
            yield sc.rename(PATHS[0], "/mnt0/dir/new")
        kernel.run_process(mutate(), "mv")
        assert dcache.stats.invalidations > before

        def stat_old():
            yield sc.stat(PATHS[0])
        with pytest.raises(FileNotFound):
            kernel.run_process(stat_old(), "old")
        assert dcache.stats.stale >= 1

    def test_residency_loss_falls_back_without_counting_a_miss(self):
        """flush empties the pool: the lookup still *hits* (the walk is
        memoized and current), only the replay falls back."""
        kernel, dcache = self._kernel()

        def probe():
            yield sc.stat(PATHS[0])
        kernel.run_process(probe(), "p1")
        kernel.oracle.flush_file_cache()
        kernel.run_process(probe(), "p2")
        assert dcache.stats.hits == 1
        kernel.run_process(probe(), "p3")
        assert dcache.stats.hits == 2

    def test_disabled_kernel_has_no_dcache(self):
        kernel = Kernel(small_config(), name_cache=False)
        _populate(kernel)
        assert kernel.vfs.dcache is None

        def probe():
            result = yield sc.stat(PATHS[0])
            return result.value.ino
        assert kernel.run_process(probe(), "p") > 0
