"""Replacement-policy behaviour, including property tests against LRU."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.cache import POLICIES, make_policy
from repro.sim.cache.base import AnonKey, FileKey, MetaKey
from repro.sim.cache.clockpolicy import ClockPolicy
from repro.sim.cache.lru import LRUPolicy
from repro.sim.cache.segmap import SegmapPolicy


def fkey(i: int, ino: int = 1) -> FileKey:
    return FileKey(0, ino, i)


def akey(i: int, pid: int = 1) -> AnonKey:
    return AnonKey(pid, i)


class TestRegistry:
    def test_three_policies_registered(self):
        assert set(POLICIES) == {"lru", "clock", "segmap"}

    @pytest.mark.parametrize("name", ["lru", "clock", "segmap"])
    def test_make_policy(self, name):
        policy = make_policy(name)
        policy.touch(fkey(0))
        assert policy.contains(fkey(0))

    def test_unknown_policy_raises(self):
        with pytest.raises(ValueError):
            make_policy("mru")


@pytest.mark.parametrize("name", ["lru", "clock", "segmap"])
class TestCommonContract:
    def test_insert_then_contains(self, name):
        policy = make_policy(name)
        policy.touch(fkey(3))
        assert policy.contains(fkey(3))
        assert not policy.contains(fkey(4))

    def test_len_counts_pages(self, name):
        policy = make_policy(name)
        for i in range(5):
            policy.touch(fkey(i))
        policy.touch(fkey(2))  # re-touch must not double count
        assert len(policy) == 5

    def test_remove(self, name):
        policy = make_policy(name)
        policy.touch(fkey(1))
        assert policy.remove(fkey(1))
        assert not policy.contains(fkey(1))
        assert not policy.remove(fkey(1))

    def test_dirty_bit_sticks_until_cleaned(self, name):
        policy = make_policy(name)
        policy.touch(fkey(1), dirty=True)
        policy.touch(fkey(1), dirty=False)  # re-read keeps it dirty
        assert policy.is_dirty(fkey(1))
        policy.mark_clean(fkey(1))
        assert not policy.is_dirty(fkey(1))

    def test_pop_victims_drains_everything(self, name):
        policy = make_policy(name)
        for i in range(10):
            policy.touch(fkey(i))
        victims = policy.pop_victims(100)
        assert len(victims) == 10
        assert len(policy) == 0

    def test_victims_carry_dirty_flags(self, name):
        policy = make_policy(name)
        policy.touch(fkey(1), dirty=True)
        policy.touch(fkey(2), dirty=False)
        dirty = {v.key: v.dirty for v in policy.pop_victims(10)}
        assert dirty[fkey(1)] is True
        assert dirty[fkey(2)] is False

    def test_keys_iterates_contents(self, name):
        policy = make_policy(name)
        for i in range(4):
            policy.touch(fkey(i))
        assert set(policy.keys()) == {fkey(i) for i in range(4)}

    def test_pop_zero_returns_nothing(self, name):
        policy = make_policy(name)
        policy.touch(fkey(0))
        assert policy.pop_victims(0) == []


class TestLRU:
    def test_evicts_least_recent_first(self):
        policy = LRUPolicy()
        for i in range(3):
            policy.touch(fkey(i))
        policy.touch(fkey(0))  # 0 is now most recent
        victims = [v.key for v in policy.pop_victims(2)]
        assert victims == [fkey(1), fkey(2)]

    def test_demote_makes_page_next_victim(self):
        policy = LRUPolicy()
        for i in range(3):
            policy.touch(fkey(i))
        policy.demote(fkey(2))
        assert policy.pop_victims(1)[0].key == fkey(2)


class TestClock:
    def test_second_chance_protects_referenced_page(self):
        policy = ClockPolicy()
        for i in range(4):
            policy.touch(fkey(i))
        victims = [v.key for v in policy.pop_victims(1)]
        # All pages are referenced once; one full sweep clears bits and
        # evicts the insertion-order head.
        assert victims == [fkey(0)]

    def test_retouched_page_survives_a_sweep(self):
        policy = ClockPolicy()
        for i in range(4):
            policy.touch(fkey(i))
        policy.pop_victims(1)  # clears all reference bits, evicts fkey(0)
        policy.touch(fkey(1))  # re-reference
        victims = [v.key for v in policy.pop_victims(1)]
        assert victims == [fkey(2)]
        assert policy.contains(fkey(1))

    def test_file_pages_evicted_before_anon(self):
        policy = ClockPolicy()
        policy.touch(akey(0))
        for i in range(5):
            policy.touch(fkey(i))
        victims = [v.key for v in policy.pop_victims(5)]
        assert akey(0) not in victims
        assert len(victims) == 5

    def test_anon_evicted_only_when_no_file_pages_remain(self):
        policy = ClockPolicy()
        policy.touch(akey(0))
        policy.touch(fkey(0))
        victims = [v.key for v in policy.pop_victims(2)]
        assert victims[0] == fkey(0)
        assert victims[1] == akey(0)

    def test_demote_clears_reference_and_fronts_page(self):
        policy = ClockPolicy()
        for i in range(3):
            policy.touch(fkey(i))
        policy.demote(fkey(2))
        assert policy.pop_victims(1)[0].key == fkey(2)

    def test_eviction_proceeds_in_insertion_chunks(self):
        # The figure-1 property: pages inserted together leave together.
        policy = ClockPolicy()
        for i in range(100):
            policy.touch(fkey(i))
        policy.pop_victims(1)  # clear all reference bits
        victims = [v.key.index for v in policy.pop_victims(20)]
        assert victims == list(range(1, 21))


class TestSegmap:
    def test_early_file_is_hard_to_dislodge(self):
        policy = SegmapPolicy()
        for i in range(10):
            policy.touch(fkey(i, ino=1))
        for i in range(10):
            policy.touch(fkey(i, ino=2))
        victims = [v.key for v in policy.pop_victims(5)]
        assert all(v.ino == 2 for v in victims)

    def test_within_file_newest_insertion_evicted_first(self):
        # A sequential scan keeps its earliest-read prefix resident.
        policy = SegmapPolicy()
        for i in range(10):
            policy.touch(fkey(i))
        victims = [v.key.index for v in policy.pop_victims(3)]
        assert victims == [9, 8, 7]

    def test_retouch_does_not_change_insertion_order(self):
        policy = SegmapPolicy()
        for i in range(5):
            policy.touch(fkey(i))
        policy.touch(fkey(4))
        victims = [v.key.index for v in policy.pop_victims(1)]
        assert victims == [4]

    def test_owner_forgotten_when_empty(self):
        policy = SegmapPolicy()
        policy.touch(fkey(0, ino=5))
        policy.pop_victims(1)
        policy.touch(fkey(0, ino=6))
        victims = [v.key for v in policy.pop_victims(1)]
        assert victims == [fkey(0, ino=6)]

    def test_meta_and_anon_keys_have_owners(self):
        policy = SegmapPolicy()
        policy.touch(MetaKey(0, 7))
        policy.touch(akey(1))
        assert len(policy) == 2
        assert len(policy.pop_victims(5)) == 2


# ---------------------------------------------------------------------------
# Property tests: every policy keeps a consistent membership view under
# arbitrary interleavings of touches and removals.
# ---------------------------------------------------------------------------
operations = st.lists(
    st.tuples(
        st.sampled_from(["touch", "touch_dirty", "remove", "pop"]),
        st.integers(min_value=0, max_value=15),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=operations, name=st.sampled_from(["lru", "clock", "segmap"]))
def test_policy_membership_matches_model(ops, name):
    policy = make_policy(name)
    model = {}
    for op, i in ops:
        key = fkey(i)
        if op == "touch":
            policy.touch(key)
            model.setdefault(key, False)
        elif op == "touch_dirty":
            policy.touch(key, dirty=True)
            model[key] = True
        elif op == "remove":
            assert policy.remove(key) == (key in model)
            model.pop(key, None)
        else:
            for victim in policy.pop_victims(1):
                assert victim.key in model
                assert victim.dirty == model.pop(victim.key)
    assert len(policy) == len(model)
    assert set(policy.keys()) == set(model)
    for key, dirty in model.items():
        assert policy.contains(key)
        assert policy.is_dirty(key) == dirty


@settings(max_examples=40, deadline=None)
@given(
    indices=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=40)
)
def test_lru_eviction_order_matches_reference_model(indices):
    policy = LRUPolicy()
    order = []
    for i in indices:
        key = fkey(i)
        if key in order:
            order.remove(key)
        order.append(key)
        policy.touch(key)
    victims = [v.key for v in policy.pop_victims(len(order))]
    assert victims == order
