"""Prior gray-box systems (Table 1): the published shapes hold."""

import random

import pytest

from repro.related import PRIOR_SYSTEMS
from repro.related.coscheduling import CoschedConfig, simulate_coscheduling
from repro.related.manners import MannersConfig, simulate_manners
from repro.related.tcp import NetworkPath, TcpResult, simulate_tcp


class TestTcp:
    def test_wired_goodput_near_capacity(self):
        result = simulate_tcp(NetworkPath(capacity_per_rtt=50))
        assert 0.7 * 50 <= result.goodput <= 50

    def test_goodput_never_exceeds_link_capacity(self):
        result = simulate_tcp(NetworkPath(capacity_per_rtt=50))
        per_rtt_max = max(result.cwnd_trace)
        assert result.goodput <= 50
        assert per_rtt_max > 50  # the sender does over-drive the pipe

    def test_wireless_losses_collapse_throughput(self):
        """The mislabeled-gray-box lesson: loss != congestion on wireless."""
        wired = simulate_tcp(NetworkPath())
        wireless = simulate_tcp(NetworkPath(wireless_loss_rate=0.02))
        assert wireless.goodput < wired.goodput / 3

    def test_red_signals_before_overflow(self):
        plain = simulate_tcp(NetworkPath())
        red = simulate_tcp(NetworkPath(red=True))
        # RED keeps goodput comparable while trimming queue excursions.
        assert red.goodput > 0.8 * plain.goodput

    def test_sawtooth_pattern_present(self):
        result = simulate_tcp(NetworkPath())
        drops = sum(
            1
            for a, b in zip(result.cwnd_trace, result.cwnd_trace[1:])
            if b < a
        )
        assert drops >= 3  # repeated AIMD cycles

    def test_deterministic_under_fixed_seed(self):
        a = simulate_tcp(NetworkPath(), rng=random.Random(1))
        b = simulate_tcp(NetworkPath(), rng=random.Random(1))
        assert a.cwnd_trace == b.cwnd_trace


class TestCoscheduling:
    def test_implicit_close_to_spin(self):
        spin = simulate_coscheduling(policy="spin")
        implicit = simulate_coscheduling(policy="implicit")
        assert implicit.slowdown < 1.5 * spin.slowdown

    def test_blocking_is_catastrophic(self):
        block = simulate_coscheduling(policy="block")
        implicit = simulate_coscheduling(policy="implicit")
        assert block.slowdown > 3 * implicit.slowdown

    def test_implicit_mostly_spins_once_aligned(self):
        result = simulate_coscheduling(policy="implicit")
        assert result.spun_waits > result.blocked_waits

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            simulate_coscheduling(policy="magic")

    def test_more_background_jobs_hurt_blocking_more(self):
        light = simulate_coscheduling(
            CoschedConfig(background_jobs=1), policy="block"
        )
        heavy = simulate_coscheduling(
            CoschedConfig(background_jobs=3), policy="block"
        )
        assert heavy.total_us > light.total_us


class TestManners:
    def test_governed_job_vacates_during_contention(self):
        governed = simulate_manners(governed=True)
        ungoverned = simulate_manners(governed=False)
        assert ungoverned.interference_fraction == pytest.approx(1.0)
        assert governed.interference_fraction < 0.3

    def test_governed_job_resumes_when_idle_returns(self):
        cfg = MannersConfig(windows=300, busy_start=100, busy_end=200)
        result = simulate_manners(cfg, governed=True)
        tail = result.trace[-50:]
        assert tail.count("run") > 40  # running freely after the busy period

    def test_ungoverned_never_suspends(self):
        result = simulate_manners(governed=False)
        assert result.suspended_windows == 0

    def test_suspension_only_costs_a_little_progress_when_idle(self):
        cfg = MannersConfig(windows=100, busy_start=90, busy_end=91)
        governed = simulate_manners(cfg, governed=True)
        ungoverned = simulate_manners(cfg, governed=False)
        assert governed.li_progress > 0.85 * ungoverned.li_progress


class TestProfiles:
    def test_table1_rows_match_paper(self):
        tcp = PRIOR_SYSTEMS["TCP"]
        assert "congestion" in tcp.knowledge.lower()
        assert tcp.probes == "None"
        manners = PRIOR_SYSTEMS["MS Manners"]
        assert "sign test" in manners.statistics.lower()
        cosched = PRIOR_SYSTEMS["Implicit Coscheduling"]
        assert "Round-trip" in cosched.benchmarks

    def test_profiles_have_all_seven_rows(self):
        for profile in PRIOR_SYSTEMS.values():
            assert len(profile.rows()) == 7
