"""Error hierarchy and inode/directory data structures."""

import pytest

from repro.sim import errors
from repro.sim.fs.directory import DIRENT_BYTES, Directory
from repro.sim.fs.inode import INODE_BYTES, FileKind, Inode, StatResult, to_inode_seconds


class TestErrors:
    def test_all_errors_are_simos_errors(self):
        for name in (
            "FileNotFound", "FileExists", "NotADirectory", "IsADirectory",
            "DirectoryNotEmpty", "BadFileDescriptor", "InvalidArgument",
            "NoSpace", "OutOfMemory", "PermissionDenied",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.SimOSError)
            assert cls.errno_name  # every error names its errno

    def test_errno_names_unique(self):
        # Abstract groupings (the base, and the retryable-error family)
        # share their children's errnos; every concrete error is unique.
        abstract = {errors.SimOSError, errors.TransientError}
        names = [
            getattr(errors, n).errno_name
            for n in dir(errors)
            if isinstance(getattr(errors, n), type)
            and issubclass(getattr(errors, n), errors.SimOSError)
            and getattr(errors, n) not in abstract
        ]
        assert len(names) == len(set(names))

    def test_catchable_as_base(self):
        with pytest.raises(errors.SimOSError):
            raise errors.NoSpace("disk full")


class TestInode:
    def test_npages_rounds_up(self):
        inode = Inode(ino=2, fs_id=0, kind=FileKind.FILE, size=4097)
        assert inode.npages(4096) == 2
        inode.size = 0
        assert inode.npages(4096) == 0

    def test_block_of_page_bounds_checked(self):
        inode = Inode(ino=2, fs_id=0, kind=FileKind.FILE, blocks=[10, 11])
        assert inode.block_of_page(1) == 11
        with pytest.raises(IndexError):
            inode.block_of_page(2)

    def test_stamp_selective_fields(self):
        inode = Inode(ino=2, fs_id=0, kind=FileKind.FILE)
        inode.stamp(5_000_000_000, access=True)
        assert (inode.atime, inode.mtime, inode.ctime) == (5, 0, 0)
        inode.stamp(9_000_000_000, modify=True, change=True)
        assert (inode.atime, inode.mtime, inode.ctime) == (5, 9, 9)

    def test_second_resolution(self):
        assert to_inode_seconds(999_999_999) == 0
        assert to_inode_seconds(1_000_000_000) == 1

    def test_stat_result_mirrors_inode(self):
        inode = Inode(ino=7, fs_id=1, kind=FileKind.FILE, size=123, nlink=2)
        inode.stamp(3_000_000_000, access=True, modify=True, change=True)
        st = StatResult.from_inode(inode)
        assert (st.ino, st.fs_id, st.size, st.nlink) == (7, 1, 123, 2)
        assert st.atime == st.mtime == st.ctime == 3

    def test_inode_is_small_enough_for_its_table_slot(self):
        assert INODE_BYTES == 128


class TestDirectory:
    def test_add_lookup_remove(self):
        d = Directory(ino=2, parent_ino=1)
        d.add("a", 10)
        assert d.lookup("a") == 10
        assert d.contains("a")
        assert d.remove("a") == 10
        assert d.is_empty

    def test_duplicate_add_rejected(self):
        d = Directory(ino=2, parent_ino=1)
        d.add("a", 10)
        with pytest.raises(errors.FileExists):
            d.add("a", 11)

    def test_missing_lookup_and_remove_raise(self):
        d = Directory(ino=2, parent_ino=1)
        with pytest.raises(errors.FileNotFound):
            d.lookup("ghost")
        with pytest.raises(errors.FileNotFound):
            d.remove("ghost")

    def test_names_preserve_insertion_order(self):
        d = Directory(ino=2, parent_ino=1)
        for i, name in enumerate(("z", "a", "m")):
            d.add(name, i)
        assert d.names() == ["z", "a", "m"]
        assert dict(d.items()) == {"z": 0, "a": 1, "m": 2}

    def test_data_bytes_counts_dot_entries(self):
        d = Directory(ino=2, parent_ino=1)
        assert d.data_bytes() == 2 * DIRENT_BYTES
        d.add("a", 3)
        assert d.data_bytes() == 3 * DIRENT_BYTES
