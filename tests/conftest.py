"""Shared fixtures: small machines and generator-process helpers.

Also the RNG-seeding guard: reproducibility here rests on every random
draw flowing from an explicit seed (``random.Random(seed)`` instances,
stream-keyed injector draws), never from the process-global ``random``
module.  An autouse fixture seeds the global RNG per test anyway (so an
accidental use cannot flake run-to-run) and then *fails* the test that
consumed it, pointing at the unseeded use.  Hypothesis-driven tests are
exempt: Hypothesis manages and restores the global RNG itself.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro.sim import Kernel, MachineConfig, linux22, netbsd15, solaris7

KIB = 1024
MIB = 1024 * 1024


@pytest.fixture(autouse=True)
def _global_rng_guard(request):
    """Deterministic global RNG per test + a tripwire on its use."""
    node_seed = int.from_bytes(
        hashlib.sha256(request.node.nodeid.encode()).digest()[:8], "big"
    )
    random.seed(node_seed)  # rng-audit: allow — the guard itself
    before = random.getstate()
    yield
    if request.node.get_closest_marker("hypothesis") is not None:
        return
    if random.getstate() != before:
        pytest.fail(
            f"{request.node.nodeid} drew from the module-global `random` "
            "RNG. Use an explicitly seeded random.Random(seed) instance "
            "so trials replay byte-identically."
        )


def small_config(**overrides) -> MachineConfig:
    """A 32 MB-available machine with 4 KiB pages — fast to simulate."""
    params = dict(
        page_size=4 * KIB,
        memory_bytes=40 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )
    params.update(overrides)
    return MachineConfig(**params)


@pytest.fixture
def config() -> MachineConfig:
    return small_config()


@pytest.fixture
def kernel(config) -> Kernel:
    return Kernel(config)


@pytest.fixture(params=["linux22", "netbsd15", "solaris7"])
def any_platform_kernel(request, config) -> Kernel:
    platform = {"linux22": linux22, "netbsd15": netbsd15, "solaris7": solaris7}[
        request.param
    ]
    return Kernel(config, platform=platform)


def run(kernel: Kernel, gen, name: str = "test"):
    """Run one generator process to completion and return its result."""
    return kernel.run_process(gen, name)
