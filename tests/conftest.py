"""Shared fixtures: small machines and generator-process helpers."""

from __future__ import annotations

import pytest

from repro.sim import Kernel, MachineConfig, linux22, netbsd15, solaris7

KIB = 1024
MIB = 1024 * 1024


def small_config(**overrides) -> MachineConfig:
    """A 32 MB-available machine with 4 KiB pages — fast to simulate."""
    params = dict(
        page_size=4 * KIB,
        memory_bytes=40 * MIB,
        kernel_reserved_bytes=8 * MIB,
        data_disks=1,
    )
    params.update(overrides)
    return MachineConfig(**params)


@pytest.fixture
def config() -> MachineConfig:
    return small_config()


@pytest.fixture
def kernel(config) -> Kernel:
    return Kernel(config)


@pytest.fixture(params=["linux22", "netbsd15", "solaris7"])
def any_platform_kernel(request, config) -> Kernel:
    platform = {"linux22": linux22, "netbsd15": netbsd15, "solaris7": solaris7}[
        request.param
    ]
    return Kernel(config, platform=platform)


def run(kernel: Kernel, gen, name: str = "test"):
    """Run one generator process to completion and return its result."""
    return kernel.run_process(gen, name)
