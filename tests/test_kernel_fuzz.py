"""Kernel fuzzing: random syscall storms must preserve global invariants."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Kernel, syscalls as sc
from repro.sim.errors import SimOSError
from tests.conftest import KIB, MIB, small_config


def chaos_process(seed: int, steps: int):
    """A process issuing a random but self-consistent syscall stream."""
    rng = random.Random(seed)
    open_fds = []
    regions = []
    my_files = []

    def random_path():
        return f"/mnt0/fz{rng.randrange(6)}"

    for _ in range(steps):
        action = rng.randrange(10)
        try:
            if action == 0:
                fd = (yield sc.create(random_path())).value
                open_fds.append(fd)
                my_files.append(random_path())
            elif action == 1:
                fd = (yield sc.open(random_path())).value
                open_fds.append(fd)
            elif action == 2 and open_fds:
                yield sc.write(open_fds[-1], rng.randrange(1, 64 * KIB))
            elif action == 3 and open_fds:
                yield sc.pread(open_fds[-1], rng.randrange(128 * KIB), 4 * KIB)
            elif action == 4 and open_fds:
                yield sc.close(open_fds.pop())
            elif action == 5:
                region = (yield sc.vm_alloc(rng.randrange(1, 32) * 4 * KIB)).value
                regions.append(region)
            elif action == 6 and regions:
                yield sc.touch(regions[-1], 0)
            elif action == 7 and regions:
                yield sc.vm_free(regions.pop())
            elif action == 8:
                yield sc.sleep(rng.randrange(1, 100_000))
            else:
                yield sc.stat(random_path())
        except SimOSError:
            continue
    return "survived"


@settings(max_examples=25, deadline=None)
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=4),
    steps=st.integers(min_value=5, max_value=60),
)
def test_chaos_processes_preserve_invariants(seeds, steps):
    kernel = Kernel(small_config())
    processes = [
        kernel.spawn(chaos_process(seed, steps), f"chaos{i}")
        for i, seed in enumerate(seeds)
    ]
    kernel.run()
    # Everyone survived their own errors.
    assert all(p.result == "survived" for p in processes)
    # Clock only ever moved forward and the pools balance.
    assert kernel.clock.now >= 0
    mm = kernel.mm
    assert 0 <= mm.file_pool_used() <= mm.file_capacity_pages
    assert mm.dirty_file_pages >= 0
    # All process memory was released at exit.
    for process in processes:
        assert kernel.oracle.resident_anon_pages(process.pid) == 0
    # Filesystem bitmaps agree with inode block maps.
    for fs in kernel._fs_by_id.values():
        mapped = sum(len(inode.blocks) for inode in fs.inodes.values())
        used = sum(cg.data_blocks - cg.free_block_count for cg in fs.groups)
        assert used == mapped


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_chaos_is_deterministic(seed):
    def run():
        kernel = Kernel(small_config())
        kernel.run_process(chaos_process(seed, 40), "chaos")
        return kernel.clock.now
    assert run() == run()
