"""Kernel fuzzing: random syscall storms must preserve global invariants,
and twin kernels driven by the same seed must agree bit-for-bit.

The differential half runs >= 200 seeded cases across three claims:

* batched probe syscalls == the equivalent sequential calls, including
  under injected latency noise (the jitter streams are keyed per probe,
  not per syscall, so both forms draw identical noise);
* an installed-but-inert :class:`FaultInjector` is indistinguishable
  from no injector at all (the off-switch really is off);
* a noisy machine (faults, jitter, interference) replays byte-identically
  from its seed.

Every assertion message carries the reproducing seed.
"""

import hashlib
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    FaultInjector,
    InjectionConfig,
    Kernel,
    LatencyNoise,
    MILLIS,
    noise_profile,
    syscalls as sc,
)
from repro.sim.errors import SimOSError
from repro.sim.inject import horizon_after
from tests.conftest import KIB, MIB, small_config


def chaos_process(seed: int, steps: int):
    """A process issuing a random but self-consistent syscall stream."""
    rng = random.Random(seed)
    open_fds = []
    regions = []
    my_files = []

    def random_path():
        return f"/mnt0/fz{rng.randrange(6)}"

    for _ in range(steps):
        action = rng.randrange(10)
        try:
            if action == 0:
                fd = (yield sc.create(random_path())).value
                open_fds.append(fd)
                my_files.append(random_path())
            elif action == 1:
                fd = (yield sc.open(random_path())).value
                open_fds.append(fd)
            elif action == 2 and open_fds:
                yield sc.write(open_fds[-1], rng.randrange(1, 64 * KIB))
            elif action == 3 and open_fds:
                yield sc.pread(open_fds[-1], rng.randrange(128 * KIB), 4 * KIB)
            elif action == 4 and open_fds:
                yield sc.close(open_fds.pop())
            elif action == 5:
                region = (yield sc.vm_alloc(rng.randrange(1, 32) * 4 * KIB)).value
                regions.append(region)
            elif action == 6 and regions:
                yield sc.touch(regions[-1], 0)
            elif action == 7 and regions:
                yield sc.vm_free(regions.pop())
            elif action == 8:
                yield sc.sleep(rng.randrange(1, 100_000))
            else:
                yield sc.stat(random_path())
        except SimOSError:
            continue
    return "survived"


@settings(max_examples=25, deadline=None)
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=4),
    steps=st.integers(min_value=5, max_value=60),
)
def test_chaos_processes_preserve_invariants(seeds, steps):
    kernel = Kernel(small_config())
    processes = [
        kernel.spawn(chaos_process(seed, steps), f"chaos{i}")
        for i, seed in enumerate(seeds)
    ]
    kernel.run()
    # Everyone survived their own errors.
    assert all(p.result == "survived" for p in processes)
    # Clock only ever moved forward and the pools balance.
    assert kernel.clock.now >= 0
    mm = kernel.mm
    assert 0 <= mm.file_pool_used() <= mm.file_capacity_pages
    assert mm.dirty_file_pages >= 0
    # All process memory was released at exit.
    for process in processes:
        assert kernel.oracle.resident_anon_pages(process.pid) == 0
    # Filesystem bitmaps agree with inode block maps.
    for fs in kernel._fs_by_id.values():
        mapped = sum(len(inode.blocks) for inode in fs.inodes.values())
        used = sum(cg.data_blocks - cg.free_block_count for cg in fs.groups)
        assert used == mapped


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_chaos_is_deterministic(seed):
    def run():
        kernel = Kernel(small_config())
        kernel.run_process(chaos_process(seed, 40), "chaos")
        return kernel.clock.now
    assert run() == run()


# ---------------------------------------------------------------------------
# Differential fuzzing: twin kernels must agree bit-for-bit
# ---------------------------------------------------------------------------
def state_digest(kernel: Kernel) -> str:
    """Hash of everything observable about the machine's final state:
    the clock, the memory pools, and the full filesystem image."""
    parts = [
        f"clock:{kernel.clock.now}",
        f"filepool:{kernel.mm.file_pool_used()}",
        f"dirty:{kernel.mm.dirty_file_pages}",
        f"swap:{kernel.oracle.swap_used_slots()}",
    ]
    for fs_id in sorted(kernel._fs_by_id):
        fs = kernel._fs_by_id[fs_id]
        for ino in sorted(fs.inodes):
            inode = fs.inodes[ino]
            parts.append(
                f"fs{fs_id}/ino{ino}:{inode.kind.name}:{inode.size}"
                f":{inode.mtime}:{tuple(inode.blocks)}"
            )
        parts.append(
            f"fs{fs_id}/free:{tuple(cg.free_block_count for cg in fs.groups)}"
        )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()


PROBE_FILE_BYTES = 64 * KIB
PROBE_REGION_PAGES = 16


def probe_process(seed: int, steps: int, batch: bool, page: int = 4 * KIB):
    """Mixed probe workload in batched or sequential form.

    The RNG draws are identical for both forms — only the syscall
    shape differs — so a correct kernel (and a correct injector) must
    land both twins on the same final state and clock.
    """
    rng = random.Random(seed)
    paths = []
    for i in range(4):
        path = f"/mnt0/pf{i}"
        fd = (yield sc.create(path)).value
        yield sc.write(fd, PROBE_FILE_BYTES)
        yield sc.close(fd)
        paths.append(path)
    fds = []
    for path in paths:
        # ``open`` is fault-eligible; injected streaks cap at
        # max_consecutive=2, so a few blind retries always succeed.
        for _attempt in range(8):
            try:
                fds.append((yield sc.open(path)).value)
                break
            except SimOSError:
                continue
    region = (yield sc.vm_alloc(PROBE_REGION_PAGES * page)).value

    for _ in range(steps):
        action = rng.randrange(3)
        try:
            if action == 0:
                fd = fds[rng.randrange(len(fds))]
                offsets = [
                    rng.randrange(PROBE_FILE_BYTES)
                    for _ in range(rng.randrange(1, 6))
                ]
                if batch:
                    yield sc.pread_batch(fd, [(o, 1) for o in offsets])
                else:
                    for offset in offsets:
                        yield sc.pread(fd, offset, 1)
            elif action == 1:
                count = rng.randrange(1, len(paths) + 1)
                if batch:
                    yield sc.stat_batch(paths[:count])
                else:
                    for path in paths[:count]:
                        yield sc.stat(path)
            else:
                start = rng.randrange(PROBE_REGION_PAGES // 2)
                npages = rng.randrange(1, PROBE_REGION_PAGES - start + 1)
                if batch:
                    yield sc.touch_batch(region, start, npages)
                else:
                    for index in range(start, start + npages):
                        yield sc.touch(region, index)
        except SimOSError:
            # Injected transients (the replay fuzz) are survivable; the
            # jitter-only twins never fault, so batch and sequential
            # forms cannot diverge through this handler.
            continue

    for fd in fds:
        yield sc.close(fd)
    yield sc.vm_free(region)
    return "survived"


def _probe_jitter_config(seed: int) -> InjectionConfig:
    """Latency-only noise: faults and scheduler jitter are keyed per
    *syscall*, which batched and sequential forms issue in different
    numbers; the per-probe jitter streams are the equivalence claim."""
    return InjectionConfig(
        seed=seed,
        latency=LatencyNoise(
            jitter_ns=15_000,
            spike_prob=0.05,
            spike_ns=4 * MILLIS,
            granularity_ns=5_000,
        ),
        touch_latency=LatencyNoise(jitter_ns=80, spike_prob=0.01, spike_ns=50_000),
    )


def _run_probe_twin(seed: int, batch: bool, noisy: bool):
    kernel = Kernel(small_config())
    injector = None
    if noisy:
        injector = FaultInjector(_probe_jitter_config(seed))
        injector.install(kernel)
    result = kernel.run_process(probe_process(seed, 12, batch), "probe")
    assert result == "survived"
    return kernel.clock.now, state_digest(kernel)


@pytest.mark.parametrize("noisy", [False, True])
def test_differential_batch_vs_sequential(noisy):
    """60 twin pairs per mode: batched and sequential probes agree."""
    for case in range(60):
        seed = 0xD1F + 977 * case
        seq = _run_probe_twin(seed, batch=False, noisy=noisy)
        bat = _run_probe_twin(seed, batch=True, noisy=noisy)
        assert seq == bat, (
            f"batch/sequential divergence (noisy={noisy}): reproduce with "
            f"seed={seed} (clock/digest {seq} != {bat})"
        )


def churn_probe_process(seed: int, steps: int):
    """Metadata probes racing namespace churn, for the dcache twins.

    Every observation a process could use to distinguish the memoizing
    name cache from raw walks — stat fields, per-probe elapsed times,
    readdir listings, which paths exist at all — is folded into the
    returned fingerprint.  Unlike :func:`probe_process` this stream is
    mutation-heavy: rename, unlink-then-recreate, and directory growth
    interleave with the probes, so any stale dcache entry shows up as a
    fingerprint divergence (wrong inode, wrong times, or a probe that
    should have failed but didn't).
    """
    rng = random.Random(seed)
    yield sc.mkdir("/mnt0/churn")
    live = []
    for i in range(6):
        path = f"/mnt0/churn/c{i}"
        fd = (yield sc.create(path)).value
        yield sc.write(fd, 500 + 131 * i)
        yield sc.close(fd)
        live.append(path)
    fingerprint = []
    fresh = 0
    for _ in range(steps):
        action = rng.randrange(7)
        try:
            if action == 0:
                result = yield sc.stat(rng.choice(live))
                stat = result.value
                fingerprint.append(
                    (stat.ino, stat.size, stat.mtime, stat.ctime,
                     result.elapsed_ns)
                )
            elif action == 1:
                paths = [rng.choice(live) for _ in range(rng.randrange(1, 5))]
                result = yield sc.stat_batch(paths)
                for probe in result.value:
                    fingerprint.append(
                        (probe.stat.ino, probe.stat.size, probe.stat.mtime,
                         probe.stat.ctime, probe.elapsed_ns)
                    )
            elif action == 2:
                victim = rng.randrange(len(live))
                fresh += 1
                target = f"/mnt0/churn/r{fresh}"
                yield sc.rename(live[victim], target)
                live[victim] = target
            elif action == 3:
                victim = rng.choice(live)
                yield sc.unlink(victim)
                fd = (yield sc.create(victim)).value
                yield sc.write(fd, rng.randrange(1, 2048))
                yield sc.close(fd)
            elif action == 4:
                fresh += 1
                path = f"/mnt0/churn/n{fresh}"
                fd = (yield sc.create(path)).value
                yield sc.close(fd)
                live.append(path)
            elif action == 5:
                names = (yield sc.readdir("/mnt0/churn")).value
                fingerprint.append(tuple(names))
            else:
                # A probe of a name that churn may have moved away: the
                # error-vs-success outcome is part of the fingerprint.
                fresh_name = f"/mnt0/churn/r{rng.randrange(1, fresh + 2)}"
                try:
                    stat = (yield sc.stat(fresh_name)).value
                    fingerprint.append(("hit", stat.ino))
                except SimOSError:
                    fingerprint.append(("miss", fresh_name))
        except SimOSError:
            continue
    return hashlib.sha256(repr(fingerprint).encode()).hexdigest()


def _run_churn_twin(seed: int, name_cache: bool, noisy: bool):
    kernel = Kernel(small_config(), name_cache=name_cache)
    if noisy:
        FaultInjector(_probe_jitter_config(seed)).install(kernel)
    digest = kernel.run_process(churn_probe_process(seed, 40), "churn")
    return digest, kernel.clock.now, state_digest(kernel)


@pytest.mark.parametrize("noisy", [False, True])
def test_differential_dcache_on_vs_off(noisy):
    """30 twin pairs per mode: a kernel with the name-lookup cache is
    byte-indistinguishable from one without it, under namespace churn
    designed to leave stale walk memos behind."""
    for case in range(30):
        seed = 0xDCAC + 389 * case
        on = _run_churn_twin(seed, name_cache=True, noisy=noisy)
        off = _run_churn_twin(seed, name_cache=False, noisy=noisy)
        assert on == off, (
            f"dcache on/off divergence (noisy={noisy}): reproduce with "
            f"seed={seed} ({on} != {off})"
        )


def test_differential_inert_injector_is_noop():
    """40 twin pairs: an all-defaults injector changes nothing."""
    for case in range(40):
        seed = 0xBEEF + 31 * case

        def run(install: bool):
            kernel = Kernel(small_config())
            injector = None
            if install:
                injector = FaultInjector(InjectionConfig())
                injector.install(kernel)
            kernel.run_process(chaos_process(seed, 30), "chaos")
            if injector is not None:
                assert injector.schedule == [], f"seed={seed}"
                injector.uninstall()
            return kernel.clock.now, state_digest(kernel)

        bare, inert = run(False), run(True)
        assert bare == inert, (
            f"inert injector perturbed the machine: reproduce with "
            f"seed={seed} ({bare} != {inert})"
        )


def test_differential_noisy_replay_is_deterministic():
    """40 seeds x replay: the full noise profile is a pure function of
    its seed — same fault schedule, same interference, same machine."""
    for case in range(40):
        seed = 0xACE + 613 * case
        level = 0.25 + 0.25 * (case % 4)

        def run():
            kernel = Kernel(small_config())
            injector = FaultInjector(noise_profile(level, seed=seed))
            injector.install(kernel)
            injector.spawn_interference(
                kernel, horizon_after(kernel, 50 * MILLIS)
            )
            kernel.spawn(chaos_process(seed, 25), "chaos")
            kernel.spawn(probe_process(seed, 8, batch=bool(case % 2)), "probe")
            kernel.run()
            return (
                kernel.clock.now,
                state_digest(kernel),
                injector.schedule_digest(),
            )

        first, second = run(), run()
        assert first == second, (
            f"noisy run did not replay: reproduce with seed={seed} "
            f"level={level}"
        )


# ---------------------------------------------------------------------------
# Vectorized vs scalar: the numpy fast paths must be invisible
# ---------------------------------------------------------------------------
def obs_digest(kernel: Kernel) -> str:
    """Hash of the full observability stream (simulated stamps only)."""
    return hashlib.sha256(repr(list(kernel.obs.events)).encode()).hexdigest()


def vector_workout(seed: int, steps: int, page: int = 4 * KIB):
    """A stream shaped to cross every vectorized fast path *and* its
    scalar fallback: contiguous zero-fill runs, resident re-touch runs,
    strided batches, uniform and mixed-length pread batches, dcache
    stat replays, and writeback storms large enough to take the numpy
    run-coalescing path."""
    rng = random.Random(seed)
    fd = (yield sc.create("/mnt0/vw.dat")).value
    yield sc.write(fd, 2 * MIB)  # > _NUMPY_RUNS_MIN blocks: numpy runs
    region = (yield sc.vm_alloc(64 * page)).value
    yield sc.touch_range(region, 0, 64)  # tier-2 zero-fill run
    paths = []
    for i in range(3):
        path = f"/mnt0/vw{i}"
        nfd = (yield sc.create(path)).value
        yield sc.write(nfd, 16 * KIB)
        yield sc.close(nfd)
        paths.append(path)
    for _ in range(steps):
        action = rng.randrange(6)
        if action == 0:
            yield sc.touch_range(region, rng.randrange(32), 1 + rng.randrange(32))
        elif action == 1:
            yield sc.touch_batch(
                region, rng.randrange(8), 1 + rng.randrange(16),
                stride=1 + rng.randrange(3),
            )
        elif action == 2:
            offsets = [rng.randrange(2 * MIB) for _ in range(12)]
            length = 1 if rng.randrange(2) else 1 + rng.randrange(64)
            yield sc.pread_batch(fd, [(o, length) for o in offsets])
        elif action == 3:
            # Mixed lengths; some spill over a page edge (scalar path).
            probes = [
                (rng.randrange(2 * MIB), 1 + rng.randrange(8 * KIB))
                for _ in range(10)
            ]
            yield sc.pread_batch(fd, probes)
        elif action == 4:
            yield sc.stat_batch(paths)
        else:
            yield sc.write(fd, rng.randrange(1, 128 * KIB))
    yield sc.close(fd)
    yield sc.vm_free(region)
    return "survived"


def _run_mode_twin(seed: int, numpy_paths: bool, noisy: bool):
    kernel = Kernel(small_config(), numpy_paths=numpy_paths)
    injector = None
    if noisy:
        injector = FaultInjector(_probe_jitter_config(seed))
        injector.install(kernel)
    assert kernel.run_process(vector_workout(seed, 20), "vw") == "survived"
    assert kernel.run_process(probe_process(seed, 10, batch=True), "probe") == "survived"
    schedule = injector.schedule_digest() if injector is not None else ""
    return kernel.clock.now, state_digest(kernel), obs_digest(kernel), schedule


@pytest.mark.parametrize("noisy", [False, True])
def test_differential_numpy_vs_scalar_paths(noisy):
    """30 twin pairs per mode: a ``numpy_paths=False`` compatibility
    kernel must be byte-indistinguishable — same clock, same machine
    state, same obs records, same injector schedule — from the
    vectorized default over a workload shaped to cross every fast path."""
    for case in range(30):
        seed = 0x7EC + 541 * case
        vec = _run_mode_twin(seed, numpy_paths=True, noisy=noisy)
        sca = _run_mode_twin(seed, numpy_paths=False, noisy=noisy)
        assert vec == sca, (
            f"numpy/scalar divergence (noisy={noisy}): reproduce with "
            f"seed={seed} ({vec} != {sca})"
        )


@pytest.mark.parametrize("numpy_paths", [True, False])
def test_differential_touch_range_vs_touch_batch(numpy_paths):
    """touch_range must be touch_batch at stride 1 with no predicate:
    same per-page times, same clock, same machine — in both kernel
    modes (the two syscalls share one interior; this pins the routing)."""
    for case in range(12):
        seed = 0x7A9 + 211 * case
        rng = random.Random(seed)
        plan = [
            (rng.randrange(24), 1 + rng.randrange(40))
            for _ in range(10)
        ]

        def run(use_range: bool):
            kernel = Kernel(small_config(), numpy_paths=numpy_paths)

            def app():
                region = (yield sc.vm_alloc(64 * 4 * KIB)).value
                collected = []
                for start, npages in plan:
                    if use_range:
                        result = yield sc.touch_range(region, start, npages)
                        collected.append(list(result.value))
                    else:
                        result = yield sc.touch_batch(region, start, npages)
                        collected.append(list(result.value.elapsed_ns))
                yield sc.vm_free(region)
                return collected
            times = kernel.run_process(app(), "touch")
            return times, kernel.clock.now, state_digest(kernel)

        as_range, as_batch = run(True), run(False)
        assert as_range == as_batch, (
            f"touch_range/touch_batch divergence "
            f"(numpy_paths={numpy_paths}): reproduce with seed={seed}"
        )


# ---------------------------------------------------------------------------
# Policy batch primitives: batched update == sequential fold
# ---------------------------------------------------------------------------
def _policy_dump(policy):
    """Complete visible state of a policy, for exact twin comparison."""
    from repro.sim.cache.clockpolicy import ClockPolicy
    from repro.sim.cache.segmap import SegmapPolicy

    if isinstance(policy, ClockPolicy):
        rings = [
            [(key, frame.referenced, frame.dirty) for key, frame in ring.items()]
            for ring in (policy._file_ring, policy._anon_ring)
        ]
        state = ("clock", rings)
    elif isinstance(policy, SegmapPolicy):
        state = (
            "segmap",
            [(owner, list(pages.items())) for owner, pages in policy._owners.items()],
            sorted(policy._first_seen.items()),
        )
    else:
        state = ("lru", list(policy._pages.items()))
    return state, policy.stats.hits, policy.stats.misses, len(policy)


def _fresh_policies():
    from repro.sim.cache.clockpolicy import ClockPolicy
    from repro.sim.cache.lru import LRUPolicy
    from repro.sim.cache.segmap import SegmapPolicy

    return [LRUPolicy(), ClockPolicy(), SegmapPolicy()]


@settings(max_examples=60, deadline=None)
@given(
    warm=st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.booleans()),
        max_size=24,
    ),
    hit_picks=st.lists(st.integers(min_value=0, max_value=30), max_size=12),
    batch_dirty=st.booleans(),
    fresh=st.sets(st.integers(min_value=100, max_value=130), max_size=12),
)
def test_policy_batch_equals_sequential_fold(warm, hit_picks, batch_dirty, fresh):
    """``reference_cells`` == N resident touches and
    ``insert_absent_many`` == N absent touches, for every policy.

    The twin policies see the same warm-up stream; then one applies the
    batched primitives while the other folds the equivalent ``touch``
    loop, and their full state (order, dirty/reference bits, owner
    bookkeeping, hit/miss counters) must match exactly.
    """
    from repro.sim.cache.base import FileKey

    def key_of(i):
        return FileKey(0, 1 + i % 3, i)  # a few distinct owners

    for batched, folded in zip(_fresh_policies(), _fresh_policies()):
        for i, dirty in warm:
            batched.touch(key_of(i), dirty)
            folded.touch(key_of(i), dirty)

        resident = {key for key in batched.keys()}
        hits = [key_of(i) for i in hit_picks if key_of(i) in resident]
        if hits:
            cells = [batched.resident_cell(key) for key in hits]
            batched.reference_cells(cells, batch_dirty)
            for key in hits:
                folded.touch(key, batch_dirty)

        absent = [key_of(i) for i in sorted(fresh)]
        if absent:
            batched.insert_absent_many(absent, batch_dirty)
            for key in absent:
                folded.touch(key, batch_dirty)

        assert _policy_dump(batched) == _policy_dump(folded), (
            type(batched).__name__
        )

        # And the two must keep agreeing through victim selection.
        if len(batched):
            want = min(len(batched), 5)
            assert [e.key for e in batched.pop_victims(want)] == [
                e.key for e in folded.pop_victims(want)
            ], type(batched).__name__


# ---------------------------------------------------------------------------
# Attribution invariants: random storms must stay correctly attributed
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    seeds=st.lists(st.integers(min_value=0, max_value=10_000), min_size=2, max_size=4),
    steps=st.integers(min_value=10, max_value=50),
)
def test_chaos_attribution_invariants(seeds, steps):
    """Whatever the interleave, the attribution bookkeeping must close.

    Three ledgers are checked against each other:

    * every pid stamped on an event or span (and every instigator /
      victim of a reclaim) is a pid the kernel actually spawned, or the
      0 = unattributed bucket;
    * the per-pid syscall ledger sums to the kernel's aggregate
      per-syscall counters, name by name;
    * the interference matrix has exactly one (instigator, victim) cell
      increment per ``kernel.reclaim`` event, so its cell sum equals the
      reclaim event count.
    """
    from repro.obs.views import interference_matrix, split_by_pid

    kernel = Kernel(small_config())
    processes = [
        kernel.spawn(chaos_process(seed, steps), f"chaos{i}")
        for i, seed in enumerate(seeds)
    ]
    kernel.run()
    assert all(p.result == "survived" for p in processes)

    spawned = {p.pid for p in processes}
    records = list(kernel.obs.events)

    # 1. Every attributed record names a real process (0 = host-side).
    for record in records:
        pid = record.get("pid")
        assert pid is None or pid in spawned, record
    for record in records:
        if record.get("type") == "event" and record.get("name") == "kernel.reclaim":
            attrs = record["attrs"]
            assert attrs["instigator_pid"] in spawned | {0}, record
            assert attrs["victim_pid"] in spawned | {0}, record
            assert sum(attrs["victims_by_pid"].values()) == attrs["pages"], record

    # 2. The per-pid syscall ledger sums to the aggregate counters.
    assert set(kernel.obs.syscalls_by_pid) <= spawned
    totals = {}
    for by_pid in kernel.obs.syscalls_by_pid.values():
        for name, count in by_pid.items():
            totals[name] = totals.get(name, 0) + count
    for name, count in totals.items():
        counter = kernel.obs.metrics.counter(f"kernel.syscall.{name}.calls")
        assert counter.value == count, (
            f"per-pid ledger for {name!r} sums to {count}, "
            f"aggregate counter says {counter.value}"
        )

    # 3. One matrix cell increment per reclaim event.
    matrix = interference_matrix(records)
    reclaims = sum(
        1 for r in records
        if r.get("type") == "event" and r.get("name") == "kernel.reclaim"
    )
    assert sum(sum(row.values()) for row in matrix.values()) == reclaims

    # 4. The per-pid views partition the stream: nothing lost, nothing
    #    double-counted.
    buckets = split_by_pid(records)
    assert sum(len(b) for b in buckets.values()) == len(records)


# ======================================================================
# Covert-channel differential modes
# ======================================================================
def test_differential_channels_noisy_replay():
    """Same (seed, config) ⇒ identical decoded bits and obs digest.

    The covert-channel harness stacks every determinism-sensitive layer
    at once — arena interleaving, tagged step boundaries, the injector's
    full noise ladder (including interference tenants), and the framing
    codec — so a byte-identical replay here pins all of them together.
    """
    from repro.experiments.channels import run_channel

    for channel in ("residency", "writeback"):
        first = run_channel(channel, noise=0.5, n_bits=24)
        second = run_channel(channel, noise=0.5, n_bits=24)
        assert first.decoded_bits == second.decoded_bits, channel
        assert first.digest == second.digest, channel
        assert first.latencies == second.latencies, channel
        assert first.frame_span_ns == second.frame_span_ns, channel


def test_differential_channels_numpy_vs_scalar():
    """Twin kernels, vectorized vs scalar paths, decode the same frame.

    Simulated behaviour must not depend on the implementation mode:
    the receiver's latency trace, the decoded bitstring, and the
    attributed obs stream must match bit for bit.
    """
    from repro.experiments.channels import run_channel

    for channel in ("residency", "writeback"):
        vec = run_channel(channel, noise=0.5, n_bits=24, numpy_paths=True)
        scalar = run_channel(channel, noise=0.5, n_bits=24, numpy_paths=False)
        assert vec.latencies == scalar.latencies, channel
        assert vec.decoded_bits == scalar.decoded_bits, channel
        assert vec.digest == scalar.digest, channel
