"""Attribution views, Chrome trace export, and the host-time profiler.

Three families of checks:

* unit tests over synthetic record streams — :func:`split_by_pid` is a
  partition, :func:`interference_matrix` counts one cell per reclaim,
  the validator rejects each class of malformed artifact;
* a small two-process kernel run — :class:`ObsView` filters the shared
  stream per client and its ledger matches the kernel's counters;
* the ``contention`` scenario end to end — the acceptance criteria from
  the observability milestone: per-client streams union to the full
  stream, the interference matrix has off-diagonal mass, and the Chrome
  trace validates with the span count the JSONL promises.
"""

import json

import pytest

from repro.obs.chrome import (
    KERNEL_TRACK,
    TRACE_PID,
    chrome_trace_events,
    write_chrome_trace,
)
from repro.obs.export import summarize_pids, validate_jsonl, write_jsonl
from repro.obs.profile import Profiler
from repro.obs.views import (
    UNATTRIBUTED,
    ObsView,
    interference_matrix,
    process_names,
    render_matrix,
    split_by_pid,
)
from repro.sim import Kernel, syscalls as sc
from tests.conftest import KIB, small_config


# ======================================================================
# Synthetic-stream units
# ======================================================================
def _reclaim(instigator, victim, **extra):
    attrs = {"instigator_pid": instigator, "victim_pid": victim,
             "pages": 1, **extra}
    return {"type": "event", "name": "kernel.reclaim", "t_ns": 0,
            "pid": instigator, "attrs": attrs}


def test_split_by_pid_is_a_partition():
    records = [
        {"type": "event", "name": "a", "pid": 1},
        {"type": "event", "name": "b", "pid": 2},
        {"type": "event", "name": "c"},          # no pid -> bucket 0
        {"type": "span", "name": "d", "pid": 1},
    ]
    buckets = split_by_pid(records)
    assert set(buckets) == {UNATTRIBUTED, 1, 2}
    assert sum(len(b) for b in buckets.values()) == len(records)
    # Concatenation is a permutation of the input: nothing lost or doubled.
    flat = [r for bucket in buckets.values() for r in bucket]
    assert sorted(map(id, flat)) == sorted(map(id, records))


def test_interference_matrix_counts_one_cell_per_reclaim():
    records = [
        _reclaim(1, 2), _reclaim(1, 2), _reclaim(2, 1), _reclaim(1, 1),
        {"type": "event", "name": "kernel.spawn",
         "attrs": {"pid": 1, "comm": "a"}},
    ]
    matrix = interference_matrix(records)
    assert matrix == {1: {2: 2, 1: 1}, 2: {1: 1}}
    reclaims = sum(1 for r in records if r["name"] == "kernel.reclaim")
    assert sum(sum(row.values()) for row in matrix.values()) == reclaims


def test_render_matrix_labels_kernel_and_comms():
    matrix = {0: {1: 3}, 1: {0: 1}}
    text = render_matrix(matrix, {1: "probe"})
    assert "(kernel)" in text
    assert "1:probe" in text
    assert "row-sum" in text


def test_process_names_reads_spawn_comms():
    records = [
        {"type": "event", "name": "kernel.spawn",
         "attrs": {"pid": 3, "comm": "fccd"}},
        {"type": "event", "name": "other", "attrs": {"pid": 9}},
    ]
    assert process_names(records) == {3: "fccd"}


# ======================================================================
# ObsView over a live two-process kernel
# ======================================================================
@pytest.fixture
def two_client_kernel():
    kernel = Kernel(small_config())

    def writer(path):
        fd = (yield sc.create(path)).value
        yield sc.pwrite(fd, 0, b"x" * (4 * KIB))
        yield sc.close(fd)

    def statter(path):
        for _ in range(3):
            yield sc.stat(path)

    a = kernel.spawn(writer("/mnt0/a.dat"), "writer")
    b = kernel.spawn(statter("/mnt0/a.dat"), "statter")
    kernel.run()
    return kernel, a, b


def test_obsview_filters_per_client(two_client_kernel):
    kernel, a, b = two_client_kernel
    view_a, view_b = ObsView(kernel.obs, a.pid), ObsView(kernel.obs, b.pid)
    # Filtering: every record a view returns carries its pid.
    for view in (view_a, view_b):
        assert view.records()
        assert all(r.get("pid") == view.pid for r in view.records())
    # Partition: per-pid views plus the unattributed bucket cover the
    # stream exactly.
    buckets = split_by_pid(kernel.obs.events)
    assert sum(len(b_) for b_ in buckets.values()) == len(kernel.obs.events)
    assert len(view_a.records()) == len(buckets.get(a.pid, []))
    assert "ObsView" in repr(view_a)


def test_obsview_syscall_counts_match_ledger(two_client_kernel):
    kernel, a, b = two_client_kernel
    counts_a = ObsView(kernel.obs, a.pid).syscall_counts()
    counts_b = ObsView(kernel.obs, b.pid).syscall_counts()
    assert counts_a.get("pwrite", 0) >= 1
    assert counts_b.get("stat", 0) == 3
    assert "stat" not in counts_a
    # The two ledgers sum to the aggregate counters, name by name.
    totals = {}
    for counts in (counts_a, counts_b):
        for name, n in counts.items():
            totals[name] = totals.get(name, 0) + n
    for name, n in totals.items():
        counter = kernel.obs.metrics.counter(f"kernel.syscall.{name}.calls")
        assert counter.value == n


# ======================================================================
# Chrome trace export
# ======================================================================
def test_chrome_trace_events_shapes(two_client_kernel):
    kernel, a, _b = two_client_kernel
    records = list(kernel.obs.dump_records())
    events = chrome_trace_events(records)
    closed_spans = [
        r for r in records
        if r.get("type") == "span" and r.get("end_ns") is not None
    ]
    point_events = [r for r in records if r.get("type") == "event"]
    complete = [e for e in events if e.get("ph") == "X"]
    instants = [e for e in events if e.get("ph") == "n"]
    meta = [e for e in events if e.get("ph") == "M"]
    assert len(complete) == len(closed_spans)
    assert len(instants) == len(point_events)
    assert meta, "track metadata missing"
    assert all(e["pid"] == TRACE_PID for e in events)
    # The writer gets its own track; kernel-side records land on tid 0.
    tids = {e["tid"] for e in complete + instants}
    assert a.pid in tids
    thread_names = {
        e["tid"]: e["args"]["name"] for e in meta
        if e.get("name") == "thread_name"
    }
    assert thread_names.get(KERNEL_TRACK) == "(kernel)"
    assert "writer" in thread_names.get(a.pid, "")


def test_write_chrome_trace_roundtrip(two_client_kernel, tmp_path):
    kernel, _a, _b = two_client_kernel
    records = list(kernel.obs.dump_records())
    out = tmp_path / "trace.json"
    count = write_chrome_trace(out, records)
    payload = json.loads(out.read_text())
    assert payload["displayTimeUnit"] == "ns"
    non_meta = [e for e in payload["traceEvents"] if e.get("ph") != "M"]
    assert len(non_meta) == count
    # Timestamps are microseconds: ns/1000 with sub-us precision kept.
    for entry in non_meta:
        assert isinstance(entry["ts"], float)


# ======================================================================
# Validator hardening
# ======================================================================
def _write_lines(path, records):
    path.write_text("".join(json.dumps(r) + "\n" for r in records))


def test_validate_rejects_close_without_open(tmp_path):
    bad = tmp_path / "bad.jsonl"
    _write_lines(bad, [{"type": "span", "name": "s", "end_ns": 5}])
    with pytest.raises(ValueError, match="closed[ \n]+without opening"):
        validate_jsonl(bad)


def test_validate_rejects_duplicate_span_ids(tmp_path):
    bad = tmp_path / "bad.jsonl"
    span = {"type": "span", "name": "s", "span_id": 7,
            "start_ns": 0, "end_ns": 5}
    _write_lines(bad, [span, dict(span)])
    with pytest.raises(ValueError, match="duplicate span_id 7"):
        validate_jsonl(bad)


def test_validate_rejects_backwards_span(tmp_path):
    bad = tmp_path / "bad.jsonl"
    _write_lines(bad, [{"type": "span", "name": "s", "span_id": 1,
                        "start_ns": 10, "end_ns": 5}])
    with pytest.raises(ValueError, match="ends[ \n]+before it starts"):
        validate_jsonl(bad)


def test_validate_rejects_unspawned_pid(tmp_path):
    bad = tmp_path / "bad.jsonl"
    _write_lines(bad, [
        {"type": "event", "name": "kernel.spawn", "attrs": {"pid": 1}},
        {"type": "event", "name": "x", "pid": 99},
    ])
    with pytest.raises(ValueError, match="pid 99"):
        validate_jsonl(bad)


def test_validate_skips_pid_check_without_spawns(tmp_path):
    ok = tmp_path / "ok.jsonl"
    _write_lines(ok, [{"type": "event", "name": "x", "pid": 99}])
    assert validate_jsonl(ok) == 1


def test_validate_accepts_kernel_dump(two_client_kernel, tmp_path):
    kernel, _a, _b = two_client_kernel
    out = tmp_path / "dump.jsonl"
    n = write_jsonl(out, kernel.obs.dump_records())
    assert validate_jsonl(out) == n


def test_summarize_pids_names_each_client(two_client_kernel):
    kernel, a, b = two_client_kernel
    text = summarize_pids(list(kernel.obs.dump_records()))
    assert "writer" in text and "statter" in text
    assert str(a.pid) in text and str(b.pid) in text


# ======================================================================
# Profiler
# ======================================================================
def test_profiler_disabled_by_default():
    prof = Profiler()
    assert not prof.enabled
    assert prof.rows() == []
    assert isinstance(prof.time(), int)
    # Hooks gate on `enabled` themselves; `section` is get-or-create.
    assert prof.section("x") is prof.section("x")
    assert prof.section("x").calls == 0


def test_profiler_accumulates_and_ranks():
    prof = Profiler().enable()
    prof.add("slow", 3000)
    prof.add("slow", 1000)
    prof.add("fast", 10)
    rows = prof.rows()
    assert rows[0]["section"] == "slow"
    assert prof.section("slow").calls == 2
    assert prof.section("slow").total_ns == 4000
    assert prof.section("slow").mean_ns == 2000
    assert abs(sum(r["share"] for r in rows) - 1.0) < 0.01
    report = prof.report(top=1)
    assert "slow" in report and "fast" not in report


def test_profiler_reset_and_clear():
    prof = Profiler().enable()
    prof.add("a", 5)
    prof.reset()
    assert prof.section("a").calls == 0     # sections survive, zeroed
    prof.add("a", 5)
    prof.clear()
    assert not prof.rows()                  # registry emptied


def test_profiler_rows_top_limits():
    prof = Profiler().enable()
    for i in range(5):
        prof.add(f"s{i}", i + 1)
    assert len(prof.rows(top=3)) == 3


# ======================================================================
# Contention acceptance: the milestone's end-to-end criteria
# ======================================================================
@pytest.fixture(scope="module")
def contention_run(tmp_path_factory):
    from repro.experiments.observe import observe_config, observe_figure

    tmp = tmp_path_factory.mktemp("contention")
    jsonl, chrome = tmp / "run.jsonl", tmp / "run.trace.json"
    report = observe_figure(
        "contention",
        out_path=str(jsonl),
        config=observe_config(memory_mb=32),
        chrome_trace=str(chrome),
    )
    return report, jsonl, chrome


def test_contention_streams_union_to_full_stream(contention_run):
    report, _jsonl, _chrome = contention_run
    event_like = [
        r for r in report.records if r.get("type") in ("event", "span")
    ]
    buckets = split_by_pid(event_like)
    pids = set(report.result["pids"].values())
    assert pids <= set(buckets)
    assert sum(len(b) for b in buckets.values()) == len(event_like)


def test_contention_matrix_shows_cross_client_interference(contention_run):
    report, _jsonl, _chrome = contention_run
    matrix = report.interference()
    pid_a, pid_b = sorted(report.result["pids"].values())
    cross = matrix.get(pid_a, {}).get(pid_b, 0) + \
        matrix.get(pid_b, {}).get(pid_a, 0)
    assert cross > 0, f"no cross-client evictions: {matrix}"
    reclaims = len(report.events("kernel.reclaim"))
    assert sum(sum(row.values()) for row in matrix.values()) == reclaims


def test_contention_artifacts_validate(contention_run):
    report, jsonl, chrome = contention_run
    assert validate_jsonl(jsonl) == len(report.records)
    payload = json.loads(chrome.read_text())
    closed_spans = [
        r for r in report.records
        if r.get("type") == "span" and r.get("end_ns") is not None
    ]
    complete = [e for e in payload["traceEvents"] if e.get("ph") == "X"]
    assert len(complete) == len(closed_spans)
    # Both clients own a track in the trace.
    tids = {e["tid"] for e in complete}
    assert set(report.result["pids"].values()) <= tids
