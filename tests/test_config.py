"""MachineConfig and platform personality validation."""

import pytest

from repro.sim.config import (
    KIB,
    MIB,
    DiskSpec,
    MachineConfig,
    PLATFORMS,
    linux22,
    netbsd15,
    solaris7,
)


class TestMachineConfig:
    def test_defaults_model_the_paper_machine(self):
        config = MachineConfig()
        assert config.memory_bytes == 896 * MIB
        # The paper's MAC experiments find 830 MB available (§4.3.3).
        assert config.available_bytes == 830 * MIB

    def test_available_pages(self):
        config = MachineConfig(
            page_size=4 * KIB, memory_bytes=40 * MIB, kernel_reserved_bytes=8 * MIB
        )
        assert config.available_pages == 32 * MIB // (4 * KIB)

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ValueError):
            MachineConfig(page_size=3000)

    def test_rejects_zero_page(self):
        with pytest.raises(ValueError):
            MachineConfig(page_size=0)

    def test_rejects_reserve_exceeding_memory(self):
        with pytest.raises(ValueError):
            MachineConfig(memory_bytes=8 * MIB, kernel_reserved_bytes=8 * MIB)

    def test_rejects_zero_data_disks(self):
        with pytest.raises(ValueError):
            MachineConfig(data_disks=0)

    def test_page_copy_cost_is_linear(self):
        config = MachineConfig()
        assert config.page_copy_ns(2000) == 2 * config.page_copy_ns(1000)

    def test_scaled_overrides_one_field(self):
        config = MachineConfig().scaled(page_size=64 * KIB)
        assert config.page_size == 64 * KIB
        assert config.memory_bytes == MachineConfig().memory_bytes

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            MachineConfig().page_size = 123  # type: ignore[misc]


class TestDiskSpec:
    def test_capacity_is_geometry_product(self):
        spec = DiskSpec()
        assert (
            spec.capacity_bytes
            == spec.sector_bytes * spec.sectors_per_track * spec.heads * spec.cylinders
        )

    def test_rotation_matches_rpm(self):
        spec = DiskSpec(rpm=10_000)
        assert spec.rotation_ns == 6_000_000  # 6 ms per revolution

    def test_track_bytes(self):
        spec = DiskSpec()
        assert spec.track_bytes == spec.sector_bytes * spec.sectors_per_track


class TestPlatforms:
    def test_three_personalities_registered(self):
        assert set(PLATFORMS) == {"linux22", "netbsd15", "solaris7"}

    def test_linux_is_unified_clock(self):
        assert linux22.unified_vm
        assert linux22.cache_policy == "clock"
        assert linux22.fixed_file_cache_bytes is None

    def test_netbsd_has_fixed_64mb_buffer_cache(self):
        assert netbsd15.fixed_file_cache_bytes == 64 * MIB
        assert not netbsd15.unified_vm
        assert netbsd15.cache_policy == "lru"

    def test_solaris_holds_pages_and_packs_loosely(self):
        assert solaris7.cache_policy == "segmap"
        assert solaris7.ffs_alloc_gap > 0
