"""The syscall request/result types themselves."""

import pytest

from repro.sim import syscalls as sc
from repro.sim.syscalls import ReadResult, Syscall, SyscallResult


class TestSyscallObjects:
    def test_factories_build_named_requests(self):
        assert sc.open("/mnt0/x") == Syscall("open", ("/mnt0/x",))
        assert sc.pread(3, 10, 20) == Syscall("pread", (3, 10, 20))
        assert sc.vm_alloc(4096, "buf") == Syscall("vm_alloc", (4096, "buf"))
        assert sc.touch_range(1, 0, 8) == Syscall("touch_range", (1, 0, 8))

    def test_requests_are_immutable_and_comparable(self):
        a = sc.stat("/mnt0/f")
        b = sc.stat("/mnt0/f")
        assert a == b
        with pytest.raises(Exception):
            a.name = "other"  # type: ignore[misc]

    def test_repr_reads_like_a_call(self):
        assert repr(sc.read(3, 100)) == "sys.read(3, 100)"

    def test_every_factory_yields_a_syscall(self):
        samples = [
            sc.open("/mnt0/a"), sc.create("/mnt0/a"), sc.close(3),
            sc.read(3, 1), sc.pread(3, 0, 1), sc.write(3, 1),
            sc.pwrite(3, 0, 1), sc.seek(3, 0), sc.fsync(3),
            sc.stat("/mnt0/a"), sc.fstat(3), sc.mkdir("/mnt0/d"),
            sc.rmdir("/mnt0/d"), sc.unlink("/mnt0/a"),
            sc.rename("/mnt0/a", "/mnt0/b"), sc.readdir("/mnt0"),
            sc.utimes("/mnt0/a", 1, 2), sc.vm_alloc(1), sc.vm_free(1),
            sc.touch(1, 0), sc.touch_range(1, 0, 1), sc.gettime(),
            sc.compute(1), sc.sleep(1), sc.getpid(), sc.pipe(),
            sc.waitpid(1),
        ]
        assert all(isinstance(s, Syscall) for s in samples)
        assert len({s.name for s in samples}) == len(samples)


class TestSyscallResult:
    def test_result_is_not_a_boolean(self):
        result = SyscallResult(value=True, elapsed_ns=1, start_ns=0, finish_ns=1)
        with pytest.raises(TypeError, match="not a boolean"):
            bool(result)

    def test_fields_consistent(self):
        result = SyscallResult(value=7, elapsed_ns=5, start_ns=10, finish_ns=15)
        assert result.finish_ns - result.start_ns == result.elapsed_ns


class TestReadResult:
    def test_eof_when_zero_bytes(self):
        assert ReadResult(0).eof
        assert not ReadResult(1).eof

    def test_synthetic_reads_have_no_data(self):
        result = ReadResult(100)
        assert result.data is None

    def test_real_reads_carry_bytes(self):
        result = ReadResult(3, b"abc")
        assert result.data == b"abc"
