"""FFS allocator: i-numbers, cylinder groups, contiguity, aging."""

import random

import pytest

from repro.sim.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    NoSpace,
)
from repro.sim.fs.ffs import FFS, ROOT_INO
from repro.sim.fs.inode import FileKind

BLOCK = 4096


def make_fs(total_blocks=8192, blocks_per_cg=1024, inodes_per_cg=128, gap=0) -> FFS:
    return FFS(
        fs_id=0,
        total_blocks=total_blocks,
        block_bytes=BLOCK,
        blocks_per_cg=blocks_per_cg,
        inodes_per_cg=inodes_per_cg,
        alloc_gap=gap,
    )


def create_file(fs, name, size, parent=ROOT_INO):
    inode = fs.create(parent, name, FileKind.FILE, now_ns=0)
    fs.grow_to_size(inode, size)
    return inode


class TestLayout:
    def test_root_is_inode_one(self):
        fs = make_fs()
        assert fs.root.ino == ROOT_INO
        assert fs.get_inode(ROOT_INO).is_dir

    def test_groups_cover_disk(self):
        fs = make_fs(total_blocks=8192, blocks_per_cg=1024)
        assert len(fs.groups) == 8
        assert fs.groups[3].first_block == 3 * 1024

    def test_inode_table_block_within_group(self):
        fs = make_fs()
        ino = 3 * fs.inodes_per_cg + 5
        block = fs.inode_table_block(ino)
        cg = fs.cg_of_inode(ino)
        assert cg.first_block <= block < cg.data_first

    def test_group_too_small_for_itable_rejected(self):
        with pytest.raises(InvalidArgument):
            make_fs(blocks_per_cg=8, inodes_per_cg=100_000)


class TestInodeAllocation:
    def test_sequential_creates_get_increasing_inumbers(self):
        fs = make_fs()
        inos = [create_file(fs, f"f{i}", BLOCK).ino for i in range(10)]
        assert inos == sorted(inos)
        assert len(set(inos)) == 10

    def test_freed_inumber_is_reused_lowest_first(self):
        fs = make_fs()
        files = [create_file(fs, f"f{i}", BLOCK) for i in range(5)]
        victim = files[1].ino
        fs.unlink(ROOT_INO, "f1", now_ns=0)
        fresh = create_file(fs, "fresh", BLOCK)
        assert fresh.ino == victim

    def test_files_inherit_parent_directory_group(self):
        fs = make_fs()
        sub = fs.create(ROOT_INO, "sub", FileKind.DIRECTORY, now_ns=0)
        inode = create_file(fs, "data", BLOCK, parent=sub.ino)
        assert fs.cg_of_inode(inode.ino).index == fs.cg_of_inode(sub.ino).index

    def test_new_directory_goes_to_emptiest_group(self):
        fs = make_fs()
        # Fill much of cg0 with data so the next directory lands elsewhere.
        create_file(fs, "big", 500 * BLOCK)
        sub = fs.create(ROOT_INO, "sub", FileKind.DIRECTORY, now_ns=0)
        assert fs.cg_of_inode(sub.ino).index != 0


class TestBlockAllocation:
    def test_fresh_directory_files_laid_out_contiguously(self):
        fs = make_fs()
        files = [create_file(fs, f"f{i}", 2 * BLOCK) for i in range(20)]
        blocks = [b for inode in files for b in inode.blocks]
        assert blocks == sorted(blocks)
        assert blocks[-1] - blocks[0] == len(blocks) - 1

    def test_file_growth_appends_contiguously(self):
        fs = make_fs()
        inode = create_file(fs, "grow", 2 * BLOCK)
        fs.grow_to_size(inode, 10 * BLOCK)
        diffs = {b - a for a, b in zip(inode.blocks, inode.blocks[1:])}
        assert diffs == {1}

    def test_grow_is_idempotent_for_smaller_size(self):
        fs = make_fs()
        inode = create_file(fs, "f", 4 * BLOCK)
        before = list(inode.blocks)
        assert fs.grow_to_size(inode, 2 * BLOCK) == []
        assert inode.blocks == before

    def test_alloc_spills_to_next_group_when_full(self):
        fs = make_fs(total_blocks=2048, blocks_per_cg=1024, inodes_per_cg=64)
        cg0_data = fs.groups[0].data_blocks
        inode = create_file(fs, "huge", (cg0_data + 10) * BLOCK)
        used_cgs = {fs.cg_of_block(b).index for b in inode.blocks}
        assert used_cgs == {0, 1}

    def test_out_of_space_raises(self):
        fs = make_fs(total_blocks=1024, blocks_per_cg=1024, inodes_per_cg=64)
        with pytest.raises(NoSpace):
            create_file(fs, "too-big", fs.free_blocks_total() * BLOCK + BLOCK)

    def test_freed_blocks_are_reusable(self):
        fs = make_fs()
        inode = create_file(fs, "f", 50 * BLOCK)
        freed_count = len(inode.blocks)
        before = fs.free_blocks_total()
        fs.unlink(ROOT_INO, "f", now_ns=0)
        assert fs.free_blocks_total() == before + freed_count

    def test_double_free_detected(self):
        fs = make_fs()
        inode = create_file(fs, "f", BLOCK)
        block = inode.blocks[0]
        fs.unlink(ROOT_INO, "f", now_ns=0)
        with pytest.raises(InvalidArgument):
            fs.groups[0].free_block(block)

    def test_alloc_gap_spaces_files_apart(self):
        tight = make_fs()
        loose = make_fs(gap=4)
        for fs in (tight, loose):
            for i in range(5):
                create_file(fs, f"f{i}", 2 * BLOCK)
        tight_span = max(
            b for ino in tight.inodes.values() for b in ino.blocks
        )
        loose_span = max(
            b for ino in loose.inodes.values() for b in ino.blocks
        )
        assert loose_span > tight_span


class TestAgingDecorrelation:
    def _kendall_violations(self, fs) -> float:
        """Fraction of file pairs whose i-number and block order disagree."""
        files = [
            inode
            for inode in fs.inodes.values()
            if not inode.is_dir and inode.blocks
        ]
        files.sort(key=lambda inode: inode.ino)
        bad = 0
        total = 0
        for i in range(len(files)):
            for j in range(i + 1, len(files)):
                total += 1
                if files[i].blocks[0] > files[j].blocks[0]:
                    bad += 1
        return bad / max(total, 1)

    def test_fresh_directory_is_perfectly_correlated(self):
        fs = make_fs()
        for i in range(30):
            create_file(fs, f"f{i}", 2 * BLOCK)
        assert self._kendall_violations(fs) == 0.0

    def test_churn_decorrelates_inumber_from_layout(self):
        fs = make_fs()
        rng = random.Random(42)
        names = [f"f{i}" for i in range(30)]
        for name in names:
            create_file(fs, name, 2 * BLOCK)
        for epoch in range(15):
            live = fs.root.names()
            for name in rng.sample(live, 5):
                fs.unlink(ROOT_INO, name, now_ns=0)
            for j in range(5):
                create_file(fs, f"e{epoch}_{j}", 2 * BLOCK)
        assert self._kendall_violations(fs) > 0.15


class TestNamespace:
    def test_duplicate_name_rejected(self):
        fs = make_fs()
        create_file(fs, "f", BLOCK)
        with pytest.raises(FileExists):
            fs.create(ROOT_INO, "f", FileKind.FILE, now_ns=0)

    def test_lookup_missing_name(self):
        fs = make_fs()
        with pytest.raises(FileNotFound):
            fs.root.lookup("ghost")

    def test_unlink_directory_rejected(self):
        fs = make_fs()
        fs.create(ROOT_INO, "d", FileKind.DIRECTORY, now_ns=0)
        with pytest.raises(InvalidArgument):
            fs.unlink(ROOT_INO, "d", now_ns=0)

    def test_rmdir_requires_empty(self):
        fs = make_fs()
        sub = fs.create(ROOT_INO, "d", FileKind.DIRECTORY, now_ns=0)
        create_file(fs, "f", BLOCK, parent=sub.ino)
        with pytest.raises(DirectoryNotEmpty):
            fs.rmdir(ROOT_INO, "d", now_ns=0)

    def test_rmdir_updates_link_counts(self):
        fs = make_fs()
        fs.create(ROOT_INO, "d", FileKind.DIRECTORY, now_ns=0)
        root_links = fs.get_inode(ROOT_INO).nlink
        fs.rmdir(ROOT_INO, "d", now_ns=0)
        assert fs.get_inode(ROOT_INO).nlink == root_links - 1

    def test_rename_moves_entry(self):
        fs = make_fs()
        inode = create_file(fs, "old", BLOCK)
        fs.rename(ROOT_INO, "old", ROOT_INO, "new", now_ns=0)
        assert fs.root.lookup("new") == inode.ino
        with pytest.raises(FileNotFound):
            fs.root.lookup("old")

    def test_rename_directory_across_parents_fixes_links(self):
        fs = make_fs()
        a = fs.create(ROOT_INO, "a", FileKind.DIRECTORY, now_ns=0)
        b = fs.create(ROOT_INO, "b", FileKind.DIRECTORY, now_ns=0)
        child = fs.create(a.ino, "child", FileKind.DIRECTORY, now_ns=0)
        a_links = fs.get_inode(a.ino).nlink
        fs.rename(a.ino, "child", b.ino, "child", now_ns=0)
        assert fs.get_inode(a.ino).nlink == a_links - 1
        assert fs.directories[child.ino].parent_ino == b.ino

    def test_rename_onto_existing_name_rejected(self):
        fs = make_fs()
        create_file(fs, "x", BLOCK)
        create_file(fs, "y", BLOCK)
        with pytest.raises(FileExists):
            fs.rename(ROOT_INO, "x", ROOT_INO, "y", now_ns=0)

    def test_rename_directory_into_own_subtree_rejected(self):
        """mv a a/b/c must fail — it would orphan the whole subtree."""
        fs = make_fs()
        a = fs.create(ROOT_INO, "a", FileKind.DIRECTORY, now_ns=0)
        b = fs.create(a.ino, "b", FileKind.DIRECTORY, now_ns=0)
        with pytest.raises(InvalidArgument):
            fs.rename(ROOT_INO, "a", b.ino, "c", now_ns=0)
        # Nothing moved: the namespace is exactly as before.
        assert fs.root.lookup("a") == a.ino
        assert fs.directories[a.ino].parent_ino == ROOT_INO
        assert fs.directories[b.ino].parent_ino == a.ino

    def test_rename_directory_onto_itself_as_parent_rejected(self):
        """The degenerate cycle: mv a a/x (new parent IS the victim)."""
        fs = make_fs()
        a = fs.create(ROOT_INO, "a", FileKind.DIRECTORY, now_ns=0)
        with pytest.raises(InvalidArgument):
            fs.rename(ROOT_INO, "a", a.ino, "x", now_ns=0)
        assert fs.root.lookup("a") == a.ino

    def test_rename_file_into_subtree_still_allowed(self):
        """The cycle check applies to directories only."""
        fs = make_fs()
        a = fs.create(ROOT_INO, "a", FileKind.DIRECTORY, now_ns=0)
        f = create_file(fs, "f", BLOCK)
        fs.rename(ROOT_INO, "f", a.ino, "f", now_ns=0)
        assert fs.directories[a.ino].lookup("f") == f.ino

    def test_readdir_order_is_insertion_order(self):
        fs = make_fs()
        for name in ("c", "a", "b"):
            create_file(fs, name, BLOCK)
        assert fs.root.names() == ["c", "a", "b"]

    def test_directory_grows_with_entries(self):
        fs = make_fs()
        for i in range(300):
            create_file(fs, f"file-with-a-long-name-{i:04d}", BLOCK)
        root = fs.get_inode(ROOT_INO)
        assert len(root.blocks) >= 2
