"""FCCD∘FLDC composition and the gbp utility."""

import random

import pytest

from repro.icl import gbp
from repro.icl.compose import ComposedOrdering, compose_order
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.sim import Kernel, syscalls as sc
from repro.workloads.files import create_files
from tests.conftest import KIB, MIB, small_config


def make_layers():
    return (
        FCCD(rng=random.Random(5), access_unit_bytes=2 * MIB,
             prediction_unit_bytes=512 * KIB),
        FLDC(),
    )


def populate(kernel, directory, count, size):
    def setup():
        yield sc.mkdir(directory)
        return (yield from create_files(directory, count, size))
    return kernel.run_process(setup(), "setup")


def warm(kernel, path):
    def app():
        fd = (yield sc.open(path)).value
        while not (yield sc.read(fd, MIB)).value.eof:
            pass
        yield sc.close(fd)
    kernel.run_process(app(), "warm")


class TestCompose:
    def test_cached_group_first_each_group_by_inumber(self, kernel):
        fccd, fldc = make_layers()
        paths = populate(kernel, "/mnt0/d", 8, 128 * KIB)
        kernel.oracle.flush_file_cache()
        for path in (paths[5], paths[2]):
            warm(kernel, path)

        def app():
            return (yield from compose_order(fccd, fldc, paths))
        result = kernel.run_process(app(), "compose")
        assert result.split_detected
        assert result.predicted_cached == [paths[2], paths[5]]  # i-number order
        assert result.order[:2] == [paths[2], paths[5]]
        # The on-disk group is also in i-number (creation) order.
        expected_disk = [p for p in paths if p not in (paths[2], paths[5])]
        assert result.predicted_on_disk == expected_disk

    def test_all_cold_collapses_to_inumber_order(self, kernel):
        fccd, fldc = make_layers()
        paths = populate(kernel, "/mnt0/d", 6, 128 * KIB)
        kernel.oracle.flush_file_cache()
        shuffled = list(paths)
        random.Random(9).shuffle(shuffled)

        def app():
            return (yield from compose_order(fccd, fldc, shuffled))
        result = kernel.run_process(app(), "compose")
        assert not result.split_detected
        assert result.order == paths  # creation order == i-number order

    def test_empty_and_single_inputs(self, kernel):
        fccd, fldc = make_layers()

        def app_empty():
            return (yield from compose_order(fccd, fldc, []))
        assert kernel.run_process(app_empty(), "c").order == []

        paths = populate(kernel, "/mnt0/d", 1, 128 * KIB)

        def app_single():
            return (yield from compose_order(fccd, fldc, paths))
        assert kernel.run_process(app_single(), "c").order == paths


class TestGbp:
    def test_mem_mode_orders_cached_first(self, kernel):
        fccd, _ = make_layers()
        paths = populate(kernel, "/mnt0/d", 5, 256 * KIB)
        kernel.oracle.flush_file_cache()
        warm(kernel, paths[3])

        def app():
            return (yield from gbp.order_paths(paths, mode="mem", fccd=fccd))
        ordered = kernel.run_process(app(), "gbp")
        assert ordered[0] == paths[3]
        assert set(ordered) == set(paths)

    def test_file_mode_orders_by_inumber(self, kernel):
        _, fldc = make_layers()
        paths = populate(kernel, "/mnt0/d", 5, 8 * KIB)
        shuffled = list(paths)
        random.Random(2).shuffle(shuffled)

        def app():
            return (yield from gbp.order_paths(shuffled, mode="file", fldc=fldc))
        assert kernel.run_process(app(), "gbp") == paths

    def test_compose_mode(self, kernel):
        fccd, fldc = make_layers()
        paths = populate(kernel, "/mnt0/d", 4, 128 * KIB)

        def app():
            return (
                yield from gbp.order_paths(paths, mode="compose", fccd=fccd, fldc=fldc)
            )
        ordered = kernel.run_process(app(), "gbp")
        assert set(ordered) == set(paths)

    def test_unknown_mode_rejected(self, kernel):
        def app():
            yield from gbp.order_paths(["/mnt0/x"], mode="bogus")
        with pytest.raises(ValueError):
            kernel.run_process(app(), "gbp")

    def test_gbp_charges_process_startup(self, kernel):
        paths = populate(kernel, "/mnt0/d", 2, 128 * KIB)
        fccd, _ = make_layers()

        def app():
            t0 = (yield sc.gettime()).value
            yield from gbp.order_paths(paths, mode="mem", fccd=fccd)
            return (yield sc.gettime()).value - t0
        elapsed = kernel.run_process(app(), "gbp")
        assert elapsed >= gbp.STARTUP_COMPUTE_NS

    def test_stream_file_delivers_whole_file_through_pipe(self, kernel):
        fccd, _ = make_layers()
        size = 3 * MIB

        def setup():
            fd = (yield sc.create("/mnt0/data")).value
            yield sc.write(fd, size)
            yield sc.close(fd)
        kernel.run_process(setup(), "setup")

        def consumer(r_fd):
            got = 0
            while True:
                result = (yield sc.read(r_fd, 256 * KIB)).value
                if result.eof:
                    break
                got += result.nbytes
            yield sc.close(r_fd)
            return got

        pipe = kernel.make_pipe()
        producer = kernel.spawn_with_pipe_ends(
            lambda w: gbp.stream_file("/mnt0/data", w, fccd),
            [(pipe, "pipe_w")],
            "gbp",
        )
        consumer_proc = kernel.spawn_with_pipe_ends(
            lambda r: consumer(r), [(pipe, "pipe_r")], "app"
        )
        kernel.run()
        assert producer.result == size
        assert consumer_proc.result == size

    def test_stream_file_sends_cached_segments_first(self, kernel):
        fccd, _ = make_layers()
        size = 6 * MIB

        def setup():
            fd = (yield sc.create("/mnt0/data")).value
            yield sc.write(fd, size)
            yield sc.close(fd)
        kernel.run_process(setup(), "setup")
        kernel.oracle.flush_file_cache()
        # Warm only the tail.
        def warm_tail():
            fd = (yield sc.open("/mnt0/data")).value
            yield sc.pread(fd, 4 * MIB, 2 * MIB)
            yield sc.close(fd)
        kernel.run_process(warm_tail(), "warm")

        timeline = []

        def consumer(r_fd):
            while True:
                result = (yield sc.read(r_fd, 512 * KIB)).value
                if result.eof:
                    break
                timeline.append(((yield sc.gettime()).value, result.nbytes))
            yield sc.close(r_fd)

        pipe = kernel.make_pipe()
        kernel.spawn_with_pipe_ends(
            lambda w: gbp.stream_file("/mnt0/data", w, fccd),
            [(pipe, "pipe_r" == "x" and "pipe_r" or "pipe_w")],
            "gbp",
        )
        kernel.spawn_with_pipe_ends(lambda r: consumer(r), [(pipe, "pipe_r")], "app")
        kernel.run()
        total = sum(n for _t, n in timeline)
        assert total == size
        # The first third of the bytes should arrive much faster than the
        # last third (cached segments streamed first).
        first_t = timeline[len(timeline) // 3][0]
        duration = timeline[-1][0] - timeline[0][0]
        assert first_t - timeline[0][0] < duration / 2
