"""Unit tests for the process/scheduler building blocks."""

import pytest

from repro.sim.cache.base import FileKey
from repro.sim.cache.lru import LRUPolicy
from repro.sim.errors import BadFileDescriptor
from repro.sim.proc.process import OpenFile, PipeBuffer, Process, ProcessState
from repro.sim.proc.scheduler import COMPACT_MIN_ENTRIES, Scheduler


def idle():
    yield


class TestProcess:
    def test_fd_numbers_start_past_stdio(self):
        process = Process(1, idle())
        entry = process.new_fd("file", fs_name="mnt0", ino=2)
        assert entry.fd == 3

    def test_fd_lookup_and_close(self):
        process = Process(1, idle())
        entry = process.new_fd("file", fs_name="mnt0", ino=2)
        assert process.lookup_fd(entry.fd) is entry
        assert process.close_fd(entry.fd) is entry
        with pytest.raises(BadFileDescriptor):
            process.lookup_fd(entry.fd)
        with pytest.raises(BadFileDescriptor):
            process.close_fd(entry.fd)

    def test_default_name_from_pid(self):
        assert Process(7, idle()).name == "proc7"
        assert Process(7, idle(), "worker").name == "worker"

    def test_repr_mentions_state(self):
        assert "ready" in repr(Process(1, idle()))


class TestPipeBuffer:
    def test_space_accounting(self):
        pipe = PipeBuffer(1)
        assert pipe.space == PipeBuffer.CAPACITY
        pipe.buffered = 100
        assert pipe.space == PipeBuffer.CAPACITY - 100

    def test_closed_flags(self):
        pipe = PipeBuffer(1)
        assert not pipe.write_closed and not pipe.read_closed
        pipe.writers = 0
        pipe.readers = 0
        assert pipe.write_closed and pipe.read_closed


class TestScheduler:
    def _proc(self, pid, at):
        process = Process(pid, idle())
        process.ready_at = at
        return process

    def test_earliest_ready_first(self):
        sched = Scheduler()
        late = self._proc(1, 100)
        early = self._proc(2, 10)
        sched.add(late)
        sched.add(early)
        assert sched.next_ready() is early
        assert sched.next_ready() is late

    def test_fifo_among_equal_deadlines(self):
        sched = Scheduler()
        first = self._proc(1, 50)
        second = self._proc(2, 50)
        sched.add(first)
        sched.add(second)
        assert sched.next_ready() is first
        assert sched.next_ready() is second

    def test_blocked_processes_are_skipped(self):
        sched = Scheduler()
        process = self._proc(1, 0)
        sched.add(process)
        sched.block(process)
        assert sched.next_ready() is None
        assert sched.blocked() == [process]

    def test_wake_requeues(self):
        sched = Scheduler()
        process = self._proc(1, 0)
        sched.add(process)
        sched.block(process)
        sched.make_ready(process, 42)
        woken = sched.next_ready()
        assert woken is process
        assert woken.ready_at == 42

    def test_stale_heap_entries_ignored(self):
        sched = Scheduler()
        process = self._proc(1, 10)
        sched.add(process)
        sched.make_ready(process, 5)  # supersedes the first entry
        got = sched.next_ready()
        assert got is process
        assert sched.next_ready() is None  # stale (10) entry dropped

    def test_live_and_runnable_counts(self):
        sched = Scheduler()
        a = self._proc(1, 0)
        b = self._proc(2, 0)
        sched.add(a)
        sched.add(b)
        assert sched.runnable_count() == 2
        sched.finish(b)
        assert sched.runnable_count() == 1
        assert sched.live_count() == 1
        assert sched.lookup(2) is b  # finished PCBs stay reachable

    def test_blocked_count_tracks_transitions(self):
        sched = Scheduler()
        a = self._proc(1, 0)
        b = self._proc(2, 0)
        sched.add(a)
        sched.add(b)
        sched.block(a)
        assert sched.blocked_count() == 1
        assert sched.runnable_count() == 1
        sched.block(a)  # idempotent: already blocked
        assert sched.blocked_count() == 1
        sched.make_ready(a, 5)
        assert sched.blocked_count() == 0
        assert sched.runnable_count() == 2
        sched.block(b)
        sched.finish(b)  # finishing a blocked process
        assert sched.blocked_count() == 0
        assert sched.blocked() == []

    def test_single_runner_uses_fast_slot(self):
        sched = Scheduler()
        solo = self._proc(1, 0)
        sched.add(solo)
        for at in range(1, 50):
            assert sched.next_ready() is solo
            sched.make_ready(solo, at)
        assert sched.next_ready() is solo
        assert sched.stats.fast_dispatches == 50
        assert sched.stats.dispatches == 50

    def test_fast_slot_spills_to_heap_in_order(self):
        sched = Scheduler()
        first = self._proc(1, 30)
        second = self._proc(2, 10)  # arrives later but is ready earlier
        sched.add(first)  # occupies the fast slot
        sched.add(second)  # forces a spill; ordering must survive
        assert sched.next_ready() is second
        assert sched.next_ready() is first
        assert sched.next_ready() is None

    def test_heap_compaction_drops_stale_entries(self):
        sched = Scheduler()
        procs = [self._proc(pid, pid) for pid in range(1, 41)]
        for p in procs:
            sched.add(p)
        # Re-ready everyone repeatedly: each make_ready leaves a stale
        # heap entry behind, then block() triggers the compaction sweep.
        for p in procs[1:]:
            sched.make_ready(p, p.pid + 100)
            sched.make_ready(p, p.pid + 200)
        for p in procs[1:]:
            sched.block(p)
        assert sched.stats.heap_compactions >= 1
        # Invariant: once past the minimum size, stale entries never
        # outnumber live ones two-to-one.
        assert (
            len(sched._heap) < COMPACT_MIN_ENTRIES
            or len(sched._heap) <= 2 * sched.runnable_count()
        )
        assert sched.next_ready() is procs[0]

    def test_waitpid_semantics_survive_pruning(self):
        sched = Scheduler()
        child = self._proc(9, 0)
        sched.add(child)
        child.result = "answer"
        sched.finish(child)
        assert sched.lookup(9) is child
        assert sched.lookup(9).result == "answer"
        assert 9 not in sched.processes


class TestCachePolicyHelpers:
    def test_remove_many(self):
        policy = LRUPolicy()
        keys = [FileKey(0, 1, i) for i in range(4)]
        for key in keys:
            policy.touch(key)
        assert policy.remove_many(keys[:2] + [FileKey(0, 9, 9)]) == 2
        assert len(policy) == 2

    def test_dirty_keys_helper(self):
        policy = LRUPolicy()
        policy.touch(FileKey(0, 1, 0), dirty=True)
        policy.touch(FileKey(0, 1, 1))
        assert policy.dirty_keys() == [FileKey(0, 1, 0)]
