"""Property-based invariants of the disk service model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.config import DiskSpec
from repro.sim.disk import Disk

BLOCK = 4096

requests = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=100_000),  # start block
        st.integers(min_value=1, max_value=64),       # length
        st.booleans(),                                # write?
        st.integers(min_value=0, max_value=10_000_000),  # think time (ns)
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(reqs=requests)
def test_service_never_travels_back_in_time(reqs):
    disk = Disk(DiskSpec())
    now = 0
    last_end = 0
    for start_block, length, write, think in reqs:
        now = max(now, last_end) + think
        begin, end = disk.access(start_block, length, now, BLOCK, write=write)
        assert begin >= now
        assert end > begin
        assert begin >= last_end  # spindle serializes
        last_end = end


@settings(max_examples=60, deadline=None)
@given(reqs=requests)
def test_service_time_at_least_transfer_time(reqs):
    disk = Disk(DiskSpec())
    sector_ns = disk.spec.rotation_ns / disk.spec.sectors_per_track
    now = 0
    for start_block, length, write, think in reqs:
        begin, end = disk.access(start_block, length, now, BLOCK, write=write)
        nsectors = length * disk.sectors_per_block(BLOCK)
        assert end - begin >= int(nsectors * sector_ns)
        now = end + think


@settings(max_examples=40, deadline=None)
@given(
    start=st.integers(min_value=0, max_value=50_000),
    length=st.integers(min_value=1, max_value=256),
)
def test_single_request_bounded_by_worst_case(start, length):
    disk = Disk(DiskSpec())
    begin, end = disk.access(start, length, 0, BLOCK)
    spec = disk.spec
    nsectors = length * disk.sectors_per_block(BLOCK)
    sector_ns = spec.rotation_ns / spec.sectors_per_track
    tracks = nsectors // spec.sectors_per_track + 2
    worst = (
        spec.command_overhead_ns
        + spec.full_stroke_seek_ns
        + spec.rotation_ns
        + int(nsectors * sector_ns)
        + tracks * (spec.head_switch_ns + spec.single_track_seek_ns)
    )
    assert end - begin <= worst


@settings(max_examples=30, deadline=None)
@given(
    cylinder_picks=st.lists(
        st.integers(min_value=0, max_value=400), min_size=4, max_size=30, unique=True
    )
)
def test_sorted_visit_order_no_slower_than_ping_pong(cylinder_picks):
    """Elevator intuition: when seeks dominate (targets spread across
    distant cylinders), ascending visits never lose to a ping-pong order.
    Within a single cylinder rotational position dominates and no such
    ordering guarantee exists — hence the cylinder-scale spacing."""
    blocks = [c * 3000 for c in cylinder_picks]  # ~10 cylinders apart each
    def total_time(order):
        disk = Disk(DiskSpec())
        now = 0
        for block in order:
            _b, now = disk.access(block, 1, now, BLOCK)
        return now

    ascending = sorted(blocks)
    # Worst-ish interleave: alternate ends.
    ping_pong = []
    low, high = 0, len(ascending) - 1
    while low <= high:
        ping_pong.append(ascending[low])
        if low != high:
            ping_pong.append(ascending[high])
        low += 1
        high -= 1
    assert total_time(ascending) <= total_time(ping_pong) * 1.05
