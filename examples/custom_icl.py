#!/usr/bin/env python3
"""Building your own ICL from the gray toolbox.

The paper's goal is a *methodology*, not just three layers.  This
example assembles a new one from toolbox parts in ~40 lines: a
**disk-contention detector** in the spirit of MS Manners — a background
scrubber that probes the disk with a tiny uncached read, compares the
elapsed time against its calibrated idle baseline (microbenchmark +
median statistics from the toolbox), and backs off while a foreground
process is hammering the spindle.

Gray-box ingredients used:
  * algorithmic knowledge — disk requests queue; a busy spindle makes
    even a one-sector read slow;
  * probes — a 1-byte read at a rotating uncached offset;
  * microbenchmark calibration — idle probe latency, measured once;
  * statistics — median over a few probes rejects scheduling noise.

Run:  python examples/custom_icl.py
"""

import random

from repro import Kernel, MachineConfig
from repro.sim import syscalls as sc
from repro.toolbox.stats import SampleStats

MIB = 1024 * 1024


class DiskBusyDetector:
    """Infers disk contention from probe latency — no OS interfaces used."""

    def __init__(self, probe_path: str, file_bytes: int, rng: random.Random):
        self.probe_path = probe_path
        self.file_bytes = file_bytes
        self.rng = rng
        self.idle_baseline_ns = None

    def _probe_once(self):
        fd = (yield sc.open(self.probe_path)).value
        offset = self.rng.randrange(self.file_bytes - 1)
        result = yield sc.pread(fd, offset, 1)
        yield sc.close(fd)
        return result.elapsed_ns

    def calibrate(self, samples: int = 7):
        """Measure the idle baseline (run once, on a quiet machine)."""
        times = []
        for _ in range(samples):
            times.append((yield from self._probe_once()))
        self.idle_baseline_ns = SampleStats(times).median
        return self.idle_baseline_ns

    def disk_busy(self, factor: float = 3.0, samples: int = 3):
        """True if probe latency is well above the idle baseline."""
        times = []
        for _ in range(samples):
            times.append((yield from self._probe_once()))
        return SampleStats(times).median > factor * self.idle_baseline_ns


def main() -> None:
    config = MachineConfig(page_size=64 * 1024, memory_bytes=128 * MIB,
                           kernel_reserved_bytes=16 * MIB)
    kernel = Kernel(config)
    rng = random.Random(5)

    def setup():
        for name, size in (("probe.dat", 64 * MIB), ("big.dat", 64 * MIB)):
            fd = (yield sc.create(f"/mnt0/{name}")).value
            yield sc.write(fd, size)
            yield sc.fsync(fd)
            yield sc.close(fd)
    kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()

    detector = DiskBusyDetector("/mnt0/probe.dat", 64 * MIB, rng)
    baseline = kernel.run_process(detector.calibrate(), "calibrate")
    print(f"calibrated idle probe latency: {baseline / 1e6:.1f} ms")

    log = []

    def scrubber():
        """Low-importance work that yields to foreground disk traffic."""
        done = 0
        while done < 20:
            busy = yield from detector.disk_busy()
            now = (yield sc.gettime()).value
            if busy:
                log.append((now, "deferred"))
                yield sc.sleep(300_000_000)
                continue
            fd = (yield sc.open("/mnt0/probe.dat")).value
            yield sc.pread(fd, (done * 3 * MIB) % (60 * MIB), 3 * MIB)
            yield sc.close(fd)
            log.append((now, "scrubbed"))
            done += 1
        return done

    def foreground():
        yield sc.sleep(1_000_000_000)  # arrives after the scrubber starts
        fd = (yield sc.open("/mnt0/big.dat")).value
        while not (yield sc.read(fd, MIB)).value.eof:
            pass
        yield sc.close(fd)
        return "fg-done"

    kernel.oracle.flush_file_cache()
    kernel.spawn(scrubber(), "scrubber")
    fg = kernel.spawn(foreground(), "foreground")
    kernel.run()

    deferred = sum(1 for _t, what in log if what == "deferred")
    print(f"scrubber: {len(log) - deferred} chunks scrubbed, "
          f"{deferred} probes deferred to the foreground reader")
    assert fg.result == "fg-done"
    print("a new gray-box layer, built entirely from public interfaces")


if __name__ == "__main__":
    main()
