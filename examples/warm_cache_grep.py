#!/usr/bin/env python3
"""The paper's motivating scenario: repeated `grep <arg> *` runs.

A developer greps the same source tree over and over with different
arguments.  The tree is slightly larger than the file cache, so with an
LRU-like cache an unmodified grep re-reads *everything* from disk every
run (the LRU worst case).  gb-grep asks FCCD which files are cached and
visits those first; `grep $(gbp -mem *)` gets the same effect without
modifying grep.

Run:  python examples/warm_cache_grep.py
"""

import random

from repro import Kernel, MachineConfig
from repro.apps.grep import gb_grep, gbp_grep, grep
from repro.icl.fccd import FCCD
from repro.sim import syscalls as sc
from repro.workloads.files import create_files

MIB = 1024 * 1024
FILES = 17
FILE_MB = 8


def build_kernel() -> Kernel:
    config = MachineConfig(
        page_size=64 * 1024,
        memory_bytes=128 * MIB,
        kernel_reserved_bytes=16 * MIB,
    )
    kernel = Kernel(config)

    def setup():
        yield sc.mkdir("/mnt0/src")
        yield from create_files("/mnt0/src", FILES, FILE_MB * MIB)
    kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()
    return kernel


def main() -> None:
    paths = [f"/mnt0/src/f{i:04d}" for i in range(FILES)]
    total_mb = FILES * FILE_MB
    print(f"workload: grep over {FILES} files, {total_mb} MB total, "
          f"112 MB cache — data just exceeds the cache\n")

    for label, factory in (
        ("unmodified grep", lambda rng: grep(paths)),
        ("gb-grep (linked with FCCD)", lambda rng: gb_grep(paths, fccd=FCCD(rng=rng))),
        ("grep $(gbp -mem *)", lambda rng: gbp_grep(paths, fccd=FCCD(rng=rng))),
    ):
        kernel = build_kernel()
        rng = random.Random(7)
        times = []
        for run in range(4):
            report = kernel.run_process(factory(rng), label)
            times.append(report.elapsed_ns / 1e9)
        warm = sum(times[1:]) / len(times[1:])
        print(f"{label:30s} cold {times[0]:5.2f} s   warm runs avg {warm:5.2f} s")


if __name__ == "__main__":
    main()
