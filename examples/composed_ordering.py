#!/usr/bin/env python3
"""Composing ICLs (§4.2.4): cache-aware AND layout-aware file ordering.

FCCD orders files by probe time but cannot *name* which are cached;
FLDC orders by layout but ignores the cache.  The composition clusters
probe times into two groups (exact two-means in log space) and sorts
each group by i-number: cached files first, then disk files in seek
order — the best of both layers.

Run:  python examples/composed_ordering.py
"""

import random

from repro import Kernel, MachineConfig
from repro.icl.compose import compose_order
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.sim import syscalls as sc
from repro.workloads.files import create_files

KIB = 1024
MIB = 1024 * 1024
FILES = 24


def read_in_order(kernel, order) -> float:
    def app():
        t0 = (yield sc.gettime()).value
        for path in order:
            fd = (yield sc.open(path)).value
            while not (yield sc.read(fd, 256 * KIB)).value.eof:
                pass
            yield sc.close(fd)
        return (yield sc.gettime()).value - t0
    return kernel.run_process(app(), "read") / 1e9


def main() -> None:
    config = MachineConfig(
        page_size=4 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=8 * MIB,
    )
    kernel = Kernel(config)
    rng = random.Random(17)

    def setup():
        yield sc.mkdir("/mnt0/d")
        names = [f"doc{rng.randrange(10**6):06d}" for _ in range(FILES)]
        return (yield from create_files("/mnt0/d", FILES, 256 * KIB, names=names))
    paths = kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()

    # Warm a scattered subset, as a previous workload would have.
    warm_set = rng.sample(paths, 6)
    def warm():
        for path in warm_set:
            fd = (yield sc.open(path)).value
            yield sc.pread(fd, 0, 256 * KIB)
            yield sc.close(fd)
    kernel.run_process(warm(), "warm")

    fccd = FCCD(rng=random.Random(3), access_unit_bytes=2 * MIB,
                prediction_unit_bytes=512 * KIB)
    fldc = FLDC()

    def composed():
        return (yield from compose_order(fccd, fldc, paths))
    plan = kernel.run_process(composed(), "compose")

    correct = set(plan.predicted_cached) == set(warm_set)
    print(f"cached files predicted: {len(plan.predicted_cached)}/{len(warm_set)}"
          f"  (exactly right: {correct})")

    shuffled = list(paths)
    rng.shuffle(shuffled)
    naive_s = read_in_order(kernel, shuffled)

    kernel.oracle.flush_file_cache()
    kernel.run_process(warm(), "rewarm")
    composed_s = read_in_order(kernel, plan.order)
    print(f"random order   : {naive_s:6.3f} s")
    print(f"composed order : {composed_s:6.3f} s   "
          f"({naive_s / composed_s:.1f}x faster)")


if __name__ == "__main__":
    main()
