#!/usr/bin/env python3
"""Quickstart: probe the file cache through the syscall interface.

Builds a small simulated machine, puts a file half in cache, and shows
FCCD inferring the cached half purely from 1-byte probe timings — then
uses that inference to scan the file gray-box style, beating the naive
linear scan.

Run:  python examples/quickstart.py
"""

import random

from repro import Kernel, MachineConfig, linux22
from repro.apps.scan import gray_scan, linear_scan
from repro.icl.fccd import FCCD
from repro.sim import syscalls as sc

MIB = 1024 * 1024


def main() -> None:
    config = MachineConfig(
        page_size=64 * 1024,
        memory_bytes=128 * MIB,
        kernel_reserved_bytes=16 * MIB,
    )
    kernel = Kernel(config, platform=linux22)
    print(f"machine: {config.available_bytes // MIB} MB available, "
          f"platform {kernel.platform.name}")

    # -- create a 160 MB file and leave only its tail cached -----------
    def setup():
        fd = (yield sc.create("/mnt0/data.bin")).value
        yield sc.write(fd, 160 * MIB)
        yield sc.fsync(fd)
        yield sc.close(fd)
    kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()

    def warm_tail():
        fd = (yield sc.open("/mnt0/data.bin")).value
        yield sc.pread(fd, 100 * MIB, 60 * MIB)
        yield sc.close(fd)
    kernel.run_process(warm_tail(), "warm")
    print(f"ground truth: {kernel.oracle.cached_fraction('/mnt0/data.bin'):.0%} "
          f"of the file is cached (the tail)")

    # -- FCCD infers the same thing from probe timings alone -----------
    fccd = FCCD(rng=random.Random(42))

    def probe():
        plan = yield from fccd.plan_file("/mnt0/data.bin")
        return plan
    plan = kernel.run_process(probe(), "probe")
    print("\nFCCD probe results (sorted fastest-first):")
    for segment in plan.ordered_segments():
        state = "cached " if segment.probe_ns < 1_000_000 else "on disk"
        print(f"  offset {segment.offset // MIB:4d} MB  "
              f"probe {segment.probe_ns / 1000:10.1f} us  -> {state}")

    # -- and the inference pays off -------------------------------------
    def run_linear():
        return (yield from linear_scan("/mnt0/data.bin"))

    def run_gray():
        return (yield from gray_scan("/mnt0/data.bin", FCCD(rng=random.Random(1))))

    linear = kernel.run_process(run_linear(), "linear")
    kernel.oracle.flush_file_cache()
    kernel.run_process(warm_tail(), "rewarm")
    gray = kernel.run_process(run_gray(), "gray")
    print(f"\nlinear scan : {linear.elapsed_ns / 1e9:6.2f} s")
    print(f"gray scan   : {gray.elapsed_ns / 1e9:6.2f} s "
          f"({linear.elapsed_ns / gray.elapsed_ns:.1f}x faster, "
          f"probes cost {gray.probe_ns / 1e6:.1f} ms)")


if __name__ == "__main__":
    main()
