#!/usr/bin/env python3
"""FLDC scenario: a backup-style reader over many small files.

An archiver reads every file in a project directory.  File layout on an
FFS-style filesystem correlates with i-numbers, so sorting by i-number
(one stat per file — no privileges needed) approximates disk order and
slashes seek time.  The directory then ages (edit/delete/create churn)
until the correlation breaks down, and an FLDC refresh repacks it.

Run:  python examples/layout_aware_reader.py
"""

import random

from repro import Kernel, MachineConfig
from repro.icl.fldc import FLDC
from repro.sim import syscalls as sc
from repro.workloads.files import age_directory, create_files

KIB = 1024
MIB = 1024 * 1024
FILES = 150


def read_all(kernel, order) -> float:
    def app():
        t0 = (yield sc.gettime()).value
        for path in order:
            fd = (yield sc.open(path)).value
            while not (yield sc.read(fd, 64 * KIB)).value.eof:
                pass
            yield sc.close(fd)
        return (yield sc.gettime()).value - t0
    kernel.oracle.flush_file_cache()
    return kernel.run_process(app(), "read") / 1e9


def measure(kernel, fldc, label) -> None:
    def list_and_order():
        names = (yield sc.readdir("/mnt0/project")).value
        paths = [f"/mnt0/project/{n}" for n in names]
        ordered, _stats = yield from fldc.layout_order(paths)
        return paths, ordered
    paths, ordered = kernel.run_process(list_and_order(), "order")
    shuffled = list(paths)
    random.Random(5).shuffle(shuffled)
    random_s = read_all(kernel, shuffled)
    inumber_s = read_all(kernel, ordered)
    print(f"{label:28s} random {random_s:6.3f} s   "
          f"i-number {inumber_s:6.3f} s   ({random_s / inumber_s:.1f}x)")


def main() -> None:
    config = MachineConfig(
        page_size=4 * KIB,
        memory_bytes=64 * MIB,
        kernel_reserved_bytes=8 * MIB,
    )
    kernel = Kernel(config)
    rng = random.Random(99)

    def setup():
        yield sc.mkdir("/mnt0/project")
        names = [f"src{rng.randrange(10**6):06d}.c" for _ in range(FILES)]
        yield from create_files("/mnt0/project", FILES, 8 * KIB, names=names)
    kernel.run_process(setup(), "setup")
    fldc = FLDC()

    measure(kernel, fldc, "fresh directory:")

    kernel.run_process(
        age_directory("/mnt0/project", 25, rng, create_size=8 * KIB), "age"
    )
    measure(kernel, fldc, "after 25 aging epochs:")

    def refresh():
        report = yield from fldc.refresh_directory("/mnt0/project")
        return report
    report = kernel.run_process(refresh(), "refresh")
    print(f"\nrefreshed {report.files_moved} files "
          f"({report.bytes_copied // KIB} KiB copied, smallest first)")
    measure(kernel, fldc, "after refresh:")


if __name__ == "__main__":
    main()
