#!/usr/bin/env python3
"""Port the same ICL code across three OS personalities (§4.1.3).

The paper's portability claim: FCCD assumes only that replacement is
LRU-like, so the identical library runs on Linux 2.2, NetBSD 1.5, and
Solaris 7 — and in doing so *reveals* each platform's quirks, "much as a
microbenchmark might also do".  This tour runs one warm-scan experiment
per personality and prints what the gray-box layer uncovered.

Run:  python examples/platform_tour.py
"""

import random

from repro import Kernel, MachineConfig, linux22, netbsd15, solaris7
from repro.apps.scan import gray_scan, linear_scan
from repro.icl.fccd import FCCD
from repro.sim import syscalls as sc

MIB = 1024 * 1024


def run_platform(platform, file_mb: int) -> None:
    config = MachineConfig(
        page_size=64 * 1024,
        memory_bytes=128 * MIB,
        kernel_reserved_bytes=16 * MIB,
    )
    kernel = Kernel(config, platform=platform)

    def setup():
        fd = (yield sc.create("/mnt0/data")).value
        yield sc.write(fd, file_mb * MIB)
        yield sc.fsync(fd)
        yield sc.close(fd)
    kernel.run_process(setup(), "setup")
    kernel.oracle.flush_file_cache()

    def timed(factory):
        return kernel.run_process(factory(), "scan").elapsed_ns / 1e9

    cold = timed(lambda: linear_scan("/mnt0/data"))
    warm = timed(lambda: linear_scan("/mnt0/data"))
    gray = timed(lambda: gray_scan("/mnt0/data", FCCD(rng=random.Random(1))))

    print(f"\n== {platform.name}: {platform.description}")
    print(f"   {file_mb} MB file | cold {cold:5.2f}s  warm {warm:5.2f}s  "
          f"gray {gray:5.2f}s")
    if warm > 0.9 * cold and gray < 0.8 * warm:
        print("   finding: LRU worst case on repeat scans; the ICL sidesteps it")
    elif warm < 0.2 * cold:
        print("   finding: the file fits this platform's cache; nothing to fix")
    elif warm < 0.8 * cold and abs(gray - warm) / warm < 0.3:
        print("   finding: the cache holds a portion persistently — fast "
              "even unmodified (the paper's Solaris surprise)")


def main() -> None:
    print("one FCCD, three operating systems")
    # NetBSD's fixed 64 MB buffer cache gets its best-case file size,
    # exactly as the paper chose 65 MB for its NetBSD runs.
    run_platform(linux22, file_mb=192)
    run_platform(netbsd15, file_mb=56)
    run_platform(solaris7, file_mb=192)


if __name__ == "__main__":
    main()
