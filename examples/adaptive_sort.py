#!/usr/bin/env python3
"""MAC scenario: competing external sorts that never thrash.

Two fastsort processes share one machine.  Each asks MAC for its pass
buffer (`gb_alloc`) instead of guessing a static size; MAC probes memory
with timed page touches, grants only what currently fits, and the sorts
adapt pass sizes to each other — no paging, no tuning.

A static configuration that overcommits the same machine is run for
contrast.

Run:  python examples/adaptive_sort.py
"""

import random

from repro import Kernel, MachineConfig
from repro.apps.fastsort import (
    RECORD_BYTES,
    fastsort_read_phase,
    gb_fastsort_read_phase,
    set_static_buffer_page,
)
from repro.icl.mac import MAC
from repro.sim import syscalls as sc
from repro.workloads.files import make_file

MIB = 1024 * 1024
NPROCS = 2
INPUT_MB = 96


def build_kernel() -> Kernel:
    config = MachineConfig(
        page_size=64 * 1024,
        memory_bytes=160 * MIB,
        kernel_reserved_bytes=16 * MIB,
        data_disks=NPROCS,
    )
    kernel = Kernel(config)
    set_static_buffer_page(config.page_size)
    input_bytes = INPUT_MB * MIB - (INPUT_MB * MIB) % RECORD_BYTES
    for i in range(NPROCS):
        def setup(i=i):
            yield sc.mkdir(f"/mnt{i}/runs")
            yield from make_file(f"/mnt{i}/in.dat", input_bytes, sync=False)
        kernel.run_process(setup(), f"setup{i}")
    kernel.oracle.flush_file_cache()
    return kernel


def run_static(pass_mb: int):
    kernel = build_kernel()
    pass_bytes = pass_mb * MIB - (pass_mb * MIB) % RECORD_BYTES
    start = kernel.clock.now
    for i in range(NPROCS):
        kernel.spawn(
            fastsort_read_phase(f"/mnt{i}/in.dat", f"/mnt{i}/runs", pass_bytes),
            f"sort{i}",
        )
    kernel.run()
    swapped = kernel.oracle.daemon_stats().anon_pages_swapped
    elapsed = (kernel.clock.now - start) / 1e9
    print(f"static pass {pass_mb:3d} MB : {elapsed:6.1f} s   "
          f"swapped {swapped * kernel.config.page_size // MIB} MB")


def run_adaptive():
    kernel = build_kernel()
    start = kernel.clock.now
    processes = []
    for i in range(NPROCS):
        mac = MAC(
            page_size=kernel.config.page_size,
            initial_increment_bytes=4 * MIB,
            max_increment_bytes=32 * MIB,
            rng=random.Random(i),
        )
        processes.append(
            kernel.spawn(
                gb_fastsort_read_phase(
                    f"/mnt{i}/in.dat", f"/mnt{i}/runs", mac,
                    min_pass_bytes=16 * MIB,
                ),
                f"gb-sort{i}",
            )
        )
    kernel.run()
    swapped = kernel.oracle.daemon_stats().anon_pages_swapped
    elapsed = (kernel.clock.now - start) / 1e9
    print(f"gb-fastsort (MAC)  : {elapsed:6.1f} s   "
          f"swapped {swapped * kernel.config.page_size // MIB} MB")
    for process in processes:
        report = process.result
        passes = ", ".join(f"{b // MIB}" for b in report.pass_bytes)
        print(f"  {process.name}: pass sizes (MB): {passes}   "
              f"overhead {report.overhead_ns / 1e9:.2f} s")


def main() -> None:
    print(f"{NPROCS} sorts x {INPUT_MB} MB on a 144 MB-available machine\n")
    for pass_mb in (24, 48, 80):
        run_static(pass_mb)
    print()
    run_adaptive()


if __name__ == "__main__":
    main()
