"""Per-client views over a shared kernel's observability stream.

When N ICLs share one kernel (the multi-tenant arena of ROADMAP item 1),
``kernel.obs`` holds one interleaved stream.  Attribution (every record
stamped with the dispatching pid — see :mod:`repro.obs.events`) makes
that stream separable again: an :class:`ObsView` is one client's
read-only window, and :func:`interference_matrix` is the cross-client
report — who evicted whom, the paper's probe-perturbation tension as a
literal table.

Pid ``0`` is the *unattributed* bucket: records emitted host-side
(setup, teardown) before/after any process is current, and eviction
victims whose owner predates attribution.  Keeping it as a real bucket
makes the views a partition — the union of every per-pid view equals
the full stream, record for record — which is the invariant the fuzz
suite checks.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

__all__ = [
    "UNATTRIBUTED",
    "ObsView",
    "split_by_pid",
    "interference_matrix",
    "render_matrix",
    "process_names",
    "client_rollup",
    "channel_summary",
]

#: The pid bucket for records no simulated process was dispatched for.
UNATTRIBUTED = 0


def split_by_pid(
    records: Iterable[Dict[str, Any]],
) -> Dict[int, List[Dict[str, Any]]]:
    """Partition records into per-pid lists (``0`` = unattributed).

    Every record lands in exactly one bucket, so concatenating the
    buckets in pid order is a permutation of the input — no record is
    dropped or duplicated.
    """
    buckets: Dict[int, List[Dict[str, Any]]] = {}
    for record in records:
        pid = record.get("pid", UNATTRIBUTED)
        bucket = buckets.get(pid)
        if bucket is None:
            buckets[pid] = bucket = []
        bucket.append(record)
    return buckets


def interference_matrix(
    records: Iterable[Dict[str, Any]],
) -> Dict[int, Dict[int, int]]:
    """Who-evicted-whom counts from ``kernel.reclaim`` events.

    ``matrix[instigator][victim]`` counts reclaim events where
    ``instigator``'s miss forced an eviction whose majority victim was
    ``victim``.  Exactly one cell increments per reclaim event, so the
    sum over all cells equals the stream's reclaim-event count — the
    row-sum invariant the fuzzer asserts.  Diagonal cells are
    self-interference (a process thrashing its own pages); off-diagonal
    cells are the cross-client perturbation the paper is about.
    """
    matrix: Dict[int, Dict[int, int]] = {}
    for record in records:
        if record.get("type") != "event" or record.get("name") != "kernel.reclaim":
            continue
        attrs = record.get("attrs") or {}
        instigator = int(attrs.get("instigator_pid", UNATTRIBUTED))
        victim = int(attrs.get("victim_pid", UNATTRIBUTED))
        row = matrix.get(instigator)
        if row is None:
            matrix[instigator] = row = {}
        row[victim] = row.get(victim, 0) + 1
    return matrix


def process_names(records: Iterable[Dict[str, Any]]) -> Dict[int, str]:
    """``{pid: comm}`` from the stream's ``kernel.spawn`` events."""
    names: Dict[int, str] = {}
    for record in records:
        if record.get("type") == "event" and record.get("name") == "kernel.spawn":
            attrs = record.get("attrs") or {}
            if "pid" in attrs:
                names[int(attrs["pid"])] = str(attrs.get("comm", ""))
    return names


def render_matrix(
    matrix: Mapping[int, Mapping[int, int]],
    names: Optional[Mapping[int, str]] = None,
    top: Optional[int] = 16,
) -> str:
    """The interference matrix as an aligned text table.

    Rows are instigators, columns victims; pid 0 renders as ``(kernel)``.

    ``top`` bounds the table for multi-tenant streams: only the ``top``
    instigators by row-sum and ``top`` victims by column-sum are
    printed, with a trailing note counting the elided rows/columns and
    the evictions they account for — a 1024-client arena renders a
    readable hot-spot table instead of a 1024x1024 wall.  Pass ``None``
    to print everything; matrices within the bound render exactly as
    before.
    """
    names = names or {}

    def label(pid: int) -> str:
        if pid == UNATTRIBUTED:
            return "(kernel)"
        comm = names.get(pid)
        return f"{pid}:{comm}" if comm else str(pid)

    row_sums = {pid: sum(row.values()) for pid, row in matrix.items()}
    col_sums: Dict[int, int] = {}
    for row in matrix.values():
        for victim, count in row.items():
            col_sums[victim] = col_sums.get(victim, 0) + count
    instigators = sorted(matrix)
    victims = sorted(col_sums)
    elided_note = ""
    if top is not None and (len(instigators) > top or len(victims) > top):
        # Hottest first for the cut, sorted by pid for the display.
        keep_rows = sorted(
            sorted(instigators, key=lambda p: (-row_sums[p], p))[:top]
        )
        keep_cols = sorted(
            sorted(victims, key=lambda p: (-col_sums[p], p))[:top]
        )
        dropped_rows = [p for p in instigators if p not in set(keep_rows)]
        dropped_cols = [p for p in victims if p not in set(keep_cols)]
        dropped_evictions = sum(row_sums[p] for p in dropped_rows)
        elided_note = (
            f"... {len(dropped_rows)} evictor row(s) and "
            f"{len(dropped_cols)} victim column(s) elided "
            f"({dropped_evictions} evictions outside the top-{top} rows)"
        )
        instigators = keep_rows
        victims = keep_cols
    else:
        victims = sorted(set(victims) | set(instigators))
    header = ["evictor \\ victim"] + [label(p) for p in victims] + ["row-sum"]
    rows: List[List[str]] = []
    for instigator in instigators:
        row = matrix[instigator]
        rows.append(
            [label(instigator)]
            + [str(row.get(victim, 0)) for victim in victims]
            + [str(row_sums[instigator])]
        )
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows
        else len(header[i])
        for i in range(len(header))
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    if elided_note:
        lines.append(elided_note)
    return "\n".join(lines)


def client_rollup(
    records: Iterable[Dict[str, Any]],
) -> Dict[int, Dict[str, int]]:
    """Per-pid accounting in one pass over a dumped record stream.

    Returns ``{pid: {records, spans, probes, syscalls, evictions_caused,
    evictions_suffered}}``.  ``probes`` sums the ``probes`` attribute of
    batch spans (``span_batch``), ``syscalls`` the per-pid ledger rows
    (``pid_stats`` records).  The arena report is built from this
    instead of N :class:`ObsView` accessors because each view accessor
    re-scans the stream — O(N * records) across a thousand clients,
    versus one scan here.
    """
    rollup: Dict[int, Dict[str, int]] = {}

    def cell(pid: int) -> Dict[str, int]:
        entry = rollup.get(pid)
        if entry is None:
            rollup[pid] = entry = {
                "records": 0,
                "spans": 0,
                "probes": 0,
                "syscalls": 0,
                "evictions_caused": 0,
                "evictions_suffered": 0,
            }
        return entry

    for record in records:
        rtype = record.get("type")
        if rtype == "pid_stats":
            entry = cell(int(record.get("pid", UNATTRIBUTED)))
            entry["syscalls"] += sum((record.get("syscalls") or {}).values())
            continue
        if rtype not in ("event", "span"):
            continue
        pid = record.get("pid", UNATTRIBUTED)
        entry = cell(pid)
        entry["records"] += 1
        if rtype == "span":
            entry["spans"] += 1
            attrs = record.get("attrs") or {}
            probes = attrs.get("probes")
            if probes:
                entry["probes"] += int(probes)
        elif record.get("name") == "kernel.reclaim":
            attrs = record.get("attrs") or {}
            instigator = int(attrs.get("instigator_pid", UNATTRIBUTED))
            victim = int(attrs.get("victim_pid", UNATTRIBUTED))
            cell(instigator)["evictions_caused"] += 1
            cell(victim)["evictions_suffered"] += 1
    return rollup


class ObsView:
    """One client's filtered, read-only window onto a shared stream.

    Construct with the shared :class:`~repro.obs.Observability` and the
    client's pid (e.g. ``ObsView(kernel.obs, probe_proc.pid)``).  The
    view never copies eagerly and never mutates the underlying stream;
    each accessor re-reads it, so a view stays valid across further
    kernel runs.
    """

    def __init__(self, obs: Any, pid: int) -> None:
        self.obs = obs
        self.pid = pid

    # -- the filtered stream -------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """Every event/span record attributed to this view's pid."""
        return [
            r for r in self.obs.events
            if r.get("pid", UNATTRIBUTED) == self.pid
        ]

    def events(self) -> List[Dict[str, Any]]:
        return [r for r in self.records() if r["type"] == "event"]

    def spans(self) -> List[Dict[str, Any]]:
        return [r for r in self.records() if r["type"] == "span"]

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        return [r for r in self.records() if r.get("name") == name]

    # -- per-client accounting -----------------------------------------
    def syscall_counts(self) -> Dict[str, int]:
        """This client's per-syscall call counts (the per-pid ledger)."""
        return dict(self.obs.syscalls_by_pid.get(self.pid, {}))

    # -- cross-client interference -------------------------------------
    def interference_matrix(self) -> Dict[int, Dict[int, int]]:
        """The whole machine's who-evicted-whom matrix.

        Deliberately *not* filtered to this pid: interference is a
        relation between clients, and each tenant of a gray-box system
        can see the machine-wide contention it is part of.
        """
        return interference_matrix(self.obs.events)

    def evictions_caused(self) -> int:
        """Reclaim events this client's misses forced (its matrix row)."""
        return sum(self.interference_matrix().get(self.pid, {}).values())

    def evictions_suffered(self) -> int:
        """Reclaim events whose majority victim was this client."""
        return sum(
            row.get(self.pid, 0)
            for row in self.interference_matrix().values()
        )

    def __repr__(self) -> str:
        return f"ObsView(pid={self.pid}, records={len(self.records())})"


def channel_summary(
    records: Iterable[Dict[str, Any]],
) -> Dict[int, Dict[str, Any]]:
    """Per-pid covert-channel activity from ``channel.*`` spans.

    Returns ``{pid: {role, cells, total_ns, mean_cell_ns}}`` where
    ``role`` is ``"tx"`` or ``"rx"`` (from the span name's
    ``tx_cell``/``rx_cell`` suffix) and the durations come from each
    span's ``end_ns - start_ns``.  The defender's eviction-free view of
    who is signalling: a sender's per-cell cost is the channel's
    footprint, a receiver's cell count times mean duration bounds how
    fast it can possibly sample.
    """
    summary: Dict[int, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") != "span":
            continue
        name = record.get("name", "")
        if not name.startswith("channel."):
            continue
        start, end = record.get("start_ns"), record.get("end_ns")
        if start is None or end is None:
            continue
        pid = record.get("pid", UNATTRIBUTED)
        entry = summary.get(pid)
        if entry is None:
            summary[pid] = entry = {
                "role": "rx" if name.endswith("rx_cell") else "tx",
                "cells": 0,
                "total_ns": 0,
            }
        entry["cells"] += 1
        entry["total_ns"] += int(end) - int(start)
    for entry in summary.values():
        entry["mean_cell_ns"] = (
            entry["total_ns"] / entry["cells"] if entry["cells"] else 0.0
        )
    return summary
