"""Exporters: JSONL dumps, validation, and aggregated text summaries.

Every record is one JSON object per line — metrics, events, spans, and
runner telemetry share the artifact, distinguished by their ``type``
field (``metric`` / ``event`` / ``span`` / ``run_stats`` / ``meta``).
CI validates the artifact with ``python -m repro.obs.export --validate
FILE...``, which exits non-zero on the first malformed line or span
pairing/attribution violation, and ``--chrome-trace OUT.json FILE...``
converts validated artifacts into a Perfetto-loadable trace
(:mod:`repro.obs.chrome`).
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Union


def _jsonable(value: Any) -> Any:
    """Coerce exotic values (tuples, keys, generators) to JSON-safe form."""
    return json.loads(json.dumps(value, default=str))


def write_jsonl(path: Union[str, Path],
                records: Iterable[Dict[str, Any]]) -> int:
    """Write records one-per-line; returns the number written."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        for record in records:
            handle.write(json.dumps(_jsonable(record), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def stream_digest(records: Iterable[Dict[str, Any]]) -> str:
    """A stable sha256 over a stream's events, spans, and pid ledgers.

    This is the arena's determinism pin: same seed ⇒ identical digest
    across runs and across client construction orders (and a tracked
    baseline digest in ``BENCH_arena.json``).  Each covered record is
    canonicalized (sorted keys, no whitespace) and fed to the hash in
    stream order; ``metric`` samples are excluded so the pin covers
    exactly the attributed event stream plus the per-pid syscall
    ledgers, independent of which registry instruments happen to exist.
    """
    digest = hashlib.sha256()
    for record in records:
        if record.get("type") not in ("event", "span", "pid_stats"):
            continue
        canonical = json.dumps(
            _jsonable(record), sort_keys=True, separators=(",", ":")
        )
        digest.update(canonical.encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    return [json.loads(line) for line in Path(path).read_text().splitlines()
            if line.strip()]


def validate_jsonl(path: Union[str, Path]) -> int:
    """Validate a JSONL artifact; returns the record count.

    Two passes.  Line pass: every line parses as a JSON object with a
    ``type`` field.  Stream pass (span pairing and attribution):

    * a span closed without ever opening (``end_ns`` set, ``start_ns``
      or ``span_id`` missing) is an error;
    * ``end_ns`` earlier than ``start_ns`` is an error (simulated time
      never runs backward);
    * duplicate ``span_id`` values are an error;
    * if the stream carries ``kernel.spawn`` events (any attributed
      kernel dump does), a record stamped with a pid the kernel never
      spawned is an error.  Files without spawn events (runner metric
      dumps) skip the pid check.

    Raises ``ValueError`` naming the first offending line.  This is the
    check CI runs against the artifacts the smoke run uploads.
    """
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), start=1):
        if not line.strip():
            raise ValueError(f"{path}:{lineno}: blank line in JSONL output")
        try:
            record = json.loads(line)
        except json.JSONDecodeError as err:
            raise ValueError(f"{path}:{lineno}: invalid JSON: {err}") from err
        if not isinstance(record, dict) or "type" not in record:
            raise ValueError(
                f"{path}:{lineno}: record is not an object with a 'type' field"
            )
        records.append(record)

    # Stream pass: collect the legitimate pid set first (spawn events may
    # legally appear anywhere relative to the records they legitimize).
    spawned = {
        int(r["attrs"]["pid"])
        for r in records
        if r.get("type") == "event" and r.get("name") == "kernel.spawn"
        and "pid" in (r.get("attrs") or {})
    }
    seen_span_ids: Dict[int, int] = {}
    for lineno, record in enumerate(records, start=1):
        kind = record.get("type")
        if kind == "span":
            span_id = record.get("span_id")
            if record.get("end_ns") is not None and (
                span_id is None or record.get("start_ns") is None
            ):
                raise ValueError(
                    f"{path}:{lineno}: span {record.get('name')!r} closed "
                    f"without opening (missing span_id/start_ns)"
                )
            if span_id is not None:
                if span_id in seen_span_ids:
                    raise ValueError(
                        f"{path}:{lineno}: duplicate span_id {span_id} "
                        f"(first seen on line {seen_span_ids[span_id]})"
                    )
                seen_span_ids[span_id] = lineno
            start, end = record.get("start_ns"), record.get("end_ns")
            if start is not None and end is not None and end < start:
                raise ValueError(
                    f"{path}:{lineno}: span {record.get('name')!r} ends "
                    f"before it starts ({end} < {start})"
                )
        if spawned and kind in ("event", "span"):
            pid = record.get("pid")
            if pid is not None and pid != 0 and pid not in spawned:
                raise ValueError(
                    f"{path}:{lineno}: record attributed to pid {pid}, "
                    f"which the kernel never spawned"
                )
    return len(records)


# ----------------------------------------------------------------------
# Record builders
# ----------------------------------------------------------------------
def event_records(stream, include_unclosed: bool = True) -> Iterator[Dict[str, Any]]:
    """Every record in an :class:`~repro.obs.events.EventStream`.

    Spans still open at export time are emitted with ``end_ns: null``
    and ``unclosed: true`` rather than silently dropped — an unclosed
    span in a dump is a bug worth seeing.
    """
    yield from iter(stream)
    if include_unclosed:
        for span in stream.unclosed():
            record = span.as_record()
            record["unclosed"] = True
            yield record


def run_stats_records(stats_list) -> Iterator[Dict[str, Any]]:
    """Runner telemetry (:class:`~repro.experiments.runner.RunStats`)
    as JSONL records: one ``run_stats`` line per experiment, followed by
    that experiment's merged per-trial metric samples tagged with the
    experiment id."""
    for stats in stats_list:
        yield {
            "type": "run_stats",
            "experiment": stats.experiment_id,
            "trials": stats.trials,
            "cached": stats.cached,
            "simulated": stats.simulated,
            "wall_s": stats.wall_s,
            "sim_s": stats.sim_s,
        }
        for sample in getattr(stats, "metric_samples", []):
            tagged = dict(sample)
            tagged["experiment"] = stats.experiment_id
            yield tagged


# ----------------------------------------------------------------------
# Text summary
# ----------------------------------------------------------------------
def _format_ns(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.2f}s"
    if value >= 1e6:
        return f"{value / 1e6:.2f}ms"
    if value >= 1e3:
        return f"{value / 1e3:.1f}us"
    return f"{value:.0f}ns"


def _histogram_quantile(sample: Dict[str, Any], q: float) -> Optional[float]:
    bounds = sample.get("bounds")
    buckets = sample.get("bucket_counts")
    count = sample.get("count", 0)
    if not bounds or not buckets or not count:
        return None
    rank = q * count
    running = 0
    for i, n in enumerate(buckets):
        running += n
        if running >= rank and n:
            if i < len(bounds):
                return float(bounds[i])
            return sample.get("max")
    return sample.get("max")


def summarize_metrics(samples: Iterable[Dict[str, Any]]) -> str:
    """An aligned text table over metric samples, sorted by name.

    Counters/gauges get one value column; histograms show count, mean,
    approximate p50/p95, and max in human time units (histogram values
    here are simulated nanoseconds).
    """
    rows: List[List[str]] = []
    for sample in sorted(samples, key=lambda s: (s["name"], s["kind"])):
        if sample.get("type") != "metric":
            continue
        if sample["kind"] == "histogram":
            count = sample.get("count", 0)
            mean = (sample["sum"] / count) if count else None
            rows.append([
                sample["name"], "histogram", str(count),
                _format_ns(mean),
                _format_ns(_histogram_quantile(sample, 0.5)),
                _format_ns(_histogram_quantile(sample, 0.95)),
                _format_ns(sample.get("max")),
            ])
        else:
            value = sample["value"]
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            rows.append([sample["name"], sample["kind"], shown,
                         "", "", "", ""])
    header = ["name", "kind", "value/count", "mean", "p50", "p95", "max"]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
              else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def summarize_events(records: Iterable[Dict[str, Any]]) -> str:
    """Per-name event/span counts with total span time, as a text table."""
    counts: Dict[tuple, Dict[str, Any]] = {}
    for record in records:
        if record.get("type") not in ("event", "span"):
            continue
        key = (record["type"], record["name"])
        agg = counts.setdefault(key, {"n": 0, "elapsed": 0})
        agg["n"] += 1
        agg["elapsed"] += record.get("elapsed_ns") or 0
    header = ["name", "type", "count", "total-time"]
    rows = [
        [name, kind, str(agg["n"]),
         _format_ns(agg["elapsed"]) if kind == "span" else ""]
        for (kind, name), agg in sorted(counts.items(),
                                        key=lambda kv: kv[0][1])
    ]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
              else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def summarize_pids(records: Iterable[Dict[str, Any]]) -> str:
    """Per-process rollup: events, spans, and span self-time per pid.

    Self-time charges each span with its own duration minus its direct
    children's (via ``parent_id``), so one pid's column sums to time it
    actually spent, not time double-counted through nesting.  Pid 0 is
    the unattributed/kernel bucket; process names come from
    ``kernel.spawn`` events when present.
    """
    records = list(records)
    names: Dict[int, str] = {}
    elapsed_by_id: Dict[int, int] = {}
    child_time: Dict[int, int] = {}
    per_pid: Dict[int, Dict[str, int]] = {}

    def bucket(pid: int) -> Dict[str, int]:
        agg = per_pid.get(pid)
        if agg is None:
            per_pid[pid] = agg = {"events": 0, "spans": 0, "self_ns": 0}
        return agg

    for record in records:
        kind = record.get("type")
        if kind == "event":
            attrs = record.get("attrs") or {}
            if record.get("name") == "kernel.spawn" and "pid" in attrs:
                names[int(attrs["pid"])] = str(attrs.get("comm", ""))
            bucket(record.get("pid", 0))["events"] += 1
        elif kind == "span":
            span_id = record.get("span_id")
            elapsed = record.get("elapsed_ns") or 0
            if span_id is not None:
                elapsed_by_id[span_id] = elapsed
            parent = record.get("parent_id")
            if parent is not None:
                child_time[parent] = child_time.get(parent, 0) + elapsed
            agg = bucket(record.get("pid", 0))
            agg["spans"] += 1
    for record in records:
        if record.get("type") != "span":
            continue
        span_id = record.get("span_id")
        elapsed = record.get("elapsed_ns") or 0
        self_ns = elapsed - child_time.get(span_id, 0) if span_id is not None else elapsed
        bucket(record.get("pid", 0))["self_ns"] += max(self_ns, 0)

    header = ["pid", "comm", "events", "spans", "span-self-time"]
    rows = [
        [
            str(pid),
            "(kernel)" if pid == 0 else names.get(pid, ""),
            str(agg["events"]),
            str(agg["spans"]),
            _format_ns(agg["self_ns"]) if agg["spans"] else "",
        ]
        for pid, agg in sorted(per_pid.items())
    ]
    widths = [max(len(header[i]), *(len(r[i]) for r in rows)) if rows
              else len(header[i]) for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


USAGE = """\
usage: python -m repro.obs.export --validate FILE [FILE ...]
       python -m repro.obs.export --chrome-trace OUT.json FILE.jsonl [FILE ...]
"""


def main(argv: List[str]) -> int:
    args = argv[1:]
    if args and args[0] == "--validate" and len(args) >= 2:
        for target in args[1:]:
            try:
                count = validate_jsonl(target)
            except (OSError, ValueError) as err:
                print(f"FAIL: {err}", file=sys.stderr)
                return 1
            print(f"ok: {target}: {count} record(s)")
        return 0
    if args and args[0] == "--chrome-trace" and len(args) >= 3:
        from repro.obs.chrome import write_chrome_trace

        out = args[1]
        records: List[Dict[str, Any]] = []
        for target in args[2:]:
            try:
                validate_jsonl(target)
                records.extend(read_jsonl(target))
            except (OSError, ValueError) as err:
                print(f"FAIL: {err}", file=sys.stderr)
                return 1
        count = write_chrome_trace(out, records)
        print(f"wrote {out}: {count} trace event(s); "
              f"open at https://ui.perfetto.dev")
        return 0
    print(USAGE, end="", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
