"""Chrome ``trace_event`` export — view simulated time in Perfetto.

Converts the attribution-stamped span/event stream (JSONL records from
:meth:`~repro.obs.Observability.dump_records` or a live
:class:`~repro.obs.events.EventStream`) into the Chrome trace-event
JSON format that https://ui.perfetto.dev and ``chrome://tracing`` load
directly:

* the whole simulated machine is one trace process (``pid`` 1);
* each simulated process is one **track** (trace ``tid`` = simulated
  pid, named from its ``kernel.spawn`` event; ``tid`` 0 is the
  ``(kernel)`` track for unattributed records);
* spans become complete events (``"ph": "X"``) with microsecond
  ``ts``/``dur`` derived from simulated nanoseconds;
* point events (reclaims, faults, spawns) become async instants
  (``"ph": "n"``) so they render as markers over the span tracks.

Timestamps are *simulated* microseconds — the timeline you see in
Perfetto is the machine's time, not the host's.  Usage::

    python -m repro.obs.export --chrome-trace out.json events.jsonl
    # or from ``python -m repro observe <scenario> --chrome-trace out.json``

then drag ``out.json`` into the Perfetto UI.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Union

__all__ = ["chrome_trace_events", "write_chrome_trace"]

#: All simulated activity lives in one trace-process.
TRACE_PID = 1

#: Track id for records no simulated process was dispatched for.
KERNEL_TRACK = 0


def _track_metadata(names: Dict[int, str], tids: Iterable[int]) -> List[Dict[str, Any]]:
    meta: List[Dict[str, Any]] = [
        {
            "ph": "M", "name": "process_name", "pid": TRACE_PID, "tid": 0,
            "args": {"name": "repro simulated machine"},
        }
    ]
    for tid in sorted(set(tids)):
        if tid == KERNEL_TRACK:
            label = "(kernel)"
        else:
            comm = names.get(tid, "")
            label = f"pid {tid} {comm}".rstrip()
        meta.append(
            {
                "ph": "M", "name": "thread_name", "pid": TRACE_PID,
                "tid": tid, "args": {"name": label},
            }
        )
        # Sort tracks by simulated pid, kernel track last.
        meta.append(
            {
                "ph": "M", "name": "thread_sort_index", "pid": TRACE_PID,
                "tid": tid,
                "args": {"sort_index": 1_000_000 if tid == KERNEL_TRACK else tid},
            }
        )
    return meta


def chrome_trace_events(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """The stream as a list of Chrome ``traceEvents`` dicts.

    Non-event records (metrics, ``pid_stats``, ``run_stats``, ``meta``)
    are skipped; unclosed spans (``end_ns`` null) are skipped too — the
    validator, not the exporter, is where those should fail loudly.
    """
    out: List[Dict[str, Any]] = []
    names: Dict[int, str] = {}
    tids_seen: Dict[int, bool] = {}
    for record in records:
        kind = record.get("type")
        tid = int(record.get("pid", KERNEL_TRACK))
        if kind == "span":
            start = record.get("start_ns")
            end = record.get("end_ns")
            if start is None or end is None:
                continue
            tids_seen[tid] = True
            entry: Dict[str, Any] = {
                "name": str(record.get("name", "?")),
                "ph": "X",
                "cat": "span",
                "pid": TRACE_PID,
                "tid": tid,
                "ts": start / 1000.0,
                "dur": (end - start) / 1000.0,
            }
            args = dict(record.get("attrs") or {})
            if record.get("span_id") is not None:
                args["span_id"] = record["span_id"]
            if record.get("parent_id") is not None:
                args["parent_id"] = record["parent_id"]
            if args:
                entry["args"] = args
            out.append(entry)
        elif kind == "event":
            name = str(record.get("name", "?"))
            attrs = record.get("attrs") or {}
            if name == "kernel.spawn" and "pid" in attrs:
                names[int(attrs["pid"])] = str(attrs.get("comm", ""))
            tids_seen[tid] = True
            entry = {
                "name": name,
                # Async nestable instant: renders as a marker row over
                # the track rather than a zero-width slice inside it.
                "ph": "n",
                "cat": "event",
                "id": tid,
                "pid": TRACE_PID,
                "tid": tid,
                "ts": (record.get("t_ns") or 0) / 1000.0,
            }
            if attrs:
                entry["args"] = dict(attrs)
            out.append(entry)
    return _track_metadata(names, tids_seen) + out


def write_chrome_trace(
    path: Union[str, Path],
    records: Iterable[Dict[str, Any]],
) -> int:
    """Write a Perfetto-loadable trace file; returns the event count.

    The count excludes the ``"ph": "M"`` metadata entries, so tests can
    assert it against the stream's span+event total.
    """
    events = chrome_trace_events(records)
    payload = {"traceEvents": events, "displayTimeUnit": "ns"}
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, default=str))
    return sum(1 for e in events if e["ph"] != "M")
