"""``repro.obs.profile`` — the host-time hot-path section profiler.

Everything else in ``repro.obs`` is stamped with *simulated* time; this
module is the one deliberate exception.  It answers the question the
perf roadmap item needs answered — *where does the host CPU actually go
when the simulator runs?* — by accumulating ``perf_counter_ns``
intervals into named, get-or-create sections:

* ``sched.next_ready`` — the scheduler pop in ``Kernel.run``;
* ``proc.advance`` — generator resumption (the ICL/user host code that
  runs between syscalls);
* ``syscall.<name>`` — each syscall handler, measured around the
  dispatch-table call (errors are not sampled);
* subsystem sections inside the batch fast paths
  (``pread_batch.fallback``, ``stat_batch.walk``, ``touch_batch.fault``)
  that split vectored-call time into its fast-loop and fallback parts;
* ``icl.*`` sections around the ICLs' host-side analysis loops.

The profiler itself is *flat* — no stack, no self-time bookkeeping —
because simulated processes interleave and spans of host work close out
of LIFO order.  Top-level sections (``sched.next_ready``,
``proc.advance``, ``syscall.*``, ``icl.*``) bracket disjoint stretches
of host time; the dotted batch subsections (``pread_batch.*`` etc.)
deliberately nest *inside* their ``syscall.<name>`` section, so read
them as a drill-down of that section, not as additional wall time.

The profiler is **off by default** and global (:data:`PROFILER`), so
hot paths hook it with one attribute load and one branch::

    if PROFILER.enabled:
        _t0 = perf_counter_ns()
        ... work ...
        PROFILER.add("section.name", perf_counter_ns() - _t0)
    else:
        ... work ...

The disabled path costs a single predictable branch per hook — measured
by ``benchmarks/bench_obs_overhead.py`` to be indistinguishable from
noise — which is what lets the hooks stay compiled-in everywhere.
Enable with :meth:`Profiler.enable` (or ``bench_core_speed.py
--profile``), read results with :meth:`Profiler.rows` /
:meth:`Profiler.report`.  Do not toggle ``enabled`` while a kernel is
mid-run: loops hoist the flag and would mix sampled and unsampled
iterations.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, List, Optional

__all__ = ["Section", "Profiler", "PROFILER"]


class Section:
    """One named accumulator: call count and total host nanoseconds.

    Hot loops may hold the section and bump the two counters directly
    (``sec.calls += 1; sec.total_ns += dt``) instead of paying the
    registry lookup in :meth:`Profiler.add` per sample.
    """

    __slots__ = ("name", "calls", "total_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.total_ns = 0

    def add(self, elapsed_ns: int) -> None:
        self.calls += 1
        self.total_ns += elapsed_ns

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    def __repr__(self) -> str:
        return f"Section({self.name!r}, calls={self.calls}, total_ns={self.total_ns})"


class Profiler:
    """Get-or-create section registry with a negligible disabled path."""

    __slots__ = ("enabled", "_sections")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._sections: Dict[str, Section] = {}

    # -- control -------------------------------------------------------
    def enable(self) -> "Profiler":
        self.enabled = True
        return self

    def disable(self) -> "Profiler":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every accumulated sample (sections stay registered)."""
        for section in self._sections.values():
            section.calls = 0
            section.total_ns = 0

    def clear(self) -> None:
        """Forget all sections entirely."""
        self._sections.clear()

    # -- recording -----------------------------------------------------
    def section(self, name: str) -> Section:
        """The named section, created on first use."""
        section = self._sections.get(name)
        if section is None:
            self._sections[name] = section = Section(name)
        return section

    def add(self, name: str, elapsed_ns: int) -> None:
        """Record one sample (call when :attr:`enabled` — see module doc)."""
        section = self._sections.get(name)
        if section is None:
            self._sections[name] = section = Section(name)
        section.calls += 1
        section.total_ns += elapsed_ns

    def time(self) -> int:
        """The profiler's clock (host ``perf_counter_ns``)."""
        return perf_counter_ns()

    # -- reporting -----------------------------------------------------
    def rows(self, top: Optional[int] = None) -> List[Dict[str, object]]:
        """Sections as plain dicts, largest total first (JSON-ready)."""
        ordered = sorted(
            (s for s in self._sections.values() if s.calls),
            key=lambda s: s.total_ns,
            reverse=True,
        )
        if top is not None:
            ordered = ordered[:top]
        total = sum(s.total_ns for s in self._sections.values()) or 1
        return [
            {
                "section": s.name,
                "calls": s.calls,
                "total_ms": round(s.total_ns / 1e6, 3),
                "ns_per_call": round(s.mean_ns, 1),
                "share": round(s.total_ns / total, 4),
            }
            for s in ordered
        ]

    def report(self, top: Optional[int] = None) -> str:
        """Aligned text table of the hottest sections."""
        rows = self.rows(top)
        header = ["section", "calls", "total-ms", "ns/call", "share"]
        cells = [
            [
                str(r["section"]),
                str(r["calls"]),
                f"{r['total_ms']:.3f}",
                f"{r['ns_per_call']:.0f}",
                f"{float(str(r['share'])) * 100:.1f}%",
            ]
            for r in rows
        ]
        widths = [
            max(len(header[i]), *(len(c[i]) for c in cells)) if cells
            else len(header[i])
            for i in range(len(header))
        ]
        lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths)).rstrip()]
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        return "\n".join(lines)


#: The process-wide profiler every hook points at.  Off by default; the
#: hooks' disabled path is one attribute load and one branch.
PROFILER = Profiler()
