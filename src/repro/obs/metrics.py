"""Metric primitives: counters, gauges, histograms, and their registry.

Everything here is deliberately boring and allocation-light: metrics sit
on the simulator's hottest paths (one counter bump plus one histogram
observation per executed syscall), so instruments are plain attribute
mutations, bucket search is one :func:`bisect.bisect_right`, and the
registry hands back the *same* instrument object for a repeated name so
callers can cache references and skip the dict lookup entirely.

Export format: each instrument collapses to a plain-dict *sample*
(``{"type": "metric", "kind": ..., "name": ..., ...}``) that survives a
JSON round-trip and a trip across a process pool.  Samples from many
sources — trials in worker processes, several kernels in one run —
combine with :func:`merge_samples`: counters add, gauges keep the last
value, histograms merge bucket-wise.

:class:`SnapshotStats` is the shared stats-object idiom: any dataclass
of integer counters gains ``snapshot()`` / ``delta()`` / ``as_dict()``
by inheriting it, and the registry can surface it wholesale via
:meth:`MetricsRegistry.register_stats` — so per-phase deltas are one
call, for :class:`~repro.sim.disk.DiskStats` and
:class:`~repro.sim.vm.pagedaemon.PageDaemonStats` alike.
"""

from __future__ import annotations

import dataclasses
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

# Geometric bucket upper bounds for latency histograms, in simulated
# nanoseconds: 256 ns .. ~17 s, a factor of 4 per bucket.  One decade of
# disk latency spans ~1.5 buckets — coarse enough to stay cheap, fine
# enough to separate cache hits, transfers, seeks, and queueing.
DEFAULT_LATENCY_BOUNDS_NS: Tuple[int, ...] = tuple(4 ** k for k in range(4, 18))


class Counter:
    """A monotonically-increasing count.  Bump with ``inc()`` or ``+= ``."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def sample(self) -> Dict[str, Any]:
        return {"type": "metric", "kind": "counter", "name": self.name,
                "value": self.value}


class Gauge:
    """A point-in-time value (pool occupancy, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def set(self, value: float) -> None:
        self.value = value

    def sample(self) -> Dict[str, Any]:
        return {"type": "metric", "kind": "gauge", "name": self.name,
                "value": self.value}


class Histogram:
    """Fixed-bound histogram tracking count/sum/min/max plus buckets.

    ``bounds`` are inclusive upper edges; values beyond the last bound
    land in an implicit overflow bucket, so ``len(bucket_counts) ==
    len(bounds) + 1`` and no observation is ever dropped.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str,
                 bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.bounds: Tuple[int, ...] = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # bisect_left keeps the documented inclusive upper edges: a value
        # equal to bounds[i] lands in bucket i, not i+1.
        self.bucket_counts[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, n in enumerate(self.bucket_counts):
            running += n
            if running >= rank and n:
                if i < len(self.bounds):
                    return float(self.bounds[i])
                return float(self.max if self.max is not None else 0.0)
        return float(self.max if self.max is not None else 0.0)

    def sample(self) -> Dict[str, Any]:
        return {
            "type": "metric", "kind": "histogram", "name": self.name,
            "count": self.count, "sum": self.sum,
            "min": self.min, "max": self.max,
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
        }


class SnapshotStats:
    """Mixin giving a counter dataclass the snapshot/delta/as_dict idiom.

    Subclasses must be dataclasses whose fields are all numeric.
    ``snapshot()`` freezes the current values, ``delta(earlier)``
    returns a new instance holding the per-field difference (activity
    since a phase began), and ``as_dict()`` is the flat export form the
    metrics registry consumes.
    """

    def snapshot(self):
        return dataclasses.replace(self)

    def delta(self, earlier):
        cls = type(self)
        return cls(**{
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in dataclasses.fields(self)
        })

    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)}


class MetricsRegistry:
    """Owns every instrument plus pull-style stats sources.

    Two registration styles:

    * ``counter()`` / ``gauge()`` / ``histogram()`` create (or return
      the existing) push-style instruments, written on the hot path;
    * ``register_stats(prefix, obj)`` adopts an existing
      :class:`SnapshotStats`-style object (``DiskStats``,
      ``PageDaemonStats``, ...) whose fields are read only at
      :meth:`collect` time — zero hot-path cost.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._stats_sources: List[Tuple[str, Any]] = []
        self._collectors: List[Callable[[], List[Dict[str, Any]]]] = []

    # -- instrument accessors (get-or-create) ---------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[int] = DEFAULT_LATENCY_BOUNDS_NS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        return instrument

    # -- pull-style sources ---------------------------------------------
    def register_stats(self, prefix: str, stats: Any) -> None:
        """Adopt a stats object exposing ``as_dict()``; sampled lazily.

        Fields surface as counters named ``{prefix}.{field}`` so merging
        samples across trials sums them, matching their cumulative
        semantics.
        """
        self._stats_sources.append((prefix, stats))

    def register_collector(
        self, collector: Callable[[], List[Dict[str, Any]]]
    ) -> None:
        """Register a callable returning extra samples at collect time."""
        self._collectors.append(collector)

    # -- export ----------------------------------------------------------
    def collect(self) -> List[Dict[str, Any]]:
        """Every instrument and stats source as plain-dict samples."""
        samples: List[Dict[str, Any]] = []
        for counter in self._counters.values():
            samples.append(counter.sample())
        for gauge in self._gauges.values():
            samples.append(gauge.sample())
        for histogram in self._histograms.values():
            samples.append(histogram.sample())
        for prefix, stats in self._stats_sources:
            for name, value in stats.as_dict().items():
                samples.append({"type": "metric", "kind": "counter",
                                "name": f"{prefix}.{name}", "value": value})
        for collector in self._collectors:
            samples.extend(collector())
        return samples


def _merge_two(into: Dict[str, Any], sample: Dict[str, Any]) -> None:
    kind = sample["kind"]
    if kind == "counter":
        into["value"] += sample["value"]
    elif kind == "gauge":
        into["value"] = sample["value"]
    elif kind == "histogram":
        if into.get("bounds") == sample.get("bounds"):
            into["bucket_counts"] = [
                a + b for a, b in zip(into["bucket_counts"],
                                      sample["bucket_counts"])
            ]
        else:
            # Incompatible bucketing: degrade to scalar aggregates.
            into["bounds"] = None
            into["bucket_counts"] = None
        into["count"] += sample["count"]
        into["sum"] += sample["sum"]
        for extremum, pick in (("min", min), ("max", max)):
            values = [v for v in (into.get(extremum), sample.get(extremum))
                      if v is not None]
            into[extremum] = pick(values) if values else None


def merge_samples(*sample_lists: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Combine samples from many sources into one deduplicated list.

    Counters with the same name add, gauges keep the last-seen value,
    histograms merge bucket-wise (or degrade to count/sum/min/max when
    bounds differ).  Output order is first-appearance order, so merging
    is deterministic given deterministic inputs.
    """
    merged: Dict[Tuple[str, str], Dict[str, Any]] = {}
    for samples in sample_lists:
        for sample in samples:
            key = (sample["kind"], sample["name"])
            existing = merged.get(key)
            if existing is None:
                merged[key] = dict(sample)
            else:
                _merge_two(existing, sample)
    return list(merged.values())
