"""Structured events and nestable spans on the simulated clock.

An :class:`EventStream` is a bounded ring (like
:class:`~repro.sim.trace.SyscallTrace`) of plain-dict records, each
stamped with *simulated* time so ICL-side activity and kernel-side
activity land on one timeline:

* **point events** — ``stream.emit("kernel.reclaim", pages=32)`` record
  a single instant;
* **spans** — ``with stream.span("fccd.probe_batch", offset=0): ...``
  record an interval with ``start_ns``/``end_ns``, so a kernel event
  can be *joined* against the ICL phase it happened inside.

Spans nest: a span started while another is open records that span's id
as its ``parent_id``.  Because several simulated processes can
interleave on one kernel, spans may also *close* out of strict LIFO
order — ending a span removes it from the open set wherever it sits.
Misuse mirrors :class:`~repro.toolbox.timers.Stopwatch`: ``end()``
before ``start()`` raises ``RuntimeError``, as does ending twice.
Spans left open are surfaced by :meth:`EventStream.unclosed` and, in
strict mode, :meth:`EventStream.check_closed` raises.

**Attribution.**  The stream carries a :attr:`EventStream.current_pid`
slot, set by the kernel to the pid of the currently-dispatched process
(see ``Kernel._step``).  Every record emitted and every span *started*
while a pid is current is stamped with it (``"pid"``) — host-side
metadata only, invisible to simulated time — which is what lets N
clients sharing one kernel each read back a filtered stream
(:class:`repro.obs.views.ObsView`).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

DEFAULT_EVENT_CAPACITY = 100_000


class Span:
    """One timed interval; usable as a context manager or explicitly.

    ``attrs`` may be amended any time before ``end()`` (e.g. recording
    an outcome discovered mid-span); the final dict is what lands in
    the stream's record.
    """

    __slots__ = ("stream", "name", "attrs", "span_id", "parent_id",
                 "start_ns", "end_ns", "pid")

    def __init__(self, stream: "EventStream", name: str,
                 attrs: Dict[str, Any]) -> None:
        self.stream = stream
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None
        self.pid: Optional[int] = None

    def start(self) -> "Span":
        if self.span_id is not None:
            raise RuntimeError(f"span {self.name!r} started twice")
        self.span_id = self.stream._open_span(self)
        self.start_ns = self.stream.now()
        self.pid = self.stream.current_pid
        return self

    def end(self) -> int:
        """Close the span; returns its simulated duration in ns."""
        if self.span_id is None:
            raise RuntimeError("Span.end() before start()")
        if self.end_ns is not None:
            raise RuntimeError(f"span {self.name!r} ended twice")
        self.end_ns = self.stream.now()
        self.stream._close_span(self)
        return self.end_ns - self.start_ns

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.end()

    def as_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span", "name": self.name, "span_id": self.span_id,
            "parent_id": self.parent_id, "start_ns": self.start_ns,
            "end_ns": self.end_ns,
        }
        if self.start_ns is not None and self.end_ns is not None:
            record["elapsed_ns"] = self.end_ns - self.start_ns
        if self.pid is not None:
            record["pid"] = self.pid
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        return record


class _NullSpan:
    """Shared no-op span handed out by a disabled observability layer."""

    __slots__ = ("attrs",)

    def __init__(self) -> None:
        self.attrs: Dict[str, Any] = {}

    def start(self) -> "_NullSpan":
        return self

    def end(self) -> int:
        return 0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN = _NullSpan()


class EventStream:
    """Bounded ring of event/span records stamped by ``now``."""

    def __init__(self, now: Callable[[], int],
                 capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("event capacity must be positive")
        self.now = now
        self.records: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._open: List[Span] = []
        self._next_span_id = 1
        #: Pid of the currently-dispatched simulated process (set by the
        #: kernel's step loop, ``None`` between dispatches / host-side).
        #: Stamped onto every emitted record and every started span.
        self.current_pid: Optional[int] = None

    # -- recording -------------------------------------------------------
    def emit(self, name: str, **attrs: Any) -> Dict[str, Any]:
        record: Dict[str, Any] = {"type": "event", "name": name,
                                  "t_ns": self.now()}
        if self.current_pid is not None:
            record["pid"] = self.current_pid
        if attrs:
            record["attrs"] = attrs
        self.records.append(record)
        return record

    def span(self, name: str, **attrs: Any) -> Span:
        """A new (not yet started) span; use ``with`` or call start()."""
        return Span(self, name, attrs)

    def _open_span(self, span: Span) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        if self._open:
            span.parent_id = self._open[-1].span_id
        self._open.append(span)
        return span_id

    def _close_span(self, span: Span) -> None:
        # Processes interleave, so the closing span need not be the
        # innermost open one; remove it wherever it sits.
        self._open.remove(span)
        self.records.append(span.as_record())

    # -- inspection ------------------------------------------------------
    def unclosed(self) -> List[Span]:
        """Spans started but never ended, outermost first."""
        return list(self._open)

    def check_closed(self) -> None:
        """Raise if any span is still open (strict teardown check)."""
        if self._open:
            names = ", ".join(s.name for s in self._open)
            raise RuntimeError(f"unclosed span(s): {names}")

    def by_name(self, name: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("name") == name]

    def spans(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["type"] == "span"]

    def events(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r["type"] == "event"]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()
