"""``repro.obs`` — the unified observability layer.

One :class:`Observability` instance belongs to each simulated kernel
(``kernel.obs``): a metrics registry plus a structured event stream,
both stamped with the kernel's *simulated* clock.  It is always-on and
cheap — hot-path instruments are plain attribute bumps, and everything
pull-style (disk stats, page-daemon stats, scheduler stats) costs
nothing until :meth:`Observability.collect` reads it.

ICLs accept an ``obs=`` keyword (default: the shared :data:`DISABLED`
no-op instance); pass ``kernel.obs`` to put inference-phase spans such
as ``fccd.probe_batch`` and ``mac.alloc_round`` on the same simulated
timeline as kernel events such as ``kernel.reclaim`` — the join the
paper's whole methodology rests on.

:func:`capture_metrics` is the runner-side bridge: inside its context,
every enabled ``Observability`` constructed (i.e. each trial kernel)
registers itself, and the capture's merged samples travel back across
the process pool as plain dicts.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.events import (
    DEFAULT_EVENT_CAPACITY,
    EventStream,
    NULL_SPAN,
    Span,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BOUNDS_NS,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotStats,
    merge_samples,
)

__all__ = [
    "Observability", "DISABLED", "capture_metrics", "MetricsCapture",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "SnapshotStats",
    "EventStream", "Span", "merge_samples",
    "DEFAULT_LATENCY_BOUNDS_NS", "DEFAULT_EVENT_CAPACITY",
]


class Observability:
    """Metrics + events for one simulated machine.

    ``clock`` is anything with a ``now`` property (the kernel's
    :class:`~repro.sim.clock.Clock`); with no clock, records are stamped
    at time 0.  A disabled instance skips all recording with one branch
    per call and never registers with an active capture.
    """

    def __init__(self, clock: Any = None, *, enabled: bool = True,
                 event_capacity: int = DEFAULT_EVENT_CAPACITY) -> None:
        self._clock = clock
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.events = EventStream(self.now, capacity=event_capacity)
        # Per-syscall (counter, histogram) pairs, cached by name so the
        # kernel's dispatch loop pays one dict lookup, not an f-string
        # plus two registry lookups, per call.
        self._syscall_instruments: Dict[str, tuple] = {}
        #: Pid of the currently-dispatched process (attribution source
        #: for events, spans, and the per-pid syscall ledger); ``None``
        #: host-side.  Written by :meth:`set_pid` from the kernel's
        #: step loop.
        self.current_pid: Optional[int] = None
        #: Per-pid syscall ledger: ``{pid: {syscall_name: count}}``.
        #: Kept out of the metrics registry so cross-trial merges never
        #: collide across pids; exported as one ``pid_stats`` record per
        #: pid by :meth:`dump_records`.
        self.syscalls_by_pid: Dict[int, Dict[str, int]] = {}
        # (pid, its ledger dict) memo: consecutive syscalls from the
        # same process — the common schedule — skip the outer lookup.
        self._ledger_pid: Optional[int] = None
        self._ledger: Dict[str, int] = {}
        if enabled and _ACTIVE_CAPTURE is not None:
            _ACTIVE_CAPTURE.attach(self)

    def now(self) -> int:
        return self._clock.now if self._clock is not None else 0

    def set_pid(self, pid: Optional[int]) -> None:
        """Attribute subsequent records to ``pid`` (``None`` detaches).

        Called by the kernel once per dispatched process; two attribute
        writes, so it is safe on the hottest loop.
        """
        self.current_pid = pid
        self.events.current_pid = pid

    # -- metrics ---------------------------------------------------------
    def count(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.metrics.counter(name).value += amount

    def gauge_set(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.gauge(name).value = value

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def record_syscall(self, name: str, elapsed_ns: int) -> None:
        """Hot path: one count, one latency observation, one ledger bump.

        The per-pid ledger attributes the call to :attr:`current_pid`
        (three dict operations — cheap next to the histogram's bucket
        search).  Ledger invariant, checked by the kernel fuzzer: the
        per-pid counts sum to the aggregate ``.calls`` counters.
        """
        if not self.enabled:
            return
        pair = self._syscall_instruments.get(name)
        if pair is None:
            pair = (
                self.metrics.counter(f"kernel.syscall.{name}.calls"),
                self.metrics.histogram(f"kernel.syscall.{name}.latency_ns"),
            )
            self._syscall_instruments[name] = pair
        pair[0].value += 1
        pair[1].observe(elapsed_ns)
        pid = self.current_pid
        if pid is not None:
            if pid == self._ledger_pid:
                by_pid = self._ledger
            else:
                by_pid = self.syscalls_by_pid.get(pid)
                if by_pid is None:
                    self.syscalls_by_pid[pid] = by_pid = {}
                self._ledger_pid = pid
                self._ledger = by_pid
            by_pid[name] = by_pid.get(name, 0) + 1

    def record_syscall_error(self, name: str) -> None:
        if self.enabled:
            self.metrics.counter(f"kernel.syscall.{name}.errors").value += 1

    # -- events ----------------------------------------------------------
    def event(self, name: str, **attrs: Any) -> None:
        if self.enabled:
            self.events.emit(name, **attrs)

    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            return NULL_SPAN
        return self.events.span(name, **attrs)

    def span_batch(self, name: str, probes: int, **attrs: Any):
        """One span standing in for ``probes`` individual probes.

        The batched ICL paths emit one span per vectored syscall instead
        of per probe; the ``probes`` attribute keeps the probe count the
        observe driver reports, so trace volume scales with batches
        while the analysis still sees how many probes each batch held.
        """
        if not self.enabled:
            return NULL_SPAN
        return self.events.span(name, probes=probes, **attrs)

    # -- export ----------------------------------------------------------
    def collect(self) -> List[Dict[str, Any]]:
        """Every metric as plain-dict samples (events stay in the ring)."""
        if not self.enabled:
            return []
        return self.metrics.collect()

    def dump_records(self) -> Iterator[Dict[str, Any]]:
        """Metrics, per-pid ledgers, then events/spans (``write_jsonl``-ready)."""
        from repro.obs.export import event_records

        yield from self.collect()
        for pid in sorted(self.syscalls_by_pid):
            yield {
                "type": "pid_stats",
                "pid": pid,
                "syscalls": dict(self.syscalls_by_pid[pid]),
            }
        yield from event_records(self.events)


#: Shared no-op instance — the default ``obs`` for ICLs so the
#: instrumentation costs one branch when nobody is watching.  Never
#: flip its ``enabled`` flag; create a real instance instead.
DISABLED = Observability(enabled=False)


# ----------------------------------------------------------------------
# Per-trial capture (the runner-side bridge)
# ----------------------------------------------------------------------
class MetricsCapture:
    """Collects samples from every Observability born inside a capture."""

    def __init__(self) -> None:
        self._sources: List[Observability] = []

    def attach(self, obs: Observability) -> None:
        self._sources.append(obs)

    def samples(self) -> List[Dict[str, Any]]:
        """Merged samples across all attached sources (picklable)."""
        return merge_samples(*(obs.collect() for obs in self._sources))


_ACTIVE_CAPTURE: Optional[MetricsCapture] = None


@contextmanager
def capture_metrics() -> Iterator[MetricsCapture]:
    """Capture the metrics of every kernel built inside the context.

    Used by :func:`repro.experiments.runner._invoke` so each trial's
    simulator metrics ride back to the parent process alongside the
    trial's value.  Nesting restores the previous capture on exit.
    """
    global _ACTIVE_CAPTURE
    saved = _ACTIVE_CAPTURE
    capture = MetricsCapture()
    _ACTIVE_CAPTURE = capture
    try:
        yield capture
    finally:
        _ACTIVE_CAPTURE = saved
