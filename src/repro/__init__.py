"""Gray-box Information and Control Layers — a reproduction of
Arpaci-Dusseau & Arpaci-Dusseau, *Information and Control in Gray-Box
Systems* (SOSP 2001), over a simulated operating-system substrate.

Quickstart::

    from repro import Kernel, linux22
    from repro.sim import syscalls as sc
    from repro.icl import FCCD

    kernel = Kernel(platform=linux22)
    ...

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.sim import (
    Kernel,
    MachineConfig,
    Oracle,
    PLATFORMS,
    PlatformSpec,
    linux22,
    netbsd15,
    solaris7,
)

__version__ = "1.0.0"

__all__ = [
    "Kernel",
    "MachineConfig",
    "Oracle",
    "PLATFORMS",
    "PlatformSpec",
    "linux22",
    "netbsd15",
    "solaris7",
    "__version__",
]
