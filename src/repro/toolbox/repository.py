"""The shared parameter repository ("Microbenchmarks for Configuration", §5).

Microbenchmark results are "report[ed] ... in a common format kept in
persistent storage; each microbenchmark then only needs to be run once".
Each entry remembers its value, units, and provenance so an ICL can
decide whether a stale measurement should be re-run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

# Distinguishes "no default supplied" from an explicit default of None,
# 0.0, or any other falsy value.
_MISSING = object()


@dataclass
class Parameter:
    """One measured system parameter."""

    key: str
    value: float
    units: str = ""
    source: str = ""
    measured_at_ns: int = 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "value": self.value,
            "units": self.units,
            "source": self.source,
            "measured_at_ns": self.measured_at_ns,
        }

    @classmethod
    def from_json(cls, key: str, blob: Dict[str, Any]) -> "Parameter":
        return cls(
            key=key,
            value=float(blob["value"]),
            units=str(blob.get("units", "")),
            source=str(blob.get("source", "")),
            measured_at_ns=int(blob.get("measured_at_ns", 0)),
        )


class ParameterRepository:
    """A keyed store of benchmark-derived parameters, shared across ICLs.

    Keys are dotted names, e.g. ``disk.random_access_ns`` or
    ``fccd.access_unit_bytes``.  The repository can round-trip through a
    JSON file (the "common format kept in persistent storage").
    """

    def __init__(self, platform: str = "unknown") -> None:
        self.platform = platform
        self._params: Dict[str, Parameter] = {}

    # --- access --------------------------------------------------------
    def has(self, key: str) -> bool:
        return key in self._params

    def get(self, key: str, default: Any = _MISSING) -> Optional[float]:
        param = self._params.get(key)
        if param is None:
            if default is _MISSING:
                raise KeyError(
                    f"parameter {key!r} has not been measured; "
                    f"run the relevant microbenchmark first"
                )
            return default
        return param.value

    def entry(self, key: str) -> Parameter:
        return self._params[key]

    def set(
        self,
        key: str,
        value: float,
        units: str = "",
        source: str = "",
        measured_at_ns: int = 0,
    ) -> Parameter:
        param = Parameter(key, float(value), units, source, measured_at_ns)
        self._params[key] = param
        return param

    def ensure(self, key: str, measure: Callable[[], float], **meta: Any) -> float:
        """Return the stored value, measuring and recording it if absent."""
        param = self._params.get(key)
        if param is None:
            param = self.set(key, measure(), **meta)
        return param.value

    def items(self) -> Iterator[Tuple[str, Parameter]]:
        return iter(sorted(self._params.items()))

    def __len__(self) -> int:
        return len(self._params)

    # --- persistence -----------------------------------------------------
    def save(self, path: Path) -> None:
        blob = {
            "platform": self.platform,
            "parameters": {key: p.to_json() for key, p in self._params.items()},
        }
        Path(path).write_text(json.dumps(blob, indent=2, sort_keys=True))

    @classmethod
    def load(cls, path: Path) -> "ParameterRepository":
        blob = json.loads(Path(path).read_text())
        repo = cls(platform=blob.get("platform", "unknown"))
        for key, entry in blob.get("parameters", {}).items():
            repo._params[key] = Parameter.from_json(key, entry)
        return repo
