"""Statistical routines ("Interpreting Measurements", §5).

The paper calls for mean/deviation/median/extrema, correlation, and —
because observations stream in over time — *incremental* operation with
low space overhead.  Table 1 additionally names the techniques prior
gray-box systems used: mean and variance (TCP), linear regression,
exponential averaging, and the paired-sample sign test (MS Manners);
all are provided here.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple


class OnlineStats:
    """Welford's incremental mean/variance plus running extrema.

    O(1) space: suitable for the continuous monitoring the toolbox
    requires.  Medians need sample storage; use :class:`SampleStats`.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def extend(self, values: Iterable[float]) -> "OnlineStats":
        for value in values:
            self.add(value)
        return self

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1 denominator); 0 for fewer than 2 points."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two accumulators (Chan et al. parallel form)."""
        merged = OnlineStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        extrema = [
            v
            for v in (self.minimum, self.maximum, other.minimum, other.maximum)
            if v is not None
        ]
        if extrema:
            merged.minimum = min(extrema)
            merged.maximum = max(extrema)
        return merged


class SampleStats:
    """Statistics over a retained sample (adds median and percentiles)."""

    def __init__(self, values: Optional[Iterable[float]] = None) -> None:
        self.values: List[float] = list(values) if values is not None else []

    def add(self, value: float) -> None:
        self.values.append(value)

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        if not self.values:
            raise ValueError("no samples")
        return sum(self.values) / len(self.values)

    @property
    def stdev(self) -> float:
        n = len(self.values)
        if n < 2:
            return 0.0
        mean = self.mean
        return math.sqrt(sum((v - mean) ** 2 for v in self.values) / (n - 1))

    @property
    def minimum(self) -> float:
        return min(self.values)

    @property
    def maximum(self) -> float:
        return max(self.values)

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    def percentile(self, pct: float) -> float:
        """Linear-interpolated percentile, ``pct`` in [0, 100]."""
        if not self.values:
            raise ValueError("no samples")
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile {pct} out of range")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = pct / 100.0 * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if low + 1 >= len(ordered):
            return ordered[-1]
        value = ordered[low] * (1 - frac) + ordered[low + 1] * frac
        # Clamp: interpolating between near-equal floats can overshoot
        # by an ulp, and callers rely on min <= percentile <= max.
        return min(max(value, ordered[low]), ordered[low + 1])


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson r; returns 0.0 when either side is constant.

    Figure 1 of the paper plots exactly this: correlation between "the
    probed page is present" and "the fraction of the prediction unit
    present".
    """
    if len(xs) != len(ys):
        raise ValueError("correlation needs equal-length sequences")
    n = len(xs)
    if n < 2:
        return 0.0
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def linear_regression(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares fit; returns (slope, intercept)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("regression needs two or more paired samples")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0.0:
        raise ValueError("regression needs varying x values")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x


def exponential_average(
    values: Iterable[float], alpha: float, initial: Optional[float] = None
) -> float:
    """Exponentially weighted average with smoothing factor ``alpha``."""
    if not 0.0 < alpha <= 1.0:
        raise ValueError("alpha must be in (0, 1]")
    average = initial
    for value in values:
        average = value if average is None else alpha * value + (1 - alpha) * average
    if average is None:
        raise ValueError("no values")
    return average


def sign_test(pairs: Iterable[Tuple[float, float]]) -> Tuple[int, int, float]:
    """Paired-sample sign test (MS Manners' contention detector).

    Returns ``(positives, negatives, p_value)`` where the p-value is the
    two-sided binomial probability of a split at least this lopsided
    under the null hypothesis that neither side of a pair tends larger.
    Ties are discarded, as is standard.
    """
    positives = 0
    negatives = 0
    for first, second in pairs:
        if first > second:
            positives += 1
        elif second > first:
            negatives += 1
    n = positives + negatives
    if n == 0:
        return 0, 0, 1.0
    k = min(positives, negatives)
    # Two-sided: P(X <= k) + P(X >= n - k) for X ~ Binomial(n, 1/2).
    tail = sum(math.comb(n, i) for i in range(k + 1)) / 2.0**n
    p_value = min(1.0, 2.0 * tail)
    return positives, negatives, p_value
