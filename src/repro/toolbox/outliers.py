"""Outlier rejection ("discarding outliers", §5).

Timed observations pick up scheduling noise — a probe that happened to
queue behind another process's disk I/O looks slow for reasons unrelated
to cache state.  Two standard filters are provided; MAD is preferred for
latency data because the latency distribution is heavy-tailed and the
median is robust to exactly the contamination being removed.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def sigma_clip(values: Sequence[float], nsigma: float = 3.0) -> List[float]:
    """Keep values within ``nsigma`` standard deviations of the mean."""
    if nsigma <= 0:
        raise ValueError("nsigma must be positive")
    n = len(values)
    if n < 3:
        return list(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    if var == 0.0:
        return list(values)
    bound = nsigma * var**0.5
    return [v for v in values if abs(v - mean) <= bound]


def mad_clip(values: Sequence[float], nmads: float = 5.0) -> List[float]:
    """Keep values within ``nmads`` median-absolute-deviations of the median."""
    if nmads <= 0:
        raise ValueError("nmads must be positive")
    n = len(values)
    if n < 3:
        return list(values)
    med = _median(values)
    deviations = [abs(v - med) for v in values]
    mad = _median(deviations)
    if mad == 0.0:
        # More than half the values are identical; keep those plus any
        # exact matches and drop nothing else blindly.
        return list(values)
    return [v for v in values if abs(v - med) <= nmads * mad]


def split_by_threshold(
    values: Sequence[float], threshold: float
) -> Tuple[List[int], List[int]]:
    """Partition indices into (at-or-below, above) a threshold.

    The simple fixed-threshold differentiator the paper *rejects* for
    FCCD (§4.1.2) in favour of sorting — kept for the ablation benchmark
    that quantifies why.
    """
    low = [i for i, v in enumerate(values) if v <= threshold]
    high = [i for i, v in enumerate(values) if v > threshold]
    return low, high


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0
