"""Fast timers ("Measuring Output", §5).

On real hardware the toolbox wraps a platform-specific cycle counter
(``rdtsc`` on Intel); here the equivalent low-overhead channel is the
``gettime`` syscall.  These helpers are generator sub-routines: call them
with ``yield from`` inside a process.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from repro.sim import syscalls as sc
from repro.sim.syscalls import Syscall, SyscallResult


def now() -> Generator:
    """Current simulated time: ``t = yield from timers.now()``."""
    result = yield sc.gettime()
    return result.value


def time_call(syscall: Syscall) -> Generator:
    """Issue a syscall and return ``(value, elapsed_ns)``.

    The kernel stamps every result with its elapsed time, so this needs
    no extra gettime pair — it is the cheapest way to time one operation.
    """
    result = yield syscall
    return result.value, result.elapsed_ns


class Stopwatch:
    """Interval timing across *multiple* operations.

    ::

        watch = Stopwatch()
        yield from watch.start()
        ... arbitrary syscalls ...
        elapsed = yield from watch.stop()

    Unlike :func:`time_call`, the measured interval includes scheduling
    interference from other processes — sometimes that is exactly what an
    ICL wants to observe (e.g. MS Manners-style progress tracking), and
    sometimes it is the noise the statistics modules must reject.
    """

    def __init__(self) -> None:
        self._started_at: int = -1
        self.laps: list = []

    def start(self) -> Generator:
        result = yield sc.gettime()
        self._started_at = result.value
        return result.value

    def stop(self) -> Generator:
        if self._started_at < 0:
            raise RuntimeError("Stopwatch.stop() before start()")
        result = yield sc.gettime()
        elapsed = result.value - self._started_at
        self.laps.append(elapsed)
        self._started_at = -1
        return elapsed

    @property
    def total_ns(self) -> int:
        return sum(self.laps)
