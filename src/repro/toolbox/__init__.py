"""The "gray toolbox" (§5): shared utilities for building gray-box ICLs.

* :mod:`timers` — low-overhead timestamps over the gettime channel;
* :mod:`stats` — incremental statistics, correlation, regression, the
  paired-sample sign test (the routines Table 1's systems use);
* :mod:`cluster` — two-means clustering for in-cache/on-disk separation;
* :mod:`outliers` — sigma-clip and MAD rejection of noisy observations;
* :mod:`microbench` — configuration microbenchmarks (run once on a
  dedicated machine) whose results are shared through
* :mod:`repository` — the persistent common parameter repository.

Everything here observes the kernel *only* through syscalls.
"""

from repro.toolbox.cluster import ClusterSplit, two_means
from repro.toolbox.outliers import mad_clip, sigma_clip
from repro.toolbox.repository import ParameterRepository
from repro.toolbox.retry import NO_RETRY, Backoff
from repro.toolbox.stats import (
    OnlineStats,
    SampleStats,
    exponential_average,
    linear_regression,
    pearson_correlation,
    sign_test,
)
from repro.toolbox.timers import Stopwatch, now, time_call

__all__ = [
    "ClusterSplit",
    "two_means",
    "mad_clip",
    "sigma_clip",
    "Backoff",
    "NO_RETRY",
    "ParameterRepository",
    "OnlineStats",
    "SampleStats",
    "exponential_average",
    "linear_regression",
    "pearson_correlation",
    "sign_test",
    "Stopwatch",
    "now",
    "time_call",
]
