"""Two-group clustering of probe times (§4.2.4).

The FCCD∘FLDC composition needs to "reliably discern between in-cache
and out-of-cache files" by clustering probe times "into two groups,
minimizing the intragroup variance and maximizing the intergroup
variance; given that we form only two clusters, the clustering algorithm
is quite fast."

For one-dimensional data the optimal two-means split is a threshold on
the sorted values, so we compute it exactly in O(n log n) with prefix
sums rather than iterating Lloyd's algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ClusterSplit:
    """Result of a two-means split of 1-D observations."""

    # Indices (into the original sequence) of members of each group.
    low_group: Tuple[int, ...]
    high_group: Tuple[int, ...]
    low_center: float
    high_center: float
    threshold: float
    # Total within-group sum of squares at the chosen split.
    within_ss: float

    # Total sum of squares of all observations around the grand mean;
    # 0.0 for degenerate (single-valued) inputs.
    total_ss: float = 0.0

    @property
    def separation(self) -> float:
        """Gap between centers; ~0 means the data is effectively one group."""
        return self.high_center - self.low_center

    @property
    def confidence(self) -> float:
        """How decisively the data splits into two groups, in [0, 1].

        The fraction of total variance the split explains (the R² of the
        two-group model): 1.0 when each group is internally tight and far
        from the other, ~0 when the "split" is an arbitrary cut through
        one noisy population.  Confidence-gated ICL answers compare this
        against a floor before trusting a cached/uncached separation.
        Degenerate inputs (one group, all values equal) score 0.0 —
        no evidence of two populations.
        """
        if not self.high_group or self.total_ss <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.within_ss / self.total_ss)


def two_means(values: Sequence[float]) -> ClusterSplit:
    """Exact optimal 1-D two-means split.

    Degenerate inputs (fewer than 2 values, or all values equal) put
    everything in the low group — callers treat that as "no evidence of
    two populations" (e.g. all files on disk).
    """
    n = len(values)
    if n == 0:
        raise ValueError("cannot cluster zero observations")
    order = sorted(range(n), key=values.__getitem__)
    ordered = [values[i] for i in order]
    if n == 1 or ordered[0] == ordered[-1]:
        center = sum(ordered) / n
        return ClusterSplit(
            low_group=tuple(order),
            high_group=(),
            low_center=center,
            high_center=center,
            threshold=ordered[-1],
            within_ss=_ss(ordered),
            total_ss=_ss(ordered),
        )

    # Welford scans from both ends give the within-SS of every prefix
    # and suffix in O(n) without the catastrophic cancellation of the
    # textbook sum-of-squares prefix formula (probe times cluster
    # tightly around large magnitudes, so Σx² − (Σx)²/n cancels away
    # most of the significant digits).
    left_mean = [0.0] * (n + 1)
    left_ss = [0.0] * (n + 1)
    mean = m2 = 0.0
    for i, value in enumerate(ordered, start=1):
        delta = value - mean
        mean += delta / i
        m2 += delta * (value - mean)
        left_mean[i] = mean
        left_ss[i] = m2

    right_mean = [0.0] * (n + 1)
    right_ss = [0.0] * (n + 1)
    mean = m2 = 0.0
    for j, value in enumerate(reversed(ordered), start=1):
        delta = value - mean
        mean += delta / j
        m2 += delta * (value - mean)
        right_mean[n - j] = mean
        right_ss[n - j] = m2

    best_cut = 1
    best_ss = float("inf")
    for cut in range(1, n):
        ss = left_ss[cut] + right_ss[cut]
        if ss < best_ss:
            best_ss = ss
            best_cut = cut

    low_idx = tuple(order[:best_cut])
    high_idx = tuple(order[best_cut:])
    threshold = (ordered[best_cut - 1] + ordered[best_cut]) / 2.0
    return ClusterSplit(
        low_group=low_idx,
        high_group=high_idx,
        low_center=left_mean[best_cut],
        high_center=right_mean[best_cut],
        threshold=threshold,
        within_ss=best_ss,
        total_ss=left_ss[n],
    )


def _ss(ordered: List[float]) -> float:
    mean = sum(ordered) / len(ordered)
    return sum((v - mean) ** 2 for v in ordered)
