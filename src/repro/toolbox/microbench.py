"""Configuration microbenchmarks (§5).

Each benchmark is a pure-syscall generator a process runs; results land
in the :class:`~repro.toolbox.repository.ParameterRepository` under the
keys below.  The paper notes these "likely require a dedicated system" —
:func:`run_all` is the host-side driver that provides that controlled
environment (a quiet kernel, cache flushes between steps).

Keys produced:

* ``mem.touch_resident_ns``   — write to a resident page
* ``mem.page_zero_ns``        — first touch of a fresh page
* ``mem.copy_bandwidth``      — kernel-to-user copy, bytes/second
* ``disk.sequential_bandwidth`` — cold sequential read, bytes/second
* ``disk.random_access_ns``   — cold 1-byte read at a random offset
* ``fccd.access_unit_bytes``  — smallest unit reaching near-peak bandwidth
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional, Sequence

from repro.sim import syscalls as sc
from repro.toolbox.repository import ParameterRepository
from repro.toolbox.stats import SampleStats

MIB = 1024 * 1024


def make_file(path: str, nbytes: int) -> Generator:
    """Create a synthetic file of ``nbytes`` and return its path."""
    fd = (yield sc.create(path)).value
    remaining = nbytes
    while remaining > 0:
        chunk = min(remaining, 8 * MIB)
        yield sc.write(fd, chunk)
        remaining -= chunk
    yield sc.fsync(fd)
    yield sc.close(fd)
    return path


def time_memory_touches(pages: int = 64) -> Generator:
    """Returns (page_zero_ns, touch_resident_ns) medians."""
    region = (yield sc.vm_alloc(pages * 64 * 1024, "microbench")).value
    first = (yield sc.touch_range(region, 0, pages)).value
    second = (yield sc.touch_range(region, 0, pages)).value
    yield sc.vm_free(region)
    return SampleStats(first).median, SampleStats(second).median


def disk_sequential_bandwidth(path: str, read_bytes: int, unit: int = MIB) -> Generator:
    """Cold sequential read rate in bytes/second (flush the cache first)."""
    fd = (yield sc.open(path)).value
    start = (yield sc.gettime()).value
    done = 0
    while done < read_bytes:
        result = (yield sc.read(fd, unit)).value
        if result.eof:
            break
        done += result.nbytes
    end = (yield sc.gettime()).value
    yield sc.close(fd)
    if done == 0 or end <= start:
        raise ValueError("sequential benchmark read nothing")
    return done / ((end - start) / 1e9)


def disk_random_access_ns(
    path: str, file_bytes: int, samples: int = 16, rng: Optional[random.Random] = None
) -> Generator:
    """Median cold 1-byte read latency at random offsets.

    Offsets are spread uniformly; with a cold cache each probe pays a
    full seek + rotation, which is the "slow" reference the ICLs compare
    probe times against.
    """
    rng = rng or random.Random(0x5EED)
    fd = (yield sc.open(path)).value
    times: List[int] = []
    for _ in range(samples):
        offset = rng.randrange(max(file_bytes - 1, 1))
        result = yield sc.pread(fd, offset, 1)
        times.append(result.elapsed_ns)
    yield sc.close(fd)
    return SampleStats(times).median


def memcopy_bandwidth(path: str, read_bytes: int, unit: int = MIB) -> Generator:
    """Warm re-read rate (data already cached): pure copy bandwidth."""
    # First pass warms the cache, second pass measures.
    for measure in (False, True):
        fd = (yield sc.open(path)).value
        start = (yield sc.gettime()).value
        done = 0
        while done < read_bytes:
            result = (yield sc.read(fd, unit)).value
            if result.eof:
                break
            done += result.nbytes
        end = (yield sc.gettime()).value
        yield sc.close(fd)
    if done == 0 or end <= start:
        raise ValueError("memcopy benchmark read nothing")
    return done / ((end - start) / 1e9)


def random_unit_bandwidth(
    path: str, file_bytes: int, unit: int, rng: Optional[random.Random] = None
) -> Generator:
    """Read the whole file in ``unit``-sized chunks in random order.

    This is how FCCD's default access unit is chosen: the unit must be
    large enough that random chunk order still delivers near-sequential
    bandwidth (amortizing the seek per chunk, §4.1.2).
    """
    rng = rng or random.Random(0xACCE55)
    nchunks = max(file_bytes // unit, 1)
    order = list(range(nchunks))
    rng.shuffle(order)
    fd = (yield sc.open(path)).value
    start = (yield sc.gettime()).value
    done = 0
    for chunk in order:
        result = (yield sc.pread(fd, chunk * unit, unit)).value
        done += result.nbytes
    end = (yield sc.gettime()).value
    yield sc.close(fd)
    if done == 0 or end <= start:
        raise ValueError("unit-bandwidth benchmark read nothing")
    return done / ((end - start) / 1e9)


DEFAULT_UNIT_CANDIDATES = (
    1 * MIB,
    2 * MIB,
    5 * MIB,
    10 * MIB,
    20 * MIB,
    40 * MIB,
)


def run_all(
    kernel,
    scratch_dir: str = "/mnt0",
    *,
    file_bytes: int = 256 * MIB,
    unit_candidates: Sequence[int] = DEFAULT_UNIT_CANDIDATES,
    repo: Optional[ParameterRepository] = None,
    near_peak_fraction: float = 0.85,
) -> ParameterRepository:
    """Host-side driver: run every microbenchmark on a dedicated kernel.

    Uses the oracle *only* to flush the file cache between steps — the
    controlled-environment requirement the paper states for
    microbenchmarks; all measurement flows through syscalls.
    """
    repo = repo or ParameterRepository(platform=kernel.platform.name)
    path = f"{scratch_dir}/microbench.dat"
    kernel.run_process(make_file(path, file_bytes), "mb-make")
    stamp = kernel.clock.now

    zero_ns, touch_ns = kernel.run_process(time_memory_touches(), "mb-mem")
    repo.set("mem.page_zero_ns", zero_ns, "ns", "time_memory_touches", stamp)
    repo.set("mem.touch_resident_ns", touch_ns, "ns", "time_memory_touches", stamp)

    kernel.oracle.flush_file_cache()
    seq = kernel.run_process(disk_sequential_bandwidth(path, file_bytes), "mb-seq")
    repo.set("disk.sequential_bandwidth", seq, "bytes/s", "disk_sequential_bandwidth", stamp)

    kernel.oracle.flush_file_cache()
    rand_ns = kernel.run_process(disk_random_access_ns(path, file_bytes), "mb-rand")
    repo.set("disk.random_access_ns", rand_ns, "ns", "disk_random_access_ns", stamp)

    copy = kernel.run_process(memcopy_bandwidth(path, min(file_bytes, 64 * MIB)), "mb-copy")
    repo.set("mem.copy_bandwidth", copy, "bytes/s", "memcopy_bandwidth", stamp)

    best_unit = unit_candidates[-1]
    peak = 0.0
    rates = {}
    for unit in unit_candidates:
        kernel.oracle.flush_file_cache()
        rate = kernel.run_process(random_unit_bandwidth(path, file_bytes, unit), "mb-unit")
        rates[unit] = rate
        peak = max(peak, rate)
    for unit in unit_candidates:
        if rates[unit] >= near_peak_fraction * peak:
            best_unit = unit
            break
    repo.set("fccd.access_unit_bytes", best_unit, "bytes", "random_unit_bandwidth", stamp)

    kernel.run_process(_unlink(path), "mb-clean")
    kernel.oracle.flush_file_cache()
    return repo


def _unlink(path: str) -> Generator:
    yield sc.unlink(path)
