"""Bounded retry-with-backoff for transient syscall failures (§5).

Real kernels deliver EINTR/EAGAIN under load; robust gray-box library
code absorbs a bounded number of them and then gives up loudly.  The
:class:`Backoff` policy is plain data — the ICL base class owns the
retry *loop* (it has the obs sink and the syscall channel) while this
module owns the *schedule*, so tests can reason about delays without a
kernel.

The schedule is deterministic (no jitter): simulated experiments must be
bit-reproducible, and the simulated machine has no thundering herd to
de-synchronize.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

MICROS = 1_000
MILLIS = 1_000_000


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff schedule for retrying transient failures.

    ``max_retries`` is the number of *re*-attempts after the first try
    (0 disables retrying entirely — the unhardened configuration).  The
    delay before retry *k* (0-based) is ``initial_ns * multiplier**k``,
    capped at ``max_ns``.
    """

    max_retries: int = 4
    initial_ns: int = 100 * MICROS
    multiplier: float = 2.0
    max_ns: int = 50 * MILLIS

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.initial_ns < 0 or self.max_ns < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1.0")

    def delay_ns(self, attempt: int) -> int:
        """Delay before re-attempt ``attempt`` (0-based), in nanoseconds."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        delay = self.initial_ns * self.multiplier**attempt
        return int(min(delay, self.max_ns))

    def delays(self) -> Iterator[int]:
        """The full delay schedule, one entry per allowed retry."""
        for attempt in range(self.max_retries):
            yield self.delay_ns(attempt)


#: Retrying disabled: transient faults propagate to the caller.  The
#: configuration the robustness sweep uses as its unhardened baseline.
NO_RETRY = Backoff(max_retries=0)

__all__ = ["Backoff", "NO_RETRY"]
