"""Implicit coscheduling as a gray-box system (§3).

Fine-grain parallel processes on time-shared nodes must run
simultaneously to communicate efficiently.  Implicit coscheduling gets
there without touching the OS: the gray-box knowledge is *"receiving a
message means the sender is scheduled right now"*, the observation is
each request's response time, and the control is two-phase waiting —
spin (stay scheduled) when the partner appears scheduled, block (yield
the CPU) when it does not.

The model: two nodes, each time-slicing between one parallel process
and local background jobs.  The parallel job alternates compute and a
request/response exchange with its remote partner every iteration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.icl.base import TechniqueProfile

COSCHED_PROFILE = TechniqueProfile(
    knowledge="Dest. scheduled to send msg",
    outputs="Arrival of requests and time for response",
    statistics="None",
    benchmarks="Round-trip time",
    probes="None",
    known_state="Required for benchmarks",
    feedback="All react to same observations",
)


@dataclass
class CoschedConfig:
    """Two-node scenario parameters (times in microseconds)."""

    timeslice_us: int = 10_000          # local scheduler quantum
    iterations: int = 200               # compute+communicate rounds
    compute_us: int = 500               # work per round
    network_rtt_us: int = 20            # baseline round trip (benchmarked)
    context_switch_us: int = 50
    background_jobs: int = 1            # competing local processes per node
    spin_factor: float = 5.0            # spin up to factor * baseline RTT


@dataclass
class CoschedResult:
    """Outcome of one run."""

    total_us: int
    ideal_us: int
    blocked_waits: int
    spun_waits: int

    @property
    def slowdown(self) -> float:
        return self.total_us / max(self.ideal_us, 1)


def simulate_coscheduling(
    cfg: Optional[CoschedConfig] = None,
    policy: str = "implicit",
    rng: Optional[random.Random] = None,
) -> CoschedResult:
    """Run the two-node model under one waiting policy.

    The state that matters is whether the two parallel processes are
    currently *coscheduled* (aligned).  Message arrival is the feedback
    channel that creates alignment: a process that blocks and is woken
    by a response runs at a moment when its partner demonstrably runs.

    * ``"spin"``     — always spin: stays aligned once aligned (the
      explicit-coscheduling stand-in), burning CPU on long waits;
    * ``"block"``    — always block: every exchange pays context
      switches, and yielding the CPU mid-quantum breaks alignment with
      high probability (local background jobs run in between);
    * ``"implicit"`` — two-phase waiting: spin up to
      ``spin_factor × RTT`` when aligned (preserving coschedule), block
      on long waits and let the wake-up re-align.
    """
    cfg = cfg or CoschedConfig()
    if policy not in ("spin", "block", "implicit"):
        raise ValueError(f"unknown policy {policy!r}")
    rng = rng or random.Random(0xC05C)
    t = 0
    blocked = 0
    spun = 0
    aligned = False
    period = cfg.timeslice_us * (cfg.background_jobs + 1)
    # Probability that blocking hands the CPU away long enough to break
    # the coschedule before the next exchange.
    break_on_block = cfg.background_jobs / (cfg.background_jobs + 1)
    for _ in range(cfg.iterations):
        t += cfg.compute_us
        if aligned:
            response_in = cfg.network_rtt_us
        else:
            # Partner reappears at a uniformly random point of its round.
            response_in = rng.randrange(period - cfg.timeslice_us) + cfg.network_rtt_us
        spin_budget = (
            float("inf")
            if policy == "spin"
            else cfg.spin_factor * cfg.network_rtt_us
            if policy == "implicit"
            else 0.0
        )
        if response_in <= spin_budget:
            t += response_in
            spun += 1
            aligned = True  # exchanged while both on-CPU
        else:
            # Block; the response wake-up happens while the partner runs,
            # so the exchange itself re-aligns the pair — unless local
            # background jobs take the CPU first.
            t += max(response_in, cfg.context_switch_us) + cfg.context_switch_us
            blocked += 1
            if rng.random() < break_on_block:
                t += cfg.timeslice_us * cfg.background_jobs  # lost the CPU
                aligned = rng.random() < 0.5
            else:
                aligned = True
    ideal = cfg.iterations * (cfg.compute_us + cfg.network_rtt_us)
    return CoschedResult(total_us=t, ideal_us=ideal, blocked_waits=blocked, spun_waits=spun)
