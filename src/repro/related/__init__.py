"""Prior gray-box systems surveyed in §3, reimplemented as mini-models.

These three systems pre-date the paper and motivate its framework; each
module provides a compact simulation demonstrating the technique and a
:class:`~repro.icl.base.TechniqueProfile` whose rows regenerate Table 1.

They model their own domains (a network path, a two-node cluster, a
time-shared CPU) rather than the disk/VM kernel — the paper's point is
precisely that the same techniques recur across domains.
"""

from repro.related.tcp import TCP_PROFILE, TcpResult, simulate_tcp
from repro.related.coscheduling import (
    COSCHED_PROFILE,
    CoschedResult,
    simulate_coscheduling,
)
from repro.related.manners import MANNERS_PROFILE, MannersResult, simulate_manners

PRIOR_SYSTEMS = {
    "TCP": TCP_PROFILE,
    "Implicit Coscheduling": COSCHED_PROFILE,
    "MS Manners": MANNERS_PROFILE,
}

__all__ = [
    "TCP_PROFILE",
    "TcpResult",
    "simulate_tcp",
    "COSCHED_PROFILE",
    "CoschedResult",
    "simulate_coscheduling",
    "MANNERS_PROFILE",
    "MannersResult",
    "simulate_manners",
    "PRIOR_SYSTEMS",
]
