"""TCP congestion control as a gray-box system (§3).

The sender treats the network as a gray box: the algorithmic knowledge
is *"the network drops packets when there is congestion"*; the observed
output is whether each window was acknowledged; the control is AIMD on
the window.  Routers reinforce via drops (RED drops early, before the
queue overflows).

The paper's cautionary tale is also modelled: on a *wireless* path,
losses happen without congestion, the gray-box assumption is wrong, and
throughput collapses — misidentifying gray-box knowledge has costs
(§3's Balakrishnan reference).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.icl.base import TechniqueProfile

TCP_PROFILE = TechniqueProfile(
    knowledge="Message dropped if congestion",
    outputs="Time before ACK arrives",
    statistics="Mean and variance (RTT estimation)",
    benchmarks="None",
    probes="None",
    known_state="None",
    feedback="Routers drop msgs as a signal",
)


@dataclass
class NetworkPath:
    """A bottleneck link with a router queue and a drop policy."""

    capacity_per_rtt: int = 50          # packets the link serves per RTT
    queue_limit: int = 25               # router queue beyond the pipe
    red: bool = False                   # random-early-detection gateway
    red_min_queue: int = 5
    wireless_loss_rate: float = 0.0     # non-congestion random loss
    queued: int = 0                     # router queue occupancy (state)

    def deliver(self, offered: int, rng: random.Random) -> Tuple[int, int]:
        """One RTT of service; returns (acked, lost).

        Packets surviving the (wireless) medium join the router queue;
        the link serves up to ``capacity_per_rtt``; tail-drop (or RED
        early drop) sheds the excess.  ACKs per RTT therefore never
        exceed link capacity, and sustained over-offering fills the
        queue until drops signal the sender.
        """
        arrived = offered
        if self.wireless_loss_rate > 0.0:
            arrived = sum(
                1 for _ in range(arrived) if rng.random() >= self.wireless_loss_rate
            )
        lost = offered - arrived
        self.queued += arrived
        acked = min(self.queued, self.capacity_per_rtt)
        self.queued -= acked
        if self.red and self.queued > self.red_min_queue:
            # RED: shed a packet probabilistically as the queue builds,
            # signalling senders before hard overflow.
            if rng.random() < self.queued / (2.0 * self.queue_limit):
                self.queued -= 1
                lost += 1
        if self.queued > self.queue_limit:
            lost += self.queued - self.queue_limit
            self.queued = self.queue_limit
        return acked, lost


@dataclass
class TcpResult:
    """Throughput trace of one simulation."""

    acked_total: int = 0
    rtts: int = 0
    drops: int = 0
    cwnd_trace: List[float] = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Mean packets ACKed per RTT."""
        if self.rtts == 0:
            return 0.0
        return self.acked_total / self.rtts


def simulate_tcp(
    path: NetworkPath,
    rtts: int = 400,
    rng: Optional[random.Random] = None,
    ssthresh: float = 64.0,
) -> TcpResult:
    """Slow-start + AIMD sender inferring congestion from losses.

    One simulation step is one RTT: the sender offers ``cwnd`` packets,
    observes how many are ACKed, and — using only the gray-box rule
    "loss ⇒ congestion" — halves on any loss, else grows.
    """
    rng = rng or random.Random(0x7C9)
    result = TcpResult()
    cwnd = 1.0
    for _ in range(rtts):
        offered = max(int(cwnd), 1)
        acked, lost = path.deliver(offered, rng)
        result.acked_total += acked
        result.drops += lost
        result.rtts += 1
        if lost > 0:
            ssthresh = max(cwnd / 2.0, 2.0)
            cwnd = ssthresh  # fast-recovery-style halving
        elif cwnd < ssthresh:
            cwnd *= 2.0  # slow start
        else:
            cwnd += 1.0  # congestion avoidance
        result.cwnd_trace.append(cwnd)
    return result
