"""MS Manners as a gray-box system (§3).

Runs a low-importance job only when the machine is otherwise idle —
without OS support for idle-priority scheduling.  Gray-box knowledge:
*"one process competing with another degrades the other's progress
symmetrically to its own"*.  Observation: the job's own progress rate.
Statistics: an exponential average of uncontended progress as the
baseline, linear-regression drift tracking, and a paired-sample sign
test to decide that progress is *systematically* (not noisily) low.

Model: a CPU shared equally among runnable processes; a high-importance
foreground workload comes and goes; the Manners-governed job measures
work completed per window and suspends/resumes itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.icl.base import TechniqueProfile
from repro.toolbox.stats import exponential_average, sign_test

MANNERS_PROFILE = TechniqueProfile(
    knowledge="Symmetric performance impact",
    outputs="Reported progress of process",
    statistics="Linear regression, Exponential avg, Paired-sample sign test",
    benchmarks="None",
    probes="None",
    known_state="None, but slow convergence",
    feedback="None",
)


@dataclass
class MannersConfig:
    """Scenario parameters (time in abstract windows)."""

    windows: int = 300
    # Foreground activity: busy in [start, end) windows.
    busy_start: int = 100
    busy_end: int = 200
    noise: float = 0.05            # relative measurement noise
    sample_pairs: int = 5          # sign-test pairs per decision
    p_threshold: float = 0.20      # suspend when this confident
    resume_probe_every: int = 10   # probe one window while suspended
    ewma_alpha: float = 0.2


@dataclass
class MannersResult:
    """What happened across the run."""

    li_progress: float = 0.0               # total low-importance work done
    fg_slowdown_windows: int = 0           # windows where FG shared the CPU
    suspended_windows: int = 0
    trace: List[str] = field(default_factory=list)  # 'run'|'suspend'|'probe'

    @property
    def interference_fraction(self) -> float:
        """Fraction of busy FG windows the LI job intruded on."""
        busy = sum(1 for s in self.trace if s == "fg-shared" or s == "fg-alone")
        if busy == 0:
            return 0.0
        shared = sum(1 for s in self.trace if s == "fg-shared")
        return shared / busy


def simulate_manners(
    cfg: Optional[MannersConfig] = None,
    governed: bool = True,
    rng: Optional[random.Random] = None,
) -> MannersResult:
    """Run the shared-CPU model with or without Manners governing.

    Ungoverned, the low-importance job steals half the CPU from the
    foreground for the whole busy period; governed, it detects the
    progress drop within a few windows and suspends, probing
    occasionally to notice when the machine goes idle again.
    """
    cfg = cfg or MannersConfig()
    rng = rng or random.Random(0x3A8)
    result = MannersResult()
    baseline: Optional[float] = None
    recent: List[float] = []
    suspended = False
    windows_suspended = 0

    for window in range(cfg.windows):
        fg_busy = cfg.busy_start <= window < cfg.busy_end

        if suspended:
            windows_suspended += 1
            result.suspended_windows += 1
            probe = windows_suspended % cfg.resume_probe_every == 0
            if not probe:
                result.trace.append("fg-alone" if fg_busy else "idle-suspended")
                continue
            result.trace.append("probe")

        # The LI job runs this window (normally or as a probe).
        share = 0.5 if fg_busy else 1.0
        progress = share * (1.0 + rng.uniform(-cfg.noise, cfg.noise))
        result.li_progress += progress
        if fg_busy:
            result.trace.append("fg-shared")
            result.fg_slowdown_windows += 1
        elif not suspended:
            result.trace.append("run")

        if not governed:
            continue

        if baseline is None:
            baseline = progress
        if suspended:
            # Probe verdict from this single window: resume only if the
            # probe ran at (near) the uncontended baseline.
            if progress >= 0.8 * baseline:
                suspended = False
                windows_suspended = 0
                recent.clear()
            continue

        recent.append(progress)
        if len(recent) > cfg.sample_pairs:
            recent.pop(0)
        pairs = [(baseline, p) for p in recent]
        _pos, _neg, p_value = sign_test(pairs)
        degraded = (
            len(recent) >= cfg.sample_pairs
            and p_value <= cfg.p_threshold
            and sum(recent) / len(recent) < 0.8 * baseline
        )
        if degraded:
            suspended = True
            windows_suspended = 0
            recent.clear()
        elif sum(recent) / len(recent) >= 0.9 * baseline:
            # Track slow baseline drift only while uncontended.
            baseline = exponential_average(recent, cfg.ewma_alpha, baseline)
    return result
