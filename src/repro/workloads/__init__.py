"""Workload generators: file trees, aging churn, synthetic text/records."""

from repro.workloads.files import (
    age_directory,
    create_files,
    make_file,
    populate_directory,
)
from repro.workloads.text import make_text_with_matches
from repro.workloads.records import make_record_blob, record_count

__all__ = [
    "age_directory",
    "create_files",
    "make_file",
    "populate_directory",
    "make_text_with_matches",
    "make_record_blob",
    "record_count",
]
