"""File-tree builders and the aging churn used by Figure 6.

All builders are generator processes; the experiment harness runs them
on a fresh kernel before the measured phase begins.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional, Sequence, Union

from repro.sim import syscalls as sc

MIB = 1024 * 1024
WRITE_CHUNK = 8 * MIB


def make_file(path: str, content: Union[int, bytes], sync: bool = True) -> Generator:
    """Create one file with synthetic (int length) or real (bytes) content."""
    fd = (yield sc.create(path)).value
    try:
        if isinstance(content, (bytes, bytearray)):
            done = 0
            while done < len(content):
                done += (yield sc.write(fd, content[done : done + WRITE_CHUNK])).value
        else:
            remaining = int(content)
            while remaining > 0:
                chunk = min(remaining, WRITE_CHUNK)
                yield sc.write(fd, chunk)
                remaining -= chunk
        if sync:
            yield sc.fsync(fd)
    finally:
        yield sc.close(fd)
    return path


def create_files(
    directory: str,
    count: int,
    size: Union[int, Sequence[int]],
    name_format: str = "f{index:04d}",
    sync: bool = True,
    names: Optional[Sequence[str]] = None,
) -> Generator:
    """Create ``count`` files in an existing directory; returns their paths.

    ``size`` is one length for all files or a per-file sequence.  Pass
    explicit ``names`` when lexical order must differ from creation
    order (real directories rarely have names that sort by age — and an
    experiment that leaves them correlated accidentally hands the
    directory-sort heuristic the i-number ordering for free).
    """
    sizes = [size] * count if isinstance(size, int) else list(size)
    if len(sizes) != count:
        raise ValueError("need one size per file")
    if names is not None and len(names) != count:
        raise ValueError("need one name per file")
    paths: List[str] = []
    for index in range(count):
        name = names[index] if names is not None else name_format.format(index=index)
        path = f"{directory}/{name}"
        yield from make_file(path, sizes[index], sync=sync)
        paths.append(path)
    return paths


def populate_directory(
    directory: str,
    count: int,
    size: Union[int, Sequence[int]],
    name_format: str = "f{index:04d}",
) -> Generator:
    """mkdir + create_files in one step; returns the file paths."""
    yield sc.mkdir(directory)
    paths = yield from create_files(directory, count, size, name_format)
    return paths


def age_directory(
    directory: str,
    epochs: int,
    rng: random.Random,
    deletes_per_epoch: int = 5,
    creates_per_epoch: int = 5,
    create_size: int = 8 * 1024,
) -> Generator:
    """The paper's aging churn: per epoch, delete N random files, create N.

    Returns the number of epochs applied.  New file names draw from the
    rng so repeated calls against the same directory never collide, and
    the population stays constant when deletes == creates.
    """
    for _epoch in range(epochs):
        names = set((yield sc.readdir(directory)).value)
        doomed = rng.sample(sorted(names), min(deletes_per_epoch, len(names)))
        for name in doomed:
            yield sc.unlink(f"{directory}/{name}")
            names.discard(name)
        for _j in range(creates_per_epoch):
            name = f"age{rng.randrange(10**9):09d}"
            while name in names:
                name = f"age{rng.randrange(10**9):09d}"
            names.add(name)
            yield from make_file(f"{directory}/{name}", create_size, sync=False)
    return epochs
