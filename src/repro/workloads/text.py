"""Synthetic text content with known match positions.

Small-scale correctness tests use real bytes so grep/search actually
find things; large benchmark files stay synthetic (length-only).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

_WORDS = (
    b"gray", b"box", b"cache", b"probe", b"inode", b"layout", b"page",
    b"daemon", b"kernel", b"layer", b"stat", b"disk", b"sort", b"scan",
)


def make_text(nbytes: int, rng: Optional[random.Random] = None) -> bytes:
    """Deterministic filler text of exactly ``nbytes``."""
    rng = rng or random.Random(0x7E47)
    pieces: List[bytes] = []
    size = 0
    while size < nbytes:
        word = _WORDS[rng.randrange(len(_WORDS))]
        pieces.append(word)
        pieces.append(b" ")
        size += len(word) + 1
    blob = b"".join(pieces)
    return blob[:nbytes]


def make_text_with_matches(
    nbytes: int,
    pattern: bytes,
    match_offsets: Sequence[int],
    rng: Optional[random.Random] = None,
) -> bytes:
    """Filler text with ``pattern`` planted at each given offset.

    Offsets must leave room for the whole pattern and must not overlap;
    the filler itself is guaranteed not to contain the pattern as long
    as the pattern is not made of the filler words.
    """
    if not pattern:
        raise ValueError("pattern must be non-empty")
    blob = bytearray(make_text(nbytes, rng))
    placed: List[Tuple[int, int]] = []
    for offset in sorted(match_offsets):
        end = offset + len(pattern)
        if not (0 <= offset and end <= nbytes):
            raise ValueError(f"match at {offset} does not fit in {nbytes} bytes")
        if placed and offset < placed[-1][1]:
            raise ValueError(f"match at {offset} overlaps the previous one")
        blob[offset:end] = pattern
        placed.append((offset, end))
    return bytes(blob)


def count_matches(blob: bytes, pattern: bytes) -> int:
    """Non-overlapping occurrence count (what grep -c of one line ~ does)."""
    return blob.count(pattern)
