"""Sort-record workloads (fastsort's 100-byte records)."""

from __future__ import annotations

import random
from typing import Optional

from repro.apps.fastsort import RECORD_BYTES


def make_record_blob(
    nrecords: int, key_bytes: int = 10, rng: Optional[random.Random] = None
) -> bytes:
    """Real 100-byte records with random keys (for correctness tests).

    Layout mirrors the sort benchmark convention: a ``key_bytes`` random
    key followed by a filler payload that encodes the record's original
    position (so tests can verify stability and completeness).
    """
    rng = rng or random.Random(0x5027)
    records = []
    payload_len = RECORD_BYTES - key_bytes
    for index in range(nrecords):
        key = bytes(rng.randrange(33, 127) for _ in range(key_bytes))
        payload = (b"%09d" % index).ljust(payload_len, b".")
        records.append(key + payload[:payload_len])
    return b"".join(records)


def record_count(nbytes: int) -> int:
    """How many whole records fit in ``nbytes``."""
    return nbytes // RECORD_BYTES


def is_sorted_records(blob: bytes, key_bytes: int = 10) -> bool:
    """True if the blob's records are in non-decreasing key order."""
    previous = None
    for offset in range(0, len(blob) - len(blob) % RECORD_BYTES, RECORD_BYTES):
        key = blob[offset : offset + key_bytes]
        if previous is not None and key < previous:
            return False
        previous = key
    return True
