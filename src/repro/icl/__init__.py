"""Gray-box Information and Control Layers — the paper's contribution.

Three case-study ICLs plus their composition and the ``gbp`` utility:

* :class:`~repro.icl.fccd.FCCD` — File-Cache Content Detector (§4.1)
* :class:`~repro.icl.fldc.FLDC` — File Layout Detector and Controller (§4.2)
* :class:`~repro.icl.mac.MAC`  — Memory-based Admission Controller (§4.3)
* :mod:`~repro.icl.compose`    — FCCD∘FLDC composition via clustering (§4.2.4)
* :mod:`~repro.icl.gbp`        — the command-line-tool equivalent for
  unmodified applications
* :mod:`~repro.icl.channels`   — covert-channel sender/receiver pairs
  (residency + dirty-writeback) built from the same probe primitives

Every ICL method is a generator sub-routine used with ``yield from``
inside a simulated process, and observes the OS only through syscalls
and their elapsed times.
"""

from repro.icl.base import ICL, TechniqueProfile
from repro.icl.fccd import FCCD, AccessSegment, FilePlan
from repro.icl.fldc import FLDC, RefreshReport
from repro.icl.mac import MAC, GbAllocation
from repro.icl.compose import ComposedOrdering, compose_order
from repro.icl import gbp
from repro.icl.channels import (
    DecodeResult,
    FrameSpec,
    ResidencyChannelReceiver,
    ResidencyChannelSender,
    WritebackChannelReceiver,
    WritebackChannelSender,
    ber,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ICL",
    "TechniqueProfile",
    "FCCD",
    "AccessSegment",
    "FilePlan",
    "FLDC",
    "RefreshReport",
    "MAC",
    "GbAllocation",
    "ComposedOrdering",
    "compose_order",
    "gbp",
    "FrameSpec",
    "DecodeResult",
    "encode_frame",
    "decode_frame",
    "ber",
    "ResidencyChannelSender",
    "ResidencyChannelReceiver",
    "WritebackChannelSender",
    "WritebackChannelReceiver",
]
