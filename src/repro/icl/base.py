"""ICL base class and the gray-box technique registry.

Each ICL declares which of the paper's techniques (§2) it uses; the
registry is what regenerates Table 2 (and, via :mod:`repro.related`,
Table 1) directly from the implementations instead of from prose.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, fields
from typing import Dict, Generator, List, Optional

from repro.obs import DISABLED, Observability
from repro.sim import syscalls as sc
from repro.sim.arena import STEP, StepBoundary
from repro.sim.errors import TransientError
from repro.sim.syscalls import Syscall
from repro.toolbox.repository import ParameterRepository
from repro.toolbox.retry import Backoff


@dataclass(frozen=True)
class TechniqueProfile:
    """How one gray-box system instantiates each technique row.

    Field order matches the rows of Tables 1 and 2: the *knowledge*
    assumed, the *outputs* observed, the *statistics* applied, the
    *benchmarks* required, the *probes* inserted, the *known state* the
    system moves to, and the *feedback* it reinforces.  Use ``"None"``
    for techniques a system does not use, exactly as the paper's tables
    do.
    """

    knowledge: str
    outputs: str
    statistics: str
    benchmarks: str
    probes: str
    known_state: str
    feedback: str

    ROW_TITLES = (
        "Knowledge",
        "Outputs",
        "Statistics",
        "Benchmarks",
        "Probes",
        "Known state",
        "Feedback",
    )

    def rows(self) -> List[str]:
        return [getattr(self, f.name) for f in fields(self)]


class ICL:
    """Base for gray-box Information and Control Layers.

    Holds the pieces every layer shares: the parameter repository
    (microbenchmark results), a seeded RNG (probe placement must be
    random but experiments must be repeatable), the technique profile
    for the table generators, and an observability sink.  ``obs``
    defaults to the shared no-op instance; pass ``kernel.obs`` to put
    inference-phase spans (``fccd.probe_batch``, ``mac.alloc_round``,
    ...) on the kernel's simulated timeline.  This is host-side wiring,
    like the RNG — the ICL still *observes* the OS only through
    syscalls.
    """

    name: str = "icl"
    profile: TechniqueProfile = TechniqueProfile(
        knowledge="(abstract)",
        outputs="(abstract)",
        statistics="None",
        benchmarks="None",
        probes="None",
        known_state="None",
        feedback="None",
    )

    def __init__(
        self,
        repository: Optional[ParameterRepository] = None,
        rng: Optional[random.Random] = None,
        obs: Optional[Observability] = None,
        retry: Optional[Backoff] = None,
        step_markers: bool = False,
    ) -> None:
        self.repository = repository or ParameterRepository()
        self.rng = rng or random.Random(0x6B0C5)
        self.obs = obs if obs is not None else DISABLED
        # Transient-failure policy (EINTR/EAGAIN under load): probe
        # syscalls loop through ``_retry`` with this schedule.  Retries
        # only engage on error, so the quiet path is unchanged; pass
        # ``toolbox.NO_RETRY`` to let transients propagate (the
        # robustness sweep's unhardened baseline).
        self.retry = retry if retry is not None else Backoff()
        # Arena protocol (repro.sim.arena): with ``step_markers`` on,
        # the drive loops yield a STEP sentinel after each probe batch
        # so an arena shell can park the client there.  Off (the
        # default), ``checkpoint`` yields nothing and every drive loop
        # remains a plain run-to-completion syscall generator.
        self.step_markers = step_markers

    def checkpoint(self, tag: object = None) -> Generator:
        """Mark a resumable step boundary (``yield from`` in drive loops).

        Yields :data:`~repro.sim.arena.STEP` when :attr:`step_markers`
        is set, nothing otherwise — the sequential fallback is the same
        generator minus the marker, not a second code path.  The marker
        is host-side only (the arena's park syscall has zero simulated
        duration), so stepped and unstepped runs observe identical
        timings.

        ``tag`` labels the boundary: the arena records ``(tag, now)`` in
        the client's ``step_log`` before parking, which lets a harness
        align two clients' turns (e.g. a covert-channel sender and
        receiver agreeing on cell indices) without any simulated-time or
        obs-stream side effect.  Untagged checkpoints share the single
        :data:`STEP` instance, so existing drive loops allocate nothing.
        """
        if self.step_markers:
            yield STEP if tag is None else StepBoundary(tag)

    def _retry(self, syscall: Syscall) -> Generator:
        """Issue ``syscall``, absorbing transient faults with backoff.

        A bounded number of :class:`~repro.sim.errors.TransientError`
        failures (EAGAIN/EINTR) are retried after an exponentially
        growing simulated sleep; the budget exhausted, the error
        propagates.  Probe syscalls are idempotent (a transient fault
        aborts before any kernel side effect), so a retry observes
        exactly what the fault-free call would have.  Every retry bumps
        the ``icl.retry`` counters so injected faults stay joinable to
        the ICL's reaction.
        """
        policy = self.retry
        attempt = 0
        while True:
            try:
                return (yield syscall)
            except TransientError:
                if attempt >= policy.max_retries:
                    raise
                self.obs.count("icl.retry")
                self.obs.count(f"icl.retry.{syscall.name}")
                delay = policy.delay_ns(attempt)
                if delay:
                    yield sc.sleep(delay)
                attempt += 1


_REGISTRY: Dict[str, type] = {}


def register_icl(cls: type) -> type:
    """Class decorator: record an ICL for the Table 2 generator."""
    _REGISTRY[cls.name] = cls
    return cls


def registered_icls() -> Dict[str, type]:
    return dict(_REGISTRY)
