"""FCCD — the File-Cache Content Detector (§4.1).

Algorithmic knowledge assumed: *only* that the file cache replaces pages
based on time of last access, so spatially adjacent pages tend to be
cached or evicted together.  From there:

* files are split into **access units** (default from the microbenchmark
  repository; the paper measured 20 MB as delivering near-peak disk
  bandwidth on its platform);
* each access unit is divided into **prediction units** (default 5 MB)
  and one 1-byte ``pread`` probe is issued at a *random* byte inside
  each — random, so that a stale previous probe cannot masquerade as a
  cache hit (§4.1.2), and so repeated probing gains confidence;
* access units are **sorted by total probe time** — no platform-specific
  hit/miss threshold is needed, and a multi-level storage hierarchy
  orders correctly (closest first);
* files smaller than one page are never probed (probing them would pull
  them into the cache whole — the Heisenberg effect, §4.1.4); they
  report a fake, very high probe time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Generator, List, Optional, Sequence, Tuple

from repro.icl.base import ICL, TechniqueProfile, register_icl
from repro.obs.profile import PROFILER
from repro.sim import syscalls as sc
from repro.sim.clock import SECONDS
from repro.toolbox.cluster import two_means
from repro.toolbox.outliers import mad_clip

MIB = 1024 * 1024

DEFAULT_ACCESS_UNIT = 20 * MIB
DEFAULT_PREDICTION_UNIT = 5 * MIB

# Reported for unprobeable (sub-page) files: "a 'fake' high probe-time".
FAKE_HIGH_PROBE_NS = 10 * SECONDS

# Conservative page-size knowledge for the Heisenberg guard.  An ICL on a
# real system would use getpagesize(); any file at least this large is
# safe to probe on every platform we model.
SAFE_PROBE_MIN_BYTES = 64 * 1024


@dataclass(frozen=True)
class AccessSegment:
    """One (offset, length) unit of a file, with its measured probe time."""

    offset: int
    length: int
    probe_ns: int
    probes: int

    @property
    def mean_probe_ns(self) -> float:
        return self.probe_ns / max(self.probes, 1)


@dataclass
class FilePlan:
    """FCCD's answer for one file: segments ordered fastest-probe-first."""

    path: str
    size: int
    segments: List[AccessSegment] = field(default_factory=list)

    @property
    def total_probe_ns(self) -> int:
        return sum(s.probe_ns for s in self.segments)

    @property
    def total_probes(self) -> int:
        return sum(s.probes for s in self.segments)

    @property
    def mean_probe_ns(self) -> float:
        """Per-probe average — the per-file score used to order files."""
        probes = self.total_probes
        if probes == 0:
            return float(FAKE_HIGH_PROBE_NS)
        return self.total_probe_ns / probes

    def ordered_segments(self) -> List[AccessSegment]:
        return sorted(self.segments, key=lambda s: (s.probe_ns, s.offset))

    def ordered_ranges(self) -> List[Tuple[int, int]]:
        """The (offset, length) list the paper's library interface returns."""
        return [(s.offset, s.length) for s in self.ordered_segments()]


@register_icl
class FCCD(ICL):
    """File-Cache Content Detector."""

    name = "fccd"
    profile = TechniqueProfile(
        knowledge="Cache replacement approximates LRU; neighbours co-evicted",
        outputs="Time for 1-byte read probes",
        statistics="Sort by probe time; cluster for composition",
        benchmarks="Access unit from disk-bandwidth microbenchmark",
        probes="Random byte per prediction unit",
        known_state="None",
        feedback="Access-unit-sized reads keep cache chunk-aligned",
    )

    def __init__(
        self,
        repository=None,
        rng=None,
        access_unit_bytes: Optional[int] = None,
        prediction_unit_bytes: Optional[int] = None,
        probe_placement: str = "random",
        obs=None,
        batch_probes: bool = True,
        retry=None,
        max_resamples: int = 0,
        step_markers: bool = False,
    ) -> None:
        """``probe_placement`` is ``"random"`` (the paper's choice) or
        ``"fixed"`` (probe the middle byte of every prediction unit).
        Fixed placement exists for the ablation benchmark: a stale
        probe from an earlier run sits at exactly the same offset, so a
        re-probe reports its own earlier Heisenberg side-effects as
        cache contents (§4.1.2's failure scenario).

        ``batch_probes`` (default on) issues each access unit's probes
        as one vectored ``pread_batch`` instead of per-probe ``pread``
        calls.  Probe placement, per-probe simulated times, and cache
        effects are bit-identical either way; batching only removes the
        simulator's per-call dispatch cost.

        ``max_resamples`` (default 0, i.e. off) is the noise-hardening
        budget: repeated probing may re-probe a file up to this many
        extra rounds when outlier rejection discards observations, and
        confidence-gated ordering may re-plan when the cached/uncached
        clustering is ambiguous."""
        super().__init__(repository, rng, obs, retry, step_markers)
        self.batch_probes = batch_probes
        if max_resamples < 0:
            raise ValueError("max_resamples must be >= 0")
        self.max_resamples = max_resamples
        if probe_placement not in ("random", "fixed"):
            raise ValueError(f"unknown probe placement {probe_placement!r}")
        self.probe_placement = probe_placement
        if access_unit_bytes is None:
            access_unit_bytes = int(
                self.repository.get("fccd.access_unit_bytes", DEFAULT_ACCESS_UNIT)
            )
        if prediction_unit_bytes is None:
            prediction_unit_bytes = min(DEFAULT_PREDICTION_UNIT, access_unit_bytes)
        if access_unit_bytes <= 0 or prediction_unit_bytes <= 0:
            raise ValueError("units must be positive")
        if prediction_unit_bytes > access_unit_bytes:
            raise ValueError("prediction unit cannot exceed the access unit")
        self.access_unit_bytes = access_unit_bytes
        self.prediction_unit_bytes = prediction_unit_bytes

    # ------------------------------------------------------------------
    # Unit geometry
    # ------------------------------------------------------------------
    def segments_of(self, size: int, align: int = 1) -> List[Tuple[int, int]]:
        """Split [0, size) into access units respecting ``align`` boundaries.

        Records must not straddle units (§4.1.2), so each unit's length
        is rounded down to a multiple of ``align`` (except a final
        remainder shorter than one aligned record).
        """
        if align <= 0:
            raise ValueError("alignment must be positive")
        unit = max(self.access_unit_bytes // align, 1) * align
        segments = []
        offset = 0
        while offset < size:
            length = min(unit, size - offset)
            segments.append((offset, length))
            offset += length
        return segments

    def _probe_points(self, offset: int, length: int, size: int) -> List[int]:
        """Probe offsets, one per prediction-unit window."""
        points = []
        window_start = offset
        end = offset + length
        while window_start < end:
            window_len = min(self.prediction_unit_bytes, end - window_start)
            if self.probe_placement == "random":
                points.append(window_start + self.rng.randrange(window_len))
            else:
                points.append(window_start + window_len // 2)
            window_start += window_len
        return [min(p, size - 1) for p in points if size > 0]

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def probe_fd(self, fd: int, size: int, align: int = 1) -> Generator:
        """Probe an open file; returns a list of :class:`AccessSegment`.

        Sub-page files are not probed (Heisenberg guard) and come back
        with the fake high probe time.
        """
        if size < SAFE_PROBE_MIN_BYTES:
            length = max(size, 0)
            self.obs.count("icl.fccd.unprobeable_files")
            return [AccessSegment(0, length, FAKE_HIGH_PROBE_NS, 0)]
        segments: List[AccessSegment] = []
        for offset, length in self.segments_of(size, align):
            points = self._probe_points(offset, length, size)
            if self.batch_probes:
                with self.obs.span_batch(
                    "fccd.probe_batch", len(points), offset=offset, length=length
                ) as span:
                    probes = (
                        yield from self._retry(
                            sc.pread_batch(fd, [(p, 1) for p in points])
                        )
                    ).value
                    total = sum(p.elapsed_ns for p in probes)
                    count = len(probes)
                    span.attrs["probe_ns"] = total
            else:
                total = 0
                count = 0
                with self.obs.span(
                    "fccd.probe_batch", offset=offset, length=length
                ) as span:
                    for point in points:
                        result = yield from self._retry(sc.pread(fd, point, 1))
                        total += result.elapsed_ns
                        count += 1
                    span.attrs["probes"] = count
                    span.attrs["probe_ns"] = total
            self.obs.count("icl.fccd.probes", count)
            segments.append(AccessSegment(offset, length, total, count))
            # One access unit's probes = one arena step (no-op unless
            # step_markers is set — see ICL.checkpoint).
            yield from self.checkpoint()
        return segments

    def probe_fd_repeated(
        self, fd: int, size: int, align: int = 1, rounds: int = 3
    ) -> Generator:
        """Multiple probe rounds, medianed per segment (§4.1.2).

        Random placement "has the added benefit that an application can
        probe the file cache repeatedly for increased confidence": each
        round lands on fresh offsets, and the per-segment *median* of
        the rounds rejects one-off outliers — a probe that queued behind
        another process's disk I/O, or one that lucked onto the single
        cached page of a cold unit.
        """
        if rounds < 1:
            raise ValueError("need at least one probe round")
        all_rounds = []
        for _ in range(rounds):
            segments = yield from self.probe_fd(fd, size, align)
            all_rounds.append(segments)
        if self.max_resamples:
            # Noise hardening: when MAD rejection discards any round's
            # observation, a contaminated sample slipped in — spend the
            # resample budget on fresh rounds so the median rests on
            # clean observations (§4.1.2's "increased confidence").
            budget = self.max_resamples
            while budget and self._rounds_contaminated(all_rounds):
                self.obs.count("icl.resample")
                segments = yield from self.probe_fd(fd, size, align)
                all_rounds.append(segments)
                budget -= 1
        # Host-side sweep analysis (no yields): profiled as icl.fccd.merge.
        _h0 = perf_counter_ns() if PROFILER.enabled else 0
        merged: List[AccessSegment] = []
        for per_segment in zip(*all_rounds):
            times = sorted(s.probe_ns for s in per_segment)
            if self.max_resamples:
                kept = mad_clip(times, nmads=3.0)
                if kept:
                    times = sorted(kept)
            median = times[len(times) // 2]
            first = per_segment[0]
            merged.append(
                AccessSegment(
                    offset=first.offset,
                    length=first.length,
                    probe_ns=median,
                    probes=sum(s.probes for s in per_segment),
                )
            )
        if PROFILER.enabled:
            PROFILER.add("icl.fccd.merge", perf_counter_ns() - _h0)
        return merged

    @staticmethod
    def _rounds_contaminated(all_rounds: Sequence[Sequence[AccessSegment]]) -> bool:
        """True when MAD rejection discards any segment's observation."""
        for per_segment in zip(*all_rounds):
            times = [s.probe_ns for s in per_segment]
            if len(mad_clip(times, nmads=3.0)) < len(times):
                return True
        return False

    def plan_file(self, path: str, align: int = 1, rounds: int = 1) -> Generator:
        """Open, probe, and close one file; returns a :class:`FilePlan`.

        ``rounds > 1`` probes repeatedly and medians the observations —
        worthwhile when other processes' I/O adds timing noise.
        """
        with self.obs.span("fccd.plan_file", path=path, rounds=rounds) as span:
            fd = (yield from self._retry(sc.open(path))).value
            try:
                size = (yield from self._retry(sc.fstat(fd))).value.size
                span.attrs["size"] = size
                if rounds == 1:
                    segments = yield from self.probe_fd(fd, size, align)
                else:
                    segments = yield from self.probe_fd_repeated(
                        fd, size, align, rounds
                    )
            finally:
                yield sc.close(fd)
        self.obs.count("icl.fccd.files_planned")
        return FilePlan(path=path, size=size, segments=segments)

    def best_ranges(self, path: str, align: int = 1) -> Generator:
        """The common library call: (offset, length) pairs, cached-first."""
        plan = yield from self.plan_file(path, align)
        return plan.ordered_ranges()

    # ------------------------------------------------------------------
    # Ordering many files
    # ------------------------------------------------------------------
    def plan_files(self, paths: Sequence[str], align: int = 1) -> Generator:
        """Probe each file; returns {path: FilePlan}."""
        plans = {}
        for path in paths:
            plans[path] = yield from self.plan_file(path, align)
        return plans

    def order_files(self, paths: Sequence[str], align: int = 1) -> Generator:
        """Best whole-file access order: lowest mean probe time first.

        Ties (and the unprobeable) keep their command-line order, which
        is what an unmodified application would have used anyway.
        """
        plans = yield from self.plan_files(paths, align)
        indexed = list(enumerate(paths))
        indexed.sort(key=lambda pair: (plans[pair[1]].mean_probe_ns, pair[0]))
        return [path for _i, path in indexed], plans

    def order_files_confident(
        self,
        paths: Sequence[str],
        align: int = 1,
        rounds: int = 3,
        min_confidence: float = 0.25,
    ) -> Generator:
        """Noise-hardened ordering with a confidence-gated answer.

        Each file is probed ``rounds`` times (medianed, outlier-clipped,
        resampled within :attr:`max_resamples` — see
        :meth:`probe_fd_repeated`), then the per-file scores are
        two-means clustered into cached/uncached populations.  The
        split's :attr:`~repro.toolbox.cluster.ClusterSplit.confidence`
        (variance explained) gates the answer: below ``min_confidence``
        the whole sweep is re-planned, up to :attr:`max_resamples`
        times, and a final low-confidence answer is reported via the
        ``icl.low_confidence`` counter/event so callers (and the
        robustness harness) can treat it as "don't know" rather than
        silently trusting a coin flip.

        Returns ``(ordered_paths, plans, confidence)``.  Note a
        genuinely uniform population (everything cached, or nothing)
        legitimately scores low; the gate bounds *wrong* answers, the
        caller decides what low confidence means for its workload.
        """
        attempts = 0
        while True:
            plans = {}
            for path in paths:
                plans[path] = yield from self.plan_file(path, align, rounds=rounds)
            _h0 = perf_counter_ns() if PROFILER.enabled else 0
            scores = [plans[path].mean_probe_ns for path in paths]
            split = two_means(scores) if scores else None
            confidence = split.confidence if split is not None else 0.0
            if PROFILER.enabled:
                PROFILER.add("icl.fccd.cluster", perf_counter_ns() - _h0)
            if confidence >= min_confidence or attempts >= self.max_resamples:
                break
            attempts += 1
            self.obs.count("icl.resample")
        if confidence < min_confidence:
            self.obs.count("icl.low_confidence")
            self.obs.event(
                "icl.low_confidence",
                icl="fccd",
                confidence=round(confidence, 4),
                files=len(paths),
            )
        indexed = list(enumerate(paths))
        indexed.sort(key=lambda pair: (plans[pair[1]].mean_probe_ns, pair[0]))
        return [path for _i, path in indexed], plans, confidence
