"""Model-based cache detection — the approach the paper rejects (§4.1.1).

"Given complete knowledge of the behavior of the file-cache
page-replacement algorithm as well as the ability to observe its every
input, we could model or simulate which pages are in cache.  However,
this approach is likely to be both complex and inaccurate. ... if a
single process does not obey the rules, our knowledge of what has been
accessed is incomplete and our simulation will be inaccurate."

:class:`ModelFCCD` implements exactly that strawman so the argument can
be measured: it interposes on one client's file accesses, feeds them to
a private LRU mirror of the cache, and answers content queries from the
mirror — zero probes, zero Heisenberg effect, and zero awareness of any
other process.  The ablation benchmark shows it matching probe-based
FCCD while it sees every input, then silently rotting the moment an
unobserved process shares the machine.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

from repro.sim import syscalls as sc

MIB = 1024 * 1024


@dataclass
class ModelReport:
    """What the mirror believes about one file."""

    path: str
    size: int
    predicted_cached_pages: Set[int] = field(default_factory=set)

    def predicted_fraction(self, page_size: int) -> float:
        total = -(-self.size // page_size) if self.size else 0
        if total == 0:
            return 0.0
        return len(self.predicted_cached_pages) / total


class ModelFCCD:
    """An input-observing cache simulator for a single client.

    The client routes its reads/writes through :meth:`read` /
    :meth:`write` (interposition); the model replays them against a
    strict-LRU mirror sized like the real cache.  ``capacity_bytes`` and
    ``page_size`` are the "complete algorithmic knowledge" the paper's
    strawman assumes.
    """

    def __init__(self, capacity_bytes: int, page_size: int) -> None:
        if capacity_bytes <= 0 or page_size <= 0:
            raise ValueError("capacity and page size must be positive")
        self.page_size = page_size
        self.capacity_pages = capacity_bytes // page_size
        # (path, page_index) -> None, in LRU order.
        self._mirror: "OrderedDict[Tuple[str, int], None]" = OrderedDict()
        self._sizes: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # The mirror
    # ------------------------------------------------------------------
    def _touch_pages(self, path: str, offset: int, nbytes: int) -> None:
        if nbytes <= 0:
            return
        first = offset // self.page_size
        last = (offset + nbytes - 1) // self.page_size
        for index in range(first, last + 1):
            key = (path, index)
            self._mirror.pop(key, None)
            self._mirror[key] = None
        while len(self._mirror) > self.capacity_pages:
            self._mirror.popitem(last=False)

    def forget_file(self, path: str) -> None:
        """Drop a file from the mirror (client unlinked/truncated it)."""
        doomed = [k for k in self._mirror if k[0] == path]
        for key in doomed:
            del self._mirror[key]
        self._sizes.pop(path, None)

    # ------------------------------------------------------------------
    # Interposed file operations (the client's only access path)
    # ------------------------------------------------------------------
    def read(self, fd: int, path: str, offset: int, nbytes: int) -> Generator:
        """Interposed pread: performs the syscall and updates the mirror."""
        result = yield sc.pread(fd, offset, nbytes)
        self._touch_pages(path, offset, result.value.nbytes)
        return result

    def write(self, fd: int, path: str, offset: int, data) -> Generator:
        result = yield sc.pwrite(fd, offset, data)
        nbytes = result.value
        self._touch_pages(path, offset, nbytes)
        self._sizes[path] = max(self._sizes.get(path, 0), offset + nbytes)
        return result

    # ------------------------------------------------------------------
    # Queries (no syscalls at all — that is the selling point and the trap)
    # ------------------------------------------------------------------
    def report(self, path: str, size: int) -> ModelReport:
        predicted = {
            index for (p, index) in self._mirror if p == path
        }
        return ModelReport(path=path, size=size, predicted_cached_pages=predicted)

    def order_files(self, sized_paths: Sequence[Tuple[str, int]]) -> List[str]:
        """Best predicted access order: most-cached fraction first."""
        scored = []
        for position, (path, size) in enumerate(sized_paths):
            fraction = self.report(path, size).predicted_fraction(self.page_size)
            scored.append((-fraction, position, path))
        return [path for _f, _p, path in sorted(scored)]

    @property
    def mirrored_pages(self) -> int:
        return len(self._mirror)
