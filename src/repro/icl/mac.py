"""MAC — the Memory-based Admission Controller (§4.3).

``gb_alloc(minimum, maximum, multiple)`` returns memory guaranteed (at
grant time) to fit in what is *currently available*, discovered purely
by timing page touches:

* memory is probed in chunks with **two sequential write loops**; the
  first moves the pages to a known state (allocated, zeroed), the second
  verifies that every page is still resident — all-fast means the chunk
  fits;
* if the first loop sees **several slow points in near succession**,
  the page daemon has been activated: the chunk is abandoned
  immediately, without waiting for the verify loop;
* chunk sizes follow a TCP-like but more conservative schedule: start
  small, double while chunks fit (up to a cap), and **back off
  completely** to the initial increment on any failure (§4.3.2);
* thresholds come from the microbenchmark repository when present and
  from a quick self-calibration otherwise (§4.3.2's two methods).

Each probed chunk is its own vm region, so a failed chunk can be
returned to the OS immediately while the confirmed ones stay put — that
is what makes the grant atomic: the pages are already allocated and
resident when ``gb_alloc`` returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Tuple

from repro.icl.base import ICL, TechniqueProfile, register_icl
from repro.sim import syscalls as sc
from repro.sim.clock import MICROS, MILLIS, SECONDS

MIB = 1024 * 1024


@dataclass
class GbAllocation:
    """A successful grant: the regions held and the usable byte count."""

    regions: List[Tuple[int, int]]  # (region_id, npages)
    granted_bytes: int
    page_size: int

    @property
    def total_pages(self) -> int:
        return sum(npages for _rid, npages in self.regions)

    def pages(self) -> Generator:
        """Iterate (region_id, page_index) over every granted page."""
        for region_id, npages in self.regions:
            for index in range(npages):
                yield region_id, index


@register_icl
class MAC(ICL):
    """Memory-based Admission Controller."""

    name = "mac"
    profile = TechniqueProfile(
        knowledge="Working-set replacement: fitting memory stays resident",
        outputs="Time for page-touch probes",
        statistics="Threshold + consecutive-slow run detection",
        benchmarks="Page-zero and page-touch times (or self-calibration)",
        probes="Two sequential write loops over each chunk",
        known_state="First loop allocates/zeroes every probed page",
        feedback="TCP-like increase/back-off of the probe increment",
    )

    def __init__(
        self,
        repository=None,
        rng=None,
        page_size: int = 4096,
        initial_increment_bytes: int = 4 * MIB,
        max_increment_bytes: int = 64 * MIB,
        slow_count: int = 2,
        slow_window_touches: int = 256,
        reverify_stride: int = 1,
        settle_ns: int = 20 * MILLIS,
        increment_policy: str = "paper",
        obs=None,
        batch_probes: bool = True,
        retry=None,
        robust_verify: bool = False,
        verify_retries: int = 0,
        step_markers: bool = False,
    ) -> None:
        super().__init__(repository, rng, obs, retry, step_markers)
        # Batched probing (default on) issues each probe loop as one
        # vectored ``touch_batch`` carrying the same windowed slow
        # detector kernel-side, so timings, pages touched, and abort
        # points match the sequential loops exactly.
        self.batch_probes = batch_probes
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if slow_count < 1 or slow_window_touches < slow_count:
            raise ValueError("need 1 <= slow_count <= slow_window_touches")
        self.page_size = page_size
        self.initial_increment_pages = max(initial_increment_bytes // page_size, 1)
        self.max_increment_pages = max(max_increment_bytes // page_size, 1)
        # "Several slow data points in near succession" (§4.3.1): the
        # page daemon reclaims in clustered batches, so its stalls recur
        # every batch rather than back-to-back; a windowed count is the
        # robust form of the paper's consecutive-slow detector.  These
        # are the parameters the paper admits are tuned per platform.
        self.slow_count = slow_count
        self.slow_window_touches = slow_window_touches
        self.reverify_stride = reverify_stride
        # Pause between the two probe loops.  The first loop moves the
        # chunk to a known state; the pause gives any competing process
        # a scheduling quantum to re-assert its working set, so the
        # verify loop measures steady state rather than a thrash lull —
        # the working-set assumption of §4.3.1 made operational.
        self.settle_ns = settle_ns
        # Increment schedule (§4.3.2, and the ablation benchmark):
        #   "paper"      — slow doubling up to the cap, complete back-off
        #                  to the initial increment on any failure;
        #   "fixed"      — always the initial increment (safe but slow);
        #   "aggressive" — doubling, but back off only by half (TCP-like
        #                  multiplicative decrease, which the paper
        #                  deliberately rejects as not conservative
        #                  enough for memory).
        if increment_policy not in ("paper", "fixed", "aggressive"):
            raise ValueError(f"unknown increment policy {increment_policy!r}")
        self.increment_policy = increment_policy
        # Noise hardening (both default off, leaving the quiet-path
        # behaviour untouched).  ``robust_verify`` runs the verify loops
        # with the same windowed slow detector as loop 1 instead of
        # failing on the first slow touch, so one scheduling spike in a
        # thousand resident touches no longer vetoes a fitting chunk —
        # genuine memory pressure still trips it because page-daemon
        # stalls arrive clustered.  ``verify_retries`` re-runs a failed
        # verify loop up to N times after a settle pause; spike noise
        # passes on re-touch (the pages are in fact resident) while real
        # pressure keeps re-evicting and keeps failing.
        if verify_retries < 0:
            raise ValueError("verify_retries must be >= 0")
        self.robust_verify = robust_verify
        self.verify_retries = verify_retries
        self._slow_threshold_ns: Optional[int] = None
        self.stats = MacStats()

    @property
    def _verify_slow_count(self) -> int:
        return self.slow_count if self.robust_verify else 1

    @property
    def _verify_slow_window(self) -> int:
        return self.slow_window_touches if self.robust_verify else 1

    # ------------------------------------------------------------------
    # Threshold calibration (§4.3.2 "Memory-differentiation threshold")
    # ------------------------------------------------------------------
    def slow_threshold_ns(self) -> Generator:
        """The in-memory/out-of-memory boundary, calibrated lazily.

        Method 1: if the microbenchmark repository advertises page-zero
        and disk latencies, the threshold is their geometric mean —
        squarely between the two latency populations.  Method 2: touch a
        few certainly-resident pages and call anything 20x slower than
        the worst of them "slow" (floored at 50 µs).
        """
        if self._slow_threshold_ns is not None:
            return self._slow_threshold_ns
        repo = self.repository
        if repo.has("mem.page_zero_ns") and repo.has("disk.random_access_ns"):
            zero = repo.get("mem.page_zero_ns")
            disk = repo.get("disk.random_access_ns")
            self._slow_threshold_ns = int((zero * disk) ** 0.5)
            return self._slow_threshold_ns
        region = (yield sc.vm_alloc(8 * self.page_size, "mac-calibrate")).value
        first = (yield from self._retry(sc.touch_range(region, 0, 8))).value
        second = (yield from self._retry(sc.touch_range(region, 0, 8))).value
        yield sc.vm_free(region)
        worst = max(max(first), max(second))
        self._slow_threshold_ns = max(20 * worst, 50 * MICROS)
        return self._slow_threshold_ns

    # ------------------------------------------------------------------
    # Chunk probing
    # ------------------------------------------------------------------
    def _probe_chunk(self, region_id: int, npages: int, threshold: int) -> Generator:
        """Two-loop probe of a fresh chunk; True if it fits in memory."""
        if self.batch_probes:
            loop1 = (
                yield from self._retry(
                    sc.touch_batch(
                        region_id,
                        0,
                        npages,
                        threshold_ns=threshold,
                        slow_count=self.slow_count,
                        slow_window=self.slow_window_touches,
                    )
                )
            ).value
            self.stats.probe_touches += loop1.pages_touched
            if loop1.stopped:
                # The page daemon woke up: skip straight to verification.
                self.stats.loop1_aborts += 1
                self.obs.count("icl.mac.loop1_aborts")
            reached = loop1.pages_touched
            # A trip on the final page still leaves reached == npages —
            # the sequential loop counts that chunk as fitting (loop 2
            # is what catches it), so length alone decides here too.
            fits = reached == npages
            if fits and self.settle_ns:
                yield sc.sleep(self.settle_ns)
            if fits:
                fits = yield from self._verify_loop(region_id, reached, threshold)
            return fits
        slow_marks: List[int] = []
        reached = npages
        for index in range(npages):
            result = yield from self._retry(sc.touch(region_id, index))
            self.stats.probe_touches += 1
            if result.elapsed_ns > threshold:
                slow_marks.append(index)
                recent = [
                    m for m in slow_marks if index - m < self.slow_window_touches
                ]
                if len(recent) >= self.slow_count:
                    # The page daemon woke up: skip straight to verification.
                    self.stats.loop1_aborts += 1
                    self.obs.count("icl.mac.loop1_aborts")
                    reached = index + 1
                    break
        fits = reached == npages
        if fits and self.settle_ns:
            yield sc.sleep(self.settle_ns)
        if fits:
            fits = yield from self._verify_loop(region_id, reached, threshold)
        return fits

    def _verify_loop(self, region_id: int, npages: int, threshold: int) -> Generator:
        """The second probe loop, with the hardening knobs applied.

        Stock behaviour (``robust_verify`` off, ``verify_retries`` 0):
        one pass failing on the first slow touch — exactly the paper's
        verify loop.  Hardened, the pass uses the windowed slow detector
        and a failed pass is re-run after a settle pause, bounded by
        ``verify_retries``.
        """
        attempt = 0
        while True:
            if self.batch_probes:
                loop2 = (
                    yield from self._retry(
                        sc.touch_batch(
                            region_id,
                            0,
                            npages,
                            threshold_ns=threshold,
                            slow_count=self._verify_slow_count,
                            slow_window=self._verify_slow_window,
                        )
                    )
                ).value
                self.stats.probe_touches += loop2.pages_touched
                fits = not loop2.stopped
            else:
                fits = True
                slow_marks: List[int] = []
                for index in range(npages):
                    result = yield from self._retry(sc.touch(region_id, index))
                    self.stats.probe_touches += 1
                    if result.elapsed_ns > threshold:
                        slow_marks.append(index)
                        recent = [
                            m
                            for m in slow_marks
                            if index - m < self._verify_slow_window
                        ]
                        if len(recent) >= self._verify_slow_count:
                            fits = False
                            break
            if fits or attempt >= self.verify_retries:
                return fits
            attempt += 1
            self.stats.verify_retries += 1
            self.obs.count("icl.mac.verify_retries")
            if self.settle_ns:
                yield sc.sleep(self.settle_ns)

    def _reverify(self, regions: List[Tuple[int, int]], threshold: int) -> Generator:
        """Residency check of the already-confirmed chunks.

        Guards against the case where growing the allocation silently
        paged out MAC's own earlier pages instead of slowing the new
        chunk.  With the default stride of 1 this re-touches the whole
        allocation every iteration — the paper's O(n²) probing, whose
        cost it calls out as half of gb-fastsort's overhead (§4.3.3).
        A larger stride samples instead (the cheap-probe ablation).
        """
        attempt = 0
        while True:
            ok = yield from self._reverify_once(regions, threshold)
            if ok or attempt >= self.verify_retries:
                return ok
            attempt += 1
            self.stats.verify_retries += 1
            self.obs.count("icl.mac.verify_retries")
            if self.settle_ns:
                yield sc.sleep(self.settle_ns)

    def _reverify_once(
        self, regions: List[Tuple[int, int]], threshold: int
    ) -> Generator:
        """One residency pass over the confirmed regions."""
        if self.batch_probes:
            for region_id, npages in regions:
                result = (
                    yield from self._retry(
                        sc.touch_batch(
                            region_id,
                            0,
                            npages,
                            stride=self.reverify_stride,
                            threshold_ns=threshold,
                            slow_count=self._verify_slow_count,
                            slow_window=self._verify_slow_window,
                        )
                    )
                ).value
                self.stats.probe_touches += result.pages_touched
                if result.stopped:
                    return False
            return True
        for region_id, npages in regions:
            slow_marks: List[int] = []
            for index in range(0, npages, self.reverify_stride):
                result = yield from self._retry(sc.touch(region_id, index))
                self.stats.probe_touches += 1
                if result.elapsed_ns > threshold:
                    slow_marks.append(index)
                    recent = [
                        m for m in slow_marks if index - m < self._verify_slow_window
                    ]
                    if len(recent) >= self._verify_slow_count:
                        return False
        return True

    # ------------------------------------------------------------------
    # The public interface
    # ------------------------------------------------------------------
    def gb_alloc(
        self, minimum_bytes: int, maximum_bytes: int, multiple_bytes: int = 1
    ) -> Generator:
        """Allocate between minimum and maximum bytes of *available* memory.

        Returns a :class:`GbAllocation` or ``None`` when the minimum is
        not currently available.  ``multiple_bytes`` rounds the granted
        figure down (e.g. to a record size); the grant never exceeds
        ``maximum_bytes``.
        """
        if not 0 < minimum_bytes <= maximum_bytes:
            raise ValueError("need 0 < minimum <= maximum")
        if multiple_bytes <= 0:
            raise ValueError("multiple must be positive")
        if minimum_bytes % multiple_bytes:
            raise ValueError("minimum must itself be a multiple")
        threshold = yield from self.slow_threshold_ns()
        page = self.page_size
        max_pages = -(-maximum_bytes // page)
        min_pages = -(-minimum_bytes // page)

        regions: List[Tuple[int, int]] = []
        confirmed = 0
        increment = self.initial_increment_pages
        with self.obs.span(
            "mac.gb_alloc", min_bytes=minimum_bytes, max_bytes=maximum_bytes
        ) as alloc_span:
            while confirmed < max_pages:
                chunk = min(increment, max_pages - confirmed)
                region_id = (yield sc.vm_alloc(chunk * page, "gb_alloc")).value
                with self.obs.span(
                    "mac.alloc_round", chunk_pages=chunk, confirmed_pages=confirmed
                ) as round_span:
                    touches_before = self.stats.probe_touches
                    fits = yield from self._probe_chunk(region_id, chunk, threshold)
                    if fits:
                        fits = yield from self._reverify(regions, threshold)
                    round_span.attrs["fits"] = fits
                    round_span.attrs["touches"] = (
                        self.stats.probe_touches - touches_before
                    )
                self.obs.count(
                    "icl.mac.probe_touches",
                    self.stats.probe_touches - touches_before,
                )
                if fits:
                    regions.append((region_id, chunk))
                    confirmed += chunk
                    if self.increment_policy != "fixed":
                        increment = min(increment * 2, self.max_increment_pages)
                else:
                    yield sc.vm_free(region_id)
                    self.stats.backoffs += 1
                    self.obs.count("icl.mac.backoffs")
                    if increment == self.initial_increment_pages:
                        break  # even the smallest increment does not fit
                    if self.increment_policy == "aggressive":
                        increment = max(increment // 2, self.initial_increment_pages)
                    else:
                        increment = self.initial_increment_pages
                # One alloc round (probe + verify of one chunk) is one
                # arena step (no-op unless step_markers is set).
                yield from self.checkpoint()

            granted = (confirmed * page // multiple_bytes) * multiple_bytes
            granted = min(granted, maximum_bytes)
            alloc_span.attrs["granted_bytes"] = granted
        if granted < minimum_bytes:
            for region_id, _npages in regions:
                yield sc.vm_free(region_id)
            self.stats.denials += 1
            self.obs.count("icl.mac.denials")
            return None
        self.stats.grants += 1
        self.obs.count("icl.mac.grants")
        return GbAllocation(regions=regions, granted_bytes=granted, page_size=page)

    def gb_free(self, allocation: GbAllocation) -> Generator:
        """Release a grant (applications pair this with every gb_alloc)."""
        for region_id, _npages in allocation.regions:
            yield sc.vm_free(region_id)
        allocation.regions.clear()

    def gb_alloc_wait(
        self,
        minimum_bytes: int,
        maximum_bytes: int,
        multiple_bytes: int = 1,
        retry_ns: int = 250 * MILLIS,
        max_wait_ns: int = 600 * SECONDS,
    ) -> Generator:
        """Retry gb_alloc until memory frees up (admission control proper).

        The paper anticipates applications "simply try to allocate memory
        again ... after waiting some period of time"; this wraps that
        loop.  Raises TimeoutError after ``max_wait_ns`` so deadlocked
        workloads fail loudly rather than spin forever.
        """
        deadline = (yield sc.gettime()).value + max_wait_ns
        while True:
            allocation = yield from self.gb_alloc(
                minimum_bytes, maximum_bytes, multiple_bytes
            )
            if allocation is not None:
                return allocation
            now = (yield sc.gettime()).value
            if now >= deadline:
                raise TimeoutError(
                    f"gb_alloc_wait: {minimum_bytes} bytes not available "
                    f"after {max_wait_ns / 1e9:.1f}s"
                )
            yield sc.sleep(retry_ns)
            self.stats.waits += 1
            self.obs.count("icl.mac.waits")
            # Each failed admission attempt is an arena step: a waiting
            # tenant must not hold the shared kernel while it polls.
            yield from self.checkpoint()


@dataclass
class MacStats:
    """Observable MAC behaviour, used by Figure 7's overhead breakdown."""

    probe_touches: int = 0
    loop1_aborts: int = 0
    backoffs: int = 0
    grants: int = 0
    denials: int = 0
    waits: int = 0
    verify_retries: int = 0
