"""Composing FCCD and FLDC (§4.2.4).

"For the best ordering of files, an application should first access
those files in cache and then access the rest according to their
i-number ordering."  FCCD only *sorts* by probe time; to split files
into in-cache and on-disk populations we apply the toolbox's exact
two-means clustering to the per-file probe times, then sort *both*
groups by i-number (the predictions may be wrong — e.g. everything is
on disk — and i-number order is the safe fallback).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, List, Sequence

from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.toolbox.cluster import two_means

# Probe-time populations less than this factor apart are treated as one
# group: memory hits and disk misses differ by ~1000x, so any genuine
# split clears this easily while scheduling jitter does not.
MIN_SEPARATION_FACTOR = 20.0


@dataclass
class ComposedOrdering:
    """The composed plan plus the evidence behind it."""

    order: List[str]
    predicted_cached: List[str] = field(default_factory=list)
    predicted_on_disk: List[str] = field(default_factory=list)
    split_detected: bool = False


def compose_order(
    fccd: FCCD, fldc: FLDC, paths: Sequence[str], align: int = 1
) -> Generator:
    """Best composed access order for a set of files.

    Probes every file with FCCD, clusters probe times into (fast, slow),
    stats every file with FLDC, and returns fast-group-by-inumber then
    slow-group-by-inumber.  When clustering finds no convincing split,
    everything is ordered purely by i-number.
    """
    paths = list(paths)
    if not paths:
        return ComposedOrdering(order=[])
    plans = yield from fccd.plan_files(paths, align)
    _ordered, stats = yield from fldc.layout_order(paths)

    def ino_key(path: str):
        return (stats[path].fs_id, stats[path].ino)

    if len(paths) == 1:
        return ComposedOrdering(order=paths, predicted_on_disk=paths)

    # Cluster in log space: cache hits and disk misses differ by three
    # orders of magnitude, but the *miss* population has a large linear
    # spread (seek distances), which would dominate a linear two-means
    # split.  In log space the hit/miss gap is the widest feature.
    times = [math.log(max(plans[p].mean_probe_ns, 1.0)) for p in paths]
    split = two_means(times)
    genuine = bool(split.high_group) and (
        split.high_center - split.low_center >= math.log(MIN_SEPARATION_FACTOR)
    )
    if not genuine:
        fccd.obs.count("icl.compose.no_split")
        order = sorted(paths, key=ino_key)
        return ComposedOrdering(
            order=order, predicted_on_disk=order, split_detected=False
        )
    fccd.obs.count("icl.compose.split_detected")
    cached = sorted((paths[i] for i in split.low_group), key=ino_key)
    on_disk = sorted((paths[i] for i in split.high_group), key=ino_key)
    return ComposedOrdering(
        order=cached + on_disk,
        predicted_cached=cached,
        predicted_on_disk=on_disk,
        split_detected=True,
    )
