"""FLDC — the File Layout Detector and Controller (§4.2).

Algorithmic knowledge assumed (FFS descendants): files created together
in a directory get adjacent i-numbers *and* nearby data blocks inside
the directory's cylinder group.  Therefore:

* **detection** — ``stat()`` every file and sort by (filesystem,
  i-number); this approximates on-disk order without any privileged
  block-map access.  Sorting by i-number "essentially obviates the need
  to sort by directory" because i-numbers cluster per cylinder group.
* **control** — a directory *refresh* (§4.2.2) moves the system back to
  the known state where i-number order matches layout: copy files out
  to a temporary sibling directory smallest-first (large files, which
  decorrelate numbering from layout, get the late i-numbers), preserve
  timestamps, delete originals, rename the temporary into place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Generator, List, Optional, Sequence, Tuple

from repro.icl.base import ICL, TechniqueProfile, register_icl
from repro.obs.profile import PROFILER
from repro.sim import syscalls as sc
from repro.sim.fs.inode import StatResult

MIB = 1024 * 1024
COPY_CHUNK = 1 * MIB


@dataclass
class RefreshReport:
    """What a directory refresh did, for logging and tests."""

    directory: str
    files_moved: int
    bytes_copied: int
    order: List[str] = field(default_factory=list)


@register_icl
class FLDC(ICL):
    """File Layout Detector and Controller."""

    name = "fldc"
    profile = TechniqueProfile(
        knowledge="FFS: creation order ~ i-number order ~ block layout",
        outputs="i-numbers from stat(); stat latency",
        statistics="Sort by i-number",
        benchmarks="None",
        probes="stat() of each candidate file",
        known_state="Directory refresh re-packs layout",
        feedback="None",
    )

    def __init__(
        self, repository=None, rng=None, obs=None, batch_probes: bool = True,
        retry=None, step_markers: bool = False,
    ) -> None:
        """``batch_probes`` (default on) sweeps paths with one vectored
        ``stat_batch`` per call instead of per-path ``stat`` calls; path
        resolution walks identical cache state in identical order, so
        the observed i-numbers and stat latencies are unchanged."""
        super().__init__(repository, rng, obs, retry, step_markers)
        self.batch_probes = batch_probes

    # ------------------------------------------------------------------
    # Detection
    # ------------------------------------------------------------------
    def stat_files(self, paths: Sequence[str]) -> Generator:
        """Probe each file with stat(); returns {path: StatResult}."""
        stats = {}
        if self.batch_probes:
            with self.obs.span_batch("fldc.stat_batch", len(paths)):
                results = (yield from self._retry(sc.stat_batch(list(paths)))).value
            for path, probe in zip(paths, results):
                stats[path] = probe.stat
        else:
            # Distinct span name: exported JSONL must distinguish the
            # sequential sweep from the vectored ``fldc.stat_batch``.
            with self.obs.span("fldc.stat_sweep", files=len(paths)):
                for path in paths:
                    stats[path] = (yield from self._retry(sc.stat(path))).value
        self.obs.count("icl.fldc.stats", len(paths))
        # One stat sweep = one arena step (no-op unless step_markers).
        yield from self.checkpoint()
        return stats

    def layout_order(self, paths: Sequence[str]) -> Generator:
        """Paths sorted by probable disk layout: (filesystem, i-number)."""
        stats = yield from self.stat_files(paths)
        # Host-side sweep analysis (no yields): profiled as icl.fldc.order.
        if PROFILER.enabled:
            _h0 = perf_counter_ns()
            ordered = sorted(paths, key=lambda p: (stats[p].fs_id, stats[p].ino))
            PROFILER.add("icl.fldc.order", perf_counter_ns() - _h0)
        else:
            ordered = sorted(paths, key=lambda p: (stats[p].fs_id, stats[p].ino))
        return ordered, stats

    def write_time_order(self, paths: Sequence[str]) -> Generator:
        """The LFS layout-knowledge module (§4.2.5 discussion).

        On a log-structured filesystem, blocks live where the log head
        was when they were written, so modification time — not i-number
        — predicts layout.  mtime has one-second resolution (the same
        limitation §4.2.1 notes for creation times), so same-second ties
        fall back to i-number, which on a fresh directory still encodes
        creation order.
        """
        stats = yield from self.stat_files(paths)
        ordered = sorted(
            paths, key=lambda p: (stats[p].mtime, stats[p].fs_id, stats[p].ino)
        )
        return ordered, stats

    @staticmethod
    def directory_order(paths: Sequence[str]) -> List[str]:
        """The weaker heuristic: group by directory name, then name.

        Needs no probes at all — pure algorithmic knowledge that files
        in one directory share a cylinder group (§4.2.1); Figure 5 shows
        it recovers only a fraction of the i-number ordering's benefit.
        """
        def split(path: str) -> Tuple[str, str]:
            head, _sep, tail = path.rpartition("/")
            return head, tail

        return sorted(paths, key=split)

    # ------------------------------------------------------------------
    # Control: directory refresh
    # ------------------------------------------------------------------
    def refresh_directory(
        self,
        dir_path: str,
        order: Optional[Sequence[str]] = None,
    ) -> Generator:
        """Re-pack a directory so i-number order matches layout again.

        Follows the paper's six steps (§4.2.2): temporary sibling
        directory; sort files by size (or caller-specified ``order``);
        copy in that order; restore timestamps (so make(1) still works);
        delete originals; rename the temporary over the old name.

        Only regular files are supported; a refresh of a directory with
        subdirectories raises.  The atomicity caveat of the paper
        (footnote 4) applies here too — the simulated kernel has no
        crash model, so the nightly fix-up script is out of scope.
        """
        dir_path = dir_path.rstrip("/")
        tmp_path = dir_path + ".gbrefresh"
        with self.obs.span("fldc.refresh", directory=dir_path) as span:
            names = (yield from self._retry(sc.readdir(dir_path))).value
            stats = {}
            if self.batch_probes and names:
                results = (
                    yield from self._retry(
                        sc.stat_batch([f"{dir_path}/{n}" for n in names])
                    )
                ).value
                for name, probe in zip(names, results):
                    stats[name] = probe.stat
            else:
                for name in names:
                    stats[name] = (
                        yield from self._retry(sc.stat(f"{dir_path}/{name}"))
                    ).value
            for name in names:
                if stats[name].kind.name != "FILE":
                    raise ValueError(
                        f"refresh_directory: {dir_path}/{name} is not a regular file"
                    )
            if order is None:
                # Smallest first; name breaks ties deterministically.
                ordered = sorted(names, key=lambda n: (stats[n].size, n))
            else:
                ordered = list(order)
                if sorted(ordered) != sorted(names):
                    raise ValueError(
                        "explicit refresh order must cover the directory"
                    )

            yield sc.mkdir(tmp_path)
            bytes_copied = 0
            for name in ordered:
                bytes_copied += yield from self._copy_file(
                    f"{dir_path}/{name}", f"{tmp_path}/{name}"
                )
                st = stats[name]
                yield sc.utimes(f"{tmp_path}/{name}", st.atime, st.mtime)
                # Each copied file is an arena step: a refresh of a big
                # directory must not monopolize the shared kernel.
                yield from self.checkpoint()
            for name in ordered:
                yield sc.unlink(f"{dir_path}/{name}")
            yield sc.rmdir(dir_path)
            yield sc.rename(tmp_path, dir_path)
            span.attrs["files_moved"] = len(ordered)
            span.attrs["bytes_copied"] = bytes_copied
        self.obs.count("icl.fldc.refreshes")
        return RefreshReport(
            directory=dir_path,
            files_moved=len(ordered),
            bytes_copied=bytes_copied,
            order=ordered,
        )

    def _copy_file(self, src: str, dst: str) -> Generator:
        """Copy one file, preserving real content where it exists."""
        in_fd = (yield from self._retry(sc.open(src))).value
        out_fd = (yield sc.create(dst)).value
        copied = 0
        try:
            while True:
                result = (yield sc.read(in_fd, COPY_CHUNK)).value
                if result.eof:
                    break
                payload = result.data if result.data is not None else result.nbytes
                yield sc.write(out_fd, payload)
                copied += result.nbytes
        finally:
            yield sc.close(in_fd)
            yield sc.close(out_fd)
        return copied
