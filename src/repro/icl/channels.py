"""Covert channels built from the paper's inference primitives.

The case-study ICLs infer page-cache state for *control*; their
descendants (*Page Cache Attacks*, Gruss et al.; *Sync+Sync*, Jiang &
Wang) show the same two signals form *communication* channels between
tenants who share nothing but the kernel:

* **residency channel** — the sender encodes a bit by touching (or not
  touching) the pages of one *cell* of a shared-visibility file; the
  receiver replays FCCD's probe discipline (1-byte ``pread_batch``
  sweeps, summed elapsed times) over the same cell and reads the bit
  back as fast-vs-slow.
* **dirty-writeback channel** — the sender modulates the kernel's
  bdflush-style dirty throttle (``PageCacheManager.throttle_dirty``):
  a 1-cell parks the dirty-page count just below the limit, so the
  receiver's small write crosses it and pays the flush; a 0-cell leaves
  the count near zero and the same write completes in microseconds.
  Sync+Sync's observation, on this simulator's writeback path.

Framing is shared by both channels.  A frame is a *calibration
preamble* (alternating 1/0 symbol cells — known plaintext the receiver
clusters with :func:`~repro.toolbox.cluster.two_means` to measure the
channel's separation) followed by Manchester-coded payload bits: bit 1
is the cell pair (1, 0), bit 0 is (0, 1).  Decoding is differential —
compare the two halves of each pair — so no absolute latency threshold
is needed, the same sort-don't-threshold stance the paper takes in
§4.1 (and the preamble threshold only breaks exact ties).  Optional
even parity over fixed-size blocks gives the receiver an error signal
that needs no ground truth.

Every method that talks to the OS is a generator subroutine
(``yield from`` inside a simulated process), and the drive loops tag
their :meth:`~repro.icl.base.ICL.checkpoint` boundaries with
``("tx"|"rx", cell_index)`` so an arena harness can align the two
clients' turns cell by cell (:mod:`repro.sim.arena`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional, Sequence, Tuple

from repro.icl.base import ICL, TechniqueProfile, register_icl
from repro.sim import syscalls as sc
from repro.toolbox.cluster import two_means

__all__ = [
    "FrameSpec",
    "DecodeResult",
    "encode_frame",
    "decode_frame",
    "frame_cells",
    "ber",
    "payload_bits",
    "ResidencyChannelSender",
    "ResidencyChannelReceiver",
    "WritebackChannelSender",
    "WritebackChannelReceiver",
]


# ======================================================================
# Framing codec (host-side: pure functions of bits and latencies)
# ======================================================================
@dataclass(frozen=True)
class FrameSpec:
    """Wire format of one frame, shared by sender and receiver.

    ``preamble_cells`` alternating known symbols calibrate the receiver;
    ``parity="even"`` appends one even-parity bit after every
    ``parity_block`` payload bits (and after the final partial block),
    Manchester-coded like the payload.
    """

    preamble_cells: int = 8
    parity: str = "none"  # "none" | "even"
    parity_block: int = 8

    def __post_init__(self) -> None:
        if self.preamble_cells < 2 or self.preamble_cells % 2:
            raise ValueError("preamble_cells must be an even count >= 2")
        if self.parity not in ("none", "even"):
            raise ValueError(f"unknown parity mode {self.parity!r}")
        if self.parity_block < 1:
            raise ValueError("parity_block must be >= 1")


def _framed_bits(bits: Sequence[int], spec: FrameSpec) -> List[int]:
    """Payload bits with parity bits interleaved per block."""
    if spec.parity == "none":
        return list(bits)
    framed: List[int] = []
    for start in range(0, len(bits), spec.parity_block):
        block = list(bits[start : start + spec.parity_block])
        framed.extend(block)
        framed.append(sum(block) % 2)
    return framed


def encode_frame(bits: Sequence[int], spec: FrameSpec = FrameSpec()) -> List[int]:
    """Payload bits → per-cell symbols (1 = assert the channel state).

    Layout: ``preamble_cells`` alternating 1/0 cells, then one Manchester
    pair per framed bit — (1, 0) encodes 1, (0, 1) encodes 0.
    """
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"payload bits must be 0 or 1, got {bit!r}")
    cells = [1 - (i % 2) for i in range(spec.preamble_cells)]
    for bit in _framed_bits(bits, spec):
        cells.extend((1, 0) if bit else (0, 1))
    return cells


def frame_cells(nbits: int, spec: FrameSpec = FrameSpec()) -> int:
    """Total cells a frame of ``nbits`` payload bits occupies."""
    return len(encode_frame([0] * nbits, spec))


@dataclass
class DecodeResult:
    """One decoded frame plus the receiver's channel-quality evidence."""

    bits: List[int]
    parity_errors: int = 0
    #: two-means split of the preamble cells — ``confidence`` near 1.0
    #: means the channel's two states are cleanly separable.
    threshold: float = 0.0
    confidence: float = 0.0
    cells: int = 0
    raw_bits: List[int] = field(default_factory=list)


def decode_frame(
    latencies: Sequence[float],
    spec: FrameSpec = FrameSpec(),
    one_is_slow: bool = False,
) -> DecodeResult:
    """Per-cell latencies → payload bits, differentially.

    The convention is "symbol 1 reads fast" (residency: a touched cell
    is cached); pass ``one_is_slow=True`` for channels where asserting
    the state makes the probe *slower* (writeback: a loaded throttle
    spikes the receiver's write).  Each Manchester pair decodes by
    comparing its two halves; the preamble's two-means threshold breaks
    exact ties only.
    """
    n = len(latencies)
    if n < spec.preamble_cells or (n - spec.preamble_cells) % 2:
        raise ValueError(
            f"frame of {n} cells does not fit spec (preamble "
            f"{spec.preamble_cells} + Manchester pairs)"
        )
    # Work in signal space: smaller value == symbol 1.
    signal = [-x for x in latencies] if one_is_slow else list(latencies)
    split = two_means(signal[: spec.preamble_cells])
    threshold, confidence = split.threshold, split.confidence
    raw: List[int] = []
    for i in range(spec.preamble_cells, n, 2):
        first, second = signal[i], signal[i + 1]
        if first < second:
            raw.append(1)
        elif second < first:
            raw.append(0)
        else:
            raw.append(1 if first <= threshold else 0)
    bits: List[int] = []
    parity_errors = 0
    if spec.parity == "none":
        bits = list(raw)
    else:
        i = 0
        while i < len(raw):
            chunk = raw[i : i + spec.parity_block + 1]
            data, parity = chunk[:-1], chunk[-1]
            if len(chunk) < 2:
                # A lone trailing cell pair: data with its parity lost.
                data, parity = chunk, None
            bits.extend(data)
            if parity is not None and sum(data) % 2 != parity:
                parity_errors += 1
            i += len(chunk)
    return DecodeResult(
        bits=bits,
        parity_errors=parity_errors,
        threshold=threshold,
        confidence=confidence,
        cells=n,
        raw_bits=raw,
    )


def ber(sent: Sequence[int], received: Sequence[int]) -> float:
    """Bit-error rate; a length mismatch counts every missing bit wrong."""
    if not sent and not received:
        return 0.0
    errors = sum(1 for a, b in zip(sent, received) if a != b)
    errors += abs(len(sent) - len(received))
    return errors / max(len(sent), len(received))


_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def payload_bits(seed: int, nbits: int) -> List[int]:
    """A deterministic pseudorandom payload (splitmix64 bit stream)."""
    bits: List[int] = []
    x = seed & _MASK64
    while len(bits) < nbits:
        x = (x + _GOLDEN) & _MASK64
        z = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z ^= z >> 31
        for shift in range(0, 64, 1):
            bits.append((z >> shift) & 1)
            if len(bits) == nbits:
                break
    return bits


# ======================================================================
# Residency channel (Page Cache Attacks lineage)
# ======================================================================
class _CellFile(ICL):
    """Shared plumbing: a file partitioned into page-group cells."""

    def __init__(
        self,
        path: str,
        page_size: int,
        pages_per_cell: int = 2,
        **kwargs: object,
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        if page_size < 1 or pages_per_cell < 1:
            raise ValueError("page_size and pages_per_cell must be >= 1")
        self.path = path
        self.page_size = page_size
        self.pages_per_cell = pages_per_cell

    def cell_probes(self, cell: int) -> List[Tuple[int, int]]:
        """The 1-byte probe list covering ``cell``'s page group."""
        base = cell * self.pages_per_cell
        return [
            ((base + j) * self.page_size, 1) for j in range(self.pages_per_cell)
        ]


@register_icl
class ResidencyChannelSender(_CellFile):
    """Encodes symbols by pulling (or not pulling) cell pages into cache.

    Each frame cell owns a fresh page group of the shared-visibility
    file (cold at frame start — the move-to-known-state step), so the
    receiver's own probes never contaminate a later cell: the Heisenberg
    problem is designed out rather than corrected for.
    """

    name = "chan-res-tx"
    profile = TechniqueProfile(
        knowledge="page cache is shared across tenants; algorithm: touched pages stay resident",
        outputs="None",
        statistics="None",
        benchmarks="None",
        probes="reads that pull a cell's pages into the cache (symbol 1)",
        known_state="cold target file at frame start; fresh page group per cell",
        feedback="None",
    )

    def send(self, cells: Sequence[int]) -> Generator:
        """Transmit one frame of cell symbols; one tagged step per cell."""
        fd = (yield from self._retry(sc.open_(self.path))).value
        sent = 0
        for index, symbol in enumerate(cells):
            yield from self.checkpoint(tag=("tx", index))
            if symbol:
                probes = self.cell_probes(index)
                with self.obs.span_batch(
                    "channel.residency.tx_cell", probes=len(probes), cell=index
                ):
                    yield from self._retry(sc.pread_batch(fd, probes))
                self.obs.count("channel.residency.tx_touched")
            self.obs.count("channel.tx_cells")
            sent += 1
        yield sc.close(fd)
        return {"cells_sent": sent}


@register_icl
class ResidencyChannelReceiver(_CellFile):
    """Reads symbols back as per-cell probe latency (FCCD's discipline)."""

    name = "chan-res-rx"
    profile = TechniqueProfile(
        knowledge="algorithm: cached pages answer 1-byte reads orders of magnitude faster",
        outputs="per-cell summed probe latency",
        statistics="two-means preamble calibration; Manchester pairwise compare",
        benchmarks="None",
        probes="1-byte pread batches over each cell's page group",
        known_state="None",
        feedback="None",
    )

    def receive(self, ncells: int) -> Generator:
        """Probe ``ncells`` cells in frame order; returns latencies."""
        fd = (yield from self._retry(sc.open_(self.path))).value
        latencies: List[int] = []
        for index in range(ncells):
            yield from self.checkpoint(tag=("rx", index))
            probes = self.cell_probes(index)
            with self.obs.span_batch(
                "channel.residency.rx_cell", probes=len(probes), cell=index
            ):
                reads = (yield from self._retry(sc.pread_batch(fd, probes))).value
            latencies.append(sum(p.elapsed_ns for p in reads))
            self.obs.count("channel.rx_cells")
        yield sc.close(fd)
        return latencies

    def decode(
        self, latencies: Sequence[float], spec: FrameSpec = FrameSpec()
    ) -> DecodeResult:
        return decode_frame(latencies, spec, one_is_slow=False)


# ======================================================================
# Dirty-writeback channel (Sync+Sync lineage)
# ======================================================================
@register_icl
class WritebackChannelSender(ICL):
    """Modulates the dirty throttle from a private file.

    ``load_pages`` must park the machine-wide dirty count just *below*
    the bdflush limit (the caller derives it from the parameter
    repository's ``dirty_limit_frac`` knowledge: limit minus a margin
    smaller than the receiver's probe write).  Every cell starts with
    an ``fsync`` — the move-to-known-state step that clears the
    sender's own residue so a 1-cell never self-triggers the flush it
    is arming for the receiver.
    """

    name = "chan-wb-tx"
    profile = TechniqueProfile(
        knowledge="parameters: dirty-page limit fraction of file-cache capacity",
        outputs="None",
        statistics="None",
        benchmarks="None",
        probes="a large dirtying write arming the throttle (symbol 1)",
        known_state="fsync to a clean slate at every cell boundary",
        feedback="None",
    )

    def __init__(
        self, path: str, page_size: int, load_pages: int, **kwargs: object
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        if load_pages < 1:
            raise ValueError("load_pages must be >= 1")
        self.path = path
        self.page_size = page_size
        self.load_pages = load_pages

    def send(self, cells: Sequence[int]) -> Generator:
        fd = (yield from self._retry(sc.open_(self.path))).value
        sent = 0
        for index, symbol in enumerate(cells):
            yield from self.checkpoint(tag=("tx", index))
            yield sc.fsync(fd)
            if symbol:
                with self.obs.span("channel.writeback.tx_cell", cell=index):
                    yield sc.pwrite(fd, 0, self.load_pages * self.page_size)
                self.obs.count("channel.writeback.tx_loaded")
            self.obs.count("channel.tx_cells")
            sent += 1
        # Disarm: never leak a loaded throttle past the frame's end.
        yield sc.fsync(fd)
        yield sc.close(fd)
        return {"cells_sent": sent}


@register_icl
class WritebackChannelReceiver(ICL):
    """Senses the throttle with a small timed write to a private file.

    When the sender armed the limit, this write crosses it and the
    kernel charges the flush-to-target to *this* caller — a
    milliseconds-scale spike against a microseconds-scale clean write.
    The trailing ``fsync`` cleans the receiver's own residue so probe
    cells never accumulate toward the limit themselves.
    """

    name = "chan-wb-rx"
    profile = TechniqueProfile(
        knowledge="algorithm: the dirty-limit flush is charged to the crossing writer",
        outputs="per-cell write latency (throttle spikes)",
        statistics="two-means preamble calibration; inverted Manchester compare",
        benchmarks="None",
        probes="small timed writes crossing (or not) the dirty limit",
        known_state="fsync after every probe to shed own dirty pages",
        feedback="None",
    )

    def __init__(
        self, path: str, page_size: int, probe_pages: int = 32, **kwargs: object
    ) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        if probe_pages < 1:
            raise ValueError("probe_pages must be >= 1")
        self.path = path
        self.page_size = page_size
        self.probe_pages = probe_pages

    def receive(self, ncells: int) -> Generator:
        fd = (yield from self._retry(sc.open_(self.path))).value
        latencies: List[int] = []
        for index in range(ncells):
            yield from self.checkpoint(tag=("rx", index))
            with self.obs.span("channel.writeback.rx_cell", cell=index):
                result = yield sc.pwrite(fd, 0, self.probe_pages * self.page_size)
            latencies.append(result.elapsed_ns)
            yield sc.fsync(fd)
            self.obs.count("channel.rx_cells")
        yield sc.close(fd)
        return latencies

    def decode(
        self, latencies: Sequence[float], spec: FrameSpec = FrameSpec()
    ) -> DecodeResult:
        return decode_frame(latencies, spec, one_is_slow=True)
