"""gbp — the gray-box utility for *unmodified* applications (§4.1.2).

The paper's ``gbp`` is a command-line tool; its three modes map to three
generator entry points here:

* ``gbp -mem *``      → :func:`order_paths` with mode ``"mem"`` — print
  files in predicted best cache order (FCCD);
* ``gbp -file *``     → mode ``"file"`` — i-number order (FLDC);
* ``gbp -compose *``  → mode ``"compose"`` — clustered composition;
* ``gbp -mem -out f | app`` → :func:`stream_file`, which probes a single
  file, reads its data blocks in best probe order, and copies them to a
  pipe so an application reading stdin gets intra-file re-ordering
  without modification (at the price of an extra copy through the OS).

A fork/exec-style startup overhead is charged so the "unmodified app +
gbp" bars in Figure 3 carry the slight extra cost the paper reports.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

from repro.icl.compose import compose_order
from repro.icl.fccd import FCCD
from repro.icl.fldc import FLDC
from repro.sim import syscalls as sc
from repro.sim.clock import MILLIS

MIB = 1024 * 1024

# Approximate fork+exec+libc startup of a 2001-era UNIX helper process.
STARTUP_COMPUTE_NS = 2 * MILLIS

MODES = ("mem", "file", "compose")


def order_paths(
    paths: Sequence[str],
    mode: str = "mem",
    fccd: Optional[FCCD] = None,
    fldc: Optional[FLDC] = None,
    align: int = 1,
) -> Generator:
    """The `gbp <mode> *` pipeline stage: returns re-ordered paths.

    Charges process-startup compute, then probes exactly as the linked
    library would — the residual gap between gb-app and app+gbp in
    Figure 3 comes from this startup plus the duplicate opens.
    """
    if mode not in MODES:
        raise ValueError(f"unknown gbp mode {mode!r}; expected one of {MODES}")
    yield sc.compute(STARTUP_COMPUTE_NS)
    if mode == "mem":
        ordered, _plans = yield from (fccd or FCCD()).order_files(paths, align)
        return ordered
    if mode == "file":
        ordered, _stats = yield from (fldc or FLDC()).layout_order(paths)
        return ordered
    composed = yield from compose_order(fccd or FCCD(), fldc or FLDC(), paths, align)
    return composed.order


def stream_file(
    path: str,
    out_fd: int,
    fccd: Optional[FCCD] = None,
    align: int = 1,
    chunk_bytes: int = 1 * MIB,
) -> Generator:
    """`gbp -mem -out path`: copy the file to ``out_fd`` in best probe order.

    Runs as its own process with the pipe's write end; the consumer
    (e.g. unmodified fastsort reading stdin) sees record-aligned data in
    cache-friendly order.  Returns total bytes streamed.
    """
    yield sc.compute(STARTUP_COMPUTE_NS)
    layer = fccd or FCCD()
    fd = (yield sc.open(path)).value
    streamed = 0
    try:
        size = (yield sc.fstat(fd)).value.size
        segments = yield from layer.probe_fd(fd, size, align)
        for segment in sorted(segments, key=lambda s: (s.probe_ns, s.offset)):
            offset = segment.offset
            end = segment.offset + segment.length
            while offset < end:
                take = min(chunk_bytes, end - offset)
                result = (yield sc.pread(fd, offset, take)).value
                if result.nbytes == 0:
                    break
                payload = result.data if result.data is not None else result.nbytes
                yield from _write_all(out_fd, payload, result.nbytes)
                offset += result.nbytes
                streamed += result.nbytes
    finally:
        yield sc.close(fd)
        yield sc.close(out_fd)
    return streamed


def _write_all(fd: int, payload, nbytes: int) -> Generator:
    """Write fully to a pipe, handling partial writes."""
    if isinstance(payload, (bytes, bytearray)):
        done = 0
        while done < len(payload):
            written = (yield sc.write(fd, payload[done:])).value
            done += written
    else:
        remaining = nbytes
        while remaining > 0:
            written = (yield sc.write(fd, remaining)).value
            remaining -= written
