"""A log-structured filesystem variant (the §4.2.5 discussion extension).

In LFS, data blocks are appended to a log in write order, so *temporal*
write locality — not i-number order — predicts spatial layout.  The
paper's discussion points out that porting FLDC to LFS is a matter of
swapping the layout-knowledge module: "the ICL could take advantage of
the knowledge that writes that occur near one another in time lead to
proximity in space."

This implementation reuses the FFS namespace machinery and replaces the
block allocator with a log head.  No cleaner is modelled: the simulated
disks are far larger than any experiment writes, and segment cleaning is
orthogonal to the layout-inference question the extension studies.
Freed blocks are simply abandoned (they would be reclaimed by a cleaner).
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim.errors import NoSpace
from repro.sim.fs.ffs import FFS


class LogStructuredFS(FFS):
    """FFS namespace + a bump-pointer log allocator.

    Inode numbering still comes from the FFS tables (applications see
    the same stat() interface), but i-numbers no longer predict layout —
    which is exactly what makes the FLDC knowledge-module swap
    observable: i-number ordering loses, write-time ordering wins.
    """

    # Initialized lazily: FFS.__init__ allocates the root directory's
    # blocks before a subclass __init__ could run.
    _log_head: Optional[int] = None
    _log_end: Optional[int] = None

    def alloc_blocks(
        self, want: int, preferred_cg: int, hint: Optional[int] = None
    ) -> List[int]:
        """Append ``want`` blocks at the log head, ignoring placement hints."""
        if want <= 0:
            return []
        if self._log_head is None:
            # The log begins after the first group's inode table and
            # only ever moves forward.
            self._log_head = self.groups[0].data_first
            self._log_end = self.groups[-1].first_block + self.groups[-1].nblocks
        blocks: List[int] = []
        head = self._log_head
        while len(blocks) < want:
            if head >= self._log_end:
                raise NoSpace(f"lfs{self.fs_id}: log wrapped without a cleaner")
            cg = self.cg_of_block(head)
            if head < cg.data_first:
                head = cg.data_first  # skip inode-table regions
                continue
            blocks.append(head)
            head += 1
        # Keep the group bitmaps consistent so free-space accounting and
        # double-free checks still work.
        for block in blocks:
            cg = self.cg_of_block(block)
            cg._bitmap[block - cg.data_first] = 1
            cg.free_block_count -= 1
        self._log_head = head
        return blocks

    def free_block_list(self, blocks: List[int]) -> None:
        """Freed blocks become dead segments awaiting a (non-modelled) cleaner."""
        for block in blocks:
            cg = self.cg_of_block(block)
            if cg._bitmap[block - cg.data_first]:
                cg._bitmap[block - cg.data_first] = 0
                cg.free_block_count += 1

    def rewrite_pages(self, inode, first: int, last: int) -> None:
        """Copy-on-write: overwritten pages move to the log head."""
        covered = [i for i in range(first, last + 1) if i < len(inode.blocks)]
        if not covered:
            return
        old = [inode.blocks[i] for i in covered]
        fresh = self.alloc_blocks(len(covered), preferred_cg=0)
        for index, block in zip(covered, fresh):
            inode.blocks[index] = block
        self.free_block_list(old)

    @property
    def log_head(self) -> int:
        """Current append position (oracle/testing use)."""
        return self._log_head if self._log_head is not None else self.groups[0].data_first
