"""FFS-like filesystem structures.

Pure data structures and allocators — all timing and caching decisions
live in the kernel.  The layout properties the paper's FLDC exploits are
structural here: inodes are numbered within per-directory cylinder
groups, data blocks are first-fit-contiguous near the inode, and aging
(delete/create churn) fragments both, decorrelating i-number order from
layout order until a directory refresh re-packs it.
"""

from repro.sim.fs.inode import INODE_BYTES, FileKind, Inode
from repro.sim.fs.directory import Directory, DIRENT_BYTES
from repro.sim.fs.ffs import FFS, CylinderGroup
from repro.sim.fs.vfs import MountTable, PathName

__all__ = [
    "INODE_BYTES",
    "DIRENT_BYTES",
    "FileKind",
    "Inode",
    "Directory",
    "FFS",
    "CylinderGroup",
    "MountTable",
    "PathName",
]
