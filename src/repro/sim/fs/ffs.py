"""Fast-File-System-style allocator: cylinder groups, inodes, block runs.

The allocation policy is the gray-box knowledge FLDC depends on
(§4.2.1), reproduced structurally:

* the disk is split into cylinder groups (a few consecutive cylinders);
* a new *directory* goes to the emptiest cylinder group;
* a new *file's* inode comes from its directory's group, lowest free
  i-number first — so creation order within a fresh directory is
  i-number order;
* a file's *data blocks* are allocated first-fit-contiguous inside the
  same group (spilling to later groups when full) — so on a fresh
  filesystem, i-number order is layout order;
* deletions punch holes that later creations fill first-fit, which is
  precisely how aging decorrelates i-numbers from layout (Figure 6).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.errors import FileExists, FileNotFound, InvalidArgument, NoSpace
from repro.sim.fs.directory import Directory
from repro.sim.fs.inode import INODE_BYTES, FileKind, Inode

ROOT_INO = 1


class CylinderGroup:
    """One cylinder group: an inode table plus a data-block bitmap."""

    def __init__(
        self,
        index: int,
        first_block: int,
        nblocks: int,
        inodes_per_cg: int,
        block_bytes: int,
    ) -> None:
        self.index = index
        self.first_block = first_block
        self.nblocks = nblocks
        self.inodes_per_cg = inodes_per_cg
        self.itable_blocks = -(-inodes_per_cg * INODE_BYTES // block_bytes)
        if self.itable_blocks >= nblocks:
            raise InvalidArgument(
                f"cylinder group of {nblocks} blocks cannot hold its inode table"
            )
        self.data_first = first_block + self.itable_blocks
        self.data_blocks = nblocks - self.itable_blocks
        # 0 = free, 1 = used; indexed by (block - data_first).
        self._bitmap = bytearray(self.data_blocks)
        self.free_block_count = self.data_blocks
        # Rotating allocation cursor (FFS's cg_rotor): fresh allocations
        # start where the previous one ended rather than at the group
        # start.  This is what decorrelates reused i-numbers from block
        # positions as a directory ages — deleted files leave holes
        # *behind* the rotor while their recycled i-numbers are the
        # *lowest* free ones (Figure 6's degradation).
        self.rotor = 0
        # Lowest-free-first inode slots (lazy heap + membership set).
        self._free_inode_heap: List[int] = list(range(inodes_per_cg))
        self._free_inode_set: Set[int] = set(self._free_inode_heap)

    # --- inodes -------------------------------------------------------
    @property
    def free_inode_count(self) -> int:
        return len(self._free_inode_set)

    def alloc_inode_slot(self) -> Optional[int]:
        while self._free_inode_heap:
            slot = heapq.heappop(self._free_inode_heap)
            if slot in self._free_inode_set:
                self._free_inode_set.remove(slot)
                return slot
        return None

    def free_inode_slot(self, slot: int) -> None:
        if slot in self._free_inode_set:
            raise InvalidArgument(f"double free of inode slot {slot} in cg {self.index}")
        self._free_inode_set.add(slot)
        heapq.heappush(self._free_inode_heap, slot)

    # --- blocks -------------------------------------------------------
    def alloc_run(self, want: int, hint: Optional[int] = None) -> List[int]:
        """Allocate up to ``want`` blocks, first-fit from ``hint`` (absolute).

        Returns absolute block numbers; may return fewer than ``want``
        (the caller spills to the next group).  Runs are contiguous where
        the free space allows, fragmenting naturally around holes.
        """
        if self.free_block_count == 0 or want <= 0:
            return []
        if hint is not None and hint > self.data_first:
            start_rel = min(hint - self.data_first, self.data_blocks)
        else:
            start_rel = min(self.rotor, self.data_blocks)
        got: List[int] = []
        bitmap = self._bitmap
        for sweep in (start_rel, 0):
            pos = sweep
            while len(got) < want:
                free_at = bitmap.find(0, pos)
                if free_at < 0:
                    break
                used_at = bitmap.find(1, free_at)
                run_end = used_at if used_at >= 0 else self.data_blocks
                take = min(run_end - free_at, want - len(got))
                for rel in range(free_at, free_at + take):
                    bitmap[rel] = 1
                got.extend(self.data_first + rel for rel in range(free_at, free_at + take))
                pos = free_at + take
            if len(got) >= want or sweep == 0 or start_rel == 0:
                break
        self.free_block_count -= len(got)
        if got:
            self.rotor = got[-1] + 1 - self.data_first
            if self.rotor >= self.data_blocks:
                self.rotor = 0
        return got

    def free_block(self, block: int) -> None:
        rel = block - self.data_first
        if not 0 <= rel < self.data_blocks:
            raise InvalidArgument(f"block {block} is not in cg {self.index}")
        if not self._bitmap[rel]:
            raise InvalidArgument(f"double free of block {block} in cg {self.index}")
        self._bitmap[rel] = 0
        self.free_block_count += 1

    def owns_block(self, block: int) -> bool:
        return self.data_first <= block < self.first_block + self.nblocks


class FFS:
    """One mounted FFS instance on one disk."""

    def __init__(
        self,
        fs_id: int,
        total_blocks: int,
        block_bytes: int,
        blocks_per_cg: int = 2048,
        inodes_per_cg: int = 1024,
        alloc_gap: int = 0,
    ) -> None:
        if total_blocks < blocks_per_cg:
            raise InvalidArgument("filesystem smaller than one cylinder group")
        if alloc_gap < 0:
            raise InvalidArgument("alloc_gap cannot be negative")
        self.fs_id = fs_id
        self.block_bytes = block_bytes
        self.blocks_per_cg = blocks_per_cg
        self.inodes_per_cg = inodes_per_cg
        self.alloc_gap = alloc_gap
        self.groups: List[CylinderGroup] = []
        first = 0
        index = 0
        while first + blocks_per_cg <= total_blocks:
            self.groups.append(
                CylinderGroup(index, first, blocks_per_cg, inodes_per_cg, block_bytes)
            )
            first += blocks_per_cg
            index += 1
        self.inodes: Dict[int, Inode] = {}
        self.directories: Dict[int, Directory] = {}
        # Reserve global ino 0 as invalid, like real FFS.
        self.groups[0]._free_inode_set.discard(0)
        self._make_root()

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------
    def cg_of_inode(self, ino: int) -> CylinderGroup:
        return self.groups[ino // self.inodes_per_cg]

    def cg_of_block(self, block: int) -> CylinderGroup:
        return self.groups[block // self.blocks_per_cg]

    def inode_table_block(self, ino: int) -> int:
        """Absolute disk block holding this inode's on-disk image."""
        cg = self.cg_of_inode(ino)
        slot = ino % self.inodes_per_cg
        return cg.first_block + slot * INODE_BYTES // self.block_bytes

    def get_inode(self, ino: int) -> Inode:
        try:
            return self.inodes[ino]
        except KeyError:
            raise FileNotFound(f"fs{self.fs_id}: no inode #{ino}") from None

    def get_directory(self, ino: int) -> Directory:
        inode = self.get_inode(ino)
        if not inode.is_dir:
            raise InvalidArgument(f"inode #{ino} is not a directory")
        return self.directories[ino]

    @property
    def root(self) -> Directory:
        return self.directories[ROOT_INO]

    def free_blocks_total(self) -> int:
        return sum(cg.free_block_count for cg in self.groups)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def _alloc_inode(self, preferred_cg: int) -> int:
        n = len(self.groups)
        for offset in range(n):
            cg = self.groups[(preferred_cg + offset) % n]
            slot = cg.alloc_inode_slot()
            if slot is not None:
                return cg.index * self.inodes_per_cg + slot
        raise NoSpace(f"fs{self.fs_id}: out of inodes")

    def _free_inode(self, ino: int) -> None:
        self.cg_of_inode(ino).free_inode_slot(ino % self.inodes_per_cg)

    def alloc_blocks(self, want: int, preferred_cg: int, hint: Optional[int] = None) -> List[int]:
        """Allocate ``want`` blocks, preferring the given group, spilling onward."""
        if want <= 0:
            return []
        if want > self.free_blocks_total():
            raise NoSpace(f"fs{self.fs_id}: need {want} blocks, fewer free")
        blocks: List[int] = []
        n = len(self.groups)
        for offset in range(n):
            cg = self.groups[(preferred_cg + offset) % n]
            use_hint = hint if offset == 0 else None
            got = cg.alloc_run(want - len(blocks), use_hint)
            if got and self.alloc_gap:
                # Loose packing (solaris7 personality): leave a hole
                # after each allocation request.
                cg.rotor = (cg.rotor + self.alloc_gap) % cg.data_blocks
            blocks.extend(got)
            if len(blocks) == want:
                return blocks
        raise NoSpace(f"fs{self.fs_id}: allocator found only {len(blocks)}/{want}")

    def free_block_list(self, blocks: List[int]) -> None:
        for block in blocks:
            self.cg_of_block(block).free_block(block)

    def pick_cg_for_directory(self) -> int:
        """FFS heuristic: put a new directory in the emptiest group."""
        return max(
            self.groups, key=lambda cg: (cg.free_block_count, cg.free_inode_count)
        ).index

    # ------------------------------------------------------------------
    # Namespace operations (timing-free; the kernel charges I/O)
    # ------------------------------------------------------------------
    def _make_root(self) -> None:
        cg0 = self.groups[0]
        slot = cg0.alloc_inode_slot()
        ino = slot  # cg 0, so global ino == slot; slot 0 was reserved → ino 1
        if ino != ROOT_INO:
            raise RuntimeError(f"root inode landed at #{ino}, expected #{ROOT_INO}")
        inode = Inode(ino=ino, fs_id=self.fs_id, kind=FileKind.DIRECTORY, nlink=2)
        self.inodes[ino] = inode
        self.directories[ino] = Directory(ino=ino, parent_ino=ino)
        self._grow_directory(ino)

    def _grow_directory(self, ino: int) -> List[Tuple[int, int]]:
        """Ensure the directory's data blocks cover its entries."""
        inode = self.get_inode(ino)
        directory = self.directories[ino]
        inode.size = directory.data_bytes()
        return self.grow_to_size(inode, inode.size)

    def grow_to_size(self, inode: Inode, new_size: int) -> List[Tuple[int, int]]:
        """Extend the block map to cover ``new_size`` bytes.

        Returns newly mapped (page_index, block) pairs.  The hint chains
        new blocks after the file's current tail so appends stay
        contiguous.
        """
        need_pages = -(-new_size // self.block_bytes) if new_size else 0
        added: List[Tuple[int, int]] = []
        if need_pages <= len(inode.blocks):
            inode.size = max(inode.size, new_size)
            return added
        want = need_pages - len(inode.blocks)
        hint = inode.blocks[-1] + 1 if inode.blocks else None
        preferred = self.cg_of_inode(inode.ino).index
        new_blocks = self.alloc_blocks(want, preferred, hint)
        for block in new_blocks:
            added.append((len(inode.blocks), block))
            inode.blocks.append(block)
        inode.size = max(inode.size, new_size)
        return added

    def rewrite_pages(self, inode: Inode, first: int, last: int) -> None:
        """Hook for overwrite semantics; FFS updates blocks in place.

        Log-structured descendants override this to reallocate the
        written pages at the log head (copy-on-write into the log).
        """

    def create(self, parent_ino: int, name: str, kind: FileKind, now_ns: int) -> Inode:
        """Create a file or directory entry under ``parent_ino``."""
        parent = self.get_directory(parent_ino)
        if parent.contains(name):
            raise FileExists(f"{name!r} already exists")
        if kind is FileKind.DIRECTORY:
            cg_index = self.pick_cg_for_directory()
        else:
            cg_index = self.cg_of_inode(parent_ino).index
        ino = self._alloc_inode(cg_index)
        inode = Inode(ino=ino, fs_id=self.fs_id, kind=kind)
        inode.stamp(now_ns, access=True, modify=True, change=True)
        self.inodes[ino] = inode
        if kind is FileKind.DIRECTORY:
            inode.nlink = 2
            self.directories[ino] = Directory(ino=ino, parent_ino=parent_ino)
            self._grow_directory(ino)
            self.get_inode(parent_ino).nlink += 1
        parent.add(name, ino)
        self._grow_directory(parent_ino)
        self.get_inode(parent_ino).stamp(now_ns, modify=True, change=True)
        return inode

    def unlink(self, parent_ino: int, name: str, now_ns: int) -> Tuple[Inode, List[int]]:
        """Remove a file entry; returns the dead inode and its freed blocks."""
        parent = self.get_directory(parent_ino)
        ino = parent.lookup(name)
        inode = self.get_inode(ino)
        if inode.is_dir:
            raise InvalidArgument(f"{name!r} is a directory; use rmdir")
        parent.remove(name)
        self.get_inode(parent_ino).stamp(now_ns, modify=True, change=True)
        inode.nlink -= 1
        freed = list(inode.blocks)
        self.free_block_list(freed)
        inode.blocks.clear()
        del self.inodes[ino]
        self._free_inode(ino)
        return inode, freed

    def rmdir(self, parent_ino: int, name: str, now_ns: int) -> Tuple[Inode, List[int]]:
        from repro.sim.errors import DirectoryNotEmpty

        parent = self.get_directory(parent_ino)
        ino = parent.lookup(name)
        inode = self.get_inode(ino)
        if not inode.is_dir:
            raise InvalidArgument(f"{name!r} is not a directory")
        if not self.directories[ino].is_empty:
            raise DirectoryNotEmpty(f"directory {name!r} is not empty")
        parent.remove(name)
        self.get_inode(parent_ino).nlink -= 1
        self.get_inode(parent_ino).stamp(now_ns, modify=True, change=True)
        freed = list(inode.blocks)
        self.free_block_list(freed)
        del self.directories[ino]
        del self.inodes[ino]
        self._free_inode(ino)
        return inode, freed

    def rename(self, old_parent: int, old_name: str, new_parent: int, new_name: str,
               now_ns: int) -> int:
        """Move a directory entry; returns the moved ino."""
        src = self.get_directory(old_parent)
        dst = self.get_directory(new_parent)
        ino = src.lookup(old_name)
        if dst.contains(new_name):
            raise FileExists(f"{new_name!r} already exists")
        if self.get_inode(ino).is_dir:
            # EINVAL, as POSIX demands: moving a directory into its own
            # subtree would detach it from the root into an unreachable
            # cycle with corrupted nlink counts.  Checked before any
            # mutation so a rejected rename has no side effects.
            ancestor = new_parent
            while True:
                if ancestor == ino:
                    raise InvalidArgument(
                        f"cannot rename directory {old_name!r} into its own subtree"
                    )
                if ancestor == ROOT_INO:
                    break
                ancestor = self.directories[ancestor].parent_ino
        src.remove(old_name)
        dst.add(new_name, ino)
        moved = self.get_inode(ino)
        if moved.is_dir and old_parent != new_parent:
            self.directories[ino].parent_ino = new_parent
            self.get_inode(old_parent).nlink -= 1
            self.get_inode(new_parent).nlink += 1
        self._grow_directory(new_parent)
        self.get_inode(old_parent).stamp(now_ns, modify=True, change=True)
        self.get_inode(new_parent).stamp(now_ns, modify=True, change=True)
        moved.stamp(now_ns, change=True)
        return ino
