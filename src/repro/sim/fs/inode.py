"""Inodes.

Timestamps are stored at *one-second* granularity, mirroring the paper's
observation (§4.2.1) that creation-time resolution "is not sufficient
when multiple files are created nearly simultaneously" — which is why
FLDC must fall back on i-numbers to recover creation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List, NamedTuple

from repro.sim.clock import SECONDS

INODE_BYTES = 128


class FileKind(Enum):
    FILE = "file"
    DIRECTORY = "directory"


def to_inode_seconds(now_ns: int) -> int:
    """Truncate a nanosecond timestamp to inode (second) resolution."""
    return now_ns // SECONDS


@dataclass
class Inode:
    """On-disk inode image: identity, size, and the block map."""

    ino: int
    fs_id: int
    kind: FileKind
    size: int = 0
    nlink: int = 1
    # page index -> absolute disk block (parallel list; index i = page i)
    blocks: List[int] = field(default_factory=list)
    atime: int = 0  # seconds
    mtime: int = 0  # seconds
    ctime: int = 0  # seconds

    @property
    def is_dir(self) -> bool:
        return self.kind is FileKind.DIRECTORY

    def npages(self, page_size: int) -> int:
        return (self.size + page_size - 1) // page_size

    def block_of_page(self, index: int) -> int:
        if not 0 <= index < len(self.blocks):
            raise IndexError(
                f"inode {self.ino}: page {index} beyond mapped {len(self.blocks)} blocks"
            )
        return self.blocks[index]

    def stamp(self, now_ns: int, *, access: bool = False, modify: bool = False,
              change: bool = False) -> None:
        seconds = to_inode_seconds(now_ns)
        if access:
            self.atime = seconds
        if modify:
            self.mtime = seconds
        if change:
            self.ctime = seconds


class StatResult(NamedTuple):
    """What the stat() syscall returns to a process.

    This is the *entire* per-file information channel FLDC has: note that
    it includes the i-number but nothing about block addresses.

    A NamedTuple rather than a frozen dataclass: one of these is built
    per probe on the stat fast path, and tuple construction is several
    times cheaper than ``object.__setattr__`` per frozen field.
    """

    ino: int
    fs_id: int
    kind: FileKind
    size: int
    nlink: int
    atime: int
    mtime: int
    ctime: int

    @classmethod
    def from_inode(cls, inode: Inode) -> "StatResult":
        return cls(
            inode.ino,
            inode.fs_id,
            inode.kind,
            inode.size,
            inode.nlink,
            inode.atime,
            inode.mtime,
            inode.ctime,
        )
