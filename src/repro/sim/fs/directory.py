"""Directory contents.

A directory is an inode whose data blocks hold (name -> ino) entries.
Entry order is insertion order, which is what ``readdir`` returns — so an
application that naively processes readdir order inherits creation order
on a fresh directory and an arbitrary order after aging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.sim.errors import FileExists, FileNotFound

DIRENT_BYTES = 32


@dataclass
class Directory:
    """In-memory image of one directory's entries."""

    ino: int
    parent_ino: int
    entries: Dict[str, int] = field(default_factory=dict)

    def lookup(self, name: str) -> int:
        try:
            return self.entries[name]
        except KeyError:
            raise FileNotFound(f"no entry {name!r} in directory #{self.ino}") from None

    def contains(self, name: str) -> bool:
        return name in self.entries

    def add(self, name: str, ino: int) -> None:
        if name in self.entries:
            raise FileExists(f"entry {name!r} already exists in directory #{self.ino}")
        self.entries[name] = ino

    def remove(self, name: str) -> int:
        try:
            return self.entries.pop(name)
        except KeyError:
            raise FileNotFound(f"no entry {name!r} in directory #{self.ino}") from None

    def names(self) -> List[str]:
        """Entry names in on-disk (insertion) order."""
        return list(self.entries.keys())

    def items(self) -> Iterator[Tuple[str, int]]:
        return iter(self.entries.items())

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def data_bytes(self) -> int:
        """Serialized size ('.' and '..' included), for block accounting."""
        return (len(self.entries) + 2) * DIRENT_BYTES
