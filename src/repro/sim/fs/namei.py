"""The VFS/name layer: path walking, metadata I/O, namespace syscalls.

Everything that turns a *path* into an inode lives here: component-by-
component directory walks that charge simulated time for every inode
table block and directory data page read through the cache, plus the
namespace syscalls (``stat``/``stat_batch``/``mkdir``/``rmdir``/
``unlink``/``rename``/``readdir``/``utimes``) built on those walks.

``stat`` and ``stat_batch`` additionally ride the name-lookup cache
(:mod:`repro.sim.fs.dcache`): a memoized, still-current, fully-resident
walk is *replayed* — the exact touch sequence, the exact cost — instead
of re-walked, and every namespace mutation expires the memoizations via
a per-filesystem generation bump (``namespace_changed``).

The layer reads and dirties *metadata and directory* pages itself (via
the memory manager and the page-cache manager's eviction machinery) but
never touches file *data* pages — those belong to
:class:`~repro.sim.fileio.FileIO` above and
:class:`~repro.sim.pagecache.PageCacheManager` below.

Time discipline matches the rest of the kernel: methods take simulated
time ``t`` and return the new time; syscall handlers return
``(value, duration)`` pairs.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.obs.profile import PROFILER
from repro.sim.cache.base import FileKey, MetaKey, PageEntry, PageKey
from repro.sim.clock import Clock
from repro.sim.config import MachineConfig
from repro.sim.disk import Disk
from repro.sim.dispatch import SyscallTable
from repro.sim.errors import InvalidArgument, NotADirectory
from repro.sim.fs.dcache import NameCache, WalkEntry
from repro.sim.fs.directory import DIRENT_BYTES
from repro.sim.fs.ffs import FFS, ROOT_INO
from repro.sim.fs.inode import FileKind, Inode, StatResult
from repro.sim.fs.vfs import MountTable, PathName
from repro.sim.pagecache import PageCacheManager
from repro.sim.proc.process import Process
from repro.sim.syscalls import ProbeStat
from repro.sim.vm.physmem import MemoryManager

#: Syscalls audited to leave every stat-visible inode field (size,
#: nlink, atime/mtime/ctime) untouched.  The kernel bumps
#: :attr:`NameLayer.stat_epoch` before dispatching anything else, so an
#: unlisted (or future) syscall can only ever *invalidate* memoized
#: StatResults, never let a stale one escape.
#: ``arena_park`` is the arena's zero-duration step-boundary gate
#: (:mod:`repro.sim.arena`) — pure scheduling, no inode ever touched —
#: listed so parking between probe batches can't defeat memoization.
STAT_PRESERVING_SYSCALLS = frozenset(
    {"stat", "stat_batch", "gettime", "sleep", "arena_park"}
)


class NameLayer:
    """Path resolution and namespace operations over mounted filesystems.

    ``is_open`` is bound after construction (the open-file registry
    lives in the file-I/O layer above): ``unlink`` consults it so a
    file with live descriptors cannot be removed.
    """

    def __init__(
        self,
        config: MachineConfig,
        clock: Clock,
        mm: MemoryManager,
        page_cache: PageCacheManager,
        mounts: MountTable,
        disk_of_fs: Mapping[int, Disk],
        contents: Dict[Tuple[int, int], bytearray],
        name_cache: Optional[NameCache] = None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.mm = mm
        self.page_cache = page_cache
        self.mounts = mounts
        self._disk_of_fs = disk_of_fs
        self._contents = contents
        self._is_open: Callable[[int, int], bool] = lambda fs_id, ino: False
        #: Optional fault injector (repro.sim.inject.FaultInjector); when
        #: set, per-stat elapsed times pass through ``probe_elapsed`` so
        #: ``stat``, ``stat_batch``, and ``utimes`` observe one noise
        #: stream.
        self.inject: Optional[Any] = None
        #: Optional name-lookup cache (see :mod:`repro.sim.fs.dcache`).
        #: ``None`` disables memoization entirely; simulated behaviour
        #: is bit-identical either way — only host speed differs.
        self.dcache = name_cache
        #: Bumped by the kernel before dispatching any syscall not in
        #: :data:`STAT_PRESERVING_SYSCALLS`.  While unchanged, no inode
        #: field visible through ``stat`` can have moved, so a memoized
        #: walk's constructed :class:`StatResult` can be returned
        #: as-is (it is an immutable tuple).  Conservative by design:
        #: a syscall that *might* mutate always bumps.
        self.stat_epoch: int = 0

    def bind_open_counts(self, is_open: Callable[[int, int], bool]) -> None:
        """Wire the file-I/O layer's open-descriptor check into unlink."""
        self._is_open = is_open

    def register_syscalls(self, table: SyscallTable) -> None:
        table.register("stat", self.sys_stat)
        table.register("stat_batch", self.sys_stat_batch)
        table.register("mkdir", self.sys_mkdir)
        table.register("rmdir", self.sys_rmdir)
        table.register("unlink", self.sys_unlink)
        table.register("rename", self.sys_rename)
        table.register("readdir", self.sys_readdir)
        table.register("utimes", self.sys_utimes)

    # ==================================================================
    # Path resolution and metadata I/O
    # ==================================================================
    def fs_for(self, parsed: PathName) -> Tuple[FFS, Disk]:
        fs, _disk_id = self.mounts.filesystem(parsed.mount)
        return fs, self._disk_of_fs[fs.fs_id]

    def meta_read(self, fs: FFS, disk: Disk, block: int, t: int) -> int:
        """Read one metadata block through the cache; returns new time."""
        key = MetaKey(fs.fs_id, block)
        if self.mm.file_cached(key):
            self.mm.touch_file(key)
            return t + self.config.page_copy_ns(128)
        _start, end = disk.access(block, 1, t, self.config.page_size)
        victims = self.mm.touch_file(key)
        return self.page_cache.dispose_victims(victims, end)

    def read_inode(self, fs: FFS, disk: Disk, ino: int, t: int) -> int:
        return self.meta_read(fs, disk, fs.inode_table_block(ino), t)

    def read_dir_pages(self, fs: FFS, disk: Disk, dir_ino: int, t: int) -> int:
        inode = fs.get_inode(dir_ino)
        npages = max(inode.npages(self.config.page_size), 1)
        t, _hits = self.page_cache.read_file_pages(
            fs, disk, inode, range(min(npages, len(inode.blocks))), t
        )
        return t

    def resolve(self, process: Process, path: str, t: int) -> Tuple[FFS, Disk, Inode, int]:
        """Walk ``path``; returns (fs, disk, inode, new_time)."""
        parsed = PathName.parse(path)
        fs, disk = self.fs_for(parsed)
        ino = ROOT_INO
        t = self.read_inode(fs, disk, ino, t)
        for component in parsed.components:
            inode = fs.get_inode(ino)
            if not inode.is_dir:
                raise NotADirectory(f"{component!r} reached via a non-directory")
            t = self.read_dir_pages(fs, disk, ino, t)
            ino = fs.get_directory(ino).lookup(component)
            t = self.read_inode(fs, disk, ino, t)
        return fs, disk, fs.get_inode(ino), t

    def resolve_parent(
        self, process: Process, path: str, t: int
    ) -> Tuple[FFS, Disk, Inode, str, int]:
        parsed = PathName.parse(path)
        fs, disk, parent, t = self.resolve(process, str(parsed.dirname), t)
        if not parent.is_dir:
            raise NotADirectory(f"parent of {path!r} is not a directory")
        return fs, disk, parent, parsed.basename, t

    # ==================================================================
    # Name cache: memoizing walk, replay fast path, invalidation
    # ==================================================================
    def resolve_memo(
        self, process: Process, path: str, t: int
    ) -> Tuple[FFS, Disk, Inode, int]:
        """``resolve`` that also memoizes the walk into the name cache.

        Time and cache effects come from the very same ``meta_read`` /
        ``read_dir_pages`` calls the plain walk makes; the extra work is
        host-side only: the ordered touch-key sequence is recorded, and
        the fully-resident replay cost — one inode copy per inode-table
        read, zero for resident directory data pages — is computed
        analytically so the fast path can charge it without walking.
        """
        cache = self.dcache
        if cache is None:
            return self.resolve(process, path, t)
        parsed = PathName.parse(path)
        fs, disk = self.fs_for(parsed)
        fs_id = fs.fs_id
        page_size = self.config.page_size
        keys: List[PageKey] = []
        ino = ROOT_INO
        block = fs.inode_table_block(ino)
        keys.append(MetaKey(fs_id, block))
        t = self.meta_read(fs, disk, block, t)
        meta_reads = 1
        for component in parsed.components:
            inode = fs.get_inode(ino)
            if not inode.is_dir:
                raise NotADirectory(f"{component!r} reached via a non-directory")
            npages = max(inode.npages(page_size), 1)
            for index in range(min(npages, len(inode.blocks))):
                keys.append(FileKey(fs_id, ino, index))
            t = self.read_dir_pages(fs, disk, ino, t)
            ino = fs.get_directory(ino).lookup(component)
            block = fs.inode_table_block(ino)
            keys.append(MetaKey(fs_id, block))
            t = self.meta_read(fs, disk, block, t)
            meta_reads += 1
        inode = fs.get_inode(ino)
        cost = meta_reads * self.config.page_copy_ns(128)
        cache.store(
            path, fs, disk, inode, tuple(keys), cost,
            self.config.syscall_overhead_ns + cost,
        )
        return fs, disk, inode, t

    def walk_fast(self, path: str) -> Optional[WalkEntry]:
        """Replay a memoized walk if current and fully resident.

        Returns the entry after touching its whole key sequence (the
        exact hit-path ``touch_file`` effects, batched), or None — with
        *no* cache mutation — when the path is unmemoized, its
        generation expired, or any key is non-resident; the caller then
        takes the slow walk.

        Residency is verified per key only when the memory manager's
        file-eviction epoch moved since this entry last verified; while
        the epoch is unchanged nothing has left the pool, so the entry
        replays through the policy's pre-resolved token instead.
        """
        cache = self.dcache
        if cache is None:
            return None
        entry = cache.lookup(path)
        if entry is None:
            return None
        mm = self.mm
        if entry.epoch == mm.file_epoch:
            mm.replay_file_touches(entry.token)
            return entry
        if not mm.touch_files_cached(entry.keys):
            return None
        entry.epoch = mm.file_epoch
        entry.token = mm.file_replay_token(entry.keys)
        return entry

    def namespace_changed(self, fs: FFS) -> None:
        """Expire memoized walks after any namespace mutation on ``fs``.

        Called by every handler that creates, removes, or moves a
        directory entry (``create``/``mkdir``/``rmdir``/``unlink``/
        ``rename``) — the only operations that can change a walk's
        outcome, its touch-key sequence (directories grow only via
        entry insertion), or its cost.
        """
        if self.dcache is not None:
            self.dcache.invalidate(fs.fs_id)

    # ==================================================================
    # Metadata dirtying and inode-cache drop paths
    # ==================================================================
    def dirty_meta(self, fs: FFS, ino: int, t: int) -> int:
        key = MetaKey(fs.fs_id, fs.inode_table_block(ino))
        victims = self.mm.touch_file(key, dirty=True)
        return self.page_cache.dispose_victims(victims, t)

    def dirty_dir_data(self, fs: FFS, dir_ino: int, t: int) -> int:
        """Writing a directory entry leaves the directory's data cached."""
        inode = fs.get_inode(dir_ino)
        victims: List[PageEntry] = []
        for index in range(len(inode.blocks)):
            victims.extend(
                self.mm.touch_file(FileKey(fs.fs_id, dir_ino, index), dirty=True)
            )
        return self.page_cache.dispose_victims(victims, t)

    def drop_cached_inode(self, fs: FFS, dead: Inode) -> None:
        npages = max(len(dead.blocks), dead.npages(self.config.page_size))
        for index in range(npages):
            self.mm.drop_file_page(FileKey(fs.fs_id, dead.ino, index))

    def drop_file_cache(self, fs: FFS, inode: Inode) -> None:
        for index in range(len(inode.blocks)):
            self.mm.drop_file_page(FileKey(fs.fs_id, inode.ino, index))

    # ==================================================================
    # Namespace syscall handlers
    # ==================================================================
    def sys_stat(self, process: Process, path: str):
        entry = self.walk_fast(path)
        if entry is not None:
            duration = entry.fast_elapsed_ns
            if self.inject is not None:
                duration = self.inject.probe_elapsed("stat", duration)
            sepoch = self.stat_epoch
            if entry.stat_epoch == sepoch:
                return entry.stat_cached, duration
            inode = entry.inode
            stat = StatResult(
                inode.ino, inode.fs_id, inode.kind, inode.size,
                inode.nlink, inode.atime, inode.mtime, inode.ctime,
            )
            entry.stat_cached = stat
            entry.stat_epoch = sepoch
            return stat, duration
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self.resolve_memo(process, path, t)
        duration = t - t0
        if self.inject is not None:
            duration = self.inject.probe_elapsed("stat", duration)
        return StatResult.from_inode(inode), duration

    def sys_stat_batch(self, process: Process, paths):
        """Vectored stat: resolve every path in one dispatch.

        Resolution warms the metadata cache cumulatively, exactly as a
        sequence of ``stat`` calls would, and each entry carries that
        call's simulated elapsed time.  A missing path fails the whole
        batch (the completed walks' cache effects remain, as with any
        partially-failed vectored call).

        Each path first tries the name-cache replay — bit-identical in
        time, hit accounting, and recency effects to the slow walk it
        skips, so the noise stream and the golden traces cannot tell
        the two apart — and falls back to the memoizing walk otherwise.
        """
        t0 = self.clock.now
        t = t0
        results: List[ProbeStat] = []
        append = results.append
        inject = self.inject
        overhead = self.config.syscall_overhead_ns
        cache = self.dcache
        if cache is None:
            for path in paths:
                start = t
                t += overhead
                fs, disk, inode, t = self.resolve(process, path, t)
                elapsed = t - start
                if inject is not None:
                    elapsed = inject.probe_elapsed("stat", elapsed)
                    t = start + elapsed
                append(ProbeStat(StatResult.from_inode(inode), elapsed))
            return results, t - t0
        # The fast loop is ``walk_fast`` and ``NameCache.lookup``
        # unrolled with everything bound locally: at full batch
        # throughput the per-probe budget is about a microsecond, so
        # each probe does one entry lookup, one generation compare, one
        # epoch compare, a token replay, and result construction.  The
        # local ``epoch`` mirror is refreshed after every slow walk —
        # the only point inside the loop where pages can leave the file
        # pool — and the name-cache counters are flushed on the way out
        # (no namespace mutation can interleave with a running batch).
        mm = self.mm
        replay = mm.replay_file_touches
        entries, entries_get, gen_get = cache.hot_view()
        stat_result = StatResult
        probe_stat = ProbeStat
        epoch = mm.file_epoch
        # ``stat_batch`` is itself stat-preserving, so the stat epoch
        # cannot move while this loop runs.
        sepoch = self.stat_epoch
        hits = stale = 0
        # Host-time drill-down of ``syscall.stat_batch``: time spent in
        # full memoizing walks vs the name-cache replay loop around them.
        profiling = PROFILER.enabled
        for path in paths:
            entry = entries_get(path)
            if entry is not None:
                if entry.generation != gen_get(entry.fs_id, 0):
                    del entries[path]
                    stale += 1
                    entry = None
                else:
                    hits += 1
                    if entry.epoch == epoch:
                        replay(entry.token)
                    elif mm.touch_files_cached(entry.keys):
                        entry.epoch = epoch
                        entry.token = mm.file_replay_token(entry.keys)
                    else:
                        entry = None
            if entry is not None:
                elapsed = entry.fast_elapsed_ns
                if inject is not None:
                    elapsed = inject.probe_elapsed("stat", elapsed)
                if entry.stat_epoch == sepoch:
                    stat = entry.stat_cached
                else:
                    inode = entry.inode
                    stat = stat_result(
                        inode.ino, inode.fs_id, inode.kind, inode.size,
                        inode.nlink, inode.atime, inode.mtime, inode.ctime,
                    )
                    entry.stat_cached = stat
                    entry.stat_epoch = sepoch
                append(probe_stat(stat, elapsed))
                t += elapsed
                continue
            start = t
            t += overhead
            if profiling:
                _h0 = perf_counter_ns()
                fs, disk, inode, t = self.resolve_memo(process, path, t)
                PROFILER.add("stat_batch.walk", perf_counter_ns() - _h0)
            else:
                fs, disk, inode, t = self.resolve_memo(process, path, t)
            epoch = mm.file_epoch
            elapsed = t - start
            if inject is not None:
                elapsed = inject.probe_elapsed("stat", elapsed)
                t = start + elapsed
            append(ProbeStat(StatResult.from_inode(inode), elapsed))
        cache.hits += hits
        cache.misses += len(paths) - hits
        cache.stale += stale
        return results, t - t0

    def sys_mkdir(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self.resolve_parent(process, path, t)
        inode = fs.create(parent.ino, name, FileKind.DIRECTORY, self.clock.now)
        self.namespace_changed(fs)
        t = self.dirty_meta(fs, inode.ino, t)
        t = self.dirty_meta(fs, parent.ino, t)
        t = self.dirty_dir_data(fs, parent.ino, t)
        t = self.dirty_dir_data(fs, inode.ino, t)
        return None, t - t0

    def sys_rmdir(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self.resolve_parent(process, path, t)
        dead, _freed = fs.rmdir(parent.ino, name, self.clock.now)
        self.namespace_changed(fs)
        self.drop_cached_inode(fs, dead)
        t = self.dirty_meta(fs, parent.ino, t)
        t = self.dirty_dir_data(fs, parent.ino, t)
        return None, t - t0

    def sys_unlink(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self.resolve_parent(process, path, t)
        ino = fs.get_directory(parent.ino).lookup(name)
        if self._is_open(fs.fs_id, ino):
            raise InvalidArgument(f"{path!r} is still open; close it before unlink")
        dead, _freed = fs.unlink(parent.ino, name, self.clock.now)
        self.namespace_changed(fs)
        self.drop_cached_inode(fs, dead)
        self._contents.pop((fs.fs_id, dead.ino), None)
        t = self.dirty_meta(fs, parent.ino, t)
        t = self.dirty_dir_data(fs, parent.ino, t)
        return None, t - t0

    def sys_rename(self, process: Process, old: str, new: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        old_parsed = PathName.parse(old)
        new_parsed = PathName.parse(new)
        if old_parsed.mount != new_parsed.mount:
            raise InvalidArgument("rename cannot cross filesystems")
        fs, disk, old_parent, old_name, t = self.resolve_parent(process, old, t)
        _fs, _disk, new_parent, new_name, t = self.resolve_parent(process, new, t)
        fs.rename(old_parent.ino, old_name, new_parent.ino, new_name, self.clock.now)
        self.namespace_changed(fs)
        t = self.dirty_meta(fs, old_parent.ino, t)
        t = self.dirty_meta(fs, new_parent.ino, t)
        t = self.dirty_dir_data(fs, old_parent.ino, t)
        t = self.dirty_dir_data(fs, new_parent.ino, t)
        return None, t - t0

    def sys_readdir(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self.resolve(process, path, t)
        if not inode.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        t = self.read_dir_pages(fs, disk, inode.ino, t)
        names = fs.get_directory(inode.ino).names()
        t += self.config.page_copy_ns(len(names) * DIRENT_BYTES)
        return names, t - t0

    def sys_utimes(self, process: Process, path: str, atime_s: int, mtime_s: int):
        """Set atime/mtime explicitly; ctime moves to *now* (POSIX).

        The ctime stamp is what makes FLDC's refresh observable: the
        refresh restores atime/mtime to the originals, but the change
        time still records when the restore happened.  The duration
        rides the injector's ``stat`` probe stream — utimes is a
        path-walk metadata probe with exactly stat's cost profile.
        """
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self.resolve(process, path, t)
        inode.atime = atime_s
        inode.mtime = mtime_s
        inode.stamp(self.clock.now, change=True)
        t = self.dirty_meta(fs, inode.ino, t)
        duration = t - t0
        if self.inject is not None:
            duration = self.inject.probe_elapsed("stat", duration)
        return None, duration


__all__ = ["NameLayer"]
