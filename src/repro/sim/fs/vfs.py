"""Path names and the mount table.

Paths are absolute and rooted at a mount point: ``/mnt0/dir/file`` names
``dir/file`` on the filesystem mounted at ``mnt0``.  The pseudo-root
``/`` lists the mounts.  Path *resolution* (walking directories, which
costs directory-block reads) is performed by the kernel so it can charge
time; this module only parses names and maps mounts to filesystems.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.sim.errors import FileNotFound, InvalidArgument
from repro.sim.fs.ffs import FFS


@dataclass(frozen=True)
class PathName:
    """A parsed absolute path: mount name plus components."""

    mount: str
    components: Tuple[str, ...]

    @classmethod
    def parse(cls, path: str) -> "PathName":
        if not path or not path.startswith("/"):
            raise InvalidArgument(f"path must be absolute: {path!r}")
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise InvalidArgument("the pseudo-root '/' names no file")
        for part in parts:
            if part in (".", ".."):
                raise InvalidArgument("'.'/'..' components are not supported")
        return cls(mount=parts[0], components=tuple(parts[1:]))

    @property
    def dirname(self) -> "PathName":
        if not self.components:
            raise InvalidArgument(f"mount point /{self.mount} has no parent")
        return PathName(self.mount, self.components[:-1])

    @property
    def basename(self) -> str:
        if not self.components:
            raise InvalidArgument(f"mount point /{self.mount} has no basename")
        return self.components[-1]

    def __str__(self) -> str:
        return "/" + "/".join((self.mount,) + self.components)


def join(*parts: str) -> str:
    """Join path fragments with single slashes (no normalization)."""
    cleaned = [p.strip("/") for p in parts if p.strip("/")]
    return "/" + "/".join(cleaned)


class MountTable:
    """Maps mount names to FFS instances (and their backing disk ids)."""

    def __init__(self) -> None:
        self._mounts: Dict[str, Tuple[FFS, int]] = {}

    def mount(self, name: str, fs: FFS, disk_id: int) -> None:
        if name in self._mounts:
            raise InvalidArgument(f"mount name {name!r} already in use")
        self._mounts[name] = (fs, disk_id)

    def filesystem(self, name: str) -> Tuple[FFS, int]:
        try:
            return self._mounts[name]
        except KeyError:
            raise FileNotFound(f"no filesystem mounted at /{name}") from None

    def names(self) -> List[str]:
        return list(self._mounts.keys())

    def __contains__(self, name: str) -> bool:
        return name in self._mounts

    def __len__(self) -> int:
        return len(self._mounts)
