"""Name-lookup cache (dcache): memoized path walks for the stat fast path.

Path resolution is the dominant cost of every metadata probe: each
``stat`` re-parses the path, re-walks the component chain, and re-runs
the per-component dictionary churn even when every inode-table block and
directory data page it will touch is already resident.  FLDC's entire
information channel is ``stat`` (i-number order approximates layout
order), so that slow walk sits on the critical path of every stat-heavy
experiment.

This module memoizes *fully resolved* walks.  A :class:`WalkEntry`
records everything a repeat resolution of the same path string needs:

* the filesystem and disk the walk landed on, and the final i-number;
* the exact, ordered sequence of page keys the walk touches — the root
  inode-table block, then per component the parent directory's data
  pages followed by the child's inode-table block;
* the walk's **fully-resident replay cost**.  When every key is cached,
  a walk charges exactly one ``page_copy_ns(128)`` per inode-table
  read and *zero* time per resident directory data page, so the cost is
  ``(components + 1) * page_copy_ns(128)`` — computed once at memoize
  time.

The fast path (``NameLayer``) replays the touch sequence through the
cache policy's batched ``touch_cached_many`` primitive and charges the
memoized cost; simulated time and every cache side effect (hit counts,
recency updates) are bit-identical to the slow walk.  If *any* key is
absent the replay mutates nothing and the caller falls back to the slow
walk, which re-memoizes.

Invalidation is deliberately coarse: a per-filesystem **generation
counter** bumped on every namespace mutation (``create`` / ``mkdir`` /
``rmdir`` / ``unlink`` / ``rename``).  An entry stamped with an old
generation is discarded on lookup.  Residency changes (evictions, the
oracle's ``flush_file_cache``) need no generation bump — the replay
itself detects any non-resident key and falls back.  File *data* growth
never invalidates either: walks touch directory data and inode-table
pages only, and directory pages can only grow via a namespace mutation.

The cache is host-side machinery: it changes no simulated behaviour,
so its statistics are **not** registered with the observability layer
(the golden traces pin the metric set).  Tests read :attr:`NameCache.stats`
directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.metrics import SnapshotStats
from repro.sim.cache.base import PageKey


@dataclass
class NameCacheStats(SnapshotStats):
    """Host-side accounting for the name cache (not an obs metric).

    ``hits``/``misses`` count :meth:`NameCache.lookup` outcomes; a
    ``stale`` lookup (entry found but generation-expired) also counts as
    a miss.  ``invalidations`` counts generation bumps, not discarded
    entries — expiry is lazy.

    The live counters are plain attributes on :class:`NameCache` (one
    attribute hop per lookup instead of two); :attr:`NameCache.stats`
    assembles this snapshot on demand.
    """

    hits: int = 0
    misses: int = 0
    stale: int = 0
    invalidations: int = 0


class WalkEntry:
    """One memoized path walk (see module docstring for the fields).

    ``inode`` is the resolved :class:`Inode` object itself, not just the
    i-number: inode objects are only ever *created* by ``create`` (a
    generation-bumping namespace mutation) and are mutated in place
    thereafter, so a current-generation entry's inode reference is
    always the live one.

    ``epoch``/``token`` memoize the residency verification: after
    ``touch_cached_many`` succeeds, the entry records the memory
    manager's file-eviction epoch and the policy's replay token.  While
    the epoch is unchanged no page has left the pool, so a repeat
    fast-path hit replays via the token — skipping every per-key
    membership check — with effects identical to the checked replay.
    """

    __slots__ = (
        "generation", "fs", "disk", "fs_id", "ino", "inode", "keys",
        "resident_cost_ns", "fast_elapsed_ns", "epoch", "token",
        "stat_epoch", "stat_cached",
    )

    def __init__(
        self,
        generation: int,
        fs: Any,
        disk: Any,
        inode: Any,
        keys: Tuple[PageKey, ...],
        resident_cost_ns: int,
        fast_elapsed_ns: int,
    ) -> None:
        self.generation = generation
        self.fs = fs
        self.disk = disk
        self.fs_id: int = fs.fs_id
        self.ino: int = inode.ino
        self.inode = inode
        self.keys = keys
        self.resident_cost_ns = resident_cost_ns
        # Syscall overhead + resident cost, pre-summed: what a fully
        # resident stat charges before injector noise.
        self.fast_elapsed_ns = fast_elapsed_ns
        self.epoch: int = -1  # no residency verification yet
        self.token: Any = None
        # Memoized StatResult, valid while NameLayer.stat_epoch is
        # unchanged (no possibly-mutating syscall dispatched since).
        self.stat_epoch: int = -1
        self.stat_cached: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WalkEntry(gen={self.generation}, fs={self.fs_id}, ino={self.ino}, "
            f"keys={len(self.keys)}, cost={self.resident_cost_ns})"
        )


class NameCache:
    """Path-string → :class:`WalkEntry`, generation-checked on lookup.

    Bounded FIFO (insertion order): the bound only protects host memory
    against unbounded path churn; which entries survive has no simulated
    effect, so no recency bookkeeping is spent on lookups.
    """

    def __init__(self, capacity: int = 8192) -> None:
        if capacity < 1:
            raise ValueError("name cache capacity must be >= 1")
        self._entries: "OrderedDict[str, WalkEntry]" = OrderedDict()
        self._capacity = capacity
        self._generation: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.invalidations = 0

    @property
    def stats(self) -> NameCacheStats:
        """A snapshot of the live counters (see :class:`NameCacheStats`)."""
        return NameCacheStats(
            hits=self.hits,
            misses=self.misses,
            stale=self.stale,
            invalidations=self.invalidations,
        )

    # ------------------------------------------------------------------
    # Generations
    # ------------------------------------------------------------------
    def generation_of(self, fs_id: int) -> int:
        return self._generation.get(fs_id, 0)

    def invalidate(self, fs_id: int) -> None:
        """Bump ``fs_id``'s generation: every memoized walk on it expires."""
        self._generation[fs_id] = self._generation.get(fs_id, 0) + 1
        self.invalidations += 1

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def hot_view(self) -> Tuple[Any, Any, Any]:
        """``(entries, entries.get, generation.get)`` for fused loops.

        ``stat_batch`` inlines :meth:`lookup` — an entry is current when
        ``entry.generation == generation_get(entry.fs_id, 0)``; a stale
        entry must be deleted from ``entries``.  The caller is
        responsible for accounting: accumulate locally, then flush into
        :attr:`hits` / :attr:`misses` / :attr:`stale` before returning,
        so the counters are exact at every syscall boundary.
        """
        return self._entries, self._entries.get, self._generation.get

    def lookup(self, path: str) -> Optional[WalkEntry]:
        """A current-generation entry for ``path``, or None."""
        entry = self._entries.get(path)
        if entry is None:
            self.misses += 1
            return None
        if entry.generation != self._generation.get(entry.fs_id, 0):
            del self._entries[path]
            self.stale += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        path: str,
        fs: Any,
        disk: Any,
        inode: Any,
        keys: Tuple[PageKey, ...],
        resident_cost_ns: int,
        fast_elapsed_ns: int,
    ) -> WalkEntry:
        entries = self._entries
        if path not in entries and len(entries) >= self._capacity:
            entries.popitem(last=False)
        entry = WalkEntry(
            self._generation.get(fs.fs_id, 0), fs, disk, inode, keys,
            resident_cost_ns, fast_elapsed_ns,
        )
        entries[path] = entry
        return entry

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


__all__ = ["NameCache", "NameCacheStats", "WalkEntry"]
