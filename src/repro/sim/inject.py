"""Deterministic fault and noise injection for the simulated kernel.

The paper's ICLs survive on a *noisy* machine: scheduling interference,
timer granularity, and background I/O all contaminate the timing channel
(DESIGN.md names them as the enemies).  The stock simulator is perfectly
quiet, so this module supplies the enemies on demand — deterministically,
so every noisy run is exactly reproducible from ``(seed, config)``.

A :class:`FaultInjector` wraps the kernel's
:class:`~repro.sim.dispatch.SyscallTable` (the PR-4 dispatch hooks make
this non-invasive) and composes four injector families:

* **latency noise** — per-probe jitter, rare large spikes, and timer
  quantization applied *inside* the probe syscalls (``pread`` / ``stat``
  / ``touch`` and their vectored forms), so batched and sequential
  probing observe the identical noise stream, plus whole-call jitter for
  everything else;
* **transient faults** — EAGAIN/EINTR-style
  :class:`~repro.sim.errors.TransientError` raised before the handler
  runs (no partial side effects), which callers must absorb with bounded
  retries; consecutive failures per syscall are capped so retry loops
  always terminate;
* **scheduler interference** — a deterministic delay added each time a
  process is made ready, modelling stolen scheduler slots and coarse
  timers;
* **background interference processes** — real simulated processes that
  dirty the page cache, burn CPU, spike memory pressure, and age
  directories, spawned beside the workload under test.

Determinism: every draw comes from a counter-indexed splitmix64 stream
keyed by ``(seed, domain, kind)`` with a host-independent FNV-1a string
hash — never from Python's global RNG and never from host state — so the
fault schedule is a pure function of the injection config and the
simulated machine's own dispatch order.  Two kernels running the same
workload under the same config observe byte-identical schedules, which
is what the differential fuzzer and the ``--jobs N`` parallel-trial
property tests assert.

Everything is **off by default**: a kernel without an installed injector
pays one ``is None`` check per probe, and an installed injector with an
empty config is bit-identical to no injector at all (the golden traces
prove the quiet path).

Every injected action is observable: ``inject.fault`` events and
``inject.*`` counters land in the kernel's ``obs`` stream on the same
simulated timeline as the ICL's reaction (``icl.retry``,
``icl.low_confidence``), so a fault is always joinable to its response.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Dict, Generator, List, Optional, Sequence, Tuple

from repro.sim.clock import MICROS, MILLIS, SECONDS
from repro.sim.dispatch import BLOCK, Handler, SyscallTable
from repro.sim.errors import Interrupted, SimOSError, TryAgain
from repro.sim import syscalls as sc

MIB = 1024 * 1024

__all__ = [
    "LatencyNoise",
    "TransientFaults",
    "InterferenceSpec",
    "InjectionConfig",
    "FaultInjector",
    "noise_profile",
    "interference_bodies",
    "NOISE_DOMAINS",
    "PROBE_SYSCALLS",
    "DEFAULT_FAULT_SYSCALLS",
]

#: Syscalls whose noise is injected per probe inside the kernel layers
#: (so batched and sequential forms share one stream); the dispatch
#: wrapper never adds call-level jitter to these.  ``utimes`` is a
#: path-walk metadata probe with stat's exact cost profile, so it rides
#: the stat stream (but stays fault-ineligible: it mutates).
PROBE_SYSCALLS = frozenset(
    {
        "pread",
        "pread_batch",
        "stat",
        "stat_batch",
        "utimes",
        "touch",
        "touch_range",
        "touch_batch",
    }
)

#: The batch/sequential syscall families map onto three probe streams.
_PROBE_KIND = {
    "pread": "pread",
    "pread_batch": "pread",
    "stat": "stat",
    "stat_batch": "stat",
    "utimes": "stat",
    "touch": "touch",
    "touch_range": "touch",
    "touch_batch": "touch",
}

#: Idempotent, retry-safe syscalls eligible for transient faults by
#: default.  Mutating calls (write/create/unlink/...) are excluded so a
#: retry never duplicates a side effect.
DEFAULT_FAULT_SYSCALLS = frozenset(
    {
        "pread",
        "pread_batch",
        "stat",
        "stat_batch",
        "fstat",
        "touch",
        "touch_range",
        "touch_batch",
        "open",
        "readdir",
    }
)


# ======================================================================
# Deterministic draws (host-independent, counter-indexed)
# ======================================================================
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _fnv1a(text: str, basis: int = _FNV_OFFSET) -> int:
    """FNV-1a over utf-8 bytes — stable across processes and hosts."""
    h = basis
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * _FNV_PRIME) & _MASK64
    return h


def _splitmix64(x: int) -> int:
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class _Stream:
    """One counter-indexed random stream: draw k is splitmix64(base+k)."""

    __slots__ = ("base", "counter")

    def __init__(self, base: int) -> None:
        self.base = base
        self.counter = 0

    def next_u64(self) -> int:
        value = _splitmix64((self.base + self.counter * _GOLDEN) & _MASK64)
        self.counter += 1
        return value

    def next_float(self) -> float:
        """Uniform in [0, 1) with 53 bits of the draw."""
        return (self.next_u64() >> 11) / float(1 << 53)


# ======================================================================
# Injector configuration
# ======================================================================
@dataclass(frozen=True)
class LatencyNoise:
    """Additive timing noise on syscall observations.

    ``jitter_ns`` adds a uniform [0, jitter_ns) delay to every affected
    observation; ``spike_prob``/``spike_ns`` add a rare large delay (a
    probe queued behind someone else's disk I/O); ``granularity_ns``
    rounds the final elapsed time up to the timer's tick — the coarse
    clock that §5's outlier machinery exists to survive.  Probe syscalls
    receive the noise per probe; all other syscalls per call.
    """

    jitter_ns: int = 0
    spike_prob: float = 0.0
    spike_ns: int = 0
    granularity_ns: int = 0

    def __post_init__(self) -> None:
        if self.jitter_ns < 0 or self.spike_ns < 0 or self.granularity_ns < 0:
            raise ValueError("latency noise durations must be >= 0")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError("spike_prob must be a probability")

    @property
    def active(self) -> bool:
        return bool(
            self.jitter_ns or (self.spike_prob and self.spike_ns) or self.granularity_ns
        )


@dataclass(frozen=True)
class TransientFaults:
    """EAGAIN/EINTR-style failures injected before the handler runs.

    ``max_consecutive`` caps back-to-back failures of one syscall name
    so a bounded retry loop is guaranteed to make progress.
    """

    fail_prob: float = 0.0
    errno: str = "EAGAIN"
    syscalls: frozenset = DEFAULT_FAULT_SYSCALLS
    max_consecutive: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.fail_prob <= 1.0:
            raise ValueError("fail_prob must be a probability")
        if self.errno not in ("EAGAIN", "EINTR"):
            raise ValueError(f"unsupported transient errno {self.errno!r}")
        if self.max_consecutive < 1:
            raise ValueError("max_consecutive must be >= 1")

    @property
    def active(self) -> bool:
        return self.fail_prob > 0.0 and bool(self.syscalls)


@dataclass(frozen=True)
class InterferenceSpec:
    """One background interference process.

    ``kind`` selects the behaviour; intensity in [0, 1] scales how hard
    it works inside each burst/rest cycle.  All processes stop once the
    simulated clock passes the horizon given to
    :meth:`FaultInjector.spawn_interference`.
    """

    kind: str  # cache_dirtier | cpu_hog | memory_hog | dir_ager
    intensity: float = 0.5

    KINDS = ("cache_dirtier", "cpu_hog", "memory_hog", "dir_ager")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown interference kind {self.kind!r}")
        if not 0.0 < self.intensity <= 1.0:
            raise ValueError("intensity must be in (0, 1]")


@dataclass(frozen=True)
class InjectionConfig:
    """Everything a :class:`FaultInjector` does, as data.

    The default config is completely inert: installing it leaves the
    machine bit-identical to an uninstrumented one.

    ``touch_latency``, when given, replaces ``latency`` for the page-
    touch probe stream only.  A 150 ns in-memory touch is far less
    likely to straddle an interrupt or a scheduling quantum than a
    millisecond-scale disk probe, so realistic profiles give touches a
    much rarer, smaller spike than reads and stats; leaving it ``None``
    applies ``latency`` to touches too.
    """

    seed: int = 0
    latency: Optional[LatencyNoise] = None
    touch_latency: Optional[LatencyNoise] = None
    faults: Optional[TransientFaults] = None
    sched_jitter_ns: int = 0
    interference: Tuple[InterferenceSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.sched_jitter_ns < 0:
            raise ValueError("sched_jitter_ns must be >= 0")

    @property
    def inert(self) -> bool:
        return (
            (self.latency is None or not self.latency.active)
            and (self.touch_latency is None or not self.touch_latency.active)
            and (self.faults is None or not self.faults.active)
            and not self.sched_jitter_ns
            and not self.interference
        )


#: The injector families :func:`noise_profile` can switch independently.
NOISE_DOMAINS = ("latency", "faults", "sched", "background")


def noise_profile(
    level: float,
    seed: int = 0,
    domains: Optional[Sequence[str]] = None,
) -> InjectionConfig:
    """The standard noise ladder used by the robustness sweep.

    ``level`` in [0, 1] scales every injector together: probe jitter and
    disk-scale latency spikes, transient fault probability, scheduler
    interference, and (from level 0.3 up) background processes.  Level
    0.0 is the inert config; 1.0 is a hostile machine.  The documented
    noise budget for the hardened ICLs (see EXPERIMENTS.md) is level
    0.5 — the point where this profile injects ~5% probe spikes at disk
    scale plus ~5% transient faults.

    ``domains`` restricts the ladder to a subset of
    :data:`NOISE_DOMAINS` (``latency``, ``faults``, ``sched``,
    ``background``); ``None`` keeps every family.  A filtered profile is
    how an ablation attributes an accuracy or channel-capacity loss to
    one knob: the surviving families draw from the same per-family
    streams they would in the full profile, so e.g. the fault schedule
    of a faults-only run is byte-identical to the full run's.
    """
    if not 0.0 <= level <= 1.0:
        raise ValueError("noise level must be in [0, 1]")
    if domains is None:
        selected = frozenset(NOISE_DOMAINS)
    else:
        selected = frozenset(domains)
        unknown = selected - frozenset(NOISE_DOMAINS)
        if unknown:
            raise ValueError(
                f"unknown noise domain(s): {', '.join(sorted(unknown))}"
                f" (choose from {', '.join(NOISE_DOMAINS)})"
            )
    if level == 0.0:
        return InjectionConfig(seed=seed)
    interference: Tuple[InterferenceSpec, ...] = ()
    if "background" in selected and level >= 0.3:
        interference = (
            InterferenceSpec("cache_dirtier", intensity=level),
            InterferenceSpec("cpu_hog", intensity=level),
        )
        if level >= 0.7:
            interference += (
                InterferenceSpec("memory_hog", intensity=level),
                InterferenceSpec("dir_ager", intensity=level),
            )
    latency = touch_latency = None
    if "latency" in selected:
        latency = LatencyNoise(
            jitter_ns=int(20 * MICROS * level),
            spike_prob=0.10 * level,
            spike_ns=8 * MILLIS,
            granularity_ns=int(10 * MICROS * level),
        )
        # Page touches see interference per scheduling quantum, not per
        # 150 ns store: spikes are ~200x rarer and interrupt-scale, and
        # quantization would swamp the touch signal entirely.
        touch_latency = LatencyNoise(
            jitter_ns=int(100 * level),
            spike_prob=0.0005 * level,
            spike_ns=400 * MICROS,
        )
    return InjectionConfig(
        seed=seed,
        latency=latency,
        touch_latency=touch_latency,
        faults=TransientFaults(fail_prob=0.10 * level) if "faults" in selected else None,
        sched_jitter_ns=int(50 * MICROS * level) if "sched" in selected else 0,
        interference=interference,
    )


# ======================================================================
# The injector
# ======================================================================
class FaultInjector:
    """Wraps a kernel's syscall table with a deterministic fault plan.

    Usage::

        injector = FaultInjector(noise_profile(0.5, seed=7))
        injector.install(kernel)
        injector.spawn_interference(kernel, horizon_ns=2 * SECONDS)
        ...run workload...
        injector.uninstall()

    ``schedule`` records every injected action (in injection order) and
    :meth:`schedule_digest` hashes it for byte-identity assertions.
    """

    def __init__(self, config: Optional[InjectionConfig] = None) -> None:
        self.config = config or InjectionConfig()
        self._streams: Dict[Tuple[str, str], _Stream] = {}
        self._saved: Dict[str, Handler] = {}
        self._kernel: Optional[Any] = None
        self._consecutive: Dict[str, int] = {}
        self._obs: Any = None
        #: Every injected action: (domain, kind, index, detail).
        self.schedule: List[Tuple[str, str, int, int]] = []
        self.faults_injected = 0
        self.spikes_injected = 0
        self.jitter_total_ns = 0

    # ------------------------------------------------------------------
    # Deterministic draws
    # ------------------------------------------------------------------
    def _stream(self, domain: str, kind: str) -> _Stream:
        key = (domain, kind)
        stream = self._streams.get(key)
        if stream is None:
            base = _fnv1a(f"{domain}/{kind}", _splitmix64(self.config.seed & _MASK64))
            stream = _Stream(base)
            self._streams[key] = stream
        return stream

    # ------------------------------------------------------------------
    # Install / uninstall
    # ------------------------------------------------------------------
    def install(self, kernel: Any) -> "FaultInjector":
        """Wrap ``kernel``'s dispatch table and layer hooks."""
        if self._kernel is not None:
            raise RuntimeError("injector is already installed")
        self._kernel = kernel
        self._obs = kernel.obs
        table: SyscallTable = kernel.syscalls
        for name in list(table.mapping()):
            self._saved[name] = table.override(name, self._wrap(name, table.get(name)))
        latency, touch = self.config.latency, self.config.touch_latency
        if (latency is not None and latency.active) or (
            touch is not None and touch.active
        ):
            kernel.fileio.inject = self
            kernel.vfs.inject = self
            kernel.vm.inject = self
        if self.config.sched_jitter_ns:
            kernel.scheduler.wake_delay_hook = self._wake_delay
        return self

    def uninstall(self) -> None:
        """Restore the stock handlers and hooks."""
        kernel = self._kernel
        if kernel is None:
            return
        table: SyscallTable = kernel.syscalls
        for name, handler in self._saved.items():
            table.override(name, handler)
        self._saved.clear()
        if kernel.fileio.inject is self:
            kernel.fileio.inject = None
        if kernel.vfs.inject is self:
            kernel.vfs.inject = None
        if kernel.vm.inject is self:
            kernel.vm.inject = None
        if kernel.scheduler.wake_delay_hook == self._wake_delay:
            kernel.scheduler.wake_delay_hook = None
        self._kernel = None
        self._obs = None

    # ------------------------------------------------------------------
    # Dispatch-level wrapper: transient faults + call-level jitter
    # ------------------------------------------------------------------
    def _wrap(self, name: str, handler: Handler) -> Handler:
        faults = self.config.faults
        fault_eligible = (
            faults is not None and faults.active and name in faults.syscalls
        )
        latency = self.config.latency
        call_jitter = (
            latency is not None and latency.active and name not in PROBE_SYSCALLS
        )

        def injected(process: Any, *args: Any) -> Any:
            if fault_eligible and self._draw_fault(name):
                raise self._make_fault(name)
            outcome = handler(process, *args)
            if not call_jitter or outcome is BLOCK:
                return outcome
            value, duration = outcome
            return value, self._noisy_ns("call", name, duration)

        return injected

    def _draw_fault(self, name: str) -> bool:
        faults = self.config.faults
        assert faults is not None
        stream = self._stream("fault", name)
        if stream.next_float() >= faults.fail_prob:
            self._consecutive[name] = 0
            return False
        streak = self._consecutive.get(name, 0)
        if streak >= faults.max_consecutive:
            # Cap the losing streak so bounded retries always succeed.
            self._consecutive[name] = 0
            return False
        self._consecutive[name] = streak + 1
        return True

    def _make_fault(self, name: str) -> SimOSError:
        faults = self.config.faults
        assert faults is not None
        self.faults_injected += 1
        index = self._stream("fault", name).counter
        self.schedule.append(("fault", name, index, 1))
        obs = self._obs
        if obs is not None:
            obs.count("inject.fault")
            obs.count(f"inject.fault.{name}")
            obs.event("inject.fault", syscall=name, errno=faults.errno)
        if faults.errno == "EINTR":
            return Interrupted(f"injected EINTR in {name}")
        return TryAgain(f"injected EAGAIN in {name}")

    # ------------------------------------------------------------------
    # Latency noise (probe-level hook and call-level helper)
    # ------------------------------------------------------------------
    def probe_elapsed(self, kind: str, elapsed_ns: int) -> int:
        """Noise one probe observation; called from the kernel layers.

        ``kind`` is the probe family (``pread``/``stat``/``touch``), so
        the vectored and sequential forms of one family consume the same
        stream in the same order — a batched sweep observes exactly the
        noise its sequential twin would have.
        """
        return self._noisy_ns("probe", kind, elapsed_ns)

    def _noisy_ns(self, domain: str, kind: str, elapsed_ns: int) -> int:
        latency = self.config.latency
        if kind == "touch" and self.config.touch_latency is not None:
            latency = self.config.touch_latency
        if latency is None or not latency.active:
            return elapsed_ns
        stream = self._stream(domain, kind)
        extra = 0
        if latency.jitter_ns:
            extra += int(stream.next_float() * latency.jitter_ns)
        if latency.spike_prob and latency.spike_ns:
            if stream.next_float() < latency.spike_prob:
                extra += latency.spike_ns
                self.spikes_injected += 1
                self.schedule.append(("spike", kind, stream.counter, latency.spike_ns))
                obs = self._obs
                if obs is not None:
                    obs.count("inject.spike")
                    obs.count(f"inject.spike.{kind}")
        total = elapsed_ns + extra
        if latency.granularity_ns:
            tick = latency.granularity_ns
            total = -(-total // tick) * tick
        self.jitter_total_ns += total - elapsed_ns
        return total

    # ------------------------------------------------------------------
    # Scheduler interference
    # ------------------------------------------------------------------
    def _wake_delay(self, pid: int, at: int) -> int:
        delay = int(self._stream("sched", "wake").next_float() * self.config.sched_jitter_ns)
        if delay:
            self.jitter_total_ns += delay
        return delay

    # ------------------------------------------------------------------
    # Background interference processes
    # ------------------------------------------------------------------
    def spawn_interference(self, kernel: Any, horizon_ns: int, mount: str = "mnt0") -> List[Any]:
        """Spawn this config's interference processes onto ``kernel``.

        Each runs until the simulated clock passes ``horizon_ns``
        (absolute), then exits, so ``kernel.run()`` still terminates.
        Returns the spawned :class:`~repro.sim.proc.process.Process`es.
        """
        spawned = []
        for index, spec in enumerate(self.config.interference):
            seed = _splitmix64(
                _fnv1a(f"interference/{spec.kind}/{index}", self.config.seed & _MASK64)
            )
            factory = _INTERFERENCE_FACTORIES[spec.kind]
            gen = factory(spec, seed, horizon_ns, f"/{mount}")
            process = kernel.spawn(gen, f"inject-{spec.kind}{index}")
            obs = kernel.obs
            if obs is not None:
                obs.count("inject.interference_procs")
            spawned.append(process)
        return spawned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def schedule_digest(self) -> int:
        """Order-sensitive 64-bit digest of every injected action."""
        h = _FNV_OFFSET
        for domain, kind, index, detail in self.schedule:
            h = _fnv1a(f"{domain}|{kind}|{index}|{detail}", h)
        return h

    def stats(self) -> Dict[str, int]:
        return {
            "faults_injected": self.faults_injected,
            "spikes_injected": self.spikes_injected,
            "jitter_total_ns": self.jitter_total_ns,
            "schedule_entries": len(self.schedule),
        }


# ======================================================================
# Interference process bodies
# ======================================================================
def _interference_rng(seed: int) -> random.Random:
    return random.Random(seed & _MASK64)


def _cache_dirtier(spec: InterferenceSpec, seed: int, horizon_ns: int, mount: str) -> Generator:
    """Stream reads and writes through the page cache until the horizon.

    Creates its own working file, then alternates bursts of random
    preads (pulling pages in, evicting the victim's) with write bursts
    (dirtying pages and provoking writeback) and short rests.  Shrugs
    off its own injected transients — interference must keep interfering
    on the machine it is making hostile.
    """
    rng = _interference_rng(seed)
    path = f"{mount}/.inject-dirtier-{seed & 0xFFFF:04x}"
    size = int(2 * MIB + 6 * MIB * spec.intensity)
    fd = (yield sc.create(path)).value
    yield sc.write(fd, size)
    burst = max(int(8 * spec.intensity), 2)
    rest_ns = int(20 * MILLIS * (1.0 - 0.8 * spec.intensity)) + 1 * MILLIS
    while True:
        now = (yield sc.gettime()).value
        if now >= horizon_ns:
            break
        for _ in range(burst):
            offset = rng.randrange(max(size - 64 * 1024, 1))
            try:
                yield sc.pread(fd, offset, 64 * 1024)
            except SimOSError:
                continue
        try:
            yield sc.pwrite(fd, rng.randrange(max(size // 2, 1)), 128 * 1024)
        except SimOSError:
            pass
        yield sc.sleep(rest_ns)
    yield sc.close(fd)
    return "dirtier-done"


def _cpu_hog(spec: InterferenceSpec, seed: int, horizon_ns: int, mount: str) -> Generator:
    """Burn CPU in bursts, contending for the machine's compute slots."""
    rng = _interference_rng(seed)
    burst_ns = int(1 * MILLIS + 4 * MILLIS * spec.intensity)
    rest_ns = int(10 * MILLIS * (1.0 - 0.8 * spec.intensity)) + 1 * MILLIS
    while True:
        now = (yield sc.gettime()).value
        if now >= horizon_ns:
            break
        yield sc.compute(burst_ns + rng.randrange(1 * MILLIS))
        yield sc.sleep(rest_ns)
    return "hog-done"


def _memory_hog(spec: InterferenceSpec, seed: int, horizon_ns: int, mount: str) -> Generator:
    """Spike memory pressure: allocate, touch, hold, release, repeat."""
    rng = _interference_rng(seed)
    page = 4096
    spike_bytes = int(4 * MIB + 12 * MIB * spec.intensity)
    hold_ns = int(30 * MILLIS * spec.intensity) + 5 * MILLIS
    rest_ns = int(40 * MILLIS * (1.0 - 0.8 * spec.intensity)) + 5 * MILLIS
    while True:
        now = (yield sc.gettime()).value
        if now >= horizon_ns:
            break
        region = (yield sc.vm_alloc(spike_bytes, "inject-memhog")).value
        npages = spike_bytes // page
        step = max(npages // 64, 1)
        try:
            yield sc.touch_batch(region, 0, npages, step)
        except SimOSError:
            pass
        yield sc.sleep(hold_ns + rng.randrange(1 * MILLIS))
        yield sc.vm_free(region)
        yield sc.sleep(rest_ns)
    return "memhog-done"


def _dir_ager(spec: InterferenceSpec, seed: int, horizon_ns: int, mount: str) -> Generator:
    """Churn a scratch directory: create/delete bursts fragment layout."""
    rng = _interference_rng(seed)
    scratch = f"{mount}/.inject-ager-{seed & 0xFFFF:04x}"
    try:
        yield sc.mkdir(scratch)
    except SimOSError:
        pass
    live: List[str] = []
    serial = 0
    burst = max(int(6 * spec.intensity), 2)
    rest_ns = int(25 * MILLIS * (1.0 - 0.8 * spec.intensity)) + 2 * MILLIS
    while True:
        now = (yield sc.gettime()).value
        if now >= horizon_ns:
            break
        for _ in range(burst):
            name = f"{scratch}/a{serial}"
            serial += 1
            try:
                fd = (yield sc.create(name)).value
                yield sc.write(fd, rng.randrange(1, 32) * 1024)
                yield sc.close(fd)
                live.append(name)
            except SimOSError:
                continue
        while len(live) > burst:
            victim = live.pop(rng.randrange(len(live)))
            try:
                yield sc.unlink(victim)
            except SimOSError:
                continue
        yield sc.sleep(rest_ns)
    return "ager-done"


_INTERFERENCE_FACTORIES = {
    "cache_dirtier": _cache_dirtier,
    "cpu_hog": _cpu_hog,
    "memory_hog": _memory_hog,
    "dir_ager": _dir_ager,
}

def interference_bodies(
    config: InjectionConfig, horizon_ns: int, mount: str = "mnt0"
) -> List[Tuple[str, Generator]]:
    """The config's interference processes as ``(name, generator)`` pairs.

    :meth:`FaultInjector.spawn_interference` spawns these free-running
    beside a ``kernel.run()`` workload; an arena caller instead wants to
    *interleave* them as quantum-parked clients (a free-running sleeper
    would burn its whole horizon inside the first slice, because
    ``run_until_blocked`` advances the clock to future-ready processes).
    Same bodies, same ``(seed, kind, index)`` derivation, caller's
    choice of drive.
    """
    bodies: List[Tuple[str, Generator]] = []
    for index, spec in enumerate(config.interference):
        seed = _splitmix64(
            _fnv1a(f"interference/{spec.kind}/{index}", config.seed & _MASK64)
        )
        factory = _INTERFERENCE_FACTORIES[spec.kind]
        bodies.append(
            (
                f"inject-{spec.kind}{index}",
                factory(spec, seed, horizon_ns, f"/{mount}"),
            )
        )
    return bodies


# Re-exported convenience: the horizon helper most callers want.
def horizon_after(kernel: Any, ns: int = 2 * SECONDS) -> int:
    """An absolute interference horizon ``ns`` past the kernel's clock."""
    return kernel.clock.now + ns


def scaled(config: InjectionConfig, **overrides: Any) -> InjectionConfig:
    """A copy of ``config`` with the given fields replaced."""
    return replace(config, **overrides)
