"""Multi-tenant arena: N resumable clients interleaved on one shared kernel.

Every experiment before this layer drove one ICL to completion against a
private kernel; the paper's hardest open question — probes from one
gray-box client perturbing the very state another client is inferring
(Heisenberg + interference, §4.1.2/§6) — needs many clients on *one*
machine.  The arena supplies the multiplexing half of ROADMAP item 1;
PR 7's attribution plane (pid-stamped obs, ``ObsView``,
``interference_matrix``) supplies the accounting half.

Mechanism
---------
The arena registers one extra syscall, ``arena_park``, on the shared
kernel's dispatch table.  Each client is one kernel process running a
*shell* generator (:meth:`Arena._shell`): the shell forwards its body's
syscalls to the kernel unchanged — including re-throwing kernel-delivered
errors, so ``ICL._retry`` works untouched — and yields ``arena_park`` at
every step boundary.  The park handler blocks the caller through the
kernel's standard BLOCK/retry protocol unless the arena has granted that
pid its next turn.  Granting is: mark the pid, make the process ready,
and run the machine to quiescence (:meth:`Kernel.run_until_blocked`).
One grant therefore runs exactly one client turn, plus any kernel-level
wakeups the turn causes (children, pipe peers), which proceed by
simulated readiness exactly as under :meth:`Kernel.run`.

Step boundaries come from two sources: ICLs constructed with
``step_markers=True`` yield the host-side :data:`STEP` sentinel after
each probe batch (``ICL.checkpoint``), and bodies without markers are
parked every ``quantum`` completed syscalls.  ``arena_park`` has zero
simulated duration and preserves the stat epoch, so a parked-and-resumed
client observes byte-identical timings to an unparked one — at N=1 an
arena client's result is bit-identical to ``Kernel.run_process`` on the
same body (the equivalence the acceptance test pins).

Determinism
-----------
Clients are spawned in sorted-name order (pids and policy indices are
independent of :meth:`Arena.add_client` call order), per-client RNG
streams derive from ``(seed, name)`` (:func:`client_rng`), and every
policy decision is a pure function of ``(seed, name, turn)``: same seed
⇒ byte-identical obs stream, which ``obs.export.stream_digest`` pins.

Scalability
-----------
A grant is O(log N): the turn order lives in one heap of
``(policy key, index)`` entries, one entry per live client, so no policy
ever scans the client table per dispatch; the scheduler underneath grew
amortized PCB-table growth and ``reap()`` for the same reason.  The
tracked ``bench_arena.py`` suite gates per-step cost at N=1024 within
3x of N=1.
"""

from __future__ import annotations

import heapq
import random
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.sim.dispatch import BLOCK
from repro.sim.inject import _fnv1a, _splitmix64
from repro.sim.proc.process import Process, ProcessState
from repro.sim.syscalls import Syscall

__all__ = [
    "ARENA_PARK",
    "STEP",
    "StepBoundary",
    "Arena",
    "ArenaClient",
    "InterleavePolicy",
    "RoundRobinPolicy",
    "WeightedPolicy",
    "SeededRandomPolicy",
    "POLICIES",
    "make_policy",
    "client_rng",
]

#: The arena's gate syscall: zero simulated duration, stat-preserving.
ARENA_PARK = "arena_park"

_PARK = Syscall(ARENA_PARK, ())
_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class StepBoundary:
    """Sentinel a client body yields between probe batches.

    Not a syscall: only an arena shell may consume it.  A body that
    yields :data:`STEP` into a bare ``kernel.run_process`` hits the
    kernel's standard "must yield Syscall" TypeError — which is why
    ``ICL(step_markers=...)`` defaults to off and the sequential drive
    loops stay valid unmodified.

    A boundary may carry a ``tag`` — any hashable label.  Tagged
    boundaries park exactly like :data:`STEP`, but the shell records
    ``(tag, simulated now)`` in the client's :attr:`ArenaClient.step_log`
    before parking.  The log is host-side bookkeeping only (nothing is
    emitted to ``obs``, no simulated time passes), so tagged and untagged
    runs produce byte-identical obs streams; the covert-channel harness
    uses it to align sender and receiver turns cell by cell without
    perturbing the timing channel it is measuring.
    """

    __slots__ = ("tag",)

    def __init__(self, tag: Any = None) -> None:
        self.tag = tag

    def __repr__(self) -> str:
        return "STEP" if self.tag is None else f"STEP({self.tag!r})"


#: The shared marker instance ``ICL.checkpoint`` yields.
STEP = StepBoundary()


def client_rng(seed: int, name: str) -> random.Random:
    """A client's probe RNG: a pure function of ``(seed, name)``.

    Shared by the arena and the single-client equivalence harness, so an
    N=1 arena run and a bare ``run_process`` of the same body draw the
    identical stream — and so the stream never depends on the order
    clients were added or spawned.
    """
    return random.Random(_splitmix64((seed ^ _fnv1a(name)) & _MASK64))


class ArenaClient:
    """One tenant: a named body factory plus its arena bookkeeping.

    The factory is called once, at the client's first grant, with this
    object — bodies draw randomness from :attr:`rng` and can read their
    own :attr:`pid`/:attr:`name`.  After the client finishes,
    :attr:`result` holds the body's return value and the ``*_ns`` /
    ``syscalls`` fields its kernel-side accounting (collected before the
    PCB is reaped).
    """

    __slots__ = (
        "name",
        "kind",
        "weight",
        "quantum",
        "factory",
        "index",
        "rng",
        "pid",
        "process",
        "turns",
        "parks",
        "done",
        "result",
        "syscalls",
        "cpu_ns",
        "blocked_ns",
        "finished_ns",
        "step_log",
    )

    def __init__(
        self,
        name: str,
        factory: Callable[["ArenaClient"], Generator],
        kind: str = "",
        weight: float = 1.0,
        quantum: Optional[int] = None,
    ) -> None:
        if weight <= 0:
            raise ValueError("client weight must be positive")
        if quantum is not None and quantum < 1:
            raise ValueError("quantum must be >= 1 syscalls (or None)")
        self.name = name
        self.kind = kind
        self.weight = weight
        self.quantum = quantum
        self.factory = factory
        self.index = -1
        self.rng: random.Random = random.Random(0)
        self.pid = -1
        self.process: Optional[Process] = None
        self.turns = 0
        self.parks = 0
        self.done = False
        self.result: Any = None
        self.syscalls = 0
        self.cpu_ns = 0
        self.blocked_ns = 0
        self.finished_ns = 0
        #: ``(tag, simulated now)`` per tagged step boundary, in park
        #: order — the slice-alignment primitive for sender/receiver
        #: protocols (see :class:`StepBoundary`).
        self.step_log: List[Tuple[Any, int]] = []

    def __repr__(self) -> str:
        state = "done" if self.done else f"turns={self.turns}"
        return f"ArenaClient({self.name!r}, kind={self.kind!r}, {state})"


# ======================================================================
# Interleaving policies
# ======================================================================
class InterleavePolicy:
    """Deterministic turn order over parked clients.

    :meth:`bind` is called once with the sorted client names and weights
    plus the arena seed; :meth:`key` returns the heap key under which
    client ``index``'s ``turn``-th grant competes.  Keys must be a pure
    function of ``(seed, name, turn)`` — never of construction order or
    host state — and every key embeds the sorted index as the final
    tie-break, so the whole schedule is reproducible from the seed.
    """

    name = "policy"

    def bind(self, names: Sequence[str], weights: Sequence[float], seed: int) -> None:
        self._names = list(names)
        self._weights = list(weights)
        self._seed = seed

    def key(self, index: int, turn: int) -> Tuple[Any, int]:
        raise NotImplementedError


class RoundRobinPolicy(InterleavePolicy):
    """Strict rotation: every client gets turn *t* before any gets *t+1*."""

    name = "round-robin"

    def key(self, index: int, turn: int) -> Tuple[Any, int]:
        return (turn, index)


class WeightedPolicy(InterleavePolicy):
    """Stride scheduling: a client's ``turn``-th grant runs at virtual
    time ``(turn + 1) / weight``, so a weight-3 client receives three
    turns for every one a weight-1 client gets, smoothly interleaved
    rather than in bursts.  Weights come from ``add_client``; ``bind``
    validates them.
    """

    name = "weighted"

    def bind(self, names: Sequence[str], weights: Sequence[float], seed: int) -> None:
        super().bind(names, weights, seed)
        for name, weight in zip(names, weights):
            if weight <= 0:
                raise ValueError(f"client {name!r} has non-positive weight")

    def key(self, index: int, turn: int) -> Tuple[Any, int]:
        return ((turn + 1) / self._weights[index], index)


class SeededRandomPolicy(InterleavePolicy):
    """Random interleaving, reproducible and order-independent.

    Each client owns a counter-indexed splitmix64 stream keyed by
    ``(seed, fnv1a(name))`` — the same construction as
    :mod:`repro.sim.inject` — and its ``turn``-th grant competes under
    draw number ``turn``.  Hashing the *name* (not the index) makes the
    schedule invariant under client-list reordering, which the
    determinism test asserts.
    """

    name = "random"

    def bind(self, names: Sequence[str], weights: Sequence[float], seed: int) -> None:
        super().bind(names, weights, seed)
        self._bases = [
            _splitmix64((seed ^ _fnv1a(name)) & _MASK64) for name in names
        ]

    def key(self, index: int, turn: int) -> Tuple[Any, int]:
        draw = _splitmix64((self._bases[index] + turn * _GOLDEN) & _MASK64)
        return (draw, index)


POLICIES: Dict[str, Callable[[], InterleavePolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    WeightedPolicy.name: WeightedPolicy,
    SeededRandomPolicy.name: SeededRandomPolicy,
}


def make_policy(name: str) -> InterleavePolicy:
    """Policy by CLI name (``round-robin``, ``weighted``, ``random``)."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown interleave policy {name!r}; choose from {', '.join(POLICIES)}"
        ) from None


# ======================================================================
# The arena
# ======================================================================
class Arena:
    """Interleave N resumable clients on one shared kernel.

    Construct with a kernel (the arena registers ``arena_park`` on its
    live dispatch table — one arena per kernel), add clients, then
    :meth:`run` once.  ``seed`` feeds both the policy schedule and the
    per-client RNG streams.
    """

    def __init__(
        self,
        kernel: Any,
        policy: Optional[InterleavePolicy] = None,
        seed: int = 0,
    ) -> None:
        self.kernel = kernel
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self.seed = seed
        self.clients: List[ArenaClient] = []
        self._by_name: Dict[str, ArenaClient] = {}
        self._grant_pid: Optional[int] = None
        self._parked: Set[int] = set()
        self._ran = False
        #: Kernel dispatches executed across every slice of the run.
        self.total_steps = 0
        #: Grants issued (== sum of per-client ``turns``).
        self.total_turns = 0
        kernel.syscalls.register(ARENA_PARK, self._sys_arena_park)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_client(
        self,
        name: str,
        factory: Callable[[ArenaClient], Generator],
        *,
        kind: str = "",
        weight: float = 1.0,
        quantum: Optional[int] = None,
    ) -> ArenaClient:
        """Register one client; bodies start only when :meth:`run` grants.

        ``factory(client)`` must return a generator yielding ``Syscall``
        objects and (optionally) :data:`STEP` markers.  ``quantum``
        additionally parks the client every that-many completed syscalls
        — the knob for marker-less background jobs; ``None`` trusts the
        body's own markers entirely.
        """
        if self._ran:
            raise RuntimeError("arena already ran; build a new one")
        if name in self._by_name:
            raise ValueError(f"duplicate client name {name!r}")
        client = ArenaClient(name, factory, kind=kind, weight=weight, quantum=quantum)
        self.clients.append(client)
        self._by_name[name] = client
        return client

    def client(self, name: str) -> ArenaClient:
        return self._by_name[name]

    # ------------------------------------------------------------------
    # The gate syscall and the shell
    # ------------------------------------------------------------------
    def _sys_arena_park(self, process: Process) -> Any:
        if process.pid == self._grant_pid:
            # Consume the grant; zero duration, so a park the policy
            # immediately waves through leaves no simulated trace.
            self._grant_pid = None
            return None, 0
        self._parked.add(process.pid)
        return BLOCK

    def _shell(self, client: ArenaClient) -> Generator:
        # Opening park: the policy owns the very first body step too,
        # and the body (with any construction-time RNG draws) is built
        # only once a grant arrives.
        yield _PARK
        body = client.factory(client)
        send: Any = None
        throw: Optional[BaseException] = None
        since_park = 0
        while True:
            try:
                if throw is not None:
                    exc, throw = throw, None
                    item = body.throw(exc)
                else:
                    item = body.send(send)
            except StopIteration as stop:
                return stop.value
            if isinstance(item, StepBoundary):
                if item.tag is not None:
                    client.step_log.append((item.tag, self.kernel.clock.now))
                send = None
                since_park = 0
                client.parks += 1
                yield _PARK
                continue
            if not isinstance(item, Syscall):
                raise TypeError(
                    f"arena client {client.name!r} yielded {item!r}; "
                    "bodies must yield Syscall objects or STEP"
                )
            try:
                send = yield item
            except Exception as exc:
                # Kernel-delivered errno (SimOSError, TransientError):
                # re-deliver into the body before counting the quantum —
                # the body's retry/except logic decides what it means.
                send = None
                throw = exc
                continue
            since_park += 1
            if client.quantum is not None and since_park >= client.quantum:
                since_park = 0
                client.parks += 1
                yield _PARK

    # ------------------------------------------------------------------
    # The grant loop
    # ------------------------------------------------------------------
    def run(self, max_turns: Optional[int] = None) -> List[ArenaClient]:
        """Interleave every client to completion; returns them sorted.

        Raises RuntimeError on genuine deadlock: a live client blocked
        in the kernel (not parked) with no grantable peer left whose
        turn could wake it.
        """
        if self._ran:
            raise RuntimeError("arena already ran; build a new one")
        self._ran = True
        if not self.clients:
            return []
        kernel = self.kernel
        scheduler = kernel.scheduler
        # Sorted-name spawn: pids, policy indices, and therefore the
        # whole schedule are independent of add_client order.
        ordered = sorted(self.clients, key=lambda c: c.name)
        procs: List[Process] = []
        for index, client in enumerate(ordered):
            client.index = index
            client.rng = client_rng(self.seed, client.name)
            process = kernel.spawn(self._shell(client), client.name)
            client.process = process
            client.pid = process.pid
            procs.append(process)
        self.policy.bind(
            [c.name for c in ordered], [c.weight for c in ordered], self.seed
        )
        # Opening slice: every shell runs to its first park.
        self.total_steps += kernel.run_until_blocked()
        # One heap entry per live client; a grant is O(log N).
        heap: List[Tuple[Any, int]] = [
            (self.policy.key(index, 0), index) for index in range(len(ordered))
        ]
        heapq.heapify(heap)
        skipped: List[Tuple[Any, int]] = []
        while heap or skipped:
            if not heap:
                # Every remaining client was kernel-blocked at its last
                # pop.  If none has since parked or finished (a peer's
                # slice can wake them), no grant can ever free them.
                if not any(
                    ordered[index].pid in self._parked or ordered[index].done
                    or procs[index].state is ProcessState.DONE
                    for _key, index in skipped
                ):
                    self._raise_deadlock(ordered)
                for entry in skipped:
                    heapq.heappush(heap, entry)
                skipped.clear()
            key, index = heapq.heappop(heap)
            client = ordered[index]
            process = procs[index]
            if client.done:
                continue
            if process.state is ProcessState.DONE:
                # Finished mid-slice (woken by a peer's turn, e.g. a
                # pipe counterpart) without parking again.
                self._finalize(client)
                continue
            if client.pid not in self._parked:
                # Kernel-blocked (waitpid, pipe): not grantable now;
                # retry after the next successful grant.
                skipped.append((key, index))
                continue
            self._parked.discard(client.pid)
            self._grant_pid = client.pid
            scheduler.make_ready(process, kernel.clock.now)
            self.total_steps += kernel.run_until_blocked()
            self.total_turns += 1
            client.turns += 1
            if max_turns is not None and self.total_turns > max_turns:
                raise RuntimeError(f"arena exceeded max_turns={max_turns}")
            if process.state is ProcessState.DONE:
                self._finalize(client)
            else:
                heapq.heappush(
                    heap, (self.policy.key(client.index, client.turns), client.index)
                )
            if skipped:
                for entry in skipped:
                    heapq.heappush(heap, entry)
                skipped.clear()
        # Clients are done; anything runnable they left behind already
        # ran inside slices, so remaining blocked processes (abandoned
        # children, half-closed pipes) are a real deadlock.
        self.total_steps += kernel.run_until_blocked()
        if scheduler.blocked_count():
            names = ", ".join(p.name for p in scheduler.blocked())
            raise RuntimeError(
                f"arena: blocked processes remain after all clients finished: {names}"
            )
        return ordered

    def _finalize(self, client: ArenaClient) -> None:
        client.done = True
        self._parked.discard(client.pid)
        process = client.process
        assert process is not None  # spawned before any grant
        client.result = process.result
        client.syscalls = process.stats.syscalls
        client.cpu_ns = process.stats.cpu_ns
        client.blocked_ns = process.stats.blocked_ns
        client.finished_ns = self.kernel.clock.now
        if not process.waiters:
            # Result and stats are collected; drop the PCB so `finished`
            # stays O(live) across thousand-client runs.
            self.kernel.scheduler.reap(client.pid)

    def _raise_deadlock(self, ordered: List[ArenaClient]) -> None:
        stuck = [
            c.name
            for c in ordered
            if not c.done and c.pid not in self._parked
        ]
        raise RuntimeError(
            "arena deadlock: clients blocked in the kernel with no grantable "
            "peer: " + ", ".join(stuck)
        )
