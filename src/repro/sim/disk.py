"""Disk service-time model.

Models one spindle with cylinder/track/sector geometry and a continuously
rotating platter.  Three properties matter to the reproduction and all
emerge from the geometry rather than from per-case constants:

* sequential transfers run at near-peak bandwidth (no seek, no
  rotational delay between back-to-back sectors, implicit track/cylinder
  skew on crossings);
* random small accesses pay seek + rotational latency, milliseconds each
  — the "slow" half of the covert channel every ICL times;
* seek time grows with cylinder distance, so accessing files in layout
  order (FLDC) beats random order by a large factor.

Addressing is by *logical block*: the filesystem block size (one page)
maps onto a run of sectors, laid out cylinder-major.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt
from typing import Iterable, Tuple

from repro.obs.metrics import SnapshotStats
from repro.sim.config import DiskSpec
from repro.sim.errors import InvalidArgument


@dataclass
class DiskStats(SnapshotStats):
    """Counters accumulated over the life of one disk.

    Shares the snapshot/delta/as_dict idiom with
    :class:`~repro.sim.vm.pagedaemon.PageDaemonStats`:
    ``stats.delta(earlier)`` is the activity of one experiment phase,
    and ``as_dict()`` is what the metrics registry exports — including
    the seek/rotation/transfer breakdown of ``busy_ns``.
    """

    reads: int = 0
    writes: int = 0
    sectors_read: int = 0
    sectors_written: int = 0
    busy_ns: int = 0
    seek_ns: int = 0
    rotation_ns: int = 0
    transfer_ns: int = 0


class Disk:
    """A single simulated disk with positional state.

    The platter angle is a pure function of absolute time (the platter
    never stops spinning); the head's cylinder is state updated by each
    request.  ``busy_until`` serializes requests on the spindle, so
    callers see realistic queueing delay under contention.
    """

    def __init__(self, spec: DiskSpec, disk_id: int = 0) -> None:
        self.spec = spec
        self.disk_id = disk_id
        self.busy_until = 0
        self.current_cylinder = 0
        # Drive read-ahead buffer state: where the last read ended and
        # when — a promptly-arriving sequential successor is served from
        # the buffer without seek or rotational delay.
        self._readahead_end_sector = -1
        self._readahead_end_time = -(10**18)
        self.stats = DiskStats()
        # Seek curve a + b*sqrt(d), fit to the single-track and
        # full-stroke points of the spec.
        span = max(spec.cylinders - 1, 1)
        self._seek_b = (spec.full_stroke_seek_ns - spec.single_track_seek_ns) / max(
            sqrt(span) - 1.0, 1e-9
        )
        self._seek_a = spec.single_track_seek_ns - self._seek_b
        self._sector_ns = spec.rotation_ns / spec.sectors_per_track

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def capacity_sectors(self) -> int:
        return self.spec.sectors_per_track * self.spec.heads * self.spec.cylinders

    def capacity_blocks(self, block_bytes: int) -> int:
        return self.capacity_sectors * self.spec.sector_bytes // block_bytes

    def sectors_per_block(self, block_bytes: int) -> int:
        if block_bytes % self.spec.sector_bytes:
            raise InvalidArgument(
                f"block size {block_bytes} is not a multiple of the sector size"
            )
        return block_bytes // self.spec.sector_bytes

    def locate(self, sector: int) -> Tuple[int, int, int]:
        """Map an absolute sector number to (cylinder, head, sector-in-track)."""
        spt = self.spec.sectors_per_track
        per_cyl = spt * self.spec.heads
        cylinder, rest = divmod(sector, per_cyl)
        head, in_track = divmod(rest, spt)
        return cylinder, head, in_track

    def cylinder_of_block(self, block: int, block_bytes: int) -> int:
        return self.locate(block * self.sectors_per_block(block_bytes))[0]

    # ------------------------------------------------------------------
    # Timing primitives
    # ------------------------------------------------------------------
    def seek_ns(self, distance: int) -> int:
        """Seek time for a move of ``distance`` cylinders."""
        if distance <= 0:
            return 0
        return int(round(self._seek_a + self._seek_b * sqrt(distance)))

    def _rotational_wait_ns(self, at_ns: int, in_track_sector: int) -> int:
        """Wait until the platter brings ``in_track_sector`` under the head."""
        rotation = self.spec.rotation_ns
        # Angular position of the head over the platter, in sector units.
        angle_ns = at_ns % rotation
        target_ns = int(in_track_sector * self._sector_ns)
        wait = target_ns - angle_ns
        if wait < 0:
            wait += rotation
        return wait

    # ------------------------------------------------------------------
    # Request service
    # ------------------------------------------------------------------
    def access(
        self, start_block: int, nblocks: int, now: int, block_bytes: int, write: bool = False
    ) -> Tuple[int, int]:
        """Service a contiguous request; returns (start_ns, finish_ns).

        ``start_ns`` is when the disk began working on the request (after
        any queueing behind earlier requests); ``finish_ns`` is when the
        last sector transferred.
        """
        if nblocks <= 0:
            raise InvalidArgument("disk access needs at least one block")
        spb = self.sectors_per_block(block_bytes)
        first_sector = start_block * spb
        nsectors = nblocks * spb
        if first_sector + nsectors > self.capacity_sectors:
            raise InvalidArgument(
                f"access beyond end of disk {self.disk_id}: "
                f"blocks [{start_block}, {start_block + nblocks})"
            )

        start = max(now, self.busy_until)
        t = start + self.spec.command_overhead_ns

        cylinder, head, in_track = self.locate(first_sector)
        # Drive read-ahead: a read continuing (within less than a track)
        # past the previous read, arriving before the platter has turned
        # far, is served from the drive's buffer — no seek, no rotation.
        # This is what makes request-at-a-time sequential access run at
        # near-peak bandwidth, as on any post-1990 drive.
        gap = first_sector - self._readahead_end_sector
        sequential_hit = (
            not write
            and 0 <= gap < self.spec.sectors_per_track
            and t - self._readahead_end_time < 2 * self.spec.rotation_ns
        )
        if sequential_hit:
            seek = 0
            # The platter still rotates over any skipped sectors while
            # the drive's buffer reads through the gap.
            rot = int(round(gap * self._sector_ns))
            t += rot
        else:
            seek = self.seek_ns(abs(cylinder - self.current_cylinder))
            t += seek
            rot = self._rotational_wait_ns(t, in_track)
            t += rot

        # Transfer, charging implicit-skew costs on track/cylinder
        # boundaries instead of re-deriving rotational alignment (real
        # drives skew tracks so sequential crossings cost only the switch).
        spt = self.spec.sectors_per_track
        last_sector = first_sector + nsectors - 1
        first_track = first_sector // spt
        last_track = last_sector // spt
        track_crossings = last_track - first_track
        per_cyl = spt * self.spec.heads
        cyl_crossings = last_sector // per_cyl - first_sector // per_cyl
        head_switches = track_crossings - cyl_crossings

        transfer = int(round(nsectors * self._sector_ns))
        transfer += head_switches * self.spec.head_switch_ns
        transfer += cyl_crossings * self.spec.single_track_seek_ns
        t += transfer

        self.current_cylinder = self.locate(last_sector)[0]
        self.busy_until = t
        if not write:
            self._readahead_end_sector = first_sector + nsectors
            self._readahead_end_time = t

        st = self.stats
        st.busy_ns += t - start
        st.seek_ns += seek
        st.rotation_ns += rot
        st.transfer_ns += transfer
        if write:
            st.writes += 1
            st.sectors_written += nsectors
        else:
            st.reads += 1
            st.sectors_read += nsectors
        return start, t

    def access_runs(
        self,
        run_list: Iterable[Tuple[int, int]],
        now: int,
        block_bytes: int,
        write: bool = False,
    ) -> int:
        """Service ``[(start_block, nblocks), ...]`` back to back.

        The batched entry point for writeback/swap storms: one call per
        flush instead of one per run, with each run serviced exactly as
        an individual :meth:`access` arriving at the previous run's
        finish time (which is what chained callers did anyway — the
        spindle was busy until then, so ``start`` is identical).
        Returns the finish time of the last run.
        """
        t = now
        access = self.access
        for start_block, nblocks in run_list:
            _s, t = access(start_block, nblocks, t, block_bytes, write)
        return t

    def __repr__(self) -> str:
        return (
            f"Disk(id={self.disk_id}, cyl={self.current_cylinder}, "
            f"busy_until={self.busy_until})"
        )
