"""Syscall tracing — the simulator's strace(1).

A :class:`SyscallTrace` attaches to a kernel and records every executed
syscall: which process, which call, the arguments, and the simulated
elapsed time.  Useful for debugging ICL behaviour (e.g. inspecting the
exact probe sequence FCCD issued) and in tests that assert *how* a layer
interacted with the OS, not just the outcome.

The trace sees the same boundary the process does: names, arguments,
elapsed times.  It does not expose kernel internals.
"""

from __future__ import annotations

import json
import os
from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceRecord:
    """One executed syscall."""

    pid: int
    process_name: str
    syscall: str
    args: Tuple[Any, ...]
    start_ns: int
    elapsed_ns: int

    def __str__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return (
            f"[{self.start_ns / 1e6:12.3f}ms] {self.process_name}: "
            f"{self.syscall}({inner}) = {self.elapsed_ns / 1e6:.3f}ms"
        )

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-ready form matching the observability record shape."""
        return {
            "type": "trace",
            "pid": self.pid,
            "process": self.process_name,
            "syscall": self.syscall,
            "args": list(self.args),
            "start_ns": self.start_ns,
            "elapsed_ns": self.elapsed_ns,
        }


class SyscallTrace:
    """A bounded ring of trace records with simple query helpers.

    Attach with :meth:`install`; detach with :meth:`remove`.  Multiple
    traces may not be stacked on one kernel (keep it simple).
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._kernel = None
        self._original_execute: Optional[Callable] = None
        self._traced_execute: Optional[Callable] = None
        # pid -> clock time of the *first* execution attempt of the
        # syscall currently in flight (survives BLOCK/retry cycles).
        self._attempt_start: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def install(self, kernel) -> "SyscallTrace":
        if self._kernel is not None:
            raise RuntimeError("trace is already installed")
        if getattr(kernel, "_trace", None) is not None:
            raise RuntimeError("kernel already has a trace installed")
        self._kernel = kernel
        self._original_execute = kernel._execute
        trace = self

        def traced_execute(process, syscall):
            # A syscall that blocks is re-executed by ``kernel._step`` on
            # every wakeup; record it exactly once, on the attempt that
            # completes, with ``start_ns`` of the first attempt so the
            # blocked interval stays visible in the timeline.
            start = trace._attempt_start.setdefault(process.pid, kernel.clock.now)
            trace._original_execute(process, syscall)
            if getattr(process, "retry_syscall", None) is not None:
                return  # blocked; completion (or failure) records it
            trace._attempt_start.pop(process.pid, None)
            if process.pending_exception is None:
                elapsed = getattr(process.pending_value, "elapsed_ns", 0)
            else:
                elapsed = 0
            trace.records.append(
                TraceRecord(
                    pid=process.pid,
                    process_name=process.name,
                    syscall=syscall.name,
                    args=syscall.args,
                    start_ns=start,
                    elapsed_ns=elapsed,
                )
            )

        kernel._execute = traced_execute
        kernel._trace = self
        self._traced_execute = traced_execute
        return self

    def remove(self) -> None:
        if self._kernel is None:
            return
        if self._kernel._execute is not self._traced_execute:
            raise RuntimeError(
                "kernel._execute was re-wrapped after this trace was "
                "installed; remove the outer instrumentation first"
            )
        self._kernel._execute = self._original_execute
        self._kernel._trace = None
        self._kernel = None
        self._original_execute = None
        self._traced_execute = None
        self._attempt_start.clear()

    def __enter__(self) -> "SyscallTrace":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.remove()
        except RuntimeError:
            # Don't mask an exception already unwinding through the
            # ``with`` body; surface the detach failure otherwise.
            if exc_type is None:
                raise

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def clear(self) -> None:
        self.records.clear()

    def by_syscall(self, name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.syscall == name]

    def by_process(self, name: str) -> List[TraceRecord]:
        return [r for r in self.records if r.process_name == name]

    def counts(self) -> Dict[str, int]:
        """Syscall name -> invocation count."""
        return dict(Counter(r.syscall for r in self.records))

    def total_elapsed_ns(self, name: Optional[str] = None) -> int:
        return sum(
            r.elapsed_ns
            for r in self.records
            if name is None or r.syscall == name
        )

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def tail(self, count: int = 20) -> List[TraceRecord]:
        return list(self.records)[-count:]

    def to_jsonl(self, path: os.PathLike) -> int:
        """Write every record as one JSON object per line; returns count.

        Non-JSON argument values (pipe objects, generators) degrade to
        their ``str()`` — the trace is a debugging artifact, and a lossy
        argument beats an unserialisable trace.
        """
        written = 0
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(json.dumps(record.as_dict(), default=str))
                handle.write("\n")
                written += 1
        return written
