"""The file-I/O layer: descriptor syscalls over the VFS and page cache.

Everything reachable through a file descriptor lives here — ``open`` /
``create`` / ``close`` / ``read`` / ``write`` / ``pread`` / ``pwrite`` /
``seek`` / ``fsync`` / ``fstat`` plus the vectored ``pread_batch`` fast
path — together with the open-file registry (``is_open`` is what keeps
``unlink`` honest in the name layer) and the optional real-byte content
store behind reads and writes.

Descriptors on pipes are recognized here and delegated to the process
layer (:class:`~repro.sim.proc.syscalls.ProcLayer`), which owns pipe
buffers and blocking; descriptors on files charge simulated time
through :class:`~repro.sim.pagecache.PageCacheManager`.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.obs.profile import PROFILER
from repro.sim.cache.base import FileKey
from repro.sim.clock import Clock
from repro.sim.config import MachineConfig
from repro.sim.disk import Disk
from repro.sim.dispatch import SyscallTable
from repro.sim.errors import BadFileDescriptor, InvalidArgument, IsADirectory
from repro.sim.fs.ffs import FFS
from repro.sim.fs.inode import FileKind, Inode, StatResult
from repro.sim.fs.namei import NameLayer
from repro.sim.fs.vfs import PathName
from repro.sim.pagecache import PageCacheManager
from repro.sim.proc.process import OpenFile, Process
from repro.sim.proc.syscalls import ProcLayer
from repro.sim.syscalls import ProbeRead, ReadResult
from repro.sim.vm.physmem import MemoryManager


class FileIO:
    """Descriptor-level file operations and the open-file registry."""

    def __init__(
        self,
        config: MachineConfig,
        clock: Clock,
        mm: MemoryManager,
        vfs: NameLayer,
        page_cache: PageCacheManager,
        procs: ProcLayer,
        contents: Dict[Tuple[int, int], bytearray],
    ) -> None:
        self.config = config
        self.clock = clock
        self.mm = mm
        self.vfs = vfs
        self.page_cache = page_cache
        self.procs = procs
        self.contents = contents
        self._open_count: Dict[Tuple[int, int], int] = {}
        #: Optional fault injector (repro.sim.inject.FaultInjector); when
        #: set, per-probe elapsed times pass through ``probe_elapsed`` so
        #: the batched and sequential paths observe one noise stream.
        self.inject: Optional[Any] = None
        #: Gate for the vectorized all-cached pread_batch path;
        #: ``Kernel(numpy_paths=False)`` turns it off so the differential
        #: fuzzer can pin it against the scalar per-probe loop.
        self.numpy_paths: bool = True

    def register_syscalls(self, table: SyscallTable) -> None:
        table.register("open", self.sys_open)
        table.register("create", self.sys_create)
        table.register("close", self.sys_close)
        table.register("read", self.sys_read)
        table.register("pread", self.sys_pread)
        table.register("pread_batch", self.sys_pread_batch)
        table.register("write", self.sys_write)
        table.register("pwrite", self.sys_pwrite)
        table.register("seek", self.sys_seek)
        table.register("fsync", self.sys_fsync)
        table.register("fstat", self.sys_fstat)

    # ------------------------------------------------------------------
    # Open-file registry
    # ------------------------------------------------------------------
    def is_open(self, fs_id: int, ino: int) -> bool:
        """True while any process holds a descriptor on the file."""
        return self._open_count.get((fs_id, ino), 0) > 0

    def _track_open(self, fs_id: int, ino: int) -> None:
        self._open_count[(fs_id, ino)] = self._open_count.get((fs_id, ino), 0) + 1

    def release_fd(self, process: Process, entry: OpenFile) -> None:
        """Drop one descriptor's claim (close or process exit)."""
        if entry.kind == "file":
            fs, _ = self.vfs.mounts.filesystem(entry.fs_name)
            key = (fs.fs_id, entry.ino)
            count = self._open_count.get(key, 0) - 1
            if count > 0:
                self._open_count[key] = count
            else:
                self._open_count.pop(key, None)
        elif entry.kind == "pipe_r" and entry.pipe is not None:
            entry.pipe.readers -= 1
            self.procs.wake_all(entry.pipe.waiting_writers)
        elif entry.kind == "pipe_w" and entry.pipe is not None:
            entry.pipe.writers -= 1
            self.procs.wake_all(entry.pipe.waiting_readers)

    def file_of(self, entry: OpenFile) -> Tuple[FFS, Disk, Inode]:
        fs, _disk_id = self.vfs.mounts.filesystem(entry.fs_name)
        inode = fs.get_inode(entry.ino)
        return fs, self.vfs._disk_of_fs[fs.fs_id], inode

    # ------------------------------------------------------------------
    # Open / create / close
    # ------------------------------------------------------------------
    def sys_open(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self.vfs.resolve(process, path, t)
        if inode.is_dir:
            raise IsADirectory(f"{path!r} is a directory")
        entry = process.new_fd("file", fs_name=PathName.parse(path).mount, ino=inode.ino)
        self._track_open(fs.fs_id, inode.ino)
        return entry.fd, t - t0

    def sys_create(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self.vfs.resolve_parent(process, path, t)
        inode = fs.create(parent.ino, name, FileKind.FILE, self.clock.now)
        self.vfs.namespace_changed(fs)
        t = self.vfs.dirty_meta(fs, inode.ino, t)
        t = self.vfs.dirty_meta(fs, parent.ino, t)
        t = self.vfs.dirty_dir_data(fs, parent.ino, t)
        entry = process.new_fd("file", fs_name=PathName.parse(path).mount, ino=inode.ino)
        self._track_open(fs.fs_id, inode.ino)
        return entry.fd, t - t0

    def sys_close(self, process: Process, fd: int):
        entry = process.close_fd(fd)
        self.release_fd(process, entry)
        return None, self.config.syscall_overhead_ns

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def sys_read(self, process: Process, fd: int, nbytes: int):
        entry = process.lookup_fd(fd)
        if entry.kind == "pipe_r":
            return self.procs.pipe_read(process, entry, nbytes)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} is not readable")
        value, duration = self._do_read(process, entry, entry.pos, nbytes)
        entry.pos += value.nbytes
        return value, duration

    def sys_pread(self, process: Process, fd: int, offset: int, nbytes: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support pread")
        value, duration = self._do_read(process, entry, offset, nbytes)
        if self.inject is not None:
            duration = self.inject.probe_elapsed("pread", duration)
        return value, duration

    def _do_read(self, process: Process, entry: OpenFile, offset: int, nbytes: int):
        t0 = self.clock.now
        value, finish = self.pread_at(entry, offset, nbytes, t0)
        return value, finish - t0

    def pread_at(
        self, entry: OpenFile, offset: int, nbytes: int, start: int
    ) -> Tuple[ReadResult, int]:
        """One positional read beginning at simulated time ``start``.

        Returns (ReadResult, finish_time).  Shared by the sequential
        read path (where ``start`` is the clock) and ``pread_batch``
        (where ``start`` is the cumulative batch time), so both charge
        bit-identical simulated time per probe.
        """
        if offset < 0 or nbytes < 0:
            raise InvalidArgument("negative offset or length")
        t = start + self.config.syscall_overhead_ns
        fs, disk, inode = self.file_of(entry)
        effective = min(nbytes, max(inode.size - offset, 0))
        if effective == 0:
            return ReadResult(0), t
        page = self.config.page_size
        first = offset // page
        last = (offset + effective - 1) // page
        t, _hits = self.page_cache.read_file_pages(
            fs, disk, inode, range(first, last + 1), t
        )
        t += self.config.page_copy_ns(effective)
        inode.stamp(start, access=True)
        data = None
        stored = self.contents.get((fs.fs_id, inode.ino))
        if stored is not None:
            data = bytes(stored[offset : offset + effective])
        return ReadResult(effective, data), t

    def sys_pread_batch(self, process: Process, fd: int, probes):
        """Vectored pread: the whole probe list in one dispatch.

        Each probe is charged exactly the simulated time an individual
        ``pread`` would have paid (including per-call overhead), walking
        the same cache and disk state in the same order, so the timing
        channel the ICLs read is bit-for-bit identical to the sequential
        path — only the host-side dispatch cost is amortized.
        """
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support pread")
        t0 = self.clock.now
        t = t0
        results: List[ProbeRead] = []
        append = results.append
        # No other process can run mid-batch, so the file identity, its
        # size, and its stored contents are loop invariants; per-probe
        # constants (overhead, copy cost per length) are hoisted too.
        # The fast branch below covers the ICLs' bread and butter — a
        # single-page probe hitting the cache — and reproduces the exact
        # effects of ``pread_at`` for that case: one clean policy touch
        # and ``overhead + page_copy`` of simulated time.  Everything
        # else (miss, page-spanning, short or invalid reads) falls back
        # to ``pread_at`` itself.
        fs, _disk, inode = self.file_of(entry)
        fs_id = fs.fs_id
        ino = inode.ino
        size = inode.size
        stored = self.contents.get((fs_id, ino))
        cfg = self.config
        page = cfg.page_size
        overhead = cfg.syscall_overhead_ns
        touch_cached = self.mm.touch_file_cached
        copy_ns: Dict[int, int] = {}
        # ``pread_at`` stamps the inode atime per non-empty read with
        # that probe's start time; only the last stamp survives, so the
        # fast path defers it.  A fallback probe stamps internally
        # (superseding anything pending), hence the reset.
        pending_stamp: Optional[int] = None
        inject = self.inject
        # Vectorized pre-pass: when every probe is an in-bounds,
        # single-page read and every probed page is resident (one numpy
        # membership test against the file's residency mirror), the
        # whole batch is hits — one batched policy update, then pure
        # per-probe arithmetic.  Everything is *decided* before the pool
        # is touched, so a failed check falls through to the scalar loop
        # with nothing mutated; the effects are exactly the scalar fast
        # branch's, probe for probe.
        if self.numpy_paths and inject is None and len(probes) >= 8:
            arr = np.asarray(probes)
            if arr.ndim == 2 and arr.shape[1] == 2 and arr.dtype.kind == "i":
                offs = arr[:, 0]
                lens = arr[:, 1]
                if (
                    int(offs.min()) >= 0
                    and int(lens.min()) > 0
                    and int(offs.max()) < size
                ):
                    eff = np.minimum(lens, size - offs)
                    first = offs // page
                    if bool(
                        (first == (offs + eff - 1) // page).all()
                    ) and self.mm.touch_file_pages_resident(fs_id, ino, first):
                        lo, hi = int(eff.min()), int(eff.max())
                        if lo == hi:
                            # The ICL shape: constant probe length, so
                            # one elapsed value and (without content)
                            # one shared immutable ProbeRead.
                            elapsed = overhead + cfg.page_copy_ns(lo)
                            total = elapsed * len(probes)
                            if stored is None:
                                results = [ProbeRead(lo, elapsed)] * len(probes)
                            else:
                                results = [
                                    ProbeRead(lo, elapsed, bytes(stored[o : o + lo]))
                                    for o in offs.tolist()
                                ]
                        else:
                            elapsed_l = []
                            for e in eff.tolist():
                                copy = copy_ns.get(e)
                                if copy is None:
                                    copy = cfg.page_copy_ns(e)
                                    copy_ns[e] = copy
                                elapsed_l.append(overhead + copy)
                            total = sum(elapsed_l)
                            if stored is None:
                                results = [
                                    ProbeRead(e, el)
                                    for e, el in zip(eff.tolist(), elapsed_l)
                                ]
                            else:
                                results = [
                                    ProbeRead(e, el, bytes(stored[o : o + e]))
                                    for o, e, el in zip(
                                        offs.tolist(), eff.tolist(), elapsed_l
                                    )
                                ]
                            elapsed = elapsed_l[-1]
                        # Every probe is non-empty, so the last probe's
                        # start-time atime stamp survives, as in the
                        # scalar loop.
                        inode.stamp(t0 + total - elapsed, access=True)
                        return results, total
        # Host-time drill-down of ``syscall.pread_batch``: how much of a
        # batch escapes the single-page cached fast branch.
        profiling = PROFILER.enabled
        for offset, nbytes in probes:
            if 0 <= offset < size and nbytes > 0:
                end = offset + nbytes
                effective = nbytes if end <= size else size - offset
                first = offset // page
                if (
                    first == (offset + effective - 1) // page
                    and touch_cached(FileKey(fs_id, ino, first))
                ):
                    copy = copy_ns.get(effective)
                    if copy is None:
                        copy = cfg.page_copy_ns(effective)
                        copy_ns[effective] = copy
                    elapsed = overhead + copy
                    if inject is not None:
                        elapsed = inject.probe_elapsed("pread", elapsed)
                    data = (
                        bytes(stored[offset : offset + effective])
                        if stored is not None
                        else None
                    )
                    append(ProbeRead(effective, elapsed, data))
                    pending_stamp = t
                    t += elapsed
                    continue
            if profiling:
                _h0 = perf_counter_ns()
                value, finish = self.pread_at(entry, offset, nbytes, t)
                PROFILER.add("pread_batch.fallback", perf_counter_ns() - _h0)
            else:
                value, finish = self.pread_at(entry, offset, nbytes, t)
            elapsed = finish - t
            if inject is not None:
                elapsed = inject.probe_elapsed("pread", elapsed)
            append(ProbeRead(value.nbytes, elapsed, value.data))
            if value.nbytes > 0:
                pending_stamp = None
            t += elapsed
        if pending_stamp is not None:
            inode.stamp(pending_stamp, access=True)
        return results, t - t0

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def sys_write(self, process: Process, fd: int, data):
        entry = process.lookup_fd(fd)
        if entry.kind == "pipe_w":
            return self.procs.pipe_write(process, entry, data)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} is not writable")
        value, duration = self._do_write(process, entry, entry.pos, data)
        entry.pos += value
        return value, duration

    def sys_pwrite(self, process: Process, fd: int, offset: int, data):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support pwrite")
        return self._do_write(process, entry, offset, data)

    def _do_write(self, process: Process, entry: OpenFile, offset: int, data):
        payload = data if isinstance(data, (bytes, bytearray)) else None
        nbytes = len(payload) if payload is not None else int(data)
        if offset < 0 or nbytes < 0:
            raise InvalidArgument("negative offset or length")
        if nbytes == 0:
            return 0, self.config.syscall_overhead_ns
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode = self.file_of(entry)
        t = self.page_cache.write_file_pages(fs, disk, inode, offset, nbytes, t)
        t += self.config.page_copy_ns(nbytes)
        t = self.vfs.dirty_meta(fs, inode.ino, t)
        t = self.page_cache.throttle_dirty(t)
        inode.stamp(self.clock.now, modify=True, change=True)
        if payload is not None:
            stored = self.contents.setdefault((fs.fs_id, inode.ino), bytearray())
            if len(stored) < offset:
                stored.extend(b"\x00" * (offset - len(stored)))
            stored[offset : offset + nbytes] = payload
        return nbytes, t - t0

    # ------------------------------------------------------------------
    # Position, durability, attributes
    # ------------------------------------------------------------------
    def sys_seek(self, process: Process, fd: int, offset: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support seek")
        if offset < 0:
            raise InvalidArgument("negative seek offset")
        entry.pos = offset
        return offset, self.config.syscall_overhead_ns

    def sys_fsync(self, process: Process, fd: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support fsync")
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode = self.file_of(entry)
        dirty_blocks: List[int] = []
        for index in range(len(inode.blocks)):
            key = FileKey(fs.fs_id, inode.ino, index)
            if self.mm.file_page_dirty(key):
                dirty_blocks.append(inode.blocks[index])
                self.mm.mark_file_clean(key)
        count = len(dirty_blocks)
        t = self.page_cache.write_block_runs(disk, dirty_blocks, t)
        return count, t - t0

    def sys_fstat(self, process: Process, fd: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support fstat")
        fs, disk, inode = self.file_of(entry)
        t = self.config.syscall_overhead_ns
        return StatResult.from_inode(inode), t
