"""Error hierarchy for the simulated OS.

These mirror the errno conditions the paper's library code would see from
a real UNIX kernel.  ICL code catches :class:`SimOSError` subclasses the
same way user-level code catches ``OSError``.
"""

from __future__ import annotations


class SimOSError(Exception):
    """Base class for every error the simulated kernel raises to a process."""

    errno_name = "EIO"


class FileNotFound(SimOSError):
    """A path component does not exist (ENOENT)."""

    errno_name = "ENOENT"


class FileExists(SimOSError):
    """Attempt to create a name that already exists (EEXIST)."""

    errno_name = "EEXIST"


class NotADirectory(SimOSError):
    """A non-directory appeared where a directory was required (ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectory(SimOSError):
    """A directory appeared where a file was required (EISDIR)."""

    errno_name = "EISDIR"


class DirectoryNotEmpty(SimOSError):
    """rmdir of a non-empty directory (ENOTEMPTY)."""

    errno_name = "ENOTEMPTY"


class BadFileDescriptor(SimOSError):
    """Operation on a closed or foreign file descriptor (EBADF)."""

    errno_name = "EBADF"


class InvalidArgument(SimOSError):
    """Malformed syscall arguments (EINVAL)."""

    errno_name = "EINVAL"


class NoSpace(SimOSError):
    """The filesystem ran out of blocks or inodes (ENOSPC)."""

    errno_name = "ENOSPC"


class OutOfMemory(SimOSError):
    """No physical or swap space left to satisfy an allocation (ENOMEM)."""

    errno_name = "ENOMEM"


class PermissionDenied(SimOSError):
    """Privileged operation attempted by an ordinary process (EPERM)."""

    errno_name = "EPERM"


class TransientError(SimOSError):
    """Base for failures the caller is expected to retry.

    Real kernels deliver these under load — a signal interrupting a
    slow syscall, a resource momentarily exhausted — and robust library
    code (the ICLs included) must loop rather than give up.  The fault
    injector (:mod:`repro.sim.inject`) raises exactly these.
    """

    errno_name = "EAGAIN"


class TryAgain(TransientError):
    """Resource temporarily unavailable (EAGAIN)."""

    errno_name = "EAGAIN"


class Interrupted(TransientError):
    """Syscall interrupted before completion (EINTR)."""

    errno_name = "EINTR"


TRANSIENT_ERRNOS = frozenset({"EAGAIN", "EINTR"})


def is_transient(error: BaseException) -> bool:
    """True for errors a bounded retry loop should absorb."""
    return (
        isinstance(error, TransientError)
        or getattr(error, "errno_name", None) in TRANSIENT_ERRNOS
    )
