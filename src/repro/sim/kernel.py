"""The simulated kernel: subsystem assembly and the scheduler loop.

Executes syscalls on behalf of generator-coroutine processes, charging
each one simulated time assembled from the machine model.  The actual
machinery lives in layered subsystems (see ``ARCHITECTURE.md``):

* :class:`~repro.sim.dispatch.SyscallTable` — name → handler registry;
  each subsystem registers its own handlers, then the platform
  personality applies its overrides;
* :class:`~repro.sim.fs.namei.NameLayer` — path walking, metadata I/O,
  and the namespace syscalls;
* :class:`~repro.sim.fileio.FileIO` — descriptor syscalls and the
  open-file registry;
* :class:`~repro.sim.pagecache.PageCacheManager` — data-page movement
  between memory and disk (clustered fills, writebacks, throttling);
* :class:`~repro.sim.vm.faults.VMLayer` — anonymous-memory syscalls and
  fault servicing;
* :class:`~repro.sim.proc.syscalls.ProcLayer` — process-control
  syscalls and pipes.

What remains here is what genuinely spans subsystems: construction and
wiring, the scheduler loop (``run`` / ``_step`` / ``_execute``),
process lifecycle (``spawn`` / exit cleanup), and the time/CPU syscalls
(``gettime`` / ``compute`` / ``sleep``) that touch only kernel state.

Processes see *only* :class:`~repro.sim.syscalls.SyscallResult` values.
Tests and the experiment harness use :class:`Oracle` for ground truth.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Dict, Generator, List, Optional, Set, Tuple

from repro.obs import Observability
from repro.obs.profile import PROFILER
from repro.sim.cache.base import AnonKey, FileKey
from repro.sim.clock import Clock
from repro.sim.config import MachineConfig, PlatformSpec, linux22
from repro.sim.disk import Disk
from repro.sim.dispatch import BLOCK, SyscallTable
from repro.sim.errors import InvalidArgument, SimOSError
from repro.sim.fileio import FileIO
from repro.sim.fs.dcache import NameCache
from repro.sim.fs.ffs import FFS, ROOT_INO
from repro.sim.fs.inode import Inode
from repro.sim.fs.namei import STAT_PRESERVING_SYSCALLS, NameLayer
from repro.sim.fs.vfs import MountTable, PathName
from repro.sim.pagecache import PageCacheManager
from repro.sim.proc.process import PipeBuffer, Process, ProcessState
from repro.sim.proc.scheduler import Scheduler
from repro.sim.proc.syscalls import ProcLayer
from repro.sim.syscalls import Syscall, SyscallResult
from repro.sim.vm.faults import VMLayer
from repro.sim.vm.physmem import MemoryManager

__all__ = ["Kernel", "Oracle", "BLOCK", "CG_BYTES_DEFAULT"]

# Default cylinder-group footprint: 16 MiB of data blocks per group
# ("a few consecutive cylinders" at 2001 densities), independent of the
# configured page size.
CG_BYTES_DEFAULT = 16 * 1024 * 1024


class Kernel:
    """One simulated machine plus its operating system."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        platform: PlatformSpec = linux22,
        *,
        cg_bytes: int = CG_BYTES_DEFAULT,
        inodes_per_cg: int = 1024,
        fs_class: type = FFS,
        obs: Optional[Observability] = None,
        event_capacity: Optional[int] = None,
        name_cache: bool = True,
        numpy_paths: bool = True,
    ) -> None:
        self.config = config or MachineConfig()
        self.platform = platform
        self.clock = Clock()
        cfg = self.config
        # Always-on observability stamped with this machine's simulated
        # clock; per-syscall instruments are push-style, everything else
        # (disk/daemon/scheduler stats) is pulled at collect() time.
        # Pass a disabled instance to opt out (the overhead benchmark's
        # baseline); stats sources are never registered on a disabled
        # registry so the shared DISABLED instance stays empty.
        # ``event_capacity`` sizes the event ring (multi-tenant arena
        # runs scale it with N so early ``kernel.spawn`` events — which
        # the JSONL validator's pid check needs — survive the run).
        if obs is not None:
            self.obs = obs
        elif event_capacity is not None:
            self.obs = Observability(self.clock, event_capacity=event_capacity)
        else:
            self.obs = Observability(self.clock)

        self.data_disk_list = [Disk(cfg.disk, disk_id=i) for i in range(cfg.data_disks)]
        self.swap_disk = Disk(cfg.disk, disk_id=cfg.data_disks)
        if self.obs.enabled:
            for disk in self.data_disk_list:
                self.obs.metrics.register_stats(f"disk.{disk.disk_id}", disk.stats)
            self.obs.metrics.register_stats("disk.swap", self.swap_disk.stats)

        swap_pages = self.swap_disk.capacity_blocks(cfg.page_size)
        self.mm = MemoryManager(
            cfg, platform, swap_capacity_pages=swap_pages, obs=self.obs
        )

        blocks_per_cg = max(cg_bytes // cfg.page_size, 64)
        self.mounts = MountTable()
        self._fs_by_id: Dict[int, FFS] = {}
        self._disk_of_fs: Dict[int, Disk] = {}
        for i, disk in enumerate(self.data_disk_list):
            fs = fs_class(
                fs_id=i,
                total_blocks=disk.capacity_blocks(cfg.page_size),
                block_bytes=cfg.page_size,
                blocks_per_cg=blocks_per_cg,
                inodes_per_cg=inodes_per_cg,
                alloc_gap=platform.ffs_alloc_gap,
            )
            self.mounts.mount(f"mnt{i}", fs, disk.disk_id)
            self._fs_by_id[fs.fs_id] = fs
            self._disk_of_fs[fs.fs_id] = disk

        self._cpu_free_at = [0] * cfg.cpus
        self.scheduler = Scheduler()
        if self.obs.enabled:
            self.obs.metrics.register_stats("sched", self.scheduler.stats)
        self._next_pid = 1
        # Real byte content, present only for files written with bytes.
        self.contents: Dict[Tuple[int, int], bytearray] = {}

        # --- subsystem assembly (order follows the data dependencies) --
        page_cache_factory = platform.page_cache_factory or PageCacheManager
        self.page_cache = page_cache_factory(
            cfg, self.mm, self.swap_disk, self._fs_by_id, self._disk_of_fs
        )
        # ``name_cache=False`` builds an identical machine without walk
        # memoization — the twin the dcache differential tests compare
        # against (simulated behaviour must be bit-identical either way).
        self.vfs = NameLayer(
            cfg,
            self.clock,
            self.mm,
            self.page_cache,
            self.mounts,
            self._disk_of_fs,
            self.contents,
            name_cache=NameCache() if name_cache else None,
        )
        self.procs = ProcLayer(cfg, self.clock, self.scheduler, self.spawn)
        self.fileio = FileIO(
            cfg, self.clock, self.mm, self.vfs, self.page_cache, self.procs,
            self.contents,
        )
        self.vm = VMLayer(cfg, self.clock, self.mm, self.swap_disk, self.page_cache)
        self.vfs.bind_open_counts(self.fileio.is_open)
        # ``numpy_paths=False`` builds the scalar compatibility kernel:
        # every vectorized fast path stands down and the per-page loops
        # run instead.  The differential fuzzer runs twin kernels in both
        # modes and requires bit-identical traces, obs records, and
        # schedules (simulated behaviour must not depend on the mode).
        self.numpy_paths = numpy_paths
        self.vm.numpy_paths = numpy_paths
        self.fileio.numpy_paths = numpy_paths
        self.page_cache.numpy_paths = numpy_paths

        self.syscalls = SyscallTable()
        self.vfs.register_syscalls(self.syscalls)
        self.fileio.register_syscalls(self.syscalls)
        self.vm.register_syscalls(self.syscalls)
        self.procs.register_syscalls(self.syscalls)
        self.syscalls.register("gettime", self._sys_gettime)
        self.syscalls.register("compute", self._sys_compute)
        self.syscalls.register("sleep", self._sys_sleep)
        for name, factory in platform.syscall_overrides:
            self.syscalls.override(name, factory(self))
        # The dispatch loop does one dict get per syscall; bind the
        # table's live mapping once.
        self._handlers: Dict[str, Callable] = self.syscalls.mapping()

        self.oracle = Oracle(self)

    # ==================================================================
    # Process lifecycle and the scheduler loop
    # ==================================================================
    def spawn(self, gen: Generator, name: str = "") -> Process:
        process = Process(self._next_pid, gen, name)
        self._next_pid += 1
        process.ready_at = self.clock.now
        self.scheduler.add(process)
        # Host-side metadata only (simulated time untouched): the spawn
        # event is what lets exporters and the JSONL validator know the
        # full set of pids a stream may legitimately be attributed to.
        self.obs.event("kernel.spawn", pid=process.pid, comm=process.name)
        return process

    def spawn_with_pipe_ends(
        self,
        gen_factory: Callable[..., Generator],
        ends: List[Tuple[PipeBuffer, str]],
        name: str = "",
    ) -> Process:
        """Spawn a process holding descriptors on pre-made pipes.

        The shell's fd-inheritance equivalent: ``ends`` is a list of
        (pipe, "pipe_r"|"pipe_w") pairs; the factory is called with the
        resulting fd numbers, in order, to build the process body.
        """
        process = Process(self._next_pid, iter(()), name)
        self._next_pid += 1
        fds = [self.share_pipe_end(process, pipe, kind) for pipe, kind in ends]
        process.gen = gen_factory(*fds)
        process.ready_at = self.clock.now
        self.scheduler.add(process)
        self.obs.event("kernel.spawn", pid=process.pid, comm=process.name)
        return process

    def make_pipe(self) -> PipeBuffer:
        """Create an unattached pipe for host-side pipeline wiring."""
        return self.procs.make_pipe()

    def share_pipe_end(self, process: Process, pipe: PipeBuffer, kind: str) -> int:
        """Give ``process`` a new descriptor on an existing pipe end."""
        return self.procs.share_pipe_end(process, pipe, kind)

    def run(self, max_steps: Optional[int] = None) -> None:
        """Run until every process finishes (or ``max_steps`` syscalls).

        The common single-process case stays on the scheduler's
        fast slot (no heap traffic); bound methods are hoisted out of
        the loop because this is the simulator's hottest few lines.
        """
        next_ready = self.scheduler.next_ready
        advance_to = self.clock.advance_to
        step = self._step
        profiler = PROFILER
        steps = 0
        try:
            while True:
                if profiler.enabled:
                    _t0 = perf_counter_ns()
                    process = next_ready()
                    profiler.add("sched.next_ready", perf_counter_ns() - _t0)
                else:
                    process = next_ready()
                if process is None:
                    blocked = self.scheduler.blocked()
                    if blocked:
                        names = ", ".join(p.name for p in blocked)
                        raise RuntimeError(
                            f"deadlock: blocked processes remain: {names}"
                        )
                    return
                advance_to(process.ready_at)
                step(process)
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    raise RuntimeError(f"exceeded max_steps={max_steps}")
        finally:
            # Attribution ends with the dispatch loop: host-side records
            # emitted after run() must not inherit the last pid.
            self.obs.set_pid(None)

    def run_until_blocked(self, max_steps: Optional[int] = None) -> int:
        """Dispatch until no process is READY; returns syscalls executed.

        The arena's slice primitive (:mod:`repro.sim.arena`): between
        grants every client is BLOCKED on ``arena_park``, which
        :meth:`run` would report as a deadlock.  Here remaining blocked
        processes are the *expected* end state of a slice — the caller,
        which knows which blocks are deliberate parks, owns deadlock
        detection.  Dispatch itself is identical to :meth:`run`, so
        anything a slice wakes (children, pipe peers) proceeds by
        simulated readiness exactly as it would there.
        """
        next_ready = self.scheduler.next_ready
        advance_to = self.clock.advance_to
        step = self._step
        profiler = PROFILER
        steps = 0
        try:
            while True:
                if profiler.enabled:
                    _t0 = perf_counter_ns()
                    process = next_ready()
                    profiler.add("sched.next_ready", perf_counter_ns() - _t0)
                else:
                    process = next_ready()
                if process is None:
                    return steps
                advance_to(process.ready_at)
                step(process)
                steps += 1
                if max_steps is not None and steps >= max_steps:
                    raise RuntimeError(f"exceeded max_steps={max_steps}")
        finally:
            self.obs.set_pid(None)

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn one process, run the machine to idle, return its result."""
        process = self.spawn(gen, name)
        self.run()
        return process.result

    def _step(self, process: Process) -> None:
        # Attribute everything this dispatch records — kernel events from
        # handlers *and* ICL spans opened in the generator body below —
        # to the process being stepped.  Host-side metadata only.  The
        # guard skips the two attribute writes on consecutive dispatches
        # of the same process — the overwhelmingly common schedule.
        obs = self.obs
        if obs.current_pid != process.pid:
            obs.set_pid(process.pid)
        retry = process.retry_syscall  # always present: Process is slotted
        if retry is not None:
            self._execute(process, retry)
            return
        profiling = PROFILER.enabled
        if profiling:
            _t0 = perf_counter_ns()
        try:
            if process.pending_exception is not None:
                exc = process.pending_exception
                process.pending_exception = None
                item = process.gen.throw(exc)
            elif not process.started:
                process.started = True
                item = next(process.gen)
            else:
                item = process.gen.send(process.pending_value)
        except StopIteration as stop:
            if profiling:
                PROFILER.add("proc.advance", perf_counter_ns() - _t0)
            self._exit_process(process, stop.value)
            return
        if profiling:
            PROFILER.add("proc.advance", perf_counter_ns() - _t0)
        if not isinstance(item, Syscall):
            raise TypeError(
                f"{process.name} yielded {item!r}; processes must yield Syscall objects"
            )
        self._execute(process, item)

    def _execute(self, process: Process, syscall: Syscall) -> None:
        handler = self._handlers.get(syscall.name)
        if handler is None:
            raise InvalidArgument(f"unknown syscall {syscall.name!r}")
        if syscall.name not in STAT_PRESERVING_SYSCALLS:
            # Before dispatch, not after: a handler that errors out
            # midway may still have mutated inode fields.
            self.vfs.stat_epoch += 1
        start = self.clock.now
        process.stats.syscalls += 1
        try:
            if PROFILER.enabled:
                _t0 = perf_counter_ns()
                outcome = handler(process, *syscall.args)
                PROFILER.add("syscall." + syscall.name, perf_counter_ns() - _t0)
            else:
                outcome = handler(process, *syscall.args)
        except SimOSError as err:
            # Deliver the failure into the process after the base overhead.
            self.obs.record_syscall_error(syscall.name)
            process.pending_exception = err
            process.retry_syscall = None
            self.scheduler.make_ready(process, start + self.config.syscall_overhead_ns)
            return
        if outcome is BLOCK:
            process.retry_syscall = syscall
            self.scheduler.block(process)
            return
        value, duration = outcome
        self.obs.record_syscall(syscall.name, duration)
        finish = start + duration
        process.pending_value = SyscallResult(value, finish - start, start, finish)
        process.retry_syscall = None
        self.scheduler.make_ready(process, finish)

    def _exit_process(self, process: Process, result: Any) -> None:
        process.result = result
        self.obs.event("kernel.exit", pid=process.pid, comm=process.name)
        self.scheduler.finish(process)
        for fd in list(process.fd_table):
            self.fileio.release_fd(process, process.fd_table.pop(fd))
        keys = [AnonKey(process.pid, page) for page in process.address_space.touched]
        self.mm.release_process(process.pid, keys)
        for waiter_pid in process.waiters:
            waiter = self.scheduler.processes.get(waiter_pid)
            if waiter is not None and waiter.state is ProcessState.BLOCKED:
                self.scheduler.make_ready(waiter, self.clock.now)
        process.waiters.clear()

    # ==================================================================
    # Time and CPU (the only syscalls that touch kernel-wide state)
    # ==================================================================
    def _sys_gettime(self, process: Process):
        overhead = self.config.gettime_overhead_ns
        return self.clock.now + overhead, overhead

    def _sys_compute(self, process: Process, ns: int):
        if ns < 0:
            raise InvalidArgument("negative compute time")
        slot = min(range(len(self._cpu_free_at)), key=self._cpu_free_at.__getitem__)
        start = max(self.clock.now, self._cpu_free_at[slot])
        finish = start + ns
        self._cpu_free_at[slot] = finish
        process.stats.cpu_ns += ns
        return None, finish - self.clock.now

    def _sys_sleep(self, process: Process, ns: int):
        if ns < 0:
            raise InvalidArgument("negative sleep time")
        return None, ns


class Oracle:
    """Ground-truth inspection for tests and the experiment harness.

    Nothing in :mod:`repro.icl`, :mod:`repro.toolbox`, or
    :mod:`repro.apps` may import this — the whole point of the paper is
    that the ICLs work without it.
    """

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel

    # --- filesystem ground truth --------------------------------------
    def _inode_at(self, path: str) -> Tuple[FFS, Inode]:
        parsed = PathName.parse(path)
        fs, _disk_id = self._kernel.mounts.filesystem(parsed.mount)
        ino = ROOT_INO
        for component in parsed.components:
            ino = fs.get_directory(ino).lookup(component)
        return fs, fs.get_inode(ino)

    def inode_of(self, path: str) -> Inode:
        return self._inode_at(path)[1]

    def file_blocks(self, path: str) -> List[int]:
        """The file's true on-disk block addresses, in page order."""
        return list(self._inode_at(path)[1].blocks)

    def cached_file_pages(self, path: str) -> Set[int]:
        """Which page indexes of the file are currently cached."""
        fs, inode = self._inode_at(path)
        mm = self._kernel.mm
        return {
            index
            for index in range(len(inode.blocks))
            if mm.file_cached(FileKey(fs.fs_id, inode.ino, index))
        }

    def cached_fraction(self, path: str) -> float:
        fs, inode = self._inode_at(path)
        total = inode.npages(self._kernel.config.page_size)
        if total == 0:
            return 0.0
        return len(self.cached_file_pages(path)) / total

    # --- memory ground truth -------------------------------------------
    def resident_anon_pages(self, pid: int) -> int:
        return self._kernel.mm.resident_anon_pages(pid)

    def resident_anon_bytes(self, pid: int) -> int:
        return self.resident_anon_pages(pid) * self._kernel.config.page_size

    def file_pool_used_pages(self) -> int:
        return self._kernel.mm.file_pool_used()

    def daemon_stats(self):
        return self._kernel.mm.daemon_stats

    def cache_stats(self):
        """Policy-level hit/miss/eviction accounting (file/unified pool)."""
        return self._kernel.mm.file_pool_stats()

    def swap_used_slots(self) -> int:
        return self._kernel.mm.swap.used_slots

    # --- experiment control ---------------------------------------------
    def flush_file_cache(self) -> int:
        """Drop every file/metadata page (dirty pages are discarded).

        Models the paper's between-run "flush the file cache" step; it is
        experiment setup, not something an ICL may call.
        """
        mm = self._kernel.mm
        doomed = list(mm.file_keys())
        for key in doomed:
            mm.drop_file_page(key)
        return len(doomed)

    def advance_time(self, ns: int) -> None:
        """Idle the machine forward (e.g. to cross an inode-time second)."""
        self._kernel.clock.advance(ns)

    def disk_stats(self, disk_index: int = 0):
        return self._kernel.data_disk_list[disk_index].stats

    def swap_disk_stats(self):
        return self._kernel.swap_disk.stats
