"""The simulated kernel.

Executes syscalls on behalf of generator-coroutine processes, charging
each one simulated time assembled from the machine model:

* CPU work contends for the machine's CPUs (``compute``);
* file reads/writes walk the page cache, clustering contiguous misses
  into single disk requests;
* memory faults zero-fill, swap in, and — when the pool is full —
  synchronously pay for the page daemon's clustered writebacks;
* disks serialize requests through ``busy_until``, so competing
  processes queue realistically.

Processes see *only* :class:`~repro.sim.syscalls.SyscallResult` values.
Tests and the experiment harness use :class:`Oracle` for ground truth.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Set, Tuple

from repro.obs import Observability
from repro.sim.cache.base import AnonKey, FileKey, MetaKey, PageEntry
from repro.sim.clock import Clock
from repro.sim.config import MachineConfig, PlatformSpec, linux22
from repro.sim.disk import Disk
from repro.sim.errors import (
    BadFileDescriptor,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
    SimOSError,
)
from repro.sim.fs.directory import DIRENT_BYTES
from repro.sim.fs.ffs import FFS, ROOT_INO
from repro.sim.fs.inode import FileKind, Inode, StatResult
from repro.sim.fs.vfs import MountTable, PathName
from repro.sim.proc.process import OpenFile, PipeBuffer, Process, ProcessState
from repro.sim.proc.scheduler import Scheduler
from repro.sim.syscalls import (
    ProbeRead,
    ProbeStat,
    ReadResult,
    Syscall,
    SyscallResult,
    TouchBatchResult,
)
from repro.sim.vm.physmem import FaultKind, MemoryManager


class _Block:
    """Sentinel a handler returns to park the caller until woken."""

    __slots__ = ()


BLOCK = _Block()

# Default cylinder-group footprint: 16 MiB of data blocks per group
# ("a few consecutive cylinders" at 2001 densities), independent of the
# configured page size.
CG_BYTES_DEFAULT = 16 * 1024 * 1024


class Kernel:
    """One simulated machine plus its operating system."""

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        platform: PlatformSpec = linux22,
        *,
        cg_bytes: int = CG_BYTES_DEFAULT,
        inodes_per_cg: int = 1024,
        fs_class: type = FFS,
        obs: Optional[Observability] = None,
    ) -> None:
        self.config = config or MachineConfig()
        self.platform = platform
        self.clock = Clock()
        cfg = self.config
        # Always-on observability stamped with this machine's simulated
        # clock; per-syscall instruments are push-style, everything else
        # (disk/daemon/scheduler stats) is pulled at collect() time.
        # Pass a disabled instance to opt out (the overhead benchmark's
        # baseline); stats sources are never registered on a disabled
        # registry so the shared DISABLED instance stays empty.
        self.obs = obs if obs is not None else Observability(self.clock)

        self.data_disk_list = [Disk(cfg.disk, disk_id=i) for i in range(cfg.data_disks)]
        self.swap_disk = Disk(cfg.disk, disk_id=cfg.data_disks)
        if self.obs.enabled:
            for disk in self.data_disk_list:
                self.obs.metrics.register_stats(f"disk.{disk.disk_id}", disk.stats)
            self.obs.metrics.register_stats("disk.swap", self.swap_disk.stats)

        swap_pages = self.swap_disk.capacity_blocks(cfg.page_size)
        self.mm = MemoryManager(
            cfg, platform, swap_capacity_pages=swap_pages, obs=self.obs
        )

        blocks_per_cg = max(cg_bytes // cfg.page_size, 64)
        self.mounts = MountTable()
        self._fs_by_id: Dict[int, FFS] = {}
        self._disk_of_fs: Dict[int, Disk] = {}
        for i, disk in enumerate(self.data_disk_list):
            fs = fs_class(
                fs_id=i,
                total_blocks=disk.capacity_blocks(cfg.page_size),
                block_bytes=cfg.page_size,
                blocks_per_cg=blocks_per_cg,
                inodes_per_cg=inodes_per_cg,
                alloc_gap=platform.ffs_alloc_gap,
            )
            self.mounts.mount(f"mnt{i}", fs, disk.disk_id)
            self._fs_by_id[fs.fs_id] = fs
            self._disk_of_fs[fs.fs_id] = disk

        self._cpu_free_at = [0] * cfg.cpus
        self.scheduler = Scheduler()
        if self.obs.enabled:
            self.obs.metrics.register_stats("sched", self.scheduler.stats)
        self._next_pid = 1
        self._next_pipe_id = 1
        self._open_count: Dict[Tuple[int, int], int] = {}
        # Real byte content, present only for files written with bytes.
        self.contents: Dict[Tuple[int, int], bytearray] = {}
        self.oracle = Oracle(self)

        self._handlers: Dict[str, Callable] = {
            name[5:]: getattr(self, name)
            for name in dir(self)
            if name.startswith("_sys_")
        }

    # ==================================================================
    # Process lifecycle and the scheduler loop
    # ==================================================================
    def spawn(self, gen: Generator, name: str = "") -> Process:
        process = Process(self._next_pid, gen, name)
        self._next_pid += 1
        process.ready_at = self.clock.now
        self.scheduler.add(process)
        return process

    def spawn_with_pipe_ends(
        self,
        gen_factory: Callable[..., Generator],
        ends: List[Tuple[PipeBuffer, str]],
        name: str = "",
    ) -> Process:
        """Spawn a process holding descriptors on pre-made pipes.

        The shell's fd-inheritance equivalent: ``ends`` is a list of
        (pipe, "pipe_r"|"pipe_w") pairs; the factory is called with the
        resulting fd numbers, in order, to build the process body.
        """
        process = Process(self._next_pid, iter(()), name)
        self._next_pid += 1
        fds = [self.share_pipe_end(process, pipe, kind) for pipe, kind in ends]
        process.gen = gen_factory(*fds)
        process.ready_at = self.clock.now
        self.scheduler.add(process)
        return process

    def run(self, max_steps: Optional[int] = None) -> None:
        """Run until every process finishes (or ``max_steps`` syscalls).

        The common single-process case stays on the scheduler's
        fast slot (no heap traffic); bound methods are hoisted out of
        the loop because this is the simulator's hottest few lines.
        """
        next_ready = self.scheduler.next_ready
        advance_to = self.clock.advance_to
        step = self._step
        steps = 0
        while True:
            process = next_ready()
            if process is None:
                blocked = self.scheduler.blocked()
                if blocked:
                    names = ", ".join(p.name for p in blocked)
                    raise RuntimeError(f"deadlock: blocked processes remain: {names}")
                return
            advance_to(process.ready_at)
            step(process)
            steps += 1
            if max_steps is not None and steps >= max_steps:
                raise RuntimeError(f"exceeded max_steps={max_steps}")

    def run_process(self, gen: Generator, name: str = "") -> Any:
        """Spawn one process, run the machine to idle, return its result."""
        process = self.spawn(gen, name)
        self.run()
        return process.result

    def _step(self, process: Process) -> None:
        retry = getattr(process, "retry_syscall", None)
        if retry is not None:
            self._execute(process, retry)
            return
        try:
            if process.pending_exception is not None:
                exc = process.pending_exception
                process.pending_exception = None
                item = process.gen.throw(exc)
            elif not process.started:
                process.started = True
                item = next(process.gen)
            else:
                item = process.gen.send(process.pending_value)
        except StopIteration as stop:
            self._exit_process(process, stop.value)
            return
        if not isinstance(item, Syscall):
            raise TypeError(
                f"{process.name} yielded {item!r}; processes must yield Syscall objects"
            )
        self._execute(process, item)

    def _execute(self, process: Process, syscall: Syscall) -> None:
        handler = self._handlers.get(syscall.name)
        if handler is None:
            raise InvalidArgument(f"unknown syscall {syscall.name!r}")
        start = self.clock.now
        process.stats.syscalls += 1
        try:
            outcome = handler(process, *syscall.args)
        except SimOSError as err:
            # Deliver the failure into the process after the base overhead.
            self.obs.record_syscall_error(syscall.name)
            process.pending_exception = err
            process.retry_syscall = None
            self.scheduler.make_ready(process, start + self.config.syscall_overhead_ns)
            return
        if outcome is BLOCK:
            process.retry_syscall = syscall
            self.scheduler.block(process)
            return
        value, duration = outcome
        self.obs.record_syscall(syscall.name, duration)
        finish = start + duration
        process.pending_value = SyscallResult(value, finish - start, start, finish)
        process.retry_syscall = None
        self.scheduler.make_ready(process, finish)

    def _exit_process(self, process: Process, result: Any) -> None:
        process.result = result
        self.scheduler.finish(process)
        for fd in list(process.fd_table):
            self._release_fd(process, process.fd_table.pop(fd))
        keys = [AnonKey(process.pid, page) for page in process.address_space.touched]
        self.mm.release_process(process.pid, keys)
        for waiter_pid in process.waiters:
            waiter = self.scheduler.processes.get(waiter_pid)
            if waiter is not None and waiter.state is ProcessState.BLOCKED:
                self.scheduler.make_ready(waiter, self.clock.now)
        process.waiters.clear()

    def _wake_all(self, pids: List[int]) -> None:
        for pid in pids:
            waiter = self.scheduler.processes.get(pid)
            if waiter is not None and waiter.state is ProcessState.BLOCKED:
                self.scheduler.make_ready(waiter, self.clock.now)
        pids.clear()

    # ==================================================================
    # Path resolution and metadata I/O
    # ==================================================================
    def _fs_for(self, parsed: PathName) -> Tuple[FFS, Disk]:
        fs, disk_id = self.mounts.filesystem(parsed.mount)
        return fs, self._disk_of_fs[fs.fs_id]

    def _meta_read(self, fs: FFS, disk: Disk, block: int, t: int) -> int:
        """Read one metadata block through the cache; returns new time."""
        key = MetaKey(fs.fs_id, block)
        if self.mm.file_cached(key):
            self.mm.touch_file(key)
            return t + self.config.page_copy_ns(128)
        _start, end = disk.access(block, 1, t, self.config.page_size)
        victims = self.mm.touch_file(key)
        return self._dispose_victims(victims, end)

    def _read_inode(self, fs: FFS, disk: Disk, ino: int, t: int) -> int:
        return self._meta_read(fs, disk, fs.inode_table_block(ino), t)

    def _read_dir_pages(self, fs: FFS, disk: Disk, dir_ino: int, t: int) -> int:
        inode = fs.get_inode(dir_ino)
        npages = max(inode.npages(self.config.page_size), 1)
        t, _hits = self._read_file_pages(fs, disk, inode, range(min(npages, len(inode.blocks))), t)
        return t

    def _resolve(self, process: Process, path: str, t: int) -> Tuple[FFS, Disk, Inode, int]:
        """Walk ``path``; returns (fs, disk, inode, new_time)."""
        parsed = PathName.parse(path)
        fs, disk = self._fs_for(parsed)
        ino = ROOT_INO
        t = self._read_inode(fs, disk, ino, t)
        for component in parsed.components:
            inode = fs.get_inode(ino)
            if not inode.is_dir:
                raise NotADirectory(f"{component!r} reached via a non-directory")
            t = self._read_dir_pages(fs, disk, ino, t)
            ino = fs.get_directory(ino).lookup(component)
            t = self._read_inode(fs, disk, ino, t)
        return fs, disk, fs.get_inode(ino), t

    def _resolve_parent(
        self, process: Process, path: str, t: int
    ) -> Tuple[FFS, Disk, Inode, str, int]:
        parsed = PathName.parse(path)
        fs, disk, parent, t = self._resolve(process, str(parsed.dirname), t)
        if not parent.is_dir:
            raise NotADirectory(f"parent of {path!r} is not a directory")
        return fs, disk, parent, parsed.basename, t

    # ==================================================================
    # Data-page I/O
    # ==================================================================
    def _read_file_pages(
        self, fs: FFS, disk: Disk, inode: Inode, indexes: Iterable[int], t: int
    ) -> Tuple[int, int]:
        """Bring the given pages into cache; returns (new_time, hit_count).

        Contiguous cache misses whose disk blocks are also contiguous are
        clustered into single disk requests.
        """
        hits = 0
        run_start_block = -1
        run_len = 0

        def flush_run(now: int) -> int:
            nonlocal run_len, run_start_block
            if run_len == 0:
                return now
            _s, end = disk.access(run_start_block, run_len, now, self.config.page_size)
            run_len = 0
            return end

        pending_victims: List[PageEntry] = []
        for index in indexes:
            key = FileKey(fs.fs_id, inode.ino, index)
            if self.mm.file_cached(key):
                self.mm.touch_file(key)
                hits += 1
                continue
            block = inode.block_of_page(index)
            if run_len and block == run_start_block + run_len:
                run_len += 1
            else:
                t = flush_run(t)
                run_start_block = block
                run_len = 1
            pending_victims.extend(self.mm.touch_file(key))
        t = flush_run(t)
        t = self._dispose_victims(pending_victims, t)
        return t, hits

    def _write_file_pages(
        self, fs: FFS, disk: Disk, inode: Inode, offset: int, nbytes: int, t: int
    ) -> int:
        """Dirty the pages covering [offset, offset+nbytes) through the cache."""
        page = self.config.page_size
        first = offset // page
        last = (offset + nbytes - 1) // page
        old_pages = len(inode.blocks)
        fs.grow_to_size(inode, offset + nbytes)
        fs.rewrite_pages(inode, first, min(last, old_pages - 1))
        victims: List[PageEntry] = []
        for index in range(first, last + 1):
            key = FileKey(fs.fs_id, inode.ino, index)
            covers_whole = offset <= index * page and (index + 1) * page <= offset + nbytes
            needs_rmw = (
                not covers_whole
                and index < old_pages
                and not self.mm.file_cached(key)
            )
            if needs_rmw:
                t, _ = self._read_file_pages(fs, disk, inode, [index], t)
            victims.extend(self.mm.touch_file(key, dirty=True))
        return self._dispose_victims(victims, t)

    def _dispose_victims(self, victims: List[PageEntry], t: int) -> int:
        """Perform the page daemon's writebacks; returns the new time.

        Anonymous victims already have swap slots assigned; contiguous
        slots become one clustered swap write.  Dirty file/meta pages are
        written back to their home blocks, clustered where contiguous.
        """
        if not victims:
            return t
        swap_slots: List[int] = []
        file_writes: Dict[int, List[int]] = {}
        for entry in victims:
            key = entry.key
            if isinstance(key, AnonKey):
                slot = self.mm.swap.slot_of(key)
                if slot is not None:
                    swap_slots.append(slot)
            elif isinstance(key, FileKey) and entry.dirty:
                fs = self._fs_by_id.get(key.fs_id)
                if fs is None:
                    continue
                inode = fs.inodes.get(key.ino)
                if inode is None or key.index >= len(inode.blocks):
                    continue
                file_writes.setdefault(key.fs_id, []).append(inode.blocks[key.index])
            elif isinstance(key, MetaKey) and entry.dirty:
                file_writes.setdefault(key.fs_id, []).append(key.block)
        t = self._write_block_runs(self.swap_disk, swap_slots, t)
        for fs_id, blocks in file_writes.items():
            t = self._write_block_runs(self._disk_of_fs[fs_id], blocks, t)
        return t

    def _write_block_runs(self, disk: Disk, blocks: List[int], t: int) -> int:
        """Write ``blocks`` back as clustered runs; returns the new time.

        Sorts the list in place exactly once per flush (the old code
        built a fresh ``sorted()`` copy at every call site, which showed
        up in the writeback/swap profiles).
        """
        if not blocks:
            return t
        blocks.sort()
        page = self.config.page_size
        for start, length in _runs(blocks):
            _s, t = disk.access(start, length, t, page, write=True)
        return t

    def _throttle_dirty(self, t: int) -> int:
        """bdflush-style write throttling (charged to the writer).

        When dirty file pages exceed their share of memory, flush the
        oldest down to the target and demote them so streaming writers
        recycle their own pages instead of evicting read caches.
        """
        cfg = self.config
        capacity = self.mm.file_capacity_pages
        limit = int(capacity * cfg.dirty_limit_frac)
        if self.mm.dirty_file_pages <= limit:
            return t
        target = int(capacity * cfg.dirty_flush_target_frac)
        need = self.mm.dirty_file_pages - target
        keys = self.mm.oldest_dirty_file_keys(need)
        writes: Dict[int, List[int]] = {}
        for key in keys:
            if isinstance(key, FileKey):
                fs = self._fs_by_id.get(key.fs_id)
                inode = fs.inodes.get(key.ino) if fs else None
                if inode is None or key.index >= len(inode.blocks):
                    self.mm.writeback_complete(key)
                    continue
                writes.setdefault(key.fs_id, []).append(inode.blocks[key.index])
            elif isinstance(key, MetaKey):
                writes.setdefault(key.fs_id, []).append(key.block)
            self.mm.writeback_complete(key)
        for fs_id, blocks in writes.items():
            t = self._write_block_runs(self._disk_of_fs[fs_id], blocks, t)
        return t

    def _drop_file_cache(self, fs: FFS, inode: Inode) -> None:
        for index in range(len(inode.blocks)):
            self.mm.drop_file_page(FileKey(fs.fs_id, inode.ino, index))

    # ==================================================================
    # Syscall handlers (each returns (value, duration) or BLOCK)
    # ==================================================================
    def _sys_open(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self._resolve(process, path, t)
        if inode.is_dir:
            raise IsADirectory(f"{path!r} is a directory")
        entry = process.new_fd("file", fs_name=PathName.parse(path).mount, ino=inode.ino)
        self._open_count[(fs.fs_id, inode.ino)] = (
            self._open_count.get((fs.fs_id, inode.ino), 0) + 1
        )
        return entry.fd, t - t0

    def _sys_create(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self._resolve_parent(process, path, t)
        inode = fs.create(parent.ino, name, FileKind.FILE, self.clock.now)
        t = self._dirty_meta(fs, inode.ino, t)
        t = self._dirty_meta(fs, parent.ino, t)
        t = self._dirty_dir_data(fs, parent.ino, t)
        entry = process.new_fd("file", fs_name=PathName.parse(path).mount, ino=inode.ino)
        self._open_count[(fs.fs_id, inode.ino)] = (
            self._open_count.get((fs.fs_id, inode.ino), 0) + 1
        )
        return entry.fd, t - t0

    def _dirty_meta(self, fs: FFS, ino: int, t: int) -> int:
        key = MetaKey(fs.fs_id, fs.inode_table_block(ino))
        victims = self.mm.touch_file(key, dirty=True)
        return self._dispose_victims(victims, t)

    def _dirty_dir_data(self, fs: FFS, dir_ino: int, t: int) -> int:
        """Writing a directory entry leaves the directory's data cached."""
        inode = fs.get_inode(dir_ino)
        victims: List[PageEntry] = []
        for index in range(len(inode.blocks)):
            victims.extend(
                self.mm.touch_file(FileKey(fs.fs_id, dir_ino, index), dirty=True)
            )
        return self._dispose_victims(victims, t)

    def _sys_close(self, process: Process, fd: int):
        entry = process.close_fd(fd)
        self._release_fd(process, entry)
        return None, self.config.syscall_overhead_ns

    def _release_fd(self, process: Process, entry: OpenFile) -> None:
        if entry.kind == "file":
            fs, _ = self.mounts.filesystem(entry.fs_name)
            key = (fs.fs_id, entry.ino)
            count = self._open_count.get(key, 0) - 1
            if count > 0:
                self._open_count[key] = count
            else:
                self._open_count.pop(key, None)
        elif entry.kind == "pipe_r" and entry.pipe is not None:
            entry.pipe.readers -= 1
            self._wake_all(entry.pipe.waiting_writers)
        elif entry.kind == "pipe_w" and entry.pipe is not None:
            entry.pipe.writers -= 1
            self._wake_all(entry.pipe.waiting_readers)

    def _file_of(self, entry: OpenFile) -> Tuple[FFS, Disk, Inode]:
        fs, _disk_id = self.mounts.filesystem(entry.fs_name)
        inode = fs.get_inode(entry.ino)
        return fs, self._disk_of_fs[fs.fs_id], inode

    def _sys_read(self, process: Process, fd: int, nbytes: int):
        entry = process.lookup_fd(fd)
        if entry.kind == "pipe_r":
            return self._pipe_read(process, entry, nbytes)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} is not readable")
        value, duration = self._do_read(process, entry, entry.pos, nbytes)
        entry.pos += value.nbytes
        return value, duration

    def _sys_pread(self, process: Process, fd: int, offset: int, nbytes: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support pread")
        return self._do_read(process, entry, offset, nbytes)

    def _do_read(self, process: Process, entry: OpenFile, offset: int, nbytes: int):
        t0 = self.clock.now
        value, finish = self._pread_at(entry, offset, nbytes, t0)
        return value, finish - t0

    def _pread_at(
        self, entry: OpenFile, offset: int, nbytes: int, start: int
    ) -> Tuple[ReadResult, int]:
        """One positional read beginning at simulated time ``start``.

        Returns (ReadResult, finish_time).  Shared by the sequential
        read path (where ``start`` is the clock) and ``pread_batch``
        (where ``start`` is the cumulative batch time), so both charge
        bit-identical simulated time per probe.
        """
        if offset < 0 or nbytes < 0:
            raise InvalidArgument("negative offset or length")
        t = start + self.config.syscall_overhead_ns
        fs, disk, inode = self._file_of(entry)
        effective = min(nbytes, max(inode.size - offset, 0))
        if effective == 0:
            return ReadResult(0), t
        page = self.config.page_size
        first = offset // page
        last = (offset + effective - 1) // page
        t, _hits = self._read_file_pages(fs, disk, inode, range(first, last + 1), t)
        t += self.config.page_copy_ns(effective)
        inode.stamp(start, access=True)
        data = None
        stored = self.contents.get((fs.fs_id, inode.ino))
        if stored is not None:
            data = bytes(stored[offset : offset + effective])
        return ReadResult(effective, data), t

    def _sys_pread_batch(self, process: Process, fd: int, probes):
        """Vectored pread: the whole probe list in one dispatch.

        Each probe is charged exactly the simulated time an individual
        ``pread`` would have paid (including per-call overhead), walking
        the same cache and disk state in the same order, so the timing
        channel the ICLs read is bit-for-bit identical to the sequential
        path — only the host-side dispatch cost is amortized.
        """
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support pread")
        t0 = self.clock.now
        t = t0
        results: List[ProbeRead] = []
        append = results.append
        # No other process can run mid-batch, so the file identity, its
        # size, and its stored contents are loop invariants; per-probe
        # constants (overhead, copy cost per length) are hoisted too.
        # The fast branch below covers the ICLs' bread and butter — a
        # single-page probe hitting the cache — and reproduces the exact
        # effects of ``_pread_at`` for that case: one clean policy touch
        # and ``overhead + page_copy`` of simulated time.  Everything
        # else (miss, page-spanning, short or invalid reads) falls back
        # to ``_pread_at`` itself.
        fs, _disk, inode = self._file_of(entry)
        fs_id = fs.fs_id
        ino = inode.ino
        size = inode.size
        stored = self.contents.get((fs_id, ino))
        cfg = self.config
        page = cfg.page_size
        overhead = cfg.syscall_overhead_ns
        touch_cached = self.mm.touch_file_cached
        copy_ns: Dict[int, int] = {}
        # ``_pread_at`` stamps the inode atime per non-empty read with
        # that probe's start time; only the last stamp survives, so the
        # fast path defers it.  A fallback probe stamps internally
        # (superseding anything pending), hence the reset.
        pending_stamp = None
        for offset, nbytes in probes:
            if 0 <= offset < size and nbytes > 0:
                end = offset + nbytes
                effective = nbytes if end <= size else size - offset
                first = offset // page
                if (
                    first == (offset + effective - 1) // page
                    and touch_cached(FileKey(fs_id, ino, first))
                ):
                    copy = copy_ns.get(effective)
                    if copy is None:
                        copy = cfg.page_copy_ns(effective)
                        copy_ns[effective] = copy
                    elapsed = overhead + copy
                    data = (
                        bytes(stored[offset : offset + effective])
                        if stored is not None
                        else None
                    )
                    append(ProbeRead(effective, elapsed, data))
                    pending_stamp = t
                    t += elapsed
                    continue
            value, finish = self._pread_at(entry, offset, nbytes, t)
            append(ProbeRead(value.nbytes, finish - t, value.data))
            if value.nbytes > 0:
                pending_stamp = None
            t = finish
        if pending_stamp is not None:
            inode.stamp(pending_stamp, access=True)
        return results, t - t0

    def _sys_stat_batch(self, process: Process, paths):
        """Vectored stat: resolve every path in one dispatch.

        Resolution warms the metadata cache cumulatively, exactly as a
        sequence of ``stat`` calls would, and each entry carries that
        call's simulated elapsed time.  A missing path fails the whole
        batch (the completed walks' cache effects remain, as with any
        partially-failed vectored call).
        """
        t0 = self.clock.now
        t = t0
        results: List[ProbeStat] = []
        for path in paths:
            start = t
            t += self.config.syscall_overhead_ns
            fs, disk, inode, t = self._resolve(process, path, t)
            results.append(ProbeStat(StatResult.from_inode(inode), t - start))
        return results, t - t0

    def _sys_write(self, process: Process, fd: int, data):
        entry = process.lookup_fd(fd)
        if entry.kind == "pipe_w":
            return self._pipe_write(process, entry, data)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} is not writable")
        value, duration = self._do_write(process, entry, entry.pos, data)
        entry.pos += value
        return value, duration

    def _sys_pwrite(self, process: Process, fd: int, offset: int, data):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support pwrite")
        return self._do_write(process, entry, offset, data)

    def _do_write(self, process: Process, entry: OpenFile, offset: int, data):
        payload = data if isinstance(data, (bytes, bytearray)) else None
        nbytes = len(payload) if payload is not None else int(data)
        if offset < 0 or nbytes < 0:
            raise InvalidArgument("negative offset or length")
        if nbytes == 0:
            return 0, self.config.syscall_overhead_ns
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode = self._file_of(entry)
        t = self._write_file_pages(fs, disk, inode, offset, nbytes, t)
        t += self.config.page_copy_ns(nbytes)
        t = self._dirty_meta(fs, inode.ino, t)
        t = self._throttle_dirty(t)
        inode.stamp(self.clock.now, modify=True, change=True)
        if payload is not None:
            stored = self.contents.setdefault((fs.fs_id, inode.ino), bytearray())
            if len(stored) < offset:
                stored.extend(b"\x00" * (offset - len(stored)))
            stored[offset : offset + nbytes] = payload
        return nbytes, t - t0

    def _sys_seek(self, process: Process, fd: int, offset: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support seek")
        if offset < 0:
            raise InvalidArgument("negative seek offset")
        entry.pos = offset
        return offset, self.config.syscall_overhead_ns

    def _sys_fsync(self, process: Process, fd: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support fsync")
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode = self._file_of(entry)
        dirty_blocks: List[int] = []
        for index in range(len(inode.blocks)):
            key = FileKey(fs.fs_id, inode.ino, index)
            if self.mm.file_page_dirty(key):
                dirty_blocks.append(inode.blocks[index])
                self.mm.mark_file_clean(key)
        count = len(dirty_blocks)
        t = self._write_block_runs(disk, dirty_blocks, t)
        return count, t - t0

    def _sys_stat(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self._resolve(process, path, t)
        return StatResult.from_inode(inode), t - t0

    def _sys_fstat(self, process: Process, fd: int):
        entry = process.lookup_fd(fd)
        if entry.kind != "file":
            raise BadFileDescriptor(f"fd {fd} does not support fstat")
        fs, disk, inode = self._file_of(entry)
        t = self.config.syscall_overhead_ns
        return StatResult.from_inode(inode), t

    def _sys_mkdir(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self._resolve_parent(process, path, t)
        inode = fs.create(parent.ino, name, FileKind.DIRECTORY, self.clock.now)
        t = self._dirty_meta(fs, inode.ino, t)
        t = self._dirty_meta(fs, parent.ino, t)
        t = self._dirty_dir_data(fs, parent.ino, t)
        t = self._dirty_dir_data(fs, inode.ino, t)
        return None, t - t0

    def _sys_rmdir(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self._resolve_parent(process, path, t)
        dead, _freed = fs.rmdir(parent.ino, name, self.clock.now)
        self._drop_cached_inode(fs, dead)
        t = self._dirty_meta(fs, parent.ino, t)
        t = self._dirty_dir_data(fs, parent.ino, t)
        return None, t - t0

    def _sys_unlink(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, parent, name, t = self._resolve_parent(process, path, t)
        ino = fs.get_directory(parent.ino).lookup(name)
        if self._open_count.get((fs.fs_id, ino), 0) > 0:
            raise InvalidArgument(f"{path!r} is still open; close it before unlink")
        dead, _freed = fs.unlink(parent.ino, name, self.clock.now)
        self._drop_cached_inode(fs, dead)
        self.contents.pop((fs.fs_id, dead.ino), None)
        t = self._dirty_meta(fs, parent.ino, t)
        t = self._dirty_dir_data(fs, parent.ino, t)
        return None, t - t0

    def _drop_cached_inode(self, fs: FFS, dead: Inode) -> None:
        npages = max(len(dead.blocks), dead.npages(self.config.page_size))
        for index in range(npages):
            self.mm.drop_file_page(FileKey(fs.fs_id, dead.ino, index))

    def _sys_rename(self, process: Process, old: str, new: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        old_parsed = PathName.parse(old)
        new_parsed = PathName.parse(new)
        if old_parsed.mount != new_parsed.mount:
            raise InvalidArgument("rename cannot cross filesystems")
        fs, disk, old_parent, old_name, t = self._resolve_parent(process, old, t)
        _fs, _disk, new_parent, new_name, t = self._resolve_parent(process, new, t)
        fs.rename(old_parent.ino, old_name, new_parent.ino, new_name, self.clock.now)
        t = self._dirty_meta(fs, old_parent.ino, t)
        t = self._dirty_meta(fs, new_parent.ino, t)
        t = self._dirty_dir_data(fs, old_parent.ino, t)
        t = self._dirty_dir_data(fs, new_parent.ino, t)
        return None, t - t0

    def _sys_readdir(self, process: Process, path: str):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        parsed = PathName.parse(path)
        fs, disk, inode, t = self._resolve(process, path, t)
        if not inode.is_dir:
            raise NotADirectory(f"{path!r} is not a directory")
        t = self._read_dir_pages(fs, disk, inode.ino, t)
        names = fs.get_directory(inode.ino).names()
        t += self.config.page_copy_ns(len(names) * DIRENT_BYTES)
        return names, t - t0

    def _sys_utimes(self, process: Process, path: str, atime_s: int, mtime_s: int):
        t0 = self.clock.now
        t = t0 + self.config.syscall_overhead_ns
        fs, disk, inode, t = self._resolve(process, path, t)
        inode.atime = atime_s
        inode.mtime = mtime_s
        t = self._dirty_meta(fs, inode.ino, t)
        return None, t - t0

    # ------------------------------------------------------------------
    # Memory syscalls
    # ------------------------------------------------------------------
    def _sys_vm_alloc(self, process: Process, nbytes: int, label: str = ""):
        if nbytes <= 0:
            raise InvalidArgument("vm_alloc needs a positive size")
        npages = -(-nbytes // self.config.page_size)
        region = process.address_space.allocate(npages, label)
        return region.region_id, self.config.syscall_overhead_ns

    def _sys_vm_free(self, process: Process, region_id: int):
        space = process.address_space
        region = space.region(region_id)
        touched = [
            AnonKey(process.pid, page)
            for page in region.page_numbers()
            if page in space.touched
        ]
        self.mm.free_anon_pages(process.pid, touched)
        space.free(region_id)
        return None, self.config.syscall_overhead_ns

    def _touch_one(self, process: Process, region_id: int, page_index: int, t: int) -> int:
        space = process.address_space
        region = space.region(region_id)
        if not 0 <= page_index < region.npages:
            raise InvalidArgument(
                f"page {page_index} outside region of {region.npages} pages"
            )
        page = region.base_page + page_index
        key = AnonKey(process.pid, page)
        touched_before = page in space.touched
        fault = self.mm.anon_fault(key, touched_before)
        space.touched.add(page)
        cfg = self.config
        if fault.kind is FaultKind.RESIDENT:
            return t + cfg.mem_touch_ns
        t += cfg.fault_overhead_ns
        t = self._dispose_victims(fault.evictions, t)
        if fault.kind is FaultKind.ZERO_FILL:
            return t + cfg.page_zero_ns
        _s, t = self.swap_disk.access(
            fault.swapin_slot, 1, t, cfg.page_size, write=False
        )
        return t + cfg.mem_touch_ns

    def _sys_touch(self, process: Process, region_id: int, page_index: int):
        t0 = self.clock.now
        t = self._touch_one(process, region_id, page_index, t0)
        return None, t - t0

    def _sys_touch_range(self, process: Process, region_id: int, start_page: int, npages: int):
        if npages <= 0:
            raise InvalidArgument("touch_range needs a positive page count")
        t0 = self.clock.now
        t = t0
        per_page: List[int] = []
        for index in range(start_page, start_page + npages):
            before = t
            t = self._touch_one(process, region_id, index, t)
            per_page.append(t - before)
        return per_page, t - t0

    def _sys_touch_batch(
        self,
        process: Process,
        region_id: int,
        start_page: int,
        npages: int,
        stride: int = 1,
        threshold_ns: Optional[int] = None,
        slow_count: int = 1,
        slow_window: int = 1,
    ):
        """Vectored page touches with MAC's windowed early-stop predicate.

        Without ``threshold_ns`` this is ``touch_range`` with a stride.
        With it, touching stops right after the page whose slow
        observation is the ``slow_count``-th within ``slow_window`` page
        indexes — so an aborted batch leaves the memory pool in exactly
        the state the equivalent sequential touch loop (which aborts at
        the same page) would have left it.
        """
        if npages <= 0:
            raise InvalidArgument("touch_batch needs a positive page count")
        if stride <= 0:
            raise InvalidArgument("touch_batch needs a positive stride")
        if slow_count < 1 or slow_window < 1:
            raise InvalidArgument("need slow_count >= 1 and slow_window >= 1")
        t0 = self.clock.now
        t = t0
        times: List[int] = []
        append = times.append
        slow_marks: List[int] = []
        stopped = False
        # Fast path for the resident case (MAC's verify loops re-touch
        # pages that are overwhelmingly still resident): skip the
        # per-page region lookup/bounds check — validated once for the
        # whole strided range here — and the FaultResult allocation.
        # Any fault that needs real work falls back to ``_touch_one``.
        space = process.address_space
        region = space.region(region_id)
        last_index = start_page + ((npages - 1) // stride) * stride
        in_bounds = 0 <= start_page and last_index < region.npages
        base_page = region.base_page
        touched = space.touched
        resident_touch = self.mm.anon_fault_resident
        mem_touch_ns = self.config.mem_touch_ns
        pid = process.pid
        for index in range(start_page, start_page + npages, stride):
            before = t
            page = base_page + index
            if in_bounds and page in touched and resident_touch(AnonKey(pid, page)):
                t += mem_touch_ns
                elapsed = mem_touch_ns
            else:
                t = self._touch_one(process, region_id, index, t)
                elapsed = t - before
            append(elapsed)
            if threshold_ns is not None and elapsed > threshold_ns:
                slow_marks.append(index)
                recent = sum(1 for m in slow_marks if index - m < slow_window)
                if recent >= slow_count:
                    stopped = True
                    break
        return TouchBatchResult(tuple(times), stopped), t - t0

    # ------------------------------------------------------------------
    # Time and CPU
    # ------------------------------------------------------------------
    def _sys_gettime(self, process: Process):
        overhead = self.config.gettime_overhead_ns
        return self.clock.now + overhead, overhead

    def _sys_compute(self, process: Process, ns: int):
        if ns < 0:
            raise InvalidArgument("negative compute time")
        slot = min(range(len(self._cpu_free_at)), key=self._cpu_free_at.__getitem__)
        start = max(self.clock.now, self._cpu_free_at[slot])
        finish = start + ns
        self._cpu_free_at[slot] = finish
        process.stats.cpu_ns += ns
        return None, finish - self.clock.now

    def _sys_sleep(self, process: Process, ns: int):
        if ns < 0:
            raise InvalidArgument("negative sleep time")
        return None, ns

    # ------------------------------------------------------------------
    # Processes and pipes
    # ------------------------------------------------------------------
    def _sys_getpid(self, process: Process):
        return process.pid, self.config.gettime_overhead_ns

    def _sys_spawn(self, process: Process, gen: Generator, name: str = ""):
        child = self.spawn(gen, name)
        return child.pid, self.config.syscall_overhead_ns

    def _sys_waitpid(self, process: Process, pid: int):
        target = self.scheduler.lookup(pid)
        if target is None:
            raise InvalidArgument(f"no such process {pid}")
        if target.done:
            return target.result, self.config.syscall_overhead_ns
        if process.pid not in target.waiters:
            target.waiters.append(process.pid)
        return BLOCK

    def make_pipe(self) -> PipeBuffer:
        """Create an unattached pipe for host-side pipeline wiring.

        The shell equivalent: create the pipe, then hand each end to a
        process with :meth:`share_pipe_end` before spawning it.
        """
        pipe = PipeBuffer(self._next_pipe_id)
        self._next_pipe_id += 1
        pipe.readers = 0
        pipe.writers = 0
        return pipe

    def _sys_pipe(self, process: Process):
        pipe = PipeBuffer(self._next_pipe_id)
        self._next_pipe_id += 1
        r = process.new_fd("pipe_r", pipe=pipe)
        w = process.new_fd("pipe_w", pipe=pipe)
        return (r.fd, w.fd), self.config.syscall_overhead_ns

    def share_pipe_end(self, process: Process, pipe: PipeBuffer, kind: str) -> int:
        """Give ``process`` a new descriptor on an existing pipe end.

        Used by spawn helpers that wire parent/child pipelines together
        (the counterpart of fd inheritance across fork/exec).
        """
        if kind == "pipe_r":
            pipe.readers += 1
        elif kind == "pipe_w":
            pipe.writers += 1
        else:
            raise InvalidArgument(f"bad pipe end {kind!r}")
        return process.new_fd(kind, pipe=pipe).fd

    def _pipe_write(self, process: Process, entry: OpenFile, data):
        pipe = entry.pipe
        nbytes = len(data) if isinstance(data, (bytes, bytearray)) else int(data)
        if nbytes <= 0:
            raise InvalidArgument("pipe write needs a positive length")
        if pipe.read_closed:
            raise BadFileDescriptor("pipe has no readers (EPIPE)")
        if pipe.space == 0:
            if process.pid not in pipe.waiting_writers:
                pipe.waiting_writers.append(process.pid)
            return BLOCK
        take = min(nbytes, pipe.space)
        pipe.buffered += take
        pipe.total_through += take
        self._wake_all(pipe.waiting_readers)
        duration = self.config.syscall_overhead_ns + self.config.page_copy_ns(take)
        return take, duration

    def _pipe_read(self, process: Process, entry: OpenFile, nbytes: int):
        pipe = entry.pipe
        if nbytes <= 0:
            raise InvalidArgument("pipe read needs a positive length")
        if pipe.buffered == 0:
            if pipe.write_closed:
                return ReadResult(0), self.config.syscall_overhead_ns
            if process.pid not in pipe.waiting_readers:
                pipe.waiting_readers.append(process.pid)
            return BLOCK
        take = min(nbytes, pipe.buffered)
        pipe.buffered -= take
        self._wake_all(pipe.waiting_writers)
        duration = self.config.syscall_overhead_ns + self.config.page_copy_ns(take)
        return ReadResult(take), duration


def _runs(sorted_values: List[int]) -> Iterable[Tuple[int, int]]:
    """Collapse a sorted int list into (start, length) contiguous runs."""
    start = None
    length = 0
    for value in sorted_values:
        if start is not None and value == start + length:
            length += 1
        elif start is not None and value == start + length - 1:
            continue  # duplicate
        else:
            if start is not None:
                yield start, length
            start = value
            length = 1
    if start is not None:
        yield start, length


class Oracle:
    """Ground-truth inspection for tests and the experiment harness.

    Nothing in :mod:`repro.icl`, :mod:`repro.toolbox`, or
    :mod:`repro.apps` may import this — the whole point of the paper is
    that the ICLs work without it.
    """

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel

    # --- filesystem ground truth --------------------------------------
    def _inode_at(self, path: str) -> Tuple[FFS, Inode]:
        parsed = PathName.parse(path)
        fs, _disk_id = self._kernel.mounts.filesystem(parsed.mount)
        ino = ROOT_INO
        for component in parsed.components:
            ino = fs.get_directory(ino).lookup(component)
        return fs, fs.get_inode(ino)

    def inode_of(self, path: str) -> Inode:
        return self._inode_at(path)[1]

    def file_blocks(self, path: str) -> List[int]:
        """The file's true on-disk block addresses, in page order."""
        return list(self._inode_at(path)[1].blocks)

    def cached_file_pages(self, path: str) -> Set[int]:
        """Which page indexes of the file are currently cached."""
        fs, inode = self._inode_at(path)
        mm = self._kernel.mm
        return {
            index
            for index in range(len(inode.blocks))
            if mm.file_cached(FileKey(fs.fs_id, inode.ino, index))
        }

    def cached_fraction(self, path: str) -> float:
        fs, inode = self._inode_at(path)
        total = inode.npages(self._kernel.config.page_size)
        if total == 0:
            return 0.0
        return len(self.cached_file_pages(path)) / total

    # --- memory ground truth -------------------------------------------
    def resident_anon_pages(self, pid: int) -> int:
        return self._kernel.mm.resident_anon_pages(pid)

    def resident_anon_bytes(self, pid: int) -> int:
        return self.resident_anon_pages(pid) * self._kernel.config.page_size

    def file_pool_used_pages(self) -> int:
        return self._kernel.mm.file_pool_used()

    def daemon_stats(self):
        return self._kernel.mm.daemon_stats

    def cache_stats(self):
        """Policy-level hit/miss/eviction accounting (file/unified pool)."""
        return self._kernel.mm.file_pool_stats()

    def swap_used_slots(self) -> int:
        return self._kernel.mm.swap.used_slots

    # --- experiment control ---------------------------------------------
    def flush_file_cache(self) -> int:
        """Drop every file/metadata page (dirty pages are discarded).

        Models the paper's between-run "flush the file cache" step; it is
        experiment setup, not something an ICL may call.
        """
        mm = self._kernel.mm
        doomed = list(mm.file_keys())
        for key in doomed:
            mm.drop_file_page(key)
        return len(doomed)

    def advance_time(self, ns: int) -> None:
        """Idle the machine forward (e.g. to cross an inode-time second)."""
        self._kernel.clock.advance(ns)

    def disk_stats(self, disk_index: int = 0):
        return self._kernel.data_disk_list[disk_index].stats

    def swap_disk_stats(self):
        return self._kernel.swap_disk.stats
