"""Processes and the cooperative scheduler."""

from repro.sim.proc.process import OpenFile, PipeBuffer, Process, ProcessState
from repro.sim.proc.scheduler import Scheduler

__all__ = ["OpenFile", "PipeBuffer", "Process", "ProcessState", "Scheduler"]
