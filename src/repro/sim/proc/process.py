"""Process control blocks, open-file table entries, and pipes."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, Generator, List, Optional

from repro.sim.errors import BadFileDescriptor
from repro.sim.vm.address_space import AddressSpace


class ProcessState(Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class OpenFile:
    """One open-file-table entry (regular file or pipe end)."""

    fd: int
    kind: str  # "file" | "pipe_r" | "pipe_w"
    fs_name: str = ""
    ino: int = 0
    pos: int = 0
    pipe: Optional["PipeBuffer"] = None


class PipeBuffer:
    """A bounded byte-count pipe between two processes.

    Only *lengths* flow through pipes (content is synthetic at this
    layer); the cost model charges a kernel-mediated copy per byte, the
    "extra copy of all data through the operating system via the pipe
    mechanism" the paper blames for gbp's residual overhead (§4.1.3).
    """

    CAPACITY = 64 * 1024

    def __init__(self, pipe_id: int) -> None:
        self.pipe_id = pipe_id
        self.buffered = 0
        self.readers = 1
        self.writers = 1
        self.waiting_readers: List[int] = []
        self.waiting_writers: List[int] = []
        self.total_through = 0

    @property
    def space(self) -> int:
        return self.CAPACITY - self.buffered

    @property
    def write_closed(self) -> bool:
        return self.writers == 0

    @property
    def read_closed(self) -> bool:
        return self.readers == 0


@dataclass
class ProcessStats:
    """Per-process accounting, readable through the oracle."""

    syscalls: int = 0
    cpu_ns: int = 0
    blocked_ns: int = 0


class Process:
    """A generator coroutine plus its kernel-side state.

    ``__slots__`` keeps the PCB compact and makes the dispatch loop's
    attribute loads (``retry_syscall``, ``pending_value``, ``stats``)
    fixed-offset reads instead of dict probes.
    """

    __slots__ = (
        "pid",
        "name",
        "gen",
        "state",
        "ready_at",
        "pending_value",
        "pending_exception",
        "retry_syscall",
        "started",
        "result",
        "address_space",
        "fd_table",
        "_next_fd",
        "waiters",
        "stats",
    )

    def __init__(self, pid: int, gen: Generator, name: str = "") -> None:
        self.pid = pid
        self.name = name or f"proc{pid}"
        self.gen = gen
        self.state = ProcessState.READY
        self.ready_at = 0
        # The value to send into the generator on the next step (None on
        # first step), or the exception to throw.
        self.pending_value: Any = None
        self.pending_exception: Optional[BaseException] = None
        # A syscall to re-execute on wake-up (set while blocked on a pipe
        # or waitpid), instead of advancing the generator.
        self.retry_syscall: Any = None
        self.started = False
        self.result: Any = None
        self.address_space = AddressSpace(pid)
        self.fd_table: Dict[int, OpenFile] = {}
        self._next_fd = 3  # reserve 0-2 in the spirit of stdio
        self.waiters: List[int] = []
        self.stats = ProcessStats()

    @property
    def done(self) -> bool:
        return self.state is ProcessState.DONE

    def new_fd(self, entry_kind: str, **fields: Any) -> OpenFile:
        entry = OpenFile(fd=self._next_fd, kind=entry_kind, **fields)
        self.fd_table[entry.fd] = entry
        self._next_fd += 1
        return entry

    def lookup_fd(self, fd: int) -> OpenFile:
        entry = self.fd_table.get(fd)
        if entry is None:
            raise BadFileDescriptor(f"{self.name}: fd {fd} is not open")
        return entry

    def close_fd(self, fd: int) -> OpenFile:
        entry = self.fd_table.pop(fd, None)
        if entry is None:
            raise BadFileDescriptor(f"{self.name}: fd {fd} is not open")
        return entry

    def __repr__(self) -> str:
        return f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value})"
