"""The process layer: process-control syscalls and pipe plumbing.

Owns everything that is about *processes talking to the kernel about
processes*: ``getpid`` / ``spawn`` / ``waitpid`` / ``pipe``, the pipe
buffers themselves (blocking reads and writes, EPIPE/EOF semantics,
waiter wake-ups), and the host-side pipeline wiring helpers
(:meth:`make_pipe`, :meth:`share_pipe_end`) the kernel exposes.

Process *lifecycle* — creating pids, the scheduler loop, exit cleanup —
stays in :class:`~repro.sim.kernel.Kernel`; this layer is handed the
kernel's ``spawn`` callable instead of reaching back into it.
"""

from __future__ import annotations

from typing import Callable, Generator, List

from repro.sim.clock import Clock
from repro.sim.config import MachineConfig
from repro.sim.dispatch import BLOCK, SyscallTable
from repro.sim.errors import BadFileDescriptor, InvalidArgument
from repro.sim.proc.process import OpenFile, PipeBuffer, Process, ProcessState
from repro.sim.proc.scheduler import Scheduler
from repro.sim.syscalls import ReadResult


class ProcLayer:
    """Process-control syscalls plus pipe buffers and their waiters."""

    def __init__(
        self,
        config: MachineConfig,
        clock: Clock,
        scheduler: Scheduler,
        spawn: Callable[[Generator, str], Process],
    ) -> None:
        self.config = config
        self.clock = clock
        self.scheduler = scheduler
        self._spawn = spawn
        self._next_pipe_id = 1

    def register_syscalls(self, table: SyscallTable) -> None:
        table.register("getpid", self.sys_getpid)
        table.register("spawn", self.sys_spawn)
        table.register("waitpid", self.sys_waitpid)
        table.register("pipe", self.sys_pipe)

    # ------------------------------------------------------------------
    # Wake-ups
    # ------------------------------------------------------------------
    def wake_all(self, pids: List[int]) -> None:
        """Ready every still-blocked pid in the list, then clear it."""
        for pid in pids:
            waiter = self.scheduler.processes.get(pid)
            if waiter is not None and waiter.state is ProcessState.BLOCKED:
                self.scheduler.make_ready(waiter, self.clock.now)
        pids.clear()

    # ------------------------------------------------------------------
    # Process-control handlers
    # ------------------------------------------------------------------
    def sys_getpid(self, process: Process):
        return process.pid, self.config.gettime_overhead_ns

    def sys_spawn(self, process: Process, gen: Generator, name: str = ""):
        child = self._spawn(gen, name)
        return child.pid, self.config.syscall_overhead_ns

    def sys_waitpid(self, process: Process, pid: int):
        target = self.scheduler.lookup(pid)
        if target is None:
            raise InvalidArgument(f"no such process {pid}")
        if target.done:
            return target.result, self.config.syscall_overhead_ns
        if process.pid not in target.waiters:
            target.waiters.append(process.pid)
        return BLOCK

    # ------------------------------------------------------------------
    # Pipes
    # ------------------------------------------------------------------
    def make_pipe(self) -> PipeBuffer:
        """Create an unattached pipe for host-side pipeline wiring.

        The shell equivalent: create the pipe, then hand each end to a
        process with :meth:`share_pipe_end` before spawning it.
        """
        pipe = PipeBuffer(self._next_pipe_id)
        self._next_pipe_id += 1
        pipe.readers = 0
        pipe.writers = 0
        return pipe

    def sys_pipe(self, process: Process):
        pipe = PipeBuffer(self._next_pipe_id)
        self._next_pipe_id += 1
        r = process.new_fd("pipe_r", pipe=pipe)
        w = process.new_fd("pipe_w", pipe=pipe)
        return (r.fd, w.fd), self.config.syscall_overhead_ns

    def share_pipe_end(self, process: Process, pipe: PipeBuffer, kind: str) -> int:
        """Give ``process`` a new descriptor on an existing pipe end.

        Used by spawn helpers that wire parent/child pipelines together
        (the counterpart of fd inheritance across fork/exec).
        """
        if kind == "pipe_r":
            pipe.readers += 1
        elif kind == "pipe_w":
            pipe.writers += 1
        else:
            raise InvalidArgument(f"bad pipe end {kind!r}")
        return process.new_fd(kind, pipe=pipe).fd

    def pipe_write(self, process: Process, entry: OpenFile, data):
        pipe = entry.pipe
        nbytes = len(data) if isinstance(data, (bytes, bytearray)) else int(data)
        if nbytes <= 0:
            raise InvalidArgument("pipe write needs a positive length")
        if pipe.read_closed:
            raise BadFileDescriptor("pipe has no readers (EPIPE)")
        if pipe.space == 0:
            if process.pid not in pipe.waiting_writers:
                pipe.waiting_writers.append(process.pid)
            return BLOCK
        take = min(nbytes, pipe.space)
        pipe.buffered += take
        pipe.total_through += take
        self.wake_all(pipe.waiting_readers)
        duration = self.config.syscall_overhead_ns + self.config.page_copy_ns(take)
        return take, duration

    def pipe_read(self, process: Process, entry: OpenFile, nbytes: int):
        pipe = entry.pipe
        if nbytes <= 0:
            raise InvalidArgument("pipe read needs a positive length")
        if pipe.buffered == 0:
            if pipe.write_closed:
                return ReadResult(0), self.config.syscall_overhead_ns
            if process.pid not in pipe.waiting_readers:
                pipe.waiting_readers.append(process.pid)
            return BLOCK
        take = min(nbytes, pipe.buffered)
        pipe.buffered -= take
        self.wake_all(pipe.waiting_writers)
        duration = self.config.syscall_overhead_ns + self.config.page_copy_ns(take)
        return ReadResult(take), duration


__all__ = ["ProcLayer"]
