"""Earliest-ready cooperative scheduler.

Each step picks the READY process with the smallest ``ready_at`` and lets
it issue exactly one syscall; the syscall's simulated duration pushes the
process's next readiness into the future.  Because issue order always
follows readiness order, shared resources (disks via ``busy_until``,
memory pools via eviction state) see requests in correct time order, and
competing processes interleave realistically — which is what makes the
multi-process MAC experiment (Figure 7) meaningful.

Two fast paths keep the dispatch loop thin (the probe-heavy experiments
issue millions of syscalls through it):

* **single-runner slot** — while exactly one process is in the ready
  structure (the overwhelmingly common case: one ICL process driving a
  quiet machine), its entry lives in a one-element slot and dispatch
  never touches the heap at all; the slot spills into the heap the
  moment a second entry arrives, preserving (ready_at, seq) order.
* **incremental counts + pruning** — READY/BLOCKED counts are maintained
  at each transition instead of scanned, and finished processes move out
  of :attr:`processes` into :attr:`finished` (kept for ``waitpid``), so
  liveness queries never walk a long-dead population.

Stale heap entries (left when a queued process is superseded or blocked
out-of-band) are skipped lazily on pop, and the heap is compacted
whenever it grows beyond twice the runnable population.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import SnapshotStats
from repro.sim.proc.process import Process, ProcessState

# Below this size the heap is left alone: compaction bookkeeping would
# cost more than the handful of stale pops it saves.
COMPACT_MIN_ENTRIES = 16

# PCB-table state codes (see Scheduler: parallel arrays indexed by pid).
# Plain ints: the dispatch loop's validity test compares these with
# ``==`` on list loads instead of chasing ``process.state`` enum
# attributes.  ``Process.state`` keeps the ProcessState enum as the
# public view; the scheduler mirrors it here at every transition.
_FREE = -1
_READY = 0
_BLOCKED = 1
_DONE = 2


@dataclass
class SchedulerStats(SnapshotStats):
    """Dispatch accounting: how often the CPU changed hands.

    A *dispatch* is one scheduling decision; a *context switch* is a
    dispatch that picked a different process than the previous one —
    the quantity MAC's settle pause (and Figure 7's interleaving)
    depends on.  ``fast_dispatches`` counts dispatches served from the
    single-runner slot without touching the heap; ``heap_compactions``
    counts stale-entry sweeps.
    """

    dispatches: int = 0
    context_switches: int = 0
    fast_dispatches: int = 0
    heap_compactions: int = 0


class Scheduler:
    """Ready queue keyed by (ready_at, sequence), with a fast slot."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int]] = []  # (ready_at, seq, pid)
        # Single-runner fast slot; invariant: non-None only while the
        # heap is empty, so ordering against heap entries never arises.
        self._fast: Optional[Tuple[int, int, int]] = None
        self._seq = 0
        self.processes: Dict[int, Process] = {}  # live (READY/BLOCKED) only
        self.finished: Dict[int, Process] = {}  # DONE, kept for waitpid
        # PCB table: parallel arrays indexed by pid slot (pids are
        # assigned densely from 1, so a list is a perfect-hash pid map).
        # Dispatch validity is three list loads — state code, wake time,
        # Process ref — instead of a dict probe plus two attribute
        # chases through the Process object.
        self._state_tab: List[int] = [_FREE]  # slot 0 unused
        self._ready_tab: List[int] = [0]
        self._proc_tab: List[Optional[Process]] = [None]
        self.stats = SchedulerStats()
        self._last_pid: Optional[int] = None
        self._runnable = 0
        self._blocked = 0
        #: Optional interference hook (repro.sim.inject): called as
        #: ``hook(pid, at) -> extra_ns`` each time a process becomes
        #: ready, modelling stolen scheduler slots and coarse timers.
        self.wake_delay_hook: Optional[Callable[[int, int], int]] = None

    def add(self, process: Process) -> None:
        pid = process.pid
        self.processes[pid] = process
        tab = self._proc_tab
        if len(tab) <= pid:
            # Amortized growth: double capacity (at least to pid+1) with
            # one extend per array instead of appending slot-by-slot —
            # the arena spawns thousands of clients back to back, and
            # per-spawn cost must not scale with the table size.
            grow = max(pid + 1 - len(tab), len(tab))
            tab.extend([None] * grow)
            self._state_tab.extend([_FREE] * grow)
            self._ready_tab.extend([0] * grow)
        tab[pid] = process
        self._runnable += 1  # processes are born READY
        self.make_ready(process, process.ready_at)

    def make_ready(self, process: Process, at: int) -> None:
        if self.wake_delay_hook is not None:
            at += self.wake_delay_hook(process.pid, at)
        if process.state is ProcessState.BLOCKED:
            self._blocked -= 1
            self._runnable += 1
        process.state = ProcessState.READY
        process.ready_at = at
        pid = process.pid
        self._state_tab[pid] = _READY
        self._ready_tab[pid] = at
        self._seq += 1
        entry = (at, self._seq, process.pid)
        if self._fast is None and not self._heap:
            self._fast = entry
            return
        if self._fast is not None:
            heapq.heappush(self._heap, self._fast)
            self._fast = None
        heapq.heappush(self._heap, entry)

    def block(self, process: Process) -> None:
        """Mark blocked; its stale heap entries are skipped lazily."""
        if process.state is ProcessState.READY:
            self._runnable -= 1
            self._blocked += 1
        process.state = ProcessState.BLOCKED
        self._state_tab[process.pid] = _BLOCKED
        self._maybe_compact()

    def finish(self, process: Process) -> None:
        """Retire a process: prune it from the live table, keep its PCB.

        The PCB stays reachable through :attr:`finished` so a later
        ``waitpid`` can still collect the exit result.
        """
        if process.state is ProcessState.READY:
            self._runnable -= 1
        elif process.state is ProcessState.BLOCKED:
            self._blocked -= 1
        process.state = ProcessState.DONE
        pid = process.pid
        self._state_tab[pid] = _DONE
        self._proc_tab[pid] = None  # finished dict keeps the waitpid ref
        self.processes.pop(pid, None)
        self.finished[pid] = process

    def reap(self, pid: int) -> bool:
        """Drop a DONE process's PCB entirely; ``waitpid`` loses sight of it.

        :attr:`finished` is kept for ``waitpid``, which means it grows
        without bound over a long run.  A parent that has already
        collected a child's result (the arena collecting its clients)
        reaps it so the retired population stays O(live), not O(ever
        spawned).  Returns False when the pid is not in ``finished``
        (still live, never spawned, or already reaped) — live processes
        are deliberately not reapable.
        """
        process = self.finished.pop(pid, None)
        if process is None:
            return False
        # Free the PCB slot: any stale heap entry for this pid now fails
        # the `_READY` validity test exactly as it did under `_DONE`.
        self._state_tab[pid] = _FREE
        return True

    def lookup(self, pid: int) -> Optional[Process]:
        """Find a process, live or finished (the waitpid view)."""
        process = self.processes.get(pid)
        if process is not None:
            return process
        return self.finished.get(pid)

    def next_ready(self) -> Optional[Process]:
        """Pop the earliest READY process, discarding stale entries.

        Entry validity reads the PCB arrays, not the Process objects:
        heap entries only exist for pids that passed through
        :meth:`add`, so the pid is always within the table.
        """
        state_tab = self._state_tab
        ready_tab = self._ready_tab
        stats = self.stats
        while True:
            if self._fast is not None:
                entry_at, _seq, pid = self._fast
                self._fast = None
                fast = True
            elif self._heap:
                entry_at, _seq, pid = heapq.heappop(self._heap)
                fast = False
            else:
                return None
            if state_tab[pid] == _READY and ready_tab[pid] == entry_at:
                stats.dispatches += 1
                if fast:
                    stats.fast_dispatches += 1
                if pid != self._last_pid:
                    stats.context_switches += 1
                    self._last_pid = pid
                return self._proc_tab[pid]

    def _maybe_compact(self) -> None:
        """Rebuild the heap when stale entries dominate live ones."""
        heap = self._heap
        if len(heap) < COMPACT_MIN_ENTRIES or len(heap) <= 2 * self._runnable:
            return
        state_tab = self._state_tab
        ready_tab = self._ready_tab
        live = [
            entry
            for entry in heap
            if state_tab[entry[2]] == _READY and ready_tab[entry[2]] == entry[0]
        ]
        heapq.heapify(live)
        self._heap = live
        self.stats.heap_compactions += 1

    def runnable_count(self) -> int:
        return self._runnable

    def blocked_count(self) -> int:
        return self._blocked

    def blocked(self) -> List[Process]:
        return [p for p in self.processes.values() if p.state is ProcessState.BLOCKED]

    def live_count(self) -> int:
        return len(self.processes)
