"""Earliest-ready cooperative scheduler.

Each step picks the READY process with the smallest ``ready_at`` and lets
it issue exactly one syscall; the syscall's simulated duration pushes the
process's next readiness into the future.  Because issue order always
follows readiness order, shared resources (disks via ``busy_until``,
memory pools via eviction state) see requests in correct time order, and
competing processes interleave realistically — which is what makes the
multi-process MAC experiment (Figure 7) meaningful.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import SnapshotStats
from repro.sim.proc.process import Process, ProcessState


@dataclass
class SchedulerStats(SnapshotStats):
    """Dispatch accounting: how often the CPU changed hands.

    A *dispatch* is one scheduling decision; a *context switch* is a
    dispatch that picked a different process than the previous one —
    the quantity MAC's settle pause (and Figure 7's interleaving)
    depends on.
    """

    dispatches: int = 0
    context_switches: int = 0


class Scheduler:
    """Ready queue keyed by (ready_at, sequence)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int]] = []  # (ready_at, seq, pid)
        self._seq = 0
        self.processes: Dict[int, Process] = {}
        self.stats = SchedulerStats()
        self._last_pid: Optional[int] = None

    def add(self, process: Process) -> None:
        self.processes[process.pid] = process
        self.make_ready(process, process.ready_at)

    def make_ready(self, process: Process, at: int) -> None:
        process.state = ProcessState.READY
        process.ready_at = at
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, process.pid))

    def block(self, process: Process) -> None:
        """Mark blocked; its stale heap entries are skipped lazily."""
        process.state = ProcessState.BLOCKED

    def next_ready(self) -> Optional[Process]:
        """Pop the earliest READY process, discarding stale entries."""
        while self._heap:
            ready_at, _seq, pid = heapq.heappop(self._heap)
            process = self.processes.get(pid)
            if (
                process is not None
                and process.state is ProcessState.READY
                and process.ready_at == ready_at
            ):
                self.stats.dispatches += 1
                if process.pid != self._last_pid:
                    self.stats.context_switches += 1
                    self._last_pid = process.pid
                return process
        return None

    def runnable_count(self) -> int:
        return sum(
            1 for p in self.processes.values() if p.state is ProcessState.READY
        )

    def blocked(self) -> List[Process]:
        return [p for p in self.processes.values() if p.state is ProcessState.BLOCKED]

    def live_count(self) -> int:
        return sum(1 for p in self.processes.values() if not p.done)
