"""The syscall interface — the *only* channel between processes and kernel.

Application and ICL code is written as generator coroutines that yield
:class:`Syscall` request objects and receive :class:`SyscallResult`
objects back::

    def app():
        fd = (yield open("/mnt0/data")).value
        result = yield pread(fd, offset=0, nbytes=1)
        if result.elapsed_ns < threshold:      # gray-box inference!
            ...

Every result carries ``elapsed_ns`` — simulated wall-clock time the call
took, including queueing behind other processes' I/O.  That is the covert
channel of the paper: nothing else about kernel state is exposed.
Sub-routines compose with ``yield from`` and can return values via
``return`` (StopIteration), so ICL library calls look like
``order = yield from fccd.best_order(paths)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, NamedTuple, Optional, Sequence, Tuple, Union


class Syscall(NamedTuple):
    """One kernel request: a name plus positional arguments.

    A NamedTuple rather than a dataclass: one of these is constructed
    per issued syscall, so it sits on the simulator's hottest
    allocation path (a NamedTuple builds in one C call where the frozen
    dataclass paid two ``object.__setattr__`` rounds).
    """

    name: str
    args: Tuple[Any, ...] = ()

    def __repr__(self) -> str:
        inner = ", ".join(repr(a) for a in self.args)
        return f"sys.{self.name}({inner})"


class SyscallResult(NamedTuple):
    """What a yield returns: the value plus the simulated elapsed time.

    Also a NamedTuple for construction speed — the kernel builds one
    per executed syscall.
    """

    value: Any
    elapsed_ns: int
    start_ns: int
    finish_ns: int

    def __bool__(self) -> bool:  # pragma: no cover - guard against misuse
        raise TypeError(
            "SyscallResult is not a boolean; use .value (did you forget .value?)"
        )


# ---------------------------------------------------------------------------
# File and directory operations
# ---------------------------------------------------------------------------
def open_(path: str) -> Syscall:
    """Open an existing file for reading/writing; returns an fd."""
    return Syscall("open", (path,))


# `open` shadows the builtin inside this module only; exported deliberately
# so call sites read like UNIX: ``yield sc.open(path)``.
open = open_  # noqa: A001


def create(path: str) -> Syscall:
    """Create a new regular file and open it; returns an fd."""
    return Syscall("create", (path,))


def close(fd: int) -> Syscall:
    return Syscall("close", (fd,))


def read(fd: int, nbytes: int) -> Syscall:
    """Sequential read at the fd's current position; returns ReadResult."""
    return Syscall("read", (fd, nbytes))


def pread(fd: int, offset: int, nbytes: int) -> Syscall:
    """Positional read; does not move the fd position; returns ReadResult."""
    return Syscall("pread", (fd, offset, nbytes))


def write(fd: int, data: Union[int, bytes]) -> Syscall:
    """Sequential write; ``data`` is raw bytes or a synthetic byte count."""
    return Syscall("write", (fd, data))


def pwrite(fd: int, offset: int, data: Union[int, bytes]) -> Syscall:
    return Syscall("pwrite", (fd, offset, data))


def seek(fd: int, offset: int) -> Syscall:
    """Set the fd position (absolute)."""
    return Syscall("seek", (fd, offset))


def fsync(fd: int) -> Syscall:
    """Write back the file's dirty cached pages."""
    return Syscall("fsync", (fd,))


def stat(path: str) -> Syscall:
    """Returns a StatResult — the i-number channel FLDC uses."""
    return Syscall("stat", (path,))


def fstat(fd: int) -> Syscall:
    return Syscall("fstat", (fd,))


def pread_batch(fd: int, probes: Sequence[Tuple[int, int]]) -> Syscall:
    """Vectored pread: ``[(offset, nbytes), ...]`` in one kernel entry.

    The probes execute back-to-back inside a single scheduler dispatch,
    each charged exactly the simulated time the equivalent sequence of
    :func:`pread` calls would have paid (per-call overhead included), so
    the covert timing channel is bit-for-bit unchanged — batching only
    removes the *host* interpreter's per-call dispatch cost.  Returns a
    list of :class:`ProbeRead`, one per probe, carrying the per-probe
    ``elapsed_ns``.
    """
    return Syscall("pread_batch", (fd, tuple(probes)))


def stat_batch(paths: Sequence[str]) -> Syscall:
    """Vectored stat: one kernel entry for a whole path sweep.

    Returns a list of :class:`ProbeStat` in argument order, each with
    the StatResult plus the simulated time that individual ``stat``
    would have taken (path resolution walks the same cache state in the
    same order as sequential calls).  A missing path raises on the whole
    batch, like a short ``readv``.
    """
    return Syscall("stat_batch", (tuple(paths),))


def mkdir(path: str) -> Syscall:
    return Syscall("mkdir", (path,))


def rmdir(path: str) -> Syscall:
    return Syscall("rmdir", (path,))


def unlink(path: str) -> Syscall:
    return Syscall("unlink", (path,))


def rename(old: str, new: str) -> Syscall:
    return Syscall("rename", (old, new))


def readdir(path: str) -> Syscall:
    """Returns entry names in on-disk order."""
    return Syscall("readdir", (path,))


def utimes(path: str, atime_s: int, mtime_s: int) -> Syscall:
    """Set access/modification times (seconds), as the refresh step needs."""
    return Syscall("utimes", (path, atime_s, mtime_s))


# ---------------------------------------------------------------------------
# Memory operations
# ---------------------------------------------------------------------------
def vm_alloc(nbytes: int, label: str = "") -> Syscall:
    """Reserve address space; physical pages appear on first touch."""
    return Syscall("vm_alloc", (nbytes, label))


def vm_free(region_id: int) -> Syscall:
    return Syscall("vm_free", (region_id,))


def touch(region_id: int, page_index: int) -> Syscall:
    """Write one byte in one page; the timing primitive MAC builds on."""
    return Syscall("touch", (region_id, page_index))


def touch_range(region_id: int, start_page: int, npages: int) -> Syscall:
    """Touch pages in order; returns a list of per-page elapsed times."""
    return Syscall("touch_range", (region_id, start_page, npages))


def touch_batch(
    region_id: int,
    start_page: int,
    npages: int,
    stride: int = 1,
    threshold_ns: Optional[int] = None,
    slow_count: int = 1,
    slow_window: int = 1,
) -> Syscall:
    """Vectored page touches with an optional early-stop predicate.

    Touches ``start_page, start_page + stride, ...`` within the next
    ``npages`` pages, all inside one scheduler dispatch, and returns a
    :class:`TouchBatchResult` with per-page elapsed times.  When
    ``threshold_ns`` is given, touching stops right after the page whose
    ``slow_count``-th slow observation lands within ``slow_window``
    page indexes — the same windowed detector MAC's sequential probe
    loop runs in user space, moved kernel-side so an aborted batch
    leaves exactly the pages the sequential loop would have touched.
    """
    return Syscall(
        "touch_batch",
        (region_id, start_page, npages, stride, threshold_ns, slow_count, slow_window),
    )


# ---------------------------------------------------------------------------
# Time and CPU
# ---------------------------------------------------------------------------
# Zero-argument requests are immutable and the kernel only ever reads
# them, so each constructor returns one shared instance: the tightest
# probe loops (gettime between every probe) skip the allocation.
_GETTIME = Syscall("gettime", ())
_GETPID = Syscall("getpid", ())
_PIPE = Syscall("pipe", ())


def gettime() -> Syscall:
    """High-resolution timestamp (the toolbox's rdtsc equivalent)."""
    return _GETTIME


def compute(ns: int) -> Syscall:
    """Consume CPU for ``ns`` of work (contends for the machine's CPUs)."""
    return Syscall("compute", (ns,))


def sleep(ns: int) -> Syscall:
    """Yield the CPU for at least ``ns``."""
    return Syscall("sleep", (ns,))


# ---------------------------------------------------------------------------
# Processes and pipes
# ---------------------------------------------------------------------------
def spawn(generator, name: str = "") -> Syscall:
    """Start a child process from a generator; returns its pid."""
    return Syscall("spawn", (generator, name))


def waitpid(pid: int) -> Syscall:
    """Block until the child exits; returns its result value."""
    return Syscall("waitpid", (pid,))


def getpid() -> Syscall:
    return _GETPID


def pipe() -> Syscall:
    """Create a pipe; returns (read_fd, write_fd)."""
    return _PIPE


@dataclass(frozen=True)
class ReadResult:
    """Result value of read/pread: length actually read plus optional bytes.

    ``data`` is populated only for files written with real byte content;
    synthetic (length-only) files return ``None`` — the workloads decide
    which they need.
    """

    nbytes: int
    data: Optional[bytes] = None

    @property
    def eof(self) -> bool:
        return self.nbytes == 0


class ProbeRead(NamedTuple):
    """One probe's result inside a :func:`pread_batch` value.

    ``elapsed_ns`` is the simulated time this probe alone took — what
    the equivalent standalone ``pread``'s ``SyscallResult.elapsed_ns``
    would have read.  The enclosing SyscallResult's ``elapsed_ns`` is
    the sum over the batch.  A NamedTuple like :class:`ProbeStat`: the
    batch fast path builds one per probe, so construction cost matters.
    """

    nbytes: int
    elapsed_ns: int
    data: Optional[bytes] = None


class ProbeStat(NamedTuple):
    """One path's result inside a :func:`stat_batch` value.

    A NamedTuple: stat_batch builds one per path on its fast path, so
    construction cost matters the way it does not for the dataclass
    result types above.
    """

    stat: Any  # StatResult
    elapsed_ns: int


@dataclass(frozen=True)
class TouchBatchResult:
    """Value of :func:`touch_batch`: per-page times plus the stop flag.

    ``stopped`` is True when the slow-run predicate tripped; the last
    entry of ``elapsed_ns`` is then the touch that tripped it.  (The
    flag is needed because the predicate can trip on the final page,
    which is indistinguishable from a clean full pass by length alone.)
    """

    elapsed_ns: Tuple[int, ...]
    stopped: bool = False

    @property
    def pages_touched(self) -> int:
        return len(self.elapsed_ns)
