"""The VM fault layer: anonymous-memory syscalls and fault servicing.

Sits between the memory syscalls (``vm_alloc`` / ``vm_free`` /
``touch`` / ``touch_range`` / ``touch_batch``) and the
:class:`~repro.sim.vm.physmem.MemoryManager` below.  The memory manager
classifies each touch (resident / zero-fill / swap-in) and nominates
eviction victims; this layer turns the classification into simulated
time — fault overhead, page zeroing, swap-in I/O — and routes victim
writebacks through the
:class:`~repro.sim.pagecache.PageCacheManager`, exactly as the file
side does, so anonymous and file-backed memory share one writeback
path on unified-VM platforms.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, List, Optional

from repro.obs.profile import PROFILER
from repro.sim.cache.base import AnonKey
from repro.sim.clock import Clock
from repro.sim.config import MachineConfig
from repro.sim.disk import Disk
from repro.sim.dispatch import SyscallTable
from repro.sim.errors import InvalidArgument
from repro.sim.pagecache import PageCacheManager
from repro.sim.proc.process import Process
from repro.sim.syscalls import TouchBatchResult
from repro.sim.vm.physmem import FaultKind, MemoryManager


class VMLayer:
    """Anonymous-memory syscalls: allocation, touches, batched touches."""

    def __init__(
        self,
        config: MachineConfig,
        clock: Clock,
        mm: MemoryManager,
        swap_disk: Disk,
        page_cache: PageCacheManager,
    ) -> None:
        self.config = config
        self.clock = clock
        self.mm = mm
        self.swap_disk = swap_disk
        self.page_cache = page_cache
        #: Optional fault injector (repro.sim.inject.FaultInjector); when
        #: set, per-touch elapsed times pass through ``probe_elapsed`` so
        #: batched and sequential touches observe one noise stream (and
        #: the batch's early-stop predicate sees the noisy time, exactly
        #: like the user-space sequential loop would).
        self.inject: Optional[Any] = None
        #: Gate for the vectorized run paths (numpy membership tests +
        #: batched policy updates).  ``Kernel(numpy_paths=False)`` turns
        #: them off so the differential fuzzer can pin the vector paths
        #: against the scalar per-page loop bit for bit.
        self.numpy_paths: bool = True

    def register_syscalls(self, table: SyscallTable) -> None:
        table.register("vm_alloc", self.sys_vm_alloc)
        table.register("vm_free", self.sys_vm_free)
        table.register("touch", self.sys_touch)
        table.register("touch_range", self.sys_touch_range)
        table.register("touch_batch", self.sys_touch_batch)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def sys_vm_alloc(self, process: Process, nbytes: int, label: str = ""):
        if nbytes <= 0:
            raise InvalidArgument("vm_alloc needs a positive size")
        npages = -(-nbytes // self.config.page_size)
        region = process.address_space.allocate(npages, label)
        return region.region_id, self.config.syscall_overhead_ns

    def sys_vm_free(self, process: Process, region_id: int):
        space = process.address_space
        region = space.region(region_id)
        touched = [
            AnonKey(process.pid, page)
            for page in region.page_numbers()
            if page in space.touched
        ]
        self.mm.free_anon_pages(process.pid, touched)
        space.free(region_id)
        return None, self.config.syscall_overhead_ns

    # ------------------------------------------------------------------
    # Touches
    # ------------------------------------------------------------------
    def touch_one(self, process: Process, region_id: int, page_index: int, t: int) -> int:
        """Service one page touch starting at time ``t``; returns new time."""
        space = process.address_space
        region = space.region(region_id)
        if not 0 <= page_index < region.npages:
            raise InvalidArgument(
                f"page {page_index} outside region of {region.npages} pages"
            )
        page = region.base_page + page_index
        key = AnonKey(process.pid, page)
        touched_before = page in space.touched
        fault = self.mm.anon_fault(key, touched_before)
        space.touched.add(page)
        cfg = self.config
        if fault.kind is FaultKind.RESIDENT:
            return t + cfg.mem_touch_ns
        t += cfg.fault_overhead_ns
        t = self.page_cache.dispose_victims(fault.evictions, t)
        if fault.kind is FaultKind.ZERO_FILL:
            return t + cfg.page_zero_ns
        _s, t = self.swap_disk.access(
            fault.swapin_slot, 1, t, cfg.page_size, write=False
        )
        return t + cfg.mem_touch_ns

    def sys_touch(self, process: Process, region_id: int, page_index: int):
        t0 = self.clock.now
        t = self.touch_one(process, region_id, page_index, t0)
        duration = t - t0
        if self.inject is not None:
            duration = self.inject.probe_elapsed("touch", duration)
        return None, duration

    def sys_touch_range(self, process: Process, region_id: int, start_page: int, npages: int):
        """Touch pages in order; shares :meth:`_touch_run` with touch_batch.

        Routing through the batch interior (rather than a bare
        ``touch_one`` loop) gives touch_range the same resident fast
        check and, when the injector is inert, the same vectorized run
        paths — it previously re-walked the full per-page fault path at
        tens of host-milliseconds per warm-up call.
        """
        if npages <= 0:
            raise InvalidArgument("touch_range needs a positive page count")
        times, _stopped, total = self._touch_run(
            process, region_id, start_page, npages, 1, None, 1, 1, "touch_range"
        )
        return times, total

    def sys_touch_batch(
        self,
        process: Process,
        region_id: int,
        start_page: int,
        npages: int,
        stride: int = 1,
        threshold_ns: Optional[int] = None,
        slow_count: int = 1,
        slow_window: int = 1,
    ):
        """Vectored page touches with MAC's windowed early-stop predicate.

        Without ``threshold_ns`` this is ``touch_range`` with a stride.
        With it, touching stops right after the page whose slow
        observation is the ``slow_count``-th within ``slow_window`` page
        indexes — so an aborted batch leaves the memory pool in exactly
        the state the equivalent sequential touch loop (which aborts at
        the same page) would have left it.
        """
        if npages <= 0:
            raise InvalidArgument("touch_batch needs a positive page count")
        if stride <= 0:
            raise InvalidArgument("touch_batch needs a positive stride")
        if slow_count < 1 or slow_window < 1:
            raise InvalidArgument("need slow_count >= 1 and slow_window >= 1")
        times, stopped, total = self._touch_run(
            process, region_id, start_page, npages, stride,
            threshold_ns, slow_count, slow_window, "touch_batch",
        )
        return TouchBatchResult(tuple(times), stopped), total

    def _touch_run(
        self,
        process: Process,
        region_id: int,
        start_page: int,
        npages: int,
        stride: int,
        threshold_ns: Optional[int],
        slow_count: int,
        slow_window: int,
        section: str,
    ):
        """Shared touch interior; returns ``(per_page_times, stopped, total)``.

        Three tiers, each bit-identical in simulated time and pool state
        to the scalar loop below it:

        1. **Vectorized resident run** — every page of the strided run
           is resident (one numpy membership test): charge
           ``mem_touch_ns`` per page and apply one batched policy
           update.  Valid only when no touch can exceed the early-stop
           threshold, so the predicate provably never trips.
        2. **Vectorized zero-fill run** — a contiguous, never-touched
           run the pool can absorb without reclaiming: one batched
           insert, ``fault_overhead + page_zero`` per page.
        3. **Scalar loop** — everything else (mixed runs, swap-ins,
           reclaim pressure, an active injector, predicate-visible slow
           touches): the resident fast check per page, ``touch_one``
           for real faults, noise and early-stop applied per touch.
        """
        t0 = self.clock.now
        space = process.address_space
        region = space.region(region_id)
        last_index = start_page + ((npages - 1) // stride) * stride
        in_bounds = 0 <= start_page and last_index < region.npages
        base_page = region.base_page
        cfg = self.config
        mem_touch_ns = cfg.mem_touch_ns
        pid = process.pid
        inject = self.inject

        if inject is None and in_bounds and self.numpy_paths:
            # Tier 1: the whole strided run is resident.  Guard the
            # early-stop predicate: a resident touch costs exactly
            # mem_touch_ns, so with mem_touch_ns <= threshold no
            # observation can be slow and the predicate cannot trip.
            if threshold_ns is None or mem_touch_ns <= threshold_ns:
                count = self.mm.touch_anon_resident_run(
                    pid, base_page + start_page, base_page + last_index + 1, stride
                )
                if count:
                    return [mem_touch_ns] * count, False, count * mem_touch_ns
            # Tier 2: a fresh contiguous run (no page ever touched, so
            # zero-fill faults with no swap slots) the pool can take
            # without evicting at any intermediate step.
            zero_ns = cfg.fault_overhead_ns + cfg.page_zero_ns
            if (
                stride == 1
                and (threshold_ns is None or zero_ns <= threshold_ns)
                and space.touched.isdisjoint(
                    range(base_page + start_page, base_page + start_page + npages)
                )
                and self.mm.anon_zero_fill_run(
                    pid, base_page + start_page, base_page + start_page + npages
                )
            ):
                space.touched.update(
                    range(base_page + start_page, base_page + start_page + npages)
                )
                return [zero_ns] * npages, False, npages * zero_ns

        # Tier 3: the scalar loop.  Fast path for the resident case
        # (MAC's verify loops re-touch pages that are overwhelmingly
        # still resident): skip the per-page region lookup/bounds check
        # — validated once for the whole strided range above — and the
        # FaultResult allocation.  Any fault that needs real work falls
        # back to ``touch_one``.
        t = t0
        times: List[int] = []
        append = times.append
        slow_marks: List[int] = []
        stopped = False
        touched = space.touched
        resident_touch = self.mm.anon_fault_resident
        # Host-time drill-down of ``syscall.touch_batch`` /
        # ``syscall.touch_range``: full fault servicing vs the resident
        # fast loop around it.
        profiling = PROFILER.enabled
        fault_section = section + ".fault"
        for index in range(start_page, start_page + npages, stride):
            before = t
            page = base_page + index
            if in_bounds and page in touched and resident_touch(AnonKey(pid, page)):
                t += mem_touch_ns
                elapsed = mem_touch_ns
            elif profiling:
                _h0 = perf_counter_ns()
                t = self.touch_one(process, region_id, index, t)
                PROFILER.add(fault_section, perf_counter_ns() - _h0)
                elapsed = t - before
            else:
                t = self.touch_one(process, region_id, index, t)
                elapsed = t - before
            if inject is not None:
                # Noise the touch before the early-stop predicate reads
                # it, exactly as the sequential user-space loop would.
                elapsed = inject.probe_elapsed("touch", elapsed)
                t = before + elapsed
            append(elapsed)
            if threshold_ns is not None and elapsed > threshold_ns:
                slow_marks.append(index)
                recent = sum(1 for m in slow_marks if index - m < slow_window)
                if recent >= slow_count:
                    stopped = True
                    break
        return times, stopped, t - t0


__all__ = ["VMLayer"]
