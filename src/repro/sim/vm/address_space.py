"""Per-process virtual address spaces.

A region is a contiguous run of virtual pages created by ``vm_alloc``.
The address space tracks which pages have ever been written (so the
first touch zero-fills and later touches either hit, or page in from
swap); *residency itself* is tracked by the shared
:class:`~repro.sim.vm.physmem.MemoryManager` pool, because that is where
replacement competition happens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Set

from repro.sim.errors import InvalidArgument


@dataclass
class Region:
    """One vm_alloc'd range: [base_page, base_page + npages)."""

    region_id: int
    base_page: int
    npages: int
    label: str = ""

    def page_numbers(self) -> Iterator[int]:
        return iter(range(self.base_page, self.base_page + self.npages))

    def contains(self, page: int) -> bool:
        return self.base_page <= page < self.base_page + self.npages


class AddressSpace:
    """Bump-allocated regions plus the touched-page set for one process."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self._next_region_id = 1
        self._next_page = 0
        self._regions: Dict[int, Region] = {}
        # Pages that have been written at least once since allocation.
        self.touched: Set[int] = set()

    def allocate(self, npages: int, label: str = "") -> Region:
        if npages <= 0:
            raise InvalidArgument("vm_alloc needs a positive page count")
        region = Region(self._next_region_id, self._next_page, npages, label)
        self._regions[region.region_id] = region
        self._next_region_id += 1
        self._next_page += npages
        return region

    def free(self, region_id: int) -> Region:
        region = self._regions.pop(region_id, None)
        if region is None:
            raise InvalidArgument(f"unknown region id {region_id}")
        for page in region.page_numbers():
            self.touched.discard(page)
        return region

    def region(self, region_id: int) -> Region:
        region = self._regions.get(region_id)
        if region is None:
            raise InvalidArgument(f"unknown region id {region_id}")
        return region

    def regions(self) -> Iterator[Region]:
        return iter(self._regions.values())

    @property
    def allocated_pages(self) -> int:
        return sum(r.npages for r in self._regions.values())
