"""Array-backed residency mirrors for the vectorized fault/read paths.

Per-key dict residency (hash a ``FileKey``/``AnonKey``, probe the
policy's OrderedDict) cannot be vectorized: the hashing is Python-level.
But the page *indexes* inside one owner — one file's page numbers, one
process's virtual pages — are small dense integers, so residency per
owner is representable as a numpy byte array where membership of a whole
run is a single sliced ``.all()`` instead of K dict probes.

:class:`ResidencyIndex` maintains, per owner, two parallel structures:

* ``present`` — a ``uint8`` numpy array, 1 where the page is resident in
  the mirrored pool.  Vectorized membership: ``present[a:b:s].all()``.
* ``cells`` — a Python list of the policy's per-page *replay cells*
  (see :meth:`repro.sim.cache.base.CachePolicy.resident_cell`), ``None``
  where absent.  Once a run tests fully present, slicing this list hands
  the policy everything it needs to apply the batch hit — no key
  construction, no hashing.

The index is a pure mirror: the :class:`~repro.sim.vm.physmem.MemoryManager`
updates it at every point where a file or anonymous page enters or
leaves a pool, and nothing else writes it.  Cells stay valid exactly as
long as the page stays resident (policies guarantee cell identity across
hits), which is the same lifetime the presence bit tracks — so there is
no epoch to check: a set bit *is* the validity proof for its cell.

Scalar hot paths are untouched by design: maintaining the mirror costs
one array store + one list store per insert/remove (paths that already
do reclaim probes and dict surgery), and zero on the hit paths.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

import numpy as np

_MIN_PAGES = 16


class OwnerResidency:
    """One owner's presence bitmap + cell list, grown geometrically."""

    __slots__ = ("present", "cells")

    def __init__(self, size_hint: int = _MIN_PAGES) -> None:
        size = max(size_hint, _MIN_PAGES)
        self.present = np.zeros(size, dtype=np.uint8)
        self.cells: List[Any] = [None] * size

    def ensure(self, size: int) -> None:
        current = self.present.shape[0]
        if size <= current:
            return
        grown = max(size, current * 2)
        fresh = np.zeros(grown, dtype=np.uint8)
        fresh[:current] = self.present
        self.present = fresh
        self.cells.extend([None] * (grown - current))


class ResidencyIndex:
    """Owner-keyed residency mirror of one page pool's file or anon keys."""

    __slots__ = ("_owners",)

    def __init__(self) -> None:
        self._owners: Dict[Hashable, OwnerResidency] = {}

    # Maintenance (memory-manager side) --------------------------------
    def set(self, owner: Hashable, index: int, cell: Any) -> None:
        slab = self._owners.get(owner)
        if slab is None:
            slab = self._owners[owner] = OwnerResidency(index + 1)
        else:
            slab.ensure(index + 1)
        slab.present[index] = 1
        slab.cells[index] = cell

    def clear(self, owner: Hashable, index: int) -> None:
        slab = self._owners.get(owner)
        if slab is not None and index < slab.present.shape[0]:
            slab.present[index] = 0
            slab.cells[index] = None

    def clear_many(self, owner: Hashable, indexes: List[int]) -> None:
        """Clear a batch of one owner's pages under a single lookup."""
        slab = self._owners.get(owner)
        if slab is None:
            return
        present = slab.present
        cells = slab.cells
        limit = present.shape[0]
        for index in indexes:
            if index < limit:
                present[index] = 0
                cells[index] = None

    def drop_owner(self, owner: Hashable) -> None:
        self._owners.pop(owner, None)

    def register_run(self, owner: Hashable, start: int, cells: List[Any]) -> None:
        """Bulk-set a contiguous run just inserted into the pool."""
        slab = self._owners.get(owner)
        stop = start + len(cells)
        if slab is None:
            slab = self._owners[owner] = OwnerResidency(stop)
        else:
            slab.ensure(stop)
        slab.present[start:stop] = 1
        slab.cells[start:stop] = cells

    # Vectorized queries (fast-path side) ------------------------------
    def cells_if_all_present(
        self, owner: Hashable, start: int, stop: int, step: int = 1
    ) -> Optional[List[Any]]:
        """Cells for ``range(start, stop, step)`` iff every page is resident.

        One sliced membership test; ``None`` (nothing mutated, nothing
        allocated beyond the view) when any page is absent or unknown.
        """
        slab = self._owners.get(owner)
        if slab is None:
            return None
        present = slab.present
        if stop > present.shape[0]:
            return None
        view = present[start:stop:step]
        if view.shape[0] == 0 or not view.all():
            return None
        return slab.cells[start:stop:step]

    def cells_at_if_all_present(
        self, owner: Hashable, indexes: "np.ndarray"
    ) -> Optional[List[Any]]:
        """Cells at arbitrary ``indexes`` (int array, any order, dups ok)."""
        slab = self._owners.get(owner)
        if slab is None:
            return None
        present = slab.present
        if indexes.shape[0] == 0 or int(indexes.max()) >= present.shape[0]:
            return None
        if not present[indexes].all():
            return None
        cells = slab.cells
        return [cells[i] for i in indexes.tolist()]

    def all_absent_run(self, owner: Hashable, start: int, stop: int) -> bool:
        """True when no page of ``[start, stop)`` is resident."""
        slab = self._owners.get(owner)
        if slab is None:
            return True
        present = slab.present
        end = min(stop, present.shape[0])
        if start >= end:
            return True
        return not present[start:end].any()


__all__ = ["OwnerResidency", "ResidencyIndex"]
